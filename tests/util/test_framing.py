"""Binary framing utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bytesbuf import AggregationBuffer
from repro.util.framing import ByteReader, ByteWriter, FrameError, frame


class TestByteWriterReader:
    def test_scalar_round_trip(self):
        data = (
            ByteWriter().u8(7).u16(300).u32(70000).u64(1 << 40).f64(3.5).getvalue()
        )
        r = ByteReader(data)
        assert r.u8() == 7
        assert r.u16() == 300
        assert r.u32() == 70000
        assert r.u64() == 1 << 40
        assert r.f64() == 3.5
        r.expect_end()

    def test_lp_bytes_and_str(self):
        data = ByteWriter().lp_bytes(b"abc").lp_str("héllo").getvalue()
        r = ByteReader(data)
        assert r.lp_bytes() == b"abc"
        assert r.lp_str() == "héllo"

    @given(st.integers(min_value=0, max_value=1 << 256))
    def test_mpint_round_trip(self, value):
        data = ByteWriter().mpint(value).getvalue()
        assert ByteReader(data).mpint() == value

    def test_mpint_rejects_negative(self):
        with pytest.raises(FrameError):
            ByteWriter().mpint(-1)

    def test_truncated_read_raises(self):
        r = ByteReader(b"\x00\x01")
        with pytest.raises(FrameError, match="truncated"):
            r.u32()

    def test_trailing_bytes_detected(self):
        r = ByteReader(b"\x00\x01")
        r.u8()
        with pytest.raises(FrameError, match="trailing"):
            r.expect_end()

    def test_frame_helper(self):
        framed = frame(b"xyz")
        assert framed == b"\x00\x00\x00\x03xyz"

    @given(st.lists(st.binary(max_size=50), max_size=8))
    def test_sequence_round_trip(self, chunks):
        w = ByteWriter()
        for chunk in chunks:
            w.lp_bytes(chunk)
        r = ByteReader(w.getvalue())
        assert [r.lp_bytes() for _ in chunks] == chunks
        r.expect_end()


class TestAggregationBuffer:
    def test_overflow_emits_full_blocks(self):
        buf = AggregationBuffer(10)
        emitted = buf.write(b"x" * 25)
        assert [len(b) for b in emitted] == [10, 10]
        assert buf.pending == 5

    def test_flush_emits_partial(self):
        buf = AggregationBuffer(10)
        buf.write(b"abc")
        assert buf.flush() == b"abc"
        assert buf.flush() is None

    def test_callback_invoked(self):
        seen = []
        buf = AggregationBuffer(4, on_block=seen.append)
        buf.write(b"abcdefgh")
        assert seen == [b"abcd", b"efgh"]

    def test_counts(self):
        buf = AggregationBuffer(8)
        buf.write(b"0123456789")
        buf.flush()
        assert buf.bytes_in == 10
        assert buf.blocks_emitted == 2

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            AggregationBuffer(0)

    @given(st.lists(st.binary(min_size=0, max_size=64), max_size=20), st.integers(1, 32))
    def test_content_preserved(self, writes, capacity):
        buf = AggregationBuffer(capacity)
        out = []
        for data in writes:
            out.extend(buf.write(data))
        tail = buf.flush()
        if tail:
            out.append(tail)
        assert b"".join(out) == b"".join(writes)
        assert all(len(block) <= capacity for block in out)
