"""Property-based round-trips for the binary framing helpers.

Seeded ``random.Random`` drives hundreds of randomized writer/reader
sequences and arbitrary re-chunkings of framed streams — the suite stays
bit-for-bit reproducible (no new dependencies, no global random state).
"""

import random
import struct

import pytest

from repro.util.framing import FRAME_HEADER, ByteReader, ByteWriter, FrameError, frame

#: (generator, writer method, reader method) per field kind
FIELD_KINDS = [
    ("u8", lambda rng: rng.randrange(1 << 8)),
    ("u16", lambda rng: rng.randrange(1 << 16)),
    ("u32", lambda rng: rng.randrange(1 << 32)),
    ("u64", lambda rng: rng.randrange(1 << 64)),
    ("f64", lambda rng: struct.unpack("!d", rng.randbytes(8))[0]),
    ("lp_bytes", lambda rng: rng.randbytes(rng.randrange(0, 200))),
    (
        "lp_str",
        lambda rng: "".join(
            chr(rng.choice([rng.randrange(32, 127), rng.randrange(0x4E00, 0x9FFF)]))
            for _ in range(rng.randrange(0, 40))
        ),
    ),
    ("mpint", lambda rng: rng.getrandbits(rng.randrange(0, 512))),
]


def random_fields(rng, n):
    fields = []
    for _ in range(n):
        kind, gen = rng.choice(FIELD_KINDS)
        value = gen(rng)
        if kind == "f64" and value != value:  # NaN never compares equal
            value = 0.0
        fields.append((kind, value))
    return fields


@pytest.mark.parametrize("seed", range(25))
def test_writer_reader_round_trip_random_sequences(seed):
    rng = random.Random(f"framing:{seed}")
    fields = random_fields(rng, rng.randrange(1, 30))
    writer = ByteWriter()
    for kind, value in fields:
        getattr(writer, kind)(value)
    reader = ByteReader(writer.getvalue())
    for kind, value in fields:
        assert getattr(reader, kind)() == value, (kind, value)
    reader.expect_end()


@pytest.mark.parametrize("seed", range(25))
def test_framed_stream_survives_arbitrary_chunking(seed):
    """Concatenated frames split at random boundaries reassemble exactly."""
    rng = random.Random(f"chunks:{seed}")
    payloads = [
        rng.randbytes(rng.choice([0, 1, 3, rng.randrange(0, 2000)]))
        for _ in range(rng.randrange(1, 12))
    ]
    stream = b"".join(frame(p) for p in payloads)

    # Cut the stream at arbitrary positions (possibly mid-header).
    cuts = sorted(rng.randrange(0, len(stream) + 1) for _ in range(rng.randrange(0, 20)))
    chunks, prev = [], 0
    for cut in cuts + [len(stream)]:
        chunks.append(stream[prev:cut])
        prev = cut

    # Incremental reassembly, as a stream consumer would do it.
    buffer = bytearray()
    recovered = []
    for chunk in chunks:
        buffer.extend(chunk)
        while len(buffer) >= FRAME_HEADER:
            (length,) = struct.unpack("!I", buffer[:FRAME_HEADER])
            if len(buffer) < FRAME_HEADER + length:
                break
            recovered.append(bytes(buffer[FRAME_HEADER : FRAME_HEADER + length]))
            del buffer[: FRAME_HEADER + length]
    assert not buffer, "trailing bytes after the last frame"
    assert recovered == payloads


@pytest.mark.parametrize("seed", range(10))
def test_truncated_reads_always_raise(seed):
    """Any strict prefix of an encoding fails loudly, never misreads."""
    rng = random.Random(f"trunc:{seed}")
    fields = random_fields(rng, rng.randrange(2, 10))
    writer = ByteWriter()
    for kind, value in fields:
        getattr(writer, kind)(value)
    data = writer.getvalue()
    cut = rng.randrange(0, len(data))
    reader = ByteReader(data[:cut])
    with pytest.raises(FrameError):
        for kind, _value in fields:
            getattr(reader, kind)()
        reader.expect_end()


def test_mpint_rejects_negative():
    with pytest.raises(FrameError):
        ByteWriter().mpint(-1)


def test_frame_empty_payload():
    assert frame(b"") == b"\x00\x00\x00\x00"
