"""TunePlanner: the pure half of the closed-loop tuner.

Covers the absorbed ``repro.core.autotune`` formulas (with the
clamp-order fix: loss headroom applies *before* the ``max_streams``
clamp), the deprecation shims, and the per-knob planning rules —
window-limited capacity escalation, replay/credit-window sizing and the
compression verdict.
"""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tune import (
    HEADROOM,
    LinkSignals,
    TunePlanner,
    TunerPolicy,
    estimate_bdp,
    loss_headroom,
    recommend_streams,
)
from repro.tune.planner import LOSS_GAIN, LOSS_HEADROOM_MAX


class TestLossHeadroom:
    def test_clean_path_pays_nothing(self):
        assert loss_headroom(0.0) == 1.0

    def test_paper_loss_rate(self):
        # Amsterdam-Rennes 0.25% loss: ~1.4x provisioning.
        assert loss_headroom(0.0025) == pytest.approx(
            1.0 + LOSS_GAIN * math.sqrt(0.0025)
        )

    def test_capped(self):
        assert loss_headroom(0.25) == LOSS_HEADROOM_MAX

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            loss_headroom(-0.1)
        with pytest.raises(ValueError):
            loss_headroom(1.0)

    @given(st.floats(min_value=0.0, max_value=0.999))
    def test_monotone_and_bounded(self, loss):
        h = loss_headroom(loss)
        assert 1.0 <= h <= LOSS_HEADROOM_MAX
        assert loss_headroom(min(loss * 2, 0.999)) >= h


class TestClampOrder:
    """Loss headroom applies before the max_streams clamp."""

    def test_loss_free_matches_old_formula(self):
        # The absorbed formula at loss=0: identical recommendations.
        assert recommend_streams(9e6, 0.043, 65536) == 8
        assert recommend_streams(1.6e6, 0.030, 65536) == 1
        assert recommend_streams(1e9, 0.2, 65536, max_streams=16) == 16

    def test_lossy_path_earns_recovery_streams(self):
        clean = recommend_streams(9e6, 0.043, 65536, loss_rate=0.0)
        lossy = recommend_streams(9e6, 0.043, 65536, loss_rate=0.01)
        assert lossy > clean

    def test_clamped_once_at_the_end(self):
        # Near the clamp, loss headroom still lands ON the clamp — the
        # old clamp-first order would have frozen the clean value and
        # denied the recovery streams entirely.
        clean = recommend_streams(15e6, 0.043, 65536, max_streams=16)
        assert clean < 16
        lossy = recommend_streams(15e6, 0.043, 65536, max_streams=16,
                                  loss_rate=0.02)
        assert lossy == 16

    @given(
        st.floats(min_value=1e5, max_value=1e9),
        st.floats(min_value=1e-4, max_value=1.0),
        st.floats(min_value=0.0, max_value=0.4),
    )
    def test_loss_never_reduces_streams(self, capacity, rtt, loss):
        clean = recommend_streams(capacity, rtt, 65536)
        lossy = recommend_streams(capacity, rtt, 65536, loss_rate=loss)
        assert 1 <= clean <= lossy <= 16


class TestDeprecationShim:
    def test_old_import_path_warns_and_aliases(self):
        import repro.core.autotune as autotune

        with pytest.warns(DeprecationWarning, match="moved to repro.tune"):
            shimmed = autotune.recommend_streams
        assert shimmed is recommend_streams
        with pytest.warns(DeprecationWarning):
            assert autotune.estimate_bdp is estimate_bdp
        with pytest.warns(DeprecationWarning):
            assert autotune.HEADROOM == HEADROOM

    def test_unknown_attribute_still_raises(self):
        import repro.core.autotune as autotune

        with pytest.raises(AttributeError):
            autotune.no_such_thing

    def test_tuner_policy_both_import_paths(self):
        from repro.chaos.rollout import TunerPolicy as old_path

        assert old_path is TunerPolicy
        policy = TunerPolicy("steady", pace=0.05, chunk=8192)
        assert policy.rate == pytest.approx(8192 / 0.05)


def _signals(**kw):
    defaults = dict(rtt=0.05, capacity=2e6, goodput=1e6, loss_rate=0.0,
                    streams_active=2)
    defaults.update(kw)
    return LinkSignals(**defaults)


class TestCapacityEstimate:
    def test_takes_max_of_capacity_and_goodput(self):
        planner = TunePlanner(rcvbuf=65536)
        cap, escalated = planner.capacity_estimate(
            _signals(capacity=1e6, goodput=0.5e6, streams_active=1))
        assert cap == 1e6 and not escalated

    def test_window_limited_escalates(self):
        planner = TunePlanner(rcvbuf=65536, window_limited_threshold=0.75,
                              escalation=1.5)
        # window bound = 2 * 65536 / 0.05 = 2.62 MB/s; goodput 2.4 is
        # within 75% of it -> the windows are the visible limit.
        cap, escalated = planner.capacity_estimate(
            _signals(capacity=0.0, goodput=2.4e6, streams_active=2))
        assert escalated
        assert cap == pytest.approx(2.4e6 * 1.5)

    def test_unsaturated_is_taken_at_face_value(self):
        planner = TunePlanner(rcvbuf=65536)
        cap, escalated = planner.capacity_estimate(
            _signals(capacity=0.0, goodput=0.5e6, streams_active=2))
        assert cap == 0.5e6 and not escalated


class TestPlan:
    def test_no_opinion_without_measurements(self):
        planner = TunePlanner()
        assert dict(planner.plan(LinkSignals()).knobs()) == {}
        assert dict(planner.plan(LinkSignals(rtt=0.05)).knobs()) == {}

    def test_streams_follow_bdp(self):
        planner = TunePlanner(rcvbuf=65536, max_streams=16)
        plan = planner.plan(_signals(capacity=9e6, rtt=0.043, goodput=0.0,
                                     streams_active=8))
        assert plan.streams == recommend_streams(9e6, 0.043, 65536)

    def test_replay_buffer_is_two_bdps(self):
        planner = TunePlanner(min_replay=1 << 10, max_replay=1 << 30)
        plan = planner.plan(_signals(capacity=2e6, goodput=0.0, rtt=0.05,
                                     streams_active=2))
        assert plan.replay_buffer == int(2.0 * 2e6 * 0.05)

    def test_mux_window_grows_under_credit_stall(self):
        planner = TunePlanner(min_mux_window=1 << 10, max_mux_window=1 << 30,
                              escalation=1.5)
        calm = planner.plan(_signals(goodput=0.0, credit_stall_rate=0.0))
        stalled = planner.plan(_signals(goodput=0.0, credit_stall_rate=4.0))
        assert calm.mux_window == int(2e6 * 0.05 * HEADROOM)
        assert stalled.mux_window == int(2e6 * 0.05 * HEADROOM * 1.5)

    def test_mux_window_clamped(self):
        planner = TunePlanner(min_mux_window=1 << 14, max_mux_window=1 << 16)
        plan = planner.plan(_signals(capacity=1e9, goodput=0.0))
        assert plan.mux_window == 1 << 16

    def test_rcvbuf_grows_only_when_streams_saturate(self):
        planner = TunePlanner(rcvbuf=65536, max_streams=4,
                              max_rcvbuf=1 << 22)
        modest = planner.plan(_signals(capacity=2e6, goodput=0.0, rtt=0.05,
                                       streams_active=2))
        assert modest.rcvbuf == 65536
        starved = planner.plan(_signals(capacity=1e8, goodput=0.0, rtt=0.1,
                                        streams_active=4))
        assert starved.streams == 4
        assert starved.rcvbuf > 65536
        assert starved.rcvbuf <= 1 << 22
        # power-of-two sizing (OS buffer idiom)
        assert starved.rcvbuf & (starved.rcvbuf - 1) == 0

    def test_compress_trusts_measured_preference(self):
        planner = TunePlanner()
        on = planner.plan(_signals(compress_preference="compress"))
        off = planner.plan(_signals(compress_preference="raw"))
        undecided = planner.plan(_signals(compress_preference="undecided"))
        assert (on.compress, off.compress) == ("on", "off")
        assert undecided.compress == "auto"

    def test_compress_crossover_from_rates(self):
        planner = TunePlanner(rcvbuf=65536, compress_margin=1.1)
        # Slow wire, fast CPU, compressible payload: compression wins.
        win = planner.plan(_signals(
            capacity=1e6, goodput=0.0, streams_active=1,
            compress_rate=50e6, payload_ratio=3.0))
        assert win.compress == "on"
        # Fast wire dwarfs the CPU: compression would throttle it.
        lose = planner.plan(_signals(
            capacity=50e6, goodput=0.0, streams_active=16,
            compress_rate=3e6, payload_ratio=1.5))
        assert lose.compress == "off"

    def test_attrs_explain_the_plan(self):
        planner = TunePlanner()
        plan = planner.plan(_signals(goodput=0.0, loss_rate=0.0025))
        assert plan.attrs["capacity_bps"] == 2e6
        assert plan.attrs["bdp_bytes"] == pytest.approx(2e6 * 0.05)
        assert plan.attrs["loss_headroom"] == loss_headroom(0.0025)
        assert plan.attrs["window_escalated"] is False

    def test_as_dict_skips_silent_knobs(self):
        planner = TunePlanner()
        plan = planner.plan(_signals(goodput=0.0))
        knobs = plan.as_dict()
        assert set(knobs) == {"streams", "compress", "rcvbuf",
                              "replay_buffer", "mux_window"}
