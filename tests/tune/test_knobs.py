"""Knob surfaces: plan targets reaching a real running stack.

StackKnobs binds onto live driver objects, so these tests build the
real things — a rebalancing parallel driver over simulated TCP links, an
adaptive compression driver, a mux channel pair — and verify that
setting a knob moves the underlying machinery (quiesce/reactivate for
streams, forced modes for compression, credit accounting for the mux
window renegotiation, including the shrink-debt path).
"""

import pytest

from repro import obs
from repro.core.links import TcpLink
from repro.core.utilization import RebalancingParallelDriver
from repro.core.utilization.adaptive import AdaptiveCompressionDriver
from repro.mux import DEFAULT_WINDOW, MuxEndpoint
from repro.obs import MetricsRegistry
from repro.simnet import connect, listen
from repro.simnet.testing import two_public_hosts
from repro.tune import KnobError, StackKnobs, StaticKnobs


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


class TestStaticKnobs:
    def test_get_set_supports(self):
        knobs = StaticKnobs(streams=2, compress="auto")
        assert knobs.supports("streams") and not knobs.supports("rcvbuf")
        knobs.set("streams", 4)
        assert knobs.get("streams") == 4
        assert knobs.as_dict() == {"streams": 4, "compress": "auto"}

    def test_unknown_knob_raises(self):
        knobs = StaticKnobs(streams=2)
        with pytest.raises(KnobError):
            knobs.get("mux_window")
        with pytest.raises(KnobError):
            knobs.set("mux_window", 1)


def _parallel_driver(n=4):
    inet, a, b = two_public_hosts()
    sim = inet.sim
    out = {}

    def srv():
        listener = listen(b, 5000, backlog=n)
        links = []
        for _ in range(n):
            sock = yield from listener.accept()
            links.append(TcpLink(sock, "client_server"))
        out["b"] = links

    def cli():
        links = []
        for _ in range(n):
            sock = yield from connect(a, (b.ip, 5000))
            links.append(TcpLink(sock, "client_server"))
        out["a"] = links

    sim.process(srv())
    sim.process(cli())
    sim.run(until=30)
    return inet, a, RebalancingParallelDriver(out["a"])


class TestStreamsKnob:
    def test_shrink_quiesces_grow_reactivates(self):
        _inet, _a, driver = _parallel_driver(4)
        knobs = StackKnobs(stack=driver)
        assert knobs.supports("streams") and knobs.get("streams") == 4
        knobs.set("streams", 2)
        assert driver.active_streams == 2
        assert driver.alive_members == 4  # quiesced, not torn down
        knobs.set("streams", 3)
        assert driver.active_streams == 3

    def test_clamped_to_membership(self):
        _inet, _a, driver = _parallel_driver(3)
        knobs = StackKnobs(stack=driver)
        knobs.set("streams", 0)
        assert driver.active_streams == 1
        knobs.set("streams", 99)
        assert driver.active_streams == 3

    def test_found_through_a_wrapping_stack(self):
        inet, a, driver = _parallel_driver(2)
        adaptive = AdaptiveCompressionDriver(driver, a)
        knobs = StackKnobs(stack=adaptive)
        assert knobs.supports("streams") and knobs.supports("compress")
        knobs.set("streams", 1)
        assert driver.active_streams == 1


class TestCompressKnob:
    def test_mode_mapping_round_trips(self):
        inet, a, driver = _parallel_driver(2)
        adaptive = AdaptiveCompressionDriver(driver, a)
        knobs = StackKnobs(stack=adaptive)
        assert knobs.get("compress") == "auto"
        knobs.set("compress", "on")
        assert adaptive.force_mode == "compress"
        assert knobs.get("compress") == "on"
        knobs.set("compress", "off")
        assert adaptive.force_mode == "raw"
        knobs.set("compress", "auto")
        assert adaptive.force_mode is None

    def test_bad_mode_rejected(self):
        inet, a, driver = _parallel_driver(2)
        adaptive = AdaptiveCompressionDriver(driver, a)
        knobs = StackKnobs(stack=adaptive)
        with pytest.raises(KnobError):
            knobs.set("compress", "maybe")


def _mux_pair(window=DEFAULT_WINDOW):
    inet, a, b = two_public_hosts()
    sim = inet.sim
    out = {}

    def srv():
        listener = listen(b, 5000)
        sock = yield from listener.accept()
        out["resp"] = yield from MuxEndpoint.establish(
            TcpLink(sock, "client_server"), MuxEndpoint.RESPONDER,
            window=window, node="resp")

    def cli():
        sock = yield from connect(a, (b.ip, 5000))
        out["ini"] = yield from MuxEndpoint.establish(
            TcpLink(sock, "client_server"), MuxEndpoint.INITIATOR,
            window=window, node="ini")

    sim.process(srv())
    sim.process(cli())
    sim.run(until=30)
    return sim, out["ini"], out["resp"]


class TestMuxWindowKnob:
    def _channel(self, window=1 << 14):
        sim, ini, resp = _mux_pair(window=window)
        out = {}

        def opener():
            out["tx"] = yield from ini.open_channel(tag=b"bulk")

        def acceptor():
            out["rx"] = yield from resp.accept_channel()

        sim.process(opener())
        sim.process(acceptor())
        sim.run(until=sim.now + 30)
        return sim, out["tx"], out["rx"]

    def test_growth_grants_credit_immediately(self):
        sim, tx, rx = self._channel(window=1 << 14)
        knobs = StackKnobs(mux_channel=rx)
        assert knobs.get("mux_window") == 1 << 14
        knobs.set("mux_window", 1 << 15)
        sim.run(until=sim.now + 5)
        assert rx._rx_window == 1 << 15
        granted = obs.metrics().counter(
            "mux.credit_granted", node="resp", channel=str(rx.channel_id))
        assert granted.value >= (1 << 15) - (1 << 14)
        # The sender saw the extra credit (plus the WINDOW announcement).
        assert tx._tx_credit == 1 << 15
        assert tx.peer_rx_window == 1 << 15

    def test_shrink_is_graceful_debt_not_clawback(self):
        sim, tx, rx = self._channel(window=1 << 15)
        knobs = StackKnobs(mux_channel=rx)
        knobs.set("mux_window", 1 << 14)
        sim.run(until=sim.now + 5)
        assert rx._rx_window == 1 << 14
        assert rx._grant_debt == (1 << 15) - (1 << 14)
        # No credit was revoked from the sender.
        assert tx._tx_credit == 1 << 15

    def test_regrowth_absorbs_outstanding_debt(self):
        sim, tx, rx = self._channel(window=1 << 15)
        knobs = StackKnobs(mux_channel=rx)
        knobs.set("mux_window", 1 << 14)   # debt = 16384
        knobs.set("mux_window", 12 * 1024)  # more debt
        knobs.set("mux_window", 1 << 15)   # regrow: absorbed, no new grant
        sim.run(until=sim.now + 5)
        assert rx._grant_debt == 0
        assert tx._tx_credit == 1 << 15

    def test_retunes_are_counted(self):
        sim, _tx, rx = self._channel()
        knobs = StackKnobs(mux_channel=rx)
        knobs.set("mux_window", 1 << 15)
        knobs.set("mux_window", 1 << 16)
        retunes = obs.metrics().counter(
            "mux.window_retunes_total", node="resp")
        assert retunes.value == 2


class TestUnboundKnobs:
    def test_unbound_surfaces_report_unsupported(self):
        knobs = StackKnobs()
        for name in ("streams", "compress", "replay_buffer",
                     "mux_window", "rcvbuf"):
            assert not knobs.supports(name)
            with pytest.raises(KnobError):
                knobs.get(name)

    def test_rcvbuf_is_recorded_for_reestablishment(self):
        knobs = StackKnobs(rcvbuf=65536)
        assert knobs.get("rcvbuf") == 65536
        knobs.set("rcvbuf", 1 << 17)
        assert knobs.get("rcvbuf") == 1 << 17
