"""LinkTuner: hysteresis, deadband, polarity and the oscillation bound.

The no-oscillation bound is *provable* — at most one change per knob per
hysteresis window, regardless of what the signals do — so the property
test throws randomized signal traces at the loop and re-derives the
bound independently from the decision log (it does not trust
``check_no_oscillation`` to check itself).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.obs import MetricsRegistry
from repro.tune import (
    LinkSignals,
    LinkTuner,
    StaticKnobs,
    TunePlanner,
    gated_apply,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class ScriptedSource:
    """Replays a list of LinkSignals samples (None = no measurement)."""

    def __init__(self, samples):
        self.samples = list(samples)
        self.index = 0

    def __call__(self):
        if not self.samples:
            return None
        sample = self.samples[min(self.index, len(self.samples) - 1)]
        self.index += 1
        return sample


def _signals(**kw):
    defaults = dict(rtt=0.05, capacity=2e6, goodput=0.0, loss_rate=0.0,
                    streams_active=2)
    defaults.update(kw)
    return LinkSignals(**defaults)


def _tuner(source, knobs, *, clock, hysteresis=3.0, deadband=0.2, **kw):
    return LinkTuner(
        source, knobs, TunePlanner(rcvbuf=65536, max_streams=16),
        clock=clock, interval=0.5, hysteresis=hysteresis,
        deadband=deadband, name="test", **kw)


class TestStep:
    def test_no_signals_no_opinion(self):
        clock = FakeClock()
        tuner = _tuner(ScriptedSource([None]), StaticKnobs(streams=2),
                       clock=clock)
        assert tuner.step() == []
        assert tuner.samples == 0

    def test_applies_plan_to_knobs(self):
        clock = FakeClock()
        knobs = StaticKnobs(streams=1)
        tuner = _tuner(ScriptedSource([_signals(capacity=9e6, rtt=0.043)]),
                       knobs, clock=clock)
        applied = tuner.step()
        assert [d.knob for d in applied] == ["streams"]
        assert knobs.get("streams") == 8
        assert applied[0].old == 1 and applied[0].new == 8

    def test_unsupported_knobs_are_skipped(self):
        clock = FakeClock()
        knobs = StaticKnobs(streams=1)  # no compress/mux_window/...
        tuner = _tuner(ScriptedSource([_signals()]), knobs, clock=clock)
        for decision in tuner.step():
            assert decision.knob == "streams"


class TestHysteresis:
    def test_one_change_per_window(self):
        clock = FakeClock()
        # Capacity whipsaws every sample: the worst-case input.
        flip = [_signals(capacity=9e6), _signals(capacity=0.5e6)] * 10
        knobs = StaticKnobs(streams=2)
        tuner = _tuner(ScriptedSource(flip), knobs, clock=clock,
                       hysteresis=3.0)
        for _ in flip:
            tuner.step()
            clock.advance(0.5)
        assert tuner.suppressed > 0
        assert tuner.check_no_oscillation() == []
        streams = [d for d in tuner.decisions if d.knob == "streams"]
        for prev, cur in zip(streams, streams[1:]):
            assert cur.at - prev.at >= 3.0

    def test_window_reopens_after_hysteresis(self):
        clock = FakeClock()
        knobs = StaticKnobs(streams=2)
        tuner = _tuner(
            ScriptedSource([_signals(capacity=9e6),
                            _signals(capacity=0.5e6)]),
            knobs, clock=clock, hysteresis=3.0)
        tuner.step()
        clock.advance(3.0)  # exactly one full window later
        tuner.step()
        assert len(tuner.decisions) == 2
        assert tuner.check_no_oscillation() == []

    def test_suppression_is_counted(self):
        clock = FakeClock()
        knobs = StaticKnobs(streams=2)
        tuner = _tuner(
            ScriptedSource([_signals(capacity=9e6),
                            _signals(capacity=0.5e6)]),
            knobs, clock=clock, hysteresis=10.0)
        tuner.step()
        clock.advance(0.5)
        tuner.step()
        assert len(tuner.decisions) == 1
        assert tuner.suppressed == 1
        reg = obs.metrics()
        assert reg.counter("tune.suppressed_total", link="test").value == 1


class TestDeadband:
    def test_small_jitter_is_ignored(self):
        clock = FakeClock()
        knobs = StaticKnobs(streams=8)
        # 9e6 -> 8 streams; small capacity jitter keeps proposing 7-8.
        jitter = [_signals(capacity=9e6, rtt=0.043),
                  _signals(capacity=8.5e6, rtt=0.043)] * 5
        tuner = _tuner(ScriptedSource(jitter), knobs, clock=clock,
                       deadband=0.25)
        for _ in jitter:
            tuner.step()
            clock.advance(0.5)
        assert [d for d in tuner.decisions if d.knob == "streams"] == []

    def test_string_knobs_compare_exactly(self):
        clock = FakeClock()
        knobs = StaticKnobs(compress="auto")
        tuner = _tuner(
            ScriptedSource([_signals(compress_preference="compress")]),
            knobs, clock=clock)
        tuner.step()
        assert knobs.get("compress") == "on"

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            _tuner(ScriptedSource([]), StaticKnobs(), clock=FakeClock(),
                   deadband=1.5)
        with pytest.raises(ValueError):
            LinkTuner(ScriptedSource([]), StaticKnobs(),
                      clock=FakeClock(), interval=0.0)


class TestPolarity:
    def test_capacity_drop_sheds_streams(self):
        clock = FakeClock()
        knobs = StaticKnobs(streams=8)
        tuner = _tuner(ScriptedSource([_signals(capacity=0.5e6)]), knobs,
                       clock=clock)
        tuner.step()
        assert knobs.get("streams") < 8

    def test_loss_earns_streams(self):
        clock = FakeClock()
        clean = StaticKnobs(streams=1)
        lossy = StaticKnobs(streams=1)
        _tuner(ScriptedSource([_signals(capacity=9e6, rtt=0.043)]),
               clean, clock=clock).step()
        _tuner(ScriptedSource(
            [_signals(capacity=9e6, rtt=0.043, loss_rate=0.01)]),
            lossy, clock=clock).step()
        assert lossy.get("streams") > clean.get("streams")

    def test_credit_stall_grows_mux_window(self):
        clock = FakeClock()
        calm = StaticKnobs(mux_window=1 << 14)
        stalled = StaticKnobs(mux_window=1 << 14)
        _tuner(ScriptedSource([_signals()]), calm, clock=clock).step()
        _tuner(ScriptedSource([_signals(credit_stall_rate=5.0)]),
               stalled, clock=clock).step()
        assert stalled.get("mux_window") > calm.get("mux_window")

    def test_route_table_fed_every_step(self):
        class Table:
            def __init__(self):
                self.updates = []

            def update_path(self, relay_id, rtt, loss=None):
                self.updates.append((relay_id, rtt, loss))

        clock = FakeClock()
        table = Table()
        tuner = _tuner(
            ScriptedSource([_signals(loss_rate=0.01)] * 3),
            StaticKnobs(streams=2), clock=clock,
            route_table=table, relay_id="r1")
        for _ in range(3):
            tuner.step()
            clock.advance(0.5)
        assert len(table.updates) == 3
        relay, rtt, loss = table.updates[0]
        assert relay == "r1" and rtt == 0.05 and loss == pytest.approx(0.01)


class TestOscillationProperty:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e5, max_value=1e8),   # capacity
                st.floats(min_value=1e-3, max_value=0.5),  # rtt
                st.floats(min_value=0.0, max_value=0.3),   # loss
                st.floats(min_value=0.0, max_value=10.0),  # stall rate
            ),
            min_size=2, max_size=40,
        ),
        st.floats(min_value=0.5, max_value=5.0),  # hysteresis
    )
    def test_randomized_traces_never_flip_within_a_window(
            self, trace, hysteresis):
        clock = FakeClock()
        samples = [
            _signals(capacity=cap, rtt=rtt, loss_rate=loss,
                     credit_stall_rate=stall)
            for cap, rtt, loss, stall in trace
        ]
        knobs = StaticKnobs(streams=2, compress="auto",
                            mux_window=1 << 14, replay_buffer=1 << 16,
                            rcvbuf=65536)
        tuner = _tuner(ScriptedSource(samples), knobs, clock=clock,
                       hysteresis=hysteresis)
        for _ in samples:
            tuner.step()
            clock.advance(0.25)
        assert tuner.check_no_oscillation() == []
        # Independent re-derivation of the bound from the decision log.
        by_knob = {}
        for decision in tuner.decisions:
            by_knob.setdefault(decision.knob, []).append(decision.at)
        for times in by_knob.values():
            for prev, cur in zip(times, times[1:]):
                assert cur - prev >= hysteresis - 1e-9

    def test_check_flags_a_violated_bound(self):
        # Regression guard for the checker itself: a hand-forged pair of
        # decisions inside one window must be reported.
        from repro.tune.loop import TunerDecision

        clock = FakeClock()
        tuner = _tuner(ScriptedSource([]), StaticKnobs(), clock=clock,
                       hysteresis=3.0)
        tuner.decisions = [
            TunerDecision(1.0, "streams", 2, 4),
            TunerDecision(2.0, "streams", 4, 2),
        ]
        violations = tuner.check_no_oscillation()
        assert len(violations) == 1
        assert "streams" in violations[0]


class _Breach:
    slo = "goodput_floor"
    source = "wan"
    value = 0.0
    threshold = 1.0

    def as_dict(self):
        return {"slo": self.slo, "source": self.source}


class _StubAggregator:
    """breaches_since stub: healthy or breached, by construction."""

    def __init__(self, breached=False):
        self.breached = breached

    def breaches_since(self, since, sources=None):
        return [_Breach()] if self.breached else []


class TestGatedApply:
    def _run(self, breached):
        from repro.simnet.testing import two_public_hosts

        inet, _a, _b = two_public_hosts()
        sim = inet.sim
        knobs = StaticKnobs(streams=2)
        aggregator = _StubAggregator(breached=breached)
        tuner = LinkTuner(
            ScriptedSource([_signals(capacity=9e6, rtt=0.043)]),
            knobs, TunePlanner(rcvbuf=65536),
            clock=lambda: sim.now, interval=0.5, hysteresis=3.0,
            apply_via=gated_apply(
                aggregator, canary="wan", bake_seconds=2.0,
                poll_seconds=0.5, sim=sim, clock=lambda: sim.now),
            name="wan")

        def drive():
            yield sim.timeout(0.5)
            tuner.step()

        sim.process(drive(), name="tuner")
        sim.run(until=10)
        return knobs, tuner

    def test_healthy_change_is_applied_and_promoted(self):
        knobs, tuner = self._run(breached=False)
        assert knobs.get("streams") == 8
        assert len(tuner.decisions) == 1
        assert tuner.decisions[0].gated
        assert [r.state for r in tuner.rollouts] == ["promoted"]

    def test_breaching_change_is_reverted(self):
        knobs, tuner = self._run(breached=True)
        # The gate rolled the knob back to its pre-change value.
        assert knobs.get("streams") == 2
        assert [r.state for r in tuner.rollouts] == ["rolled_back"]


class TestDrivers:
    def test_run_sim_honours_until_and_stop(self):
        from repro.simnet.testing import two_public_hosts

        inet, _a, _b = two_public_hosts()
        sim = inet.sim
        knobs = StaticKnobs(streams=2)
        tuner = LinkTuner(
            ScriptedSource([_signals()] * 100), knobs, TunePlanner(),
            clock=lambda: sim.now, interval=0.5, hysteresis=1.0,
            name="wan")
        sim.process(tuner.run_sim(sim, until=3.0), name="tuner")
        sim.run(until=10)
        assert 0 < tuner.samples <= 6

    def test_stats_shape(self):
        clock = FakeClock()
        knobs = StaticKnobs(streams=1)
        tuner = _tuner(ScriptedSource([_signals(capacity=9e6, rtt=0.043)]),
                       knobs, clock=clock)
        tuner.step()
        stats = tuner.stats()
        assert stats["link"] == "test"
        assert stats["samples"] == 1
        assert stats["changes"] == len(stats["decisions"]) == 1
        decision = stats["decisions"][0]
        assert decision["knob"] == "streams"
        assert decision["old"] == 1 and decision["new"] == 8
