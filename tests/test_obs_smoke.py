"""Smoke: a traced simnet scenario exports schema-valid observability data.

Runs a small brokered transfer with tracing enabled, exports the JSON-lines
file, validates every record against the schema and renders the report —
the same flow as ``make smoke-obs``.
"""

from repro import StackSpec, obs
from repro.core.scenarios import GridScenario
from repro.obs import report, validate_jsonl


def test_traced_scenario_exports_valid_jsonl(tmp_path, capsys):
    previous = obs.set_registry(obs.MetricsRegistry())
    obs.enable_tracing()
    try:
        sc = GridScenario(seed=7)
        sc.add_site("a", "open", access_bandwidth=4e6, access_delay=0.005)
        sc.add_site("b", "firewall", access_bandwidth=4e6, access_delay=0.005)
        sc.add_node("a", "src")
        sc.add_node("b", "dst")
        result = sc.measure_stack_throughput(
            "src", "dst", StackSpec.parallel(2).with_compression(),
            b"smoke" * 13108, 500_000,
        )
        assert result["received"] >= 500_000

        path = str(tmp_path / "smoke.jsonl")
        lines = obs.export_jsonl(path)
        counts = validate_jsonl(path)
        assert sum(counts.values()) == lines
        assert counts["meta"] == 1
        assert counts["metric/counter"] >= 4   # driver, compress, establish
        assert counts["metric/histogram"] >= 2
        assert counts["trace/span"] >= 6       # attempts + stack assembly
        assert counts["trace/event"] >= 1

        assert report.main([path]) == 0
        out = capsys.readouterr().out
        assert "observability export" in out
        assert "establish.attempt" in out
    finally:
        obs.disable_tracing()
        obs.set_registry(previous)
