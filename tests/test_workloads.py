"""Synthetic workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    incompressible,
    measured_ratio,
    payload_with_ratio,
    scientific_mesh,
    text_like,
)


class TestGenerators:
    def test_sizes_exact(self):
        for gen in (incompressible, text_like, scientific_mesh):
            assert len(gen(12345)) == 12345

    def test_deterministic_in_seed(self):
        assert incompressible(1000, seed=7) == incompressible(1000, seed=7)
        assert text_like(1000, seed=7) == text_like(1000, seed=7)
        assert incompressible(1000, seed=7) != incompressible(1000, seed=8)

    def test_incompressible_ratio_near_one(self):
        assert measured_ratio(incompressible(100_000)) < 1.05

    def test_text_like_compresses_well(self):
        assert measured_ratio(text_like(100_000)) > 2.0

    def test_mesh_is_binary_floats(self):
        data = scientific_mesh(80_000)
        assert len(data) == 80_000
        # smooth doubles compress only modestly
        assert 1.0 <= measured_ratio(data) < 2.0


class TestTunableRatio:
    @pytest.mark.parametrize("target", [1.5, 2.0, 3.0])
    def test_hits_target_within_tolerance(self, target):
        payload = payload_with_ratio(512 * 1024, target, seed=3)
        got = measured_ratio(payload)
        assert abs(got - target) / target < 0.25

    def test_ratio_one_is_incompressible(self):
        payload = payload_with_ratio(50_000, 1.0, seed=1)
        assert measured_ratio(payload) < 1.05

    def test_rejects_sub_one(self):
        with pytest.raises(ValueError):
            payload_with_ratio(1000, 0.5)

    def test_size_exact(self):
        assert len(payload_with_ratio(99_999, 2.0)) == 99_999

    @settings(max_examples=5, deadline=None)
    @given(st.floats(min_value=1.2, max_value=3.5))
    def test_monotone_enough(self, target):
        payload = payload_with_ratio(256 * 1024, target, seed=2)
        got = measured_ratio(payload)
        assert 1.0 <= got < 5.0

    def test_measured_ratio_empty(self):
        assert measured_ratio(b"") == 1.0
