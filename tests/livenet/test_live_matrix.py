"""Table-1 matrix cells on the live backend (paper Table 1 / Figure 4).

The sim matrix (``tests/core/test_middlebox_matrix.py``) exercises every
middlebox × method cell through the simulated network.  This module runs
the rows the live backend *can* express on real loopback sockets, with
the in-process chaos proxy standing in as the responder's campus
gateway:

* **open** — the gateway forwards transparently;
* **firewall** — the gateway resets unsolicited inbound connections at
  accept time (``set_refusing``), the live analogue of a stateful
  firewall dropping SYNs that match no outbound flow.

NAT kinds (cone, broken, symmetric) require address translation the
live loopback gateway cannot express — those cells skip cleanly and
remain sim-only, which is itself part of the Table-1 story: the sim is
the oracle for cells reality (here: a loopback test process) cannot
stage.

Rows:

* **tcp** — direct dial through the gateway (the paper's
  client/server row: works only where the path is open);
* **relay** — both peers dial *out* to a relay and the stream is
  routed (the paper's universal fall-back: works even when inbound is
  refused, because nothing inbound ever crosses the gateway);
* **session** — a resumable session link dialled through the gateway
  (rides direct TCP, so its live feasibility column equals tcp's);
* **mesh** — both peers dial *out* to every relay of a live mesh and
  the route table picks the carrier (the PR-8 extension of the routed
  row: same outbound-only feasibility column, now without a single
  point of relay failure).
"""

import asyncio

import pytest

from repro.livenet import (
    AsyncSessionError,
    AsyncSessionLink,
    AsyncSessionListener,
    ChaosTcpProxy,
    LiveMeshRelayClient,
    LiveRelayClient,
    LiveRelayServer,
    live_connect,
    live_listen,
)

pytestmark = pytest.mark.livenet

KINDS = ["open", "firewall", "cone_nat", "broken_nat", "symmetric_nat"]
ROWS = ["tcp", "relay", "session", "mesh"]

#: middlebox kind -> rows that must succeed on the live backend
EXPECTED_OK = {
    "open": {"tcp", "relay", "session", "mesh"},
    "firewall": {"relay", "mesh"},
}

#: kinds the live loopback gateway cannot stage (no address translation)
LIVE_INEXPRESSIBLE = {
    "cone_nat": "cone NAT needs per-flow address translation",
    "broken_nat": "broken NAT needs SYN-mangling address translation",
    "symmetric_nat": "symmetric NAT needs per-destination mappings",
}

_FAILURES = (
    AsyncSessionError,
    ConnectionError,
    EOFError,
    OSError,
    asyncio.TimeoutError,
)


async def _gateway(kind: str):
    """Responder listener behind a chaos proxy configured as ``kind``."""
    listener = await live_listen()
    proxy = await ChaosTcpProxy(listener.addr, name=f"gw-{kind}").start()
    if kind == "firewall":
        proxy.set_refusing(True)
    return listener, proxy


async def _row_tcp(kind: str) -> bytes:
    listener, proxy = await _gateway(kind)
    client = server = None
    try:
        async def responder():
            sock = await listener.accept()
            data = await sock.recv_exactly(4)
            await sock.send_all(data)
            return sock

        async def initiator():
            sock = await live_connect(proxy.addr)
            await sock.send_all(b"ping")
            return sock, await asyncio.wait_for(sock.recv_exactly(4), 5.0)

        responder_task = asyncio.ensure_future(responder())
        try:
            client, echo = await initiator()
        finally:
            responder_task.cancel()
            server = (
                responder_task.result()
                if responder_task.done() and not responder_task.cancelled()
                and responder_task.exception() is None
                else None
            )
        if not echo:
            raise EOFError("no echo through the gateway")
        return echo
    finally:
        for sock in (client, server):
            if sock is not None:
                sock.close()
        proxy.close()
        listener.close()


async def _row_relay(kind: str) -> bytes:
    # Both sides dial OUT: the responder's outbound path does not cross
    # its own inbound gateway, exactly as in the paper's routed method.
    listener, proxy = await _gateway(kind)
    relay = await LiveRelayServer().start()
    a = b = None
    try:
        a = await LiveRelayClient("matrix-ini", relay.addr).connect()
        b = await LiveRelayClient("matrix-res", relay.addr).connect()

        async def initiator():
            link = await a.open_link("matrix-res", payload=b"matrix")
            await link.send_all(b"ping")
            return await link.recv_exactly(4)

        async def responder():
            link = await b.accept_link()
            data = await link.recv_exactly(4)
            await link.send_all(data)

        echo, _ = await asyncio.gather(initiator(), responder())
        return echo
    finally:
        for client in (a, b):
            if client is not None:
                client.close()
        relay.close()
        proxy.close()
        listener.close()


async def _row_session(kind: str) -> bytes:
    listener, proxy = await _gateway(kind)
    slistener = AsyncSessionListener(listener, node="matrix-res")
    link = peer = None
    try:
        async def dial():
            return await live_connect(proxy.addr)

        async def responder():
            accepted = await slistener.accept()
            data = await accepted.recv_exactly(4)
            await accepted.send_all(data)
            return accepted

        responder_task = asyncio.ensure_future(responder())
        try:
            link = await AsyncSessionLink.connect(
                dial, node="matrix-ini", max_attempts=1
            )
            await link.send_all(b"ping")
            echo = await asyncio.wait_for(link.recv_exactly(4), 5.0)
        finally:
            responder_task.cancel()
            peer = (
                responder_task.result()
                if responder_task.done() and not responder_task.cancelled()
                and responder_task.exception() is None
                else None
            )
        return echo
    finally:
        for endpoint in (link, peer):
            if endpoint is not None:
                endpoint.abort()
        slistener.close()
        proxy.close()
        listener.close()


async def _row_mesh(kind: str) -> bytes:
    # Like the relay row, but through a two-relay mesh: both peers hold
    # outbound registrations with every relay, and the initiator's route
    # table picks the carrier.  Feasibility equals the relay row's — all
    # traffic is outbound — with no single relay as a point of failure.
    listener, proxy = await _gateway(kind)
    relays = {rid: await LiveRelayServer(name=rid).start() for rid in ("r1", "r2")}
    addrs = {rid: ("127.0.0.1", s.port) for rid, s in relays.items()}
    for rid, server in relays.items():
        server.enable_mesh(
            rid, {p: a for p, a in addrs.items() if p != rid}, seed=11
        )
    a = b = None
    try:
        a = await LiveMeshRelayClient("matrix-ini", addrs, seed=11).connect()
        b = await LiveMeshRelayClient("matrix-res", addrs, seed=12).connect()

        async def initiator():
            link = await a.open_link("matrix-res", payload=b"matrix")
            await link.send_all(b"ping")
            return await link.recv_exactly(4)

        async def responder():
            link = await b.accept_link()
            data = await link.recv_exactly(4)
            await link.send_all(data)

        echo, _ = await asyncio.gather(initiator(), responder())
        return echo
    finally:
        for client in (a, b):
            if client is not None:
                client.close()
        for server in relays.values():
            server.stop()
        proxy.close()
        listener.close()


_ROW_IMPL = {
    "tcp": _row_tcp,
    "relay": _row_relay,
    "session": _row_session,
    "mesh": _row_mesh,
}


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("row", ROWS)
def test_live_matrix_cell(kind, row, live_run):
    if kind in LIVE_INEXPRESSIBLE:
        pytest.skip(
            f"live backend cannot express {kind}: "
            f"{LIVE_INEXPRESSIBLE[kind]} (sim-only cell)"
        )
    if row in EXPECTED_OK[kind]:
        assert live_run(_ROW_IMPL[row](kind)) == b"ping"
    else:
        with pytest.raises(_FAILURES):
            live_run(_ROW_IMPL[row](kind), timeout=10.0)
