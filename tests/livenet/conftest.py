"""Livenet test configuration: real sockets get real deadlines.

Unlike the simulated backend, these tests run over actual loopback TCP,
so a wedged handshake would otherwise hang the whole suite.  Every test
body runs inside its own event loop under a hard wall-clock deadline
(``asyncio.wait_for``), and every module here is marked ``livenet`` so
constrained environments can deselect them with ``-m "not livenet"``.
"""

import asyncio

import pytest

#: hard per-test wall-clock deadline (seconds); generous on purpose —
#: loopback operations finish in milliseconds, so hitting this means hung
#: I/O, not slowness.
LIVENET_DEADLINE = 30.0


@pytest.fixture
def live_run():
    """Run a coroutine in a fresh event loop under the livenet deadline."""

    def run(coro, timeout: float = LIVENET_DEADLINE):
        return asyncio.run(asyncio.wait_for(coro, timeout=timeout))

    return run
