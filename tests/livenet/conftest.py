"""Livenet test configuration: real sockets get real deadlines.

Unlike the simulated backend, these tests run over actual loopback TCP,
so a wedged handshake would otherwise hang the whole suite.  Every test
body runs inside its own event loop under a hard wall-clock deadline
(``asyncio.wait_for``), and every module here is marked ``livenet`` so
constrained environments can deselect them with ``-m "not livenet"``.

Deflaking ground rules, enforced by the helpers here:

* **OS-assigned ports only.**  ``live_listen()`` binds port 0 and every
  helper routes through it; a hard-coded port is a collision (and a
  parallel-run flake) waiting to happen.
* **Event-driven waits, never ``sleep``-and-hope.**  Tests synchronise
  on the actual completion signal — ``await``-ing the peer task,
  ``asyncio.gather``, an ``asyncio.Event`` — and use :func:`eventually`
  only for state that has no awaitable edge (e.g. a counter maintained
  by a background pump).  ``eventually`` backs off geometrically from a
  sub-millisecond first probe, so it resolves as fast as the condition
  does instead of quantising to a fixed polling period.
"""

import asyncio
import contextlib
import os

import pytest

from repro.livenet import live_connect, live_listen

#: hard per-test wall-clock deadline (seconds); generous on purpose —
#: loopback operations finish in milliseconds, so hitting this means hung
#: I/O, not slowness.  Override with ``LIVENET_DEADLINE`` for slow CI.
LIVENET_DEADLINE = float(os.environ.get("LIVENET_DEADLINE", "30.0"))


@pytest.fixture
def live_run():
    """Run a coroutine in a fresh event loop under the livenet deadline."""

    def run(coro, timeout: float = LIVENET_DEADLINE):
        return asyncio.run(asyncio.wait_for(coro, timeout=timeout))

    return run


@contextlib.asynccontextmanager
async def socket_pairs(n=1):
    """``n`` connected (client, server) LiveSocket pairs, closed on exit.

    The listener binds an OS-assigned port and is gone before the body
    runs — nothing in a test ever names a port number.
    """
    listener = await live_listen()
    client_socks, server_socks = [], []
    try:
        for _ in range(n):
            client, server = await asyncio.gather(
                live_connect(listener.addr), listener.accept()
            )
            client_socks.append(client)
            server_socks.append(server)
        listener.close()
        yield client_socks, server_socks
    finally:
        listener.close()
        for sock in client_socks + server_socks:
            sock.close()


async def eventually(predicate, timeout: float = 5.0,
                     first_interval: float = 0.0005) -> None:
    """Wait until ``predicate()`` is truthy, geometric backoff, bounded.

    For conditions without an awaitable edge.  The first probe is
    sub-millisecond and the interval doubles (capped at 50ms), so the
    wait tracks the condition instead of a fixed polling clock.  Raises
    ``TimeoutError`` with the predicate's repr if the deadline passes.
    """
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    interval = first_interval
    while not predicate():
        if loop.time() >= deadline:
            raise TimeoutError(
                f"condition never became true within {timeout}s: {predicate!r}"
            )
        await asyncio.sleep(min(interval, max(0.0, deadline - loop.time())))
        interval = min(interval * 2, 0.05)
