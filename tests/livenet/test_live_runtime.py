"""LiveIbis: the full runtime over real loopback sockets."""

import array
import contextlib

import pytest

from repro.core.utilization.spec import StackSpec
from repro.livenet.registry import LiveRegistryClient, LiveRegistryServer
from repro.livenet.relay import LiveRelayServer
from repro.livenet.runtime import LiveIbis

pytestmark = pytest.mark.livenet


@contextlib.asynccontextmanager
async def grid(*names, **ibis_kwargs):
    """Registry + relay + one started LiveIbis per name, torn down on exit."""
    registry = await LiveRegistryServer().start()
    relay = await LiveRelayServer().start()
    nodes = []
    try:
        for name in names:
            node = LiveIbis(name, registry.addr, relay.addr, **ibis_kwargs)
            await node.start()
            nodes.append(node)
        yield (registry, relay, *nodes)
    finally:
        for node in nodes:
            with contextlib.suppress(Exception):
                await node.leave()
        registry.close()
        relay.close()


class TestLiveRegistry:
    def test_register_lookup_elect(self, live_run):
        async def main():
            from repro.core.addressing import EndpointInfo

            async with grid() as (registry, _relay):
                client = await LiveRegistryClient(registry.addr).connect()
                try:
                    await client.register("n1", EndpointInfo("n1", "127.0.0.1"))
                    info = await client.lookup_node("n1")
                    winner = await client.elect("boss", "n1")
                    names = await client.list_nodes()
                finally:
                    client.close()
                return info.node_id, winner, names

        node_id, winner, names = live_run(main())
        assert node_id == "n1"
        assert winner == "n1"
        assert names == ["n1"]


class TestLiveIbis:
    def test_typed_message_end_to_end(self, live_run):
        async def main():
            async with grid("alice", "bob") as (_reg, _rel, alice, bob):
                inbox = await bob.create_receive_port("bob-in")
                out = alice.create_send_port("alice-out")
                await out.connect("bob-in")
                message = out.new_message()
                message.write_string("live!").write_int(7)
                message.write_array(array.array("d", [2.5]))
                await message.finish()
                got = await inbox.receive()
                return (
                    got.origin,
                    got.read_string(),
                    got.read_int(),
                    list(got.read_array()),
                )

        assert live_run(main()) == ("alice", "live!", 7, [2.5])

    def test_compressed_parallel_stack(self, live_run):
        async def main():
            async with grid("alice", "bob") as (_reg, _rel, alice, bob):
                inbox = await bob.create_receive_port("bulk-in")
                out = alice.create_send_port("out")
                await out.connect(
                    "bulk-in", spec=StackSpec.parse("compress|parallel:3")
                )
                payload = b"live-grid-data " * 10_000
                message = out.new_message()
                message.write_bytes(payload)
                await message.finish()
                got = await inbox.receive()
                return got.read_bytes() == payload

        assert live_run(main())

    def test_fan_in_from_two_senders(self, live_run):
        async def main():
            async with grid("sink", "s1", "s2") as (_reg, _rel, sink, s1, s2):
                inbox = await sink.create_receive_port("gather")
                for sender, value in ((s1, 10), (s2, 20)):
                    port = sender.create_send_port("out")
                    await port.connect("gather")
                    message = port.new_message()
                    message.write_int(value)
                    await message.finish()
                got = {}
                for _ in range(2):
                    m = await inbox.receive()
                    got[m.origin] = m.read_int()
                return got

        assert live_run(main()) == {"s1": 10, "s2": 20}

    def test_connect_to_unknown_port_fails(self, live_run):
        async def main():
            async with grid("alice") as (_reg, _rel, alice):
                port = alice.create_send_port("out")
                try:
                    await port.connect("nonexistent")
                    return "connected"
                except Exception as exc:
                    return type(exc).__name__

        assert live_run(main()) == "RegistryError"

    def test_muxed_stack_end_to_end(self, live_run):
        async def main():
            async with grid("alice", "bob") as (_reg, _rel, alice, bob):
                inbox = await bob.create_receive_port("mux-in")
                out = alice.create_send_port("out")
                await out.connect("mux-in", spec=StackSpec.parse("tcp_block|mux"))
                payload = b"muxed-live-data " * 8_000
                message = out.new_message()
                message.write_bytes(payload)
                await message.finish()
                got = await inbox.receive()
                return got.read_bytes() == payload

        assert live_run(main())

    def test_muxed_parallel_channels_share_one_connection(self, live_run):
        async def main():
            async with grid("alice", "bob") as (_reg, _rel, alice, bob):
                inbox = await bob.create_receive_port("fat-in")
                out = alice.create_send_port("out")
                await out.connect(
                    "fat-in", spec=StackSpec.parse("parallel:4|mux:16384")
                )
                channel = out.channels["fat-in"]
                links = channel.driver.links
                endpoints = {link._ep for link in links}
                payload = b"wide " * 20_000
                message = out.new_message()
                message.write_bytes(payload)
                await message.finish()
                got = await inbox.receive()
                return len(links), len(endpoints), got.read_bytes() == payload

        n_links, n_endpoints, ok = live_run(main())
        assert n_links == 4
        assert n_endpoints == 1  # all four logical links share one socket
        assert ok

    def test_muxed_connects_to_same_peer_share_endpoint(self, live_run):
        # Second muxed connect reuses the peer's shared endpoint instead
        # of opening a second data connection — the live twin of the sim
        # factory's per-peer endpoint cache.
        async def main():
            async with grid("alice", "bob") as (_reg, _rel, alice, bob):
                in1 = await bob.create_receive_port("share-1")
                in2 = await bob.create_receive_port("share-2")
                out = alice.create_send_port("out")
                spec = StackSpec.parse("tcp_block|mux")
                await out.connect("share-1", spec=spec)
                await out.connect("share-2", spec=spec)
                eps = {
                    name: channel.driver.link._ep
                    for name, channel in out.channels.items()
                }
                message = out.new_message()
                message.write_int(7)
                await message.finish()  # fans out to both ports' channels
                got = [
                    (await in1.receive()).read_int(),
                    (await in2.receive()).read_int(),
                ]
                return (
                    eps["share-1"] is eps["share-2"],
                    len(alice._shared_mux),
                    len(bob._shared_mux_resp),
                    got,
                )

        same, n_ini, n_resp, got = live_run(main())
        assert same  # one endpoint carries both ports' channels
        assert n_ini == 1 and n_resp == 1
        assert got == [7, 7]

    def test_trace_context_crosses_data_request(self, live_run):
        from repro import obs
        from repro.obs import TraceRecorder

        recorder = TraceRecorder()
        previous = obs.set_tracer(recorder)

        async def main():
            async with grid("alice", "bob") as (_reg, _rel, alice, bob):
                await bob.create_receive_port("traced-in")
                out = alice.create_send_port("out")
                await out.connect("traced-in")

        try:
            live_run(main())
        finally:
            obs.set_tracer(previous)
        events = {r["name"]: r for r in recorder.records if r["kind"] == "event"}
        spans = {r["name"]: r for r in recorder.records if r["kind"] == "span"}
        assert "port.connect" in spans
        assert "data.connected" in events
        assert "data.accepted" in events
        root = spans["port.connect"]["trace_id"]
        # Both ends of the data connection join the initiator's trace.
        assert events["data.connected"]["trace_id"] == root
        assert events["data.accepted"]["trace_id"] == root

    def test_election_between_live_nodes(self, live_run):
        async def main():
            async with grid("a", "b") as (_reg, _rel, a, b):
                first = await a.elect("leader")
                second = await b.elect("leader")
                return first, second

        first, second = live_run(main())
        assert first == second == "a"
