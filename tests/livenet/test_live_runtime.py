"""LiveIbis: the full runtime over real loopback sockets."""

import array
import asyncio

import pytest

from repro.livenet.registry import LiveRegistryClient, LiveRegistryServer
from repro.livenet.relay import LiveRelayServer
from repro.livenet.runtime import LiveIbis, LiveIbisError


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def _infrastructure():
    registry = await LiveRegistryServer().start()
    relay = await LiveRelayServer().start()
    return registry, relay


async def _ibis(name, registry, relay, **kwargs):
    node = LiveIbis(name, registry.addr, relay.addr, **kwargs)
    await node.start()
    return node


class TestLiveRegistry:
    def test_register_lookup_elect(self):
        async def main():
            registry, relay = await _infrastructure()
            from repro.core.addressing import EndpointInfo

            client = await LiveRegistryClient(registry.addr).connect()
            await client.register("n1", EndpointInfo("n1", "127.0.0.1"))
            info = await client.lookup_node("n1")
            winner = await client.elect("boss", "n1")
            names = await client.list_nodes()
            client.close()
            registry.close()
            relay.close()
            return info.node_id, winner, names

        node_id, winner, names = run(main())
        assert node_id == "n1"
        assert winner == "n1"
        assert names == ["n1"]


class TestLiveIbis:
    def test_typed_message_end_to_end(self):
        async def main():
            registry, relay = await _infrastructure()
            alice = await _ibis("alice", registry, relay)
            bob = await _ibis("bob", registry, relay)
            inbox = await bob.create_receive_port("bob-in")
            out = alice.create_send_port("alice-out")
            await out.connect("bob-in")
            message = out.new_message()
            message.write_string("live!").write_int(7)
            message.write_array(array.array("d", [2.5]))
            await message.finish()
            got = await inbox.receive()
            result = (
                got.origin,
                got.read_string(),
                got.read_int(),
                list(got.read_array()),
            )
            await alice.leave()
            await bob.leave()
            registry.close()
            relay.close()
            return result

        assert run(main()) == ("alice", "live!", 7, [2.5])

    def test_compressed_parallel_stack(self):
        async def main():
            registry, relay = await _infrastructure()
            alice = await _ibis("alice", registry, relay)
            bob = await _ibis("bob", registry, relay)
            inbox = await bob.create_receive_port("bulk-in")
            out = alice.create_send_port("out")
            await out.connect("bulk-in", spec="compress|parallel:3")
            payload = b"live-grid-data " * 10_000
            message = out.new_message()
            message.write_bytes(payload)
            await message.finish()
            got = await inbox.receive()
            data = got.read_bytes()
            await alice.leave()
            await bob.leave()
            registry.close()
            relay.close()
            return data == payload

        assert run(main())

    def test_fan_in_from_two_senders(self):
        async def main():
            registry, relay = await _infrastructure()
            sink = await _ibis("sink", registry, relay)
            s1 = await _ibis("s1", registry, relay)
            s2 = await _ibis("s2", registry, relay)
            inbox = await sink.create_receive_port("gather")
            for sender, value in ((s1, 10), (s2, 20)):
                port = sender.create_send_port("out")
                await port.connect("gather")
                message = port.new_message()
                message.write_int(value)
                await message.finish()
            got = {}
            for _ in range(2):
                m = await inbox.receive()
                got[m.origin] = m.read_int()
            for node in (sink, s1, s2):
                await node.leave()
            registry.close()
            relay.close()
            return got

        assert run(main()) == {"s1": 10, "s2": 20}

    def test_connect_to_unknown_port_fails(self):
        async def main():
            registry, relay = await _infrastructure()
            alice = await _ibis("alice", registry, relay)
            port = alice.create_send_port("out")
            try:
                await port.connect("nonexistent")
                return "connected"
            except Exception as exc:
                return type(exc).__name__
            finally:
                await alice.leave()
                registry.close()
                relay.close()

        assert run(main()) == "RegistryError"

    def test_election_between_live_nodes(self):
        async def main():
            registry, relay = await _infrastructure()
            a = await _ibis("a", registry, relay)
            b = await _ibis("b", registry, relay)
            first = await a.elect("leader")
            second = await b.elect("leader")
            await a.leave()
            await b.leave()
            registry.close()
            relay.close()
            return first, second

        first, second = run(main())
        assert first == second == "a"
