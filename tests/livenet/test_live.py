"""Live backend integration tests on loopback TCP."""

import asyncio

import pytest

from repro.livenet import (
    AsyncBlockChannel,
    AsyncCompressionDriver,
    AsyncParallelStreamsDriver,
    AsyncTcpBlockDriver,
    AsyncTlsDriver,
    LiveRelayClient,
    LiveRelayServer,
    live_listen,
)
from repro.security import CertificateAuthority, Identity

from .conftest import socket_pairs

pytestmark = pytest.mark.livenet


class TestTransport:
    def test_connect_send_recv(self, live_run):
        async def main():
            async with socket_pairs() as ((c,), (s,)):
                await c.send_all(b"hello-live")
                return await s.recv_exactly(10)

        assert live_run(main()) == b"hello-live"

    def test_eof(self, live_run):
        async def main():
            async with socket_pairs() as ((c,), (s,)):
                c.close()
                return await s.recv(10)

        assert live_run(main()) == b""


class TestAsyncDrivers:
    def test_tcp_block_round_trip(self, live_run):
        async def main():
            async with socket_pairs() as ((c,), (s,)):
                tx, rx = AsyncTcpBlockDriver(c), AsyncTcpBlockDriver(s)
                await tx.send_block(b"block-data" * 100)
                return await rx.recv_block()

        assert live_run(main()) == b"block-data" * 100

    @pytest.mark.parametrize("nstreams", [1, 2, 4])
    def test_parallel_striping(self, live_run, nstreams):
        async def main():
            async with socket_pairs(nstreams) as (cs, ss):
                tx = AsyncParallelStreamsDriver(cs, fragment=512)
                rx = AsyncParallelStreamsDriver(ss, fragment=512)
                blocks = [bytes([i]) * (700 * i + 1) for i in range(5)]
                out = []

                async def sender():
                    for block in blocks:
                        await tx.send_block(block)

                async def receiver():
                    for _ in blocks:
                        out.append(await rx.recv_block())

                await asyncio.gather(sender(), receiver())
                return out == blocks

        assert live_run(main())

    def test_compression_round_trip(self, live_run):
        async def main():
            async with socket_pairs() as ((c,), (s,)):
                tx = AsyncCompressionDriver(AsyncTcpBlockDriver(c))
                rx = AsyncCompressionDriver(AsyncTcpBlockDriver(s))
                block = b"compressible " * 2000
                await tx.send_block(block)
                got = await rx.recv_block()
                return got == block and tx.bytes_out < tx.bytes_in

        assert live_run(main())

    def test_tls_over_live_sockets(self, live_run):
        ca = CertificateAuthority("live-root")
        key, cert = ca.issue_identity("live-server")
        identity = Identity(key, [cert])

        async def main():
            async with socket_pairs() as ((c,), (s,)):
                tx = AsyncTlsDriver(AsyncTcpBlockDriver(c))
                rx = AsyncTlsDriver(AsyncTcpBlockDriver(s))
                await asyncio.gather(
                    tx.handshake_client([ca.certificate]),
                    rx.handshake_server(identity),
                )
                await tx.send_block(b"secret over real tcp")
                got = await rx.recv_block()
                return got, tx.peer_subject

        got, subject = live_run(main())
        assert got == b"secret over real tcp"
        assert subject == "live-server"

    def test_full_stack_channel(self, live_run):
        async def main():
            async with socket_pairs(2) as (cs, ss):
                tx = AsyncBlockChannel(
                    AsyncCompressionDriver(AsyncParallelStreamsDriver(cs))
                )
                rx = AsyncBlockChannel(
                    AsyncCompressionDriver(AsyncParallelStreamsDriver(ss))
                )
                payload = bytes(range(256)) * 1000

                async def sender():
                    await tx.send_message(payload)

                async def receiver():
                    return await rx.recv_message()

                _, got = await asyncio.gather(sender(), receiver())
                return got == payload

        assert live_run(main())


class TestLiveRelay:
    def test_routed_link_over_live_relay(self, live_run):
        async def main():
            relay = await LiveRelayServer().start()
            a = b = None
            try:
                a = await LiveRelayClient("node-a", relay.addr).connect()
                b = await LiveRelayClient("node-b", relay.addr).connect()
                link_a = await a.open_link("node-b", payload=b"service")

                async def side_a():
                    await link_a.send_all(b"through-the-relay")
                    return await link_a.recv_exactly(2)

                async def side_b():
                    link = await b.accept_link()
                    data = await link.recv_exactly(17)
                    await link.send_all(b"ok")
                    return data, link.open_payload

                reply, (data, tag) = await asyncio.gather(side_a(), side_b())
                return reply, data, tag
            finally:
                for client in (a, b):
                    if client is not None:
                        client.close()
                relay.close()

        reply, data, tag = live_run(main())
        assert reply == b"ok"
        assert data == b"through-the-relay"
        assert tag == b"service"

    def test_unknown_peer_gets_eof(self, live_run):
        async def main():
            relay = await LiveRelayServer().start()
            a = None
            try:
                a = await LiveRelayClient("solo", relay.addr).connect()
                link = await a.open_link("nobody")
                await link.send_all(b"x")
                # The relay answers with T_ERROR; the live client surfaces
                # EOF.  The outer deadline bounds this wait.
                return await link.recv(10)
            finally:
                if a is not None:
                    a.close()
                relay.close()

        assert live_run(main()) == b""
