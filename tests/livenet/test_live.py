"""Live backend integration tests on loopback TCP."""

import asyncio

import pytest

from repro.livenet import (
    AsyncBlockChannel,
    AsyncCompressionDriver,
    AsyncParallelStreamsDriver,
    AsyncTcpBlockDriver,
    AsyncTlsDriver,
    LiveRelayClient,
    LiveRelayServer,
    live_connect,
    live_listen,
)
from repro.security import CertificateAuthority, Identity


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def _socket_pair(n=1):
    listener = await live_listen()
    client_socks = []
    server_socks = []
    for _ in range(n):
        client, server = await asyncio.gather(
            live_connect(listener.addr), listener.accept()
        )
        client_socks.append(client)
        server_socks.append(server)
    listener.close()
    return client_socks, server_socks


class TestTransport:
    def test_connect_send_recv(self):
        async def main():
            (c,), (s,) = await _socket_pair()
            await c.send_all(b"hello-live")
            data = await s.recv_exactly(10)
            c.close()
            return data

        assert run(main()) == b"hello-live"

    def test_eof(self):
        async def main():
            (c,), (s,) = await _socket_pair()
            c.close()
            return await s.recv(10)

        assert run(main()) == b""


class TestAsyncDrivers:
    def test_tcp_block_round_trip(self):
        async def main():
            (c,), (s,) = await _socket_pair()
            tx, rx = AsyncTcpBlockDriver(c), AsyncTcpBlockDriver(s)
            await tx.send_block(b"block-data" * 100)
            return await rx.recv_block()

        assert run(main()) == b"block-data" * 100

    @pytest.mark.parametrize("nstreams", [1, 2, 4])
    def test_parallel_striping(self, nstreams):
        async def main():
            cs, ss = await _socket_pair(nstreams)
            tx = AsyncParallelStreamsDriver(cs, fragment=512)
            rx = AsyncParallelStreamsDriver(ss, fragment=512)
            blocks = [bytes([i]) * (700 * i + 1) for i in range(5)]
            out = []

            async def sender():
                for block in blocks:
                    await tx.send_block(block)

            async def receiver():
                for _ in blocks:
                    out.append(await rx.recv_block())

            await asyncio.gather(sender(), receiver())
            return out == blocks

        assert run(main())

    def test_compression_round_trip(self):
        async def main():
            (c,), (s,) = await _socket_pair()
            tx = AsyncCompressionDriver(AsyncTcpBlockDriver(c))
            rx = AsyncCompressionDriver(AsyncTcpBlockDriver(s))
            block = b"compressible " * 2000
            await tx.send_block(block)
            got = await rx.recv_block()
            return got == block and tx.bytes_out < tx.bytes_in

        assert run(main())

    def test_tls_over_live_sockets(self):
        ca = CertificateAuthority("live-root")
        key, cert = ca.issue_identity("live-server")
        identity = Identity(key, [cert])

        async def main():
            (c,), (s,) = await _socket_pair()
            tx = AsyncTlsDriver(AsyncTcpBlockDriver(c))
            rx = AsyncTlsDriver(AsyncTcpBlockDriver(s))
            await asyncio.gather(
                tx.handshake_client([ca.certificate]),
                rx.handshake_server(identity),
            )
            await tx.send_block(b"secret over real tcp")
            got = await rx.recv_block()
            return got, tx.peer_subject

        got, subject = run(main())
        assert got == b"secret over real tcp"
        assert subject == "live-server"

    def test_full_stack_channel(self):
        async def main():
            cs, ss = await _socket_pair(2)
            tx = AsyncBlockChannel(
                AsyncCompressionDriver(AsyncParallelStreamsDriver(cs))
            )
            rx = AsyncBlockChannel(
                AsyncCompressionDriver(AsyncParallelStreamsDriver(ss))
            )
            payload = bytes(range(256)) * 1000

            async def sender():
                await tx.send_message(payload)

            async def receiver():
                return await rx.recv_message()

            _, got = await asyncio.gather(sender(), receiver())
            return got == payload

        assert run(main())


class TestLiveRelay:
    def test_routed_link_over_live_relay(self):
        async def main():
            relay = await LiveRelayServer().start()
            a = await LiveRelayClient("node-a", relay.addr).connect()
            b = await LiveRelayClient("node-b", relay.addr).connect()
            link_a = await a.open_link("node-b", payload=b"service")

            async def side_a():
                await link_a.send_all(b"through-the-relay")
                return await link_a.recv_exactly(2)

            async def side_b():
                link = await b.accept_link()
                data = await link.recv_exactly(17)
                await link.send_all(b"ok")
                return data, link.open_payload

            reply, (data, tag) = await asyncio.gather(side_a(), side_b())
            a.close()
            b.close()
            relay.close()
            return reply, data, tag

        reply, data, tag = run(main())
        assert reply == b"ok"
        assert data == b"through-the-relay"
        assert tag == b"service"

    def test_unknown_peer_gets_eof(self):
        async def main():
            relay = await LiveRelayServer().start()
            a = await LiveRelayClient("solo", relay.addr).connect()
            link = await a.open_link("nobody")
            await link.send_all(b"x")
            # The relay answers with T_ERROR; the live client surfaces EOF.
            data = await asyncio.wait_for(link.recv(10), timeout=5)
            a.close()
            relay.close()
            return data

        assert run(main()) == b""
