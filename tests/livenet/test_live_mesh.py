"""Live relay mesh: gossip, trunks, view pushes, mid-stream failover.

The live twins of the ``tests/mesh`` suite's claims, on loopback TCP:
relays converge on a shared membership view by gossiping over real
sockets, frames for a peer registered elsewhere cross an inter-relay
trunk, clients learn the mesh from ``T_MESH`` pushes, and a session
over a :class:`LiveMeshRelayClient` survives the carrying relay being
killed mid-transfer with zero byte loss.
"""

import asyncio
import contextlib
import random

import pytest

from repro.livenet import (
    AsyncSessionLink,
    AsyncSessionListener,
    LiveMeshRelayClient,
    LiveRelayServer,
)
from repro.mesh.config import MeshConfig

from .conftest import eventually

pytestmark = pytest.mark.livenet

#: fast cadence so convergence happens in tens of milliseconds
_CFG = MeshConfig(gossip_interval=0.05, gossip_jitter=0.2, deadline=0.4)


@contextlib.asynccontextmanager
async def mesh_cluster(relay_ids=("r1", "r2", "r3"), config=_CFG):
    """``len(relay_ids)`` full-mesh live relays, stopped on exit."""
    servers = {}
    try:
        for rid in relay_ids:
            servers[rid] = await LiveRelayServer(name=rid).start()
        addrs = {rid: ("127.0.0.1", s.port) for rid, s in servers.items()}
        for rid, server in servers.items():
            peers = {p: a for p, a in addrs.items() if p != rid}
            server.enable_mesh(rid, peers, seed=7, config=config)
        yield servers, addrs
    finally:
        for server in servers.values():
            server.stop()


def _carrying_relay(mesh_client) -> str:
    """The relay id whose sub-client holds this node's open links."""
    for rid, client in mesh_client.clients.items():
        if client._links:
            return rid
    raise AssertionError("no relay carries any link")


class TestLiveGossip:
    def test_full_mesh_converges(self, live_run):
        async def main():
            async with mesh_cluster() as (servers, _):
                for server in servers.values():
                    await eventually(
                        lambda s=server: set(s.mesh.alive_ids())
                        == {"r1", "r2", "r3"}
                    )
                return [sorted(s.mesh.alive_ids()) for s in servers.values()]

        views = live_run(main())
        assert views == [["r1", "r2", "r3"]] * 3

    def test_killed_relay_declared_dead_everywhere(self, live_run):
        async def main():
            async with mesh_cluster() as (servers, _):
                for server in servers.values():
                    await eventually(
                        lambda s=server: len(s.mesh.alive_ids()) == 3
                    )
                servers["r1"].stop()
                for rid in ("r2", "r3"):
                    await eventually(
                        lambda s=servers[rid]: "r1" in s.mesh.dead
                    )
                return [
                    (rid, lag)
                    for rid in ("r2", "r3")
                    for dead, heard, seen in servers[rid].mesh.deaths
                    for lag in [seen - heard]
                    if dead == "r1"
                ]

        deaths = live_run(main())
        assert {rid for rid, _ in deaths} == {"r2", "r3"}
        # wall-clock slack on top of the configured detection bound
        assert all(lag <= _CFG.detect_bound + 1.0 for _, lag in deaths)


class TestLiveTrunks:
    def test_disjoint_registrations_cross_a_trunk(self, live_run):
        """a is only on r1, b only on r2: frames must trunk r1 -> r2."""

        async def main():
            async with mesh_cluster(("r1", "r2")) as (servers, addrs):
                a = LiveMeshRelayClient("a", {"r1": addrs["r1"]}, seed=1)
                b = LiveMeshRelayClient("b", {"r2": addrs["r2"]}, seed=1)
                await a.connect()
                await b.connect()
                try:
                    # gossip must carry b's ownership to r1 first
                    await eventually(
                        lambda: servers["r1"].mesh.owner_of("b") is not None
                    )
                    link = await a.open_link("b", payload=b"hi")
                    accepted = await b.accept_link()
                    await link.send_all(b"across-the-trunk")
                    data = await accepted.recv_exactly(16)
                    return (
                        data,
                        accepted.open_payload,
                        servers["r1"].trunk_tx,
                        servers["r2"].trunk_rx,
                    )
                finally:
                    a.close()
                    b.close()

        data, payload, tx, rx = live_run(main())
        assert data == b"across-the-trunk"
        assert payload == b"hi"
        assert tx >= 2 and rx >= 2  # OPEN + at least one MSG crossed


class TestLiveMeshClient:
    def test_t_mesh_push_populates_observer_view(self, live_run):
        async def main():
            async with mesh_cluster() as (_, addrs):
                alice = LiveMeshRelayClient("alice", addrs, seed=3)
                await alice.connect()
                try:
                    await eventually(
                        lambda: set(alice.state.alive_ids())
                        == {"r1", "r2", "r3"}
                    )
                    return alice.usable_relays()
                finally:
                    alice.close()

        assert live_run(main()) == ["r1", "r2", "r3"]

    def test_routed_link_round_trip(self, live_run):
        async def main():
            async with mesh_cluster() as (_, addrs):
                alice = LiveMeshRelayClient("alice", addrs, seed=3)
                bob = LiveMeshRelayClient("bob", addrs, seed=4)
                await alice.connect()
                await bob.connect()
                try:
                    link = await alice.open_link("bob")
                    accepted = await bob.accept_link()
                    await link.send_all(b"mesh-routed")
                    return await accepted.recv_exactly(11)
                finally:
                    alice.close()
                    bob.close()

        assert live_run(main()) == b"mesh-routed"


class TestLiveFailover:
    def test_session_survives_carrying_relay_kill(self, live_run):
        """Kill the relay mid-transfer; the session resumes on a survivor."""
        payload = random.Random("live-mesh-failover").randbytes(256 * 1024)
        chunk = 32 * 1024

        async def main():
            async with mesh_cluster() as (servers, addrs):
                alice = LiveMeshRelayClient("alice", addrs, seed=5)
                bob = LiveMeshRelayClient("bob", addrs, seed=6)
                await alice.connect()
                await bob.connect()
                listener = AsyncSessionListener(bob.link_listener(), node="bob")

                async def dial():
                    return await alice.open_link("bob", payload=b"session")

                received = bytearray()

                async def receive():
                    link = await listener.accept()
                    while True:
                        data = await link.recv(64 * 1024)
                        if not data:
                            break
                        received.extend(data)
                    await link.aclose()

                recv_task = asyncio.ensure_future(receive())
                try:
                    link = await AsyncSessionLink.connect(dial, node="alice")
                    victim = _carrying_relay(alice)
                    for i, off in enumerate(range(0, len(payload), chunk)):
                        if i == 3:
                            servers[victim].stop()
                        await link.send_all(payload[off : off + chunk])
                        await asyncio.sleep(0.01)
                    await link.aclose()
                    await recv_task
                    survivor = _carrying_relay(alice)
                    return bytes(received), victim, survivor, link.reconnects
                finally:
                    recv_task.cancel()
                    listener.close()
                    alice.close()
                    bob.close()

        received, victim, survivor, reconnects = live_run(main())
        assert received == payload
        assert survivor != victim
        assert reconnects >= 1
