"""Property: the chaos proxy is byte-transparent when no fault is armed.

The whole live-chaos design rests on the gateway being *invisible* until
a fault fires: any payload, any chunking, either direction, must arrive
byte-identical through :class:`~repro.livenet.proxy.ChaosTcpProxy` —
otherwise every live test result would be confounded by the test
apparatus.  Hypothesis drives payload sizes and chunk boundaries
(including the nasty cases: empty writes, 1-byte writes, chunks
straddling the proxy's internal 16 KiB forwarding granularity), and the
proxy's own conservation ledger is checked alongside the bytes.
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.livenet import ChaosTcpProxy, live_connect, live_listen

from .conftest import LIVENET_DEADLINE

pytestmark = pytest.mark.livenet

#: a payload plus how the sender slices it into write() calls
payload_and_chunks = st.integers(min_value=0, max_value=200_000).flatmap(
    lambda size: st.tuples(
        st.binary(min_size=size, max_size=size),
        st.lists(
            st.integers(min_value=1, max_value=70_000),
            min_size=0,
            max_size=8,
        ),
    )
)


def _slices(payload: bytes, cuts: list) -> list:
    """Slice ``payload`` at the given chunk lengths (remainder last)."""
    out, off = [], 0
    for cut in cuts:
        if off >= len(payload):
            break
        out.append(payload[off : off + cut])
        off += cut
    if off < len(payload):
        out.append(payload[off:])
    return out


async def _echo_through_proxy(payload: bytes, cuts: list,
                              latency: float = 0.0) -> tuple:
    """Send chunked payload client→server and echo server→client."""
    listener = await live_listen()
    proxy = await ChaosTcpProxy(listener.addr, name="transparent").start()
    if latency:
        proxy.set_latency(latency)
    client = server = None
    try:
        client, server = await asyncio.gather(
            live_connect(proxy.addr), listener.accept()
        )

        async def send(sock, data: bytes) -> None:
            for chunk in _slices(data, cuts):
                await sock.send_all(chunk)
            sock.write_eof()

        async def drain(sock) -> bytes:
            buf = bytearray()
            while True:
                data = await sock.recv(65536)
                if not data:
                    return bytes(buf)
                buf.extend(data)

        # forward direction...
        _, forward = await asyncio.gather(send(client, payload), drain(server))
        # ...then the reverse direction over the same proxied connection
        _, backward = await asyncio.gather(send(server, forward), drain(client))
        return forward, backward, proxy.stats
    finally:
        for sock in (client, server):
            if sock is not None:
                sock.close()
        proxy.close()
        listener.close()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(payload_and_chunks)
def test_proxy_is_byte_transparent_with_no_faults(case):
    payload, cuts = case
    forward, backward, stats = asyncio.run(
        asyncio.wait_for(
            _echo_through_proxy(payload, cuts), timeout=LIVENET_DEADLINE
        )
    )
    assert forward == payload
    assert backward == payload
    assert stats.conserved()
    assert stats.bytes_dropped == 0
    assert stats.bytes_lost == 0
    assert stats.bytes_forwarded == 2 * len(payload)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(payload_and_chunks)
def test_latency_injection_preserves_bytes(case):
    """Delay reorders nothing: a latency fault slows, never corrupts."""
    payload, cuts = case
    forward, backward, stats = asyncio.run(
        asyncio.wait_for(
            _echo_through_proxy(payload, cuts, latency=0.001),
            timeout=LIVENET_DEADLINE,
        )
    )
    assert forward == payload
    assert backward == payload
    assert stats.conserved()
