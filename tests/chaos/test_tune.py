"""Closed-loop tuner convergence under chaos, both backends.

Each ``tune_*`` scenario runs a parallel-stream transfer with a
:class:`~repro.tune.loop.LinkTuner` in the loop and injects a path
change mid-transfer; the scenario's post-checks assert *polarity* (the
controller moved the right knob in the right direction at the right
time) and *stability* (the provable no-oscillation bound held and the
decision count stayed small).  This module re-derives the stability
bound from the report independently — the chaos invariant must not be
the only thing checking itself.
"""

import os

import pytest

from repro.chaos import run_chaos
from repro.chaos.tune import LIVE_TUNE_PLAN, TUNE_PLANS

SEEDS = [1, 2, 3]


def _assert_stable(report):
    tune = report.stats["tune"]
    assert tune["samples"] > 0
    hysteresis = tune["hysteresis"]
    by_knob = {}
    for decision in tune["decisions"]:
        by_knob.setdefault(decision["knob"], []).append(decision["at"])
    for times in by_knob.values():
        for prev, cur in zip(times, times[1:]):
            assert cur - prev >= hysteresis - 1e-9
    return tune


class TestSimConvergence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_degrade_sheds_then_regrows(self, seed):
        report = run_chaos("tune_degrade", seed=seed,
                           plan=TUNE_PLANS["tune_degrade"])
        assert report.ok, report.violations
        assert [e["kind"] for e in report.injected] == ["wan_degrade"]
        tune = _assert_stable(report)
        streams = [d for d in tune["decisions"] if d["knob"] == "streams"]
        assert streams, "the tuner never moved the stream count"
        # Shed to a skeleton crew while degraded, regrew after heal.
        assert min(d["new"] for d in streams) <= 2
        assert streams[-1]["new"] >= 2
        for channel in report.channels:
            assert channel["received_digest"] == channel["sent_digest"]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_loss_burst_earns_recovery_streams(self, seed):
        report = run_chaos("tune_loss_burst", seed=seed,
                           plan=TUNE_PLANS["tune_loss_burst"])
        assert report.ok, report.violations
        tune = _assert_stable(report)
        streams = [d for d in tune["decisions"] if d["knob"] == "streams"]
        # Grew during the burst (loss headroom), relaxed after it.
        assert max(d["new"] for d in streams) >= 4
        assert streams[-1]["new"] <= 4

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bandwidth_step_tracks_both_edges(self, seed):
        report = run_chaos("tune_bandwidth_step", seed=seed,
                           plan=TUNE_PLANS["tune_bandwidth_step"])
        assert report.ok, report.violations
        tune = _assert_stable(report)
        streams = [d for d in tune["decisions"] if d["knob"] == "streams"]
        assert min(d["new"] for d in streams) <= 2
        assert streams[-1]["new"] >= 2

    def test_oscillation_is_a_hard_violation(self):
        # The stability check rides the standard violations channel: a
        # passing report must carry the tune stats that back it.
        report = run_chaos("tune_degrade", seed=1,
                           plan=TUNE_PLANS["tune_degrade"])
        assert report.ok
        assert "tune" in report.stats
        assert report.stats["tune"]["changes"] <= 8


@pytest.mark.livenet
@pytest.mark.live_chaos
class TestLiveConvergence:
    SEED = int(os.environ.get("LIVE_CHAOS_SEED", "1"))
    BUNDLE_DIR = os.environ.get("LIVE_CHAOS_BUNDLE_DIR")

    def test_latency_fault_moves_the_credit_window(self):
        report = run_chaos(
            "tune_degrade",
            backend="live",
            seed=self.SEED,
            plan=LIVE_TUNE_PLAN,
            bundle_dir=self.BUNDLE_DIR,
        )
        assert report.ok, report.violations
        assert report.backend == "live"
        tune = _assert_stable(report)
        windows = [d for d in tune["decisions"]
                   if d["knob"] == "mux_window"]
        assert windows, "the tuner never moved the credit window"
        # Polarity details (grow under inflated RTT, shed after heal,
        # renegotiation observed on the wire) are enforced by the
        # scenario's own post-checks; report.ok carries them.
