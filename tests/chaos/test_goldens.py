"""The golden-trace gate, proven in both directions.

A validation gate is only trustworthy if it (a) passes a healthy run it
has never seen — different seed, different scheduling — and (b) fails
loudly when the structure actually regresses.  These tests run the real
live flows for (a), and stage the canonical regression for (b): a
resume flow whose fault plan was dropped, so the ``session.resume``
span never happens.  The gate must name exactly that in its diff and
exit non-zero through the CLI.
"""

import json

import pytest

from repro.chaos.goldens import (
    GOLDEN_DIR,
    GOLDEN_SEED,
    capture,
    capture_flow,
    flow_names,
    golden_path,
    validate,
)

pytestmark = [pytest.mark.livenet, pytest.mark.live_chaos]


def test_checked_in_goldens_exist_and_are_wellformed():
    """The gate must never pass vacuously: goldens are committed."""
    assert flow_names() == ["handshake", "mux_open", "resume"]
    for name in flow_names():
        path = golden_path(name)
        assert path.exists(), f"missing checked-in golden: {path}"
        payload = json.loads(path.read_text())
        assert payload["flow"] == name
        assert payload["signature"]["traces"], f"{name}: empty signature"


def test_signature_is_seed_and_schedule_independent():
    from repro.obs.tracediff import diff

    a = capture_flow("handshake", seed=GOLDEN_SEED)
    b = capture_flow("handshake", seed=GOLDEN_SEED + 12)
    assert diff(a, b) == []


def test_gate_passes_a_clean_run_at_a_fresh_seed(tmp_path):
    capture(["handshake"], seed=GOLDEN_SEED, root=tmp_path)
    results = validate(["handshake"], seed=GOLDEN_SEED + 5, root=tmp_path)
    assert results == {"handshake": []}


def test_gate_catches_a_dropped_resume(tmp_path):
    """The acceptance regression: no fault plan -> no resume span ->
    the gate names the missing ``session.resume`` and fails."""
    capture(["resume"], seed=GOLDEN_SEED, root=tmp_path)
    results = validate(["resume"], seed=GOLDEN_SEED, root=tmp_path, plan="")
    lines = results["resume"]
    assert lines, "gate passed a run with the resume dropped"
    assert any("session.resume" in line for line in lines)


def test_gate_fails_when_a_golden_is_missing(tmp_path):
    results = validate(["mux_open"], root=tmp_path)
    assert results["mux_open"]
    assert "golden missing" in results["mux_open"][0]


def test_cli_exit_codes(tmp_path):
    """Non-zero exit on divergence is the whole point of a CI gate."""
    from repro.chaos.goldens import main

    root = str(tmp_path)
    assert main(["capture", "--flow", "handshake", "--dir", root]) == 0
    assert main(["validate", "--flow", "handshake", "--dir", root]) == 0
    # tamper with the golden: the observed run must now diverge
    path = golden_path("handshake", tmp_path)
    payload = json.loads(path.read_text())
    payload["signature"]["untraced"] += 1
    path.write_text(json.dumps(payload))
    assert main(["validate", "--flow", "handshake", "--dir", root]) == 1


def test_validate_against_checked_in_goldens():
    """The committed goldens match reality right now (all three flows)."""
    results = validate(root=GOLDEN_DIR)
    failures = {k: v for k, v in results.items() if v}
    assert not failures, failures
