"""Canary-rollout gate polarity on the simulated backend.

``canary_rollout`` pushes a *bad* tuner policy (a trickle) to the two
canary senders mid-transfer: their throughput SLI collapses, the SLO
monitor breaches inside the bake window and the gate must revert the
canaries — the control senders never see the change.  The ``_good``
twin pushes a policy that keeps throughput healthy and must promote to
the whole fleet after a clean bake.  Both polarities must finish the
transfer byte-identically (the report's audit invariants): the gate
observes and reverts configuration, it never corrupts the stream.
"""

import pytest

from repro.chaos import run_chaos
from repro.obs import validate_jsonl

UNTIL = 60.0


class TestBadRollout:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bad_policy_is_rolled_back(self, seed):
        report = run_chaos(scenario="canary_rollout", seed=seed, until=UNTIL)
        assert report.ok, report.violations
        rollout = report.stats["rollout"]
        assert rollout["state"] == "rolled_back"
        # the gate decided within its own bake window...
        assert (
            rollout["decided_at"] - rollout["applied_at"]
            <= rollout["bake_seconds"]
        )
        # ...because a *canary* stream breached, not a control
        assert rollout["trigger"]["source"] in ("c1", "c2")
        assert rollout["trigger"]["slo"] == "throughput"
        assert rollout["events"] == ["apply", "rollback"]
        # only the canaries ever degraded
        assert report.stats["slo_breaches"] <= 2
        # the plane was live: a real delta stream fed the gate
        assert report.stats["telemetry_records"] > 0
        # reverted senders still deliver every byte
        for channel in report.channels:
            assert channel["complete"]
            assert channel["received_digest"] == channel["sent_digest"]

    def test_telemetry_capture_is_written_and_valid(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        report = run_chaos(
            scenario="canary_rollout",
            seed=1,
            until=UNTIL,
            telemetry_path=str(path),
        )
        assert report.ok, report.violations
        counts = validate_jsonl(str(path))
        assert counts["telemetry"] == report.stats["telemetry_records"] > 0


class TestGoodRollout:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_healthy_policy_is_promoted(self, seed):
        report = run_chaos(
            scenario="canary_rollout_good", seed=seed, until=UNTIL
        )
        assert report.ok, report.violations
        rollout = report.stats["rollout"]
        assert rollout["state"] == "promoted"
        assert rollout["trigger"] is None
        assert rollout["events"] == ["apply", "promote"]
        # a clean bake: nothing breached, canary or control
        assert report.stats["slo_breaches"] == 0
        assert (
            rollout["decided_at"] - rollout["applied_at"]
            >= rollout["bake_seconds"]
        )
        for channel in report.channels:
            assert channel["complete"]
            assert channel["received_digest"] == channel["sent_digest"]


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        first = run_chaos(scenario="canary_rollout", seed=7, until=UNTIL)
        second = run_chaos(scenario="canary_rollout", seed=7, until=UNTIL)
        assert first.stats["rollout"] == second.stats["rollout"]
        assert (
            first.stats["telemetry_records"]
            == second.stats["telemetry_records"]
        )
