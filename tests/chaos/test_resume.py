"""The session layer's acceptance matrix: mid-stream faults, both polarities.

Each cell pairs a workload with the fault that kills its data path
*mid-transfer* — after establishment succeeded, while payload bytes are
in flight — which is exactly the gap the retry layer cannot cover:

========================  =========================================  =============================
workload                  mid-stream fault                           what dies
========================  =========================================  =============================
``wan_transfer``          ``conntrack_flush`` at site B              firewall state: silent stall
``wan_transfer``          ``nat_expiry`` at site B                   NAT mapping: B remapped away
``wan_transfer_routed``   ``relay_crash``                            every routed byte path
``wan_transfer_routed``   ``peer_drop`` of bob                       the receiving endpoint
``socks_transfer``        ``proxy_restart`` at site B                every proxied stream
``ipl_fanin``             ``conntrack_flush`` at HUB + worker flap   all three fan-in streams
========================  =========================================  =============================

Every cell must complete byte-identically with ``sessions=True`` and
reproducibly fail with ``sessions=False`` — the polarity is the proof
that the session layer (not luck, not the retry layer) carries the
stream across the fault.
"""

import pytest

from repro.chaos import run_chaos

#: (scenario, plan) -> faults that only the session layer survives
CELLS = [
    ("wan_transfer", "conntrack_flush@3:site=B"),
    ("wan_transfer", "nat_expiry@3:site=B"),
    ("wan_transfer_routed", "relay_crash@2:for=4"),
    ("wan_transfer_routed", "peer_drop@2:node=bob"),
    ("socks_transfer", "proxy_restart@2:site=B,for=2"),
    ("ipl_fanin", "conntrack_flush@2.5:site=HUB;link_down@3.5:site=W2,for=0.5"),
]

#: cells whose recovery is a full session resume (reconnect + replay);
#: ``conntrack_flush`` cells heal at the transport level instead — the
#: responder's heartbeat re-creates the firewall state entry, so the TCP
#: stream un-stalls without the link ever being replaced.
RESUME_CELLS = {
    ("wan_transfer", "nat_expiry@3:site=B"),
    ("wan_transfer_routed", "relay_crash@2:for=4"),
    ("wan_transfer_routed", "peer_drop@2:node=bob"),
    ("socks_transfer", "proxy_restart@2:site=B,for=2"),
}


@pytest.mark.parametrize("scenario,plan", CELLS)
def test_mid_stream_fault_survived_with_sessions(scenario, plan):
    report = run_chaos(scenario=scenario, seed=3, plan=plan, sessions=True)
    assert report.ok, report.violations
    for channel in report.channels:
        assert channel["complete"]
        assert channel["received_bytes"] == channel["sent_bytes"] > 0
        assert channel["received_digest"] == channel["sent_digest"]
    if (scenario, plan) in RESUME_CELLS:
        # Recovery was a real resume: links were re-established and the
        # replay window refilled the gap.
        assert report.stats["session_reconnects"] > 0
        assert report.stats["session_replayed_bytes"] > 0


@pytest.mark.parametrize("scenario,plan", CELLS)
def test_same_fault_reproducibly_fails_without_sessions(scenario, plan):
    first = run_chaos(scenario=scenario, seed=3, plan=plan, sessions=False)
    assert not first.ok, (
        "fault plan no longer kills the unsessioned run - the cell "
        "proves nothing about the session layer"
    )
    second = run_chaos(scenario=scenario, seed=3, plan=plan, sessions=False)
    assert first.to_json() == second.to_json()


def test_sessions_do_not_disturb_a_clean_run():
    report = run_chaos(scenario="wan_transfer", seed=1, plan="", sessions=True)
    assert report.ok, report.violations
    assert report.stats["session_reconnects"] == 0
    assert report.stats["session_replayed_bytes"] == 0


def test_fanin_clean_run_passes_invariants():
    report = run_chaos(scenario="ipl_fanin", seed=1, plan="")
    assert report.ok, report.violations
    assert len(report.channels) == 3
    assert all(c["complete"] for c in report.channels)


def test_socks_clean_run_passes_invariants():
    report = run_chaos(scenario="socks_transfer", seed=1, plan="")
    assert report.ok, report.violations
    assert all(c["complete"] for c in report.channels)
