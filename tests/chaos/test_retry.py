"""RetryPolicy / retrying(): deterministic jittered backoff on the sim clock."""

import pytest

from repro.core.retry import RetryExhausted, RetryPolicy, retrying
from repro.simnet.engine import Simulator


def drive(sim, gen):
    """Run a generator to completion; returns (result, error)."""
    box = {}

    def runner():
        try:
            box["result"] = yield from gen
        except BaseException as exc:  # noqa: BLE001 - test captures it
            box["error"] = exc

    sim.process(runner())
    sim.run()
    return box.get("result"), box.get("error")


# -- policy ------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_delays_are_deterministic_per_key():
    policy = RetryPolicy(max_attempts=6, base_delay=0.5, jitter=0.3, seed=7)
    assert list(policy.delays("a")) == list(policy.delays("a"))
    assert list(policy.delays("a")) != list(policy.delays("b"))


def test_delays_exponential_and_capped():
    policy = RetryPolicy(
        max_attempts=6, base_delay=1.0, multiplier=2.0, max_delay=4.0, jitter=0.0
    )
    assert list(policy.delays()) == [1.0, 2.0, 4.0, 4.0, 4.0]


def test_jitter_stays_within_fraction():
    policy = RetryPolicy(
        max_attempts=50, base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.2
    )
    delays = list(policy.delays("k"))
    assert all(0.8 <= d <= 1.2 for d in delays)
    assert len(set(delays)) > 1  # actually jittered


# -- retrying() ---------------------------------------------------------------


class Boom(Exception):
    pass


def flaky(fail_times, log):
    """An attempt function failing the first ``fail_times`` calls."""

    def attempt(i):
        log.append(i)
        if i < fail_times:
            raise Boom(f"attempt {i}")
        return "ok"
        yield  # pragma: no cover - makes this a generator

    return attempt


def test_retrying_succeeds_after_failures():
    sim = Simulator()
    log = []
    policy = RetryPolicy(max_attempts=4, base_delay=0.5, multiplier=2.0, jitter=0.0)
    result, error = drive(
        sim, retrying(sim, flaky(2, log), policy, retry_on=(Boom,))
    )
    assert error is None and result == "ok"
    assert log == [0, 1, 2]
    assert sim.now == pytest.approx(0.5 + 1.0)  # two backoffs elapsed


def test_retrying_exhausts_and_carries_last_error():
    sim = Simulator()
    log = []
    policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
    result, error = drive(
        sim, retrying(sim, flaky(99, log), policy, retry_on=(Boom,))
    )
    assert isinstance(error, RetryExhausted)
    assert isinstance(error.last, Boom)
    assert log == [0, 1, 2]


def test_retrying_propagates_unlisted_exceptions():
    sim = Simulator()

    def attempt(i):
        raise KeyError("not transient")
        yield  # pragma: no cover

    policy = RetryPolicy(max_attempts=5, base_delay=0.1)
    _result, error = drive(
        sim, retrying(sim, attempt, policy, retry_on=(Boom,))
    )
    assert isinstance(error, KeyError)
    assert sim.now == 0.0  # no backoff was taken


def test_retrying_emits_obs_events():
    from repro import obs

    recorder = obs.set_tracer(obs.TraceRecorder())
    try:
        sim = Simulator()
        log = []
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        drive(
            sim,
            retrying(sim, flaky(2, log), policy, retry_on=(Boom,), name="t"),
        )
        active = obs.tracer()
        assert len(active.events("t.retry")) == 2
        assert len(active.events("t.recovered")) == 1
        drive(
            sim,
            retrying(sim, flaky(99, log), policy, retry_on=(Boom,), name="t"),
        )
        assert len(active.events("t.exhausted")) == 1
    finally:
        obs.set_tracer(recorder)
