"""The @scenario registry: registration, fidelity gating, legacy shim."""

import pytest

from repro.chaos import SCENARIOS, get_scenario, scenario, scenario_names
from repro.chaos.registry import _REGISTRY, ScenarioDef


@pytest.fixture
def scratch_registry():
    """Let a test register throwaway scenarios without leaking them."""
    before = dict(_REGISTRY)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(before)


class TestRegistration:
    def test_builtins_are_registered(self):
        names = scenario_names()
        assert "wan_transfer" in names
        assert "fleet_fanin" in names
        assert names == sorted(names)

    def test_duplicate_name_rejected(self, scratch_registry):
        @scenario("dup_probe")
        def first(seed, retries, sessions):
            pass

        with pytest.raises(ValueError, match="already registered"):
            @scenario("dup_probe")
            def second(seed, retries, sessions):
                pass

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            scenario("bad_tier", fidelities=("quantum",))

    def test_empty_fidelities_rejected(self):
        with pytest.raises(ValueError):
            scenario("no_tier", fidelities=())

    def test_docstring_becomes_description(self, scratch_registry):
        @scenario("doc_probe")
        def builder(seed, retries, sessions):
            """One-line purpose."""

        assert get_scenario("doc_probe").description == "One-line purpose."


class TestLookup:
    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="wan_transfer"):
            get_scenario("nonexistent")

    def test_fidelity_tiers_recorded(self):
        assert get_scenario("wan_transfer").fidelities == ("packet",)
        fleet = get_scenario("fleet_fanin")
        assert fleet.fidelities == ("flow",)
        assert fleet.default_fidelity == "flow"

    def test_build_rejects_unsupported_tier(self):
        with pytest.raises(ValueError, match="does not support"):
            get_scenario("wan_transfer").build(
                seed=1, retries=True, sessions=False, fidelity="flow"
            )

    def test_fidelity_kwarg_forwarded_only_if_declared(self, scratch_registry):
        calls = {}

        @scenario("kw_probe", fidelities=("packet", "flow"))
        def with_kw(seed, retries, sessions, fidelity="packet"):
            calls["with"] = fidelity

        @scenario("plain_probe")
        def without_kw(seed, retries, sessions):
            calls["without"] = True

        get_scenario("kw_probe").build(1, True, False, fidelity="flow")
        get_scenario("plain_probe").build(1, True, False, fidelity="packet")
        assert calls == {"with": "flow", "without": True}

    def test_scenario_def_repr_and_type(self):
        assert isinstance(get_scenario("wan_transfer"), ScenarioDef)


class TestLegacyShim:
    def test_getitem_warns_and_returns_builder(self):
        with pytest.warns(DeprecationWarning, match="SCENARIOS is deprecated"):
            builder = SCENARIOS["wan_transfer"]
        assert builder is get_scenario("wan_transfer").builder

    def test_iteration_warns_and_matches_names(self):
        with pytest.warns(DeprecationWarning):
            names = list(SCENARIOS)
        assert names == scenario_names()

    def test_len_matches(self):
        assert len(SCENARIOS) == len(scenario_names())
