"""Postmortem bundles and per-node exports: the observability acceptance.

Two behaviours are pinned here:

* **Polarity** — a run that violates an invariant dumps a postmortem
  bundle (manifest, report, per-node flight recorders, assembled causal
  trace); the *same* run healed by the session layer dumps nothing.
* **End-to-end stitching** — a routed chaos transfer's per-node exports
  assemble into one causal span tree that spans initiator, relay and
  target, with cross-node hops and a critical path.
"""

import json
import os

import pytest

from repro.chaos import run_chaos
from repro.obs.assemble import assemble_files
from repro.obs.export import read_jsonl, validate_jsonl

SCENARIO = "wan_transfer_routed"
PLAN = "relay_crash@2:for=4"


@pytest.fixture(scope="module")
def failed_bundle(tmp_path_factory):
    """One failing run (no retries, no sessions) with the bundle armed."""
    bundle_dir = str(tmp_path_factory.mktemp("bundle"))
    report = run_chaos(
        scenario=SCENARIO, seed=3, plan=PLAN,
        retries=False, sessions=False, bundle_dir=bundle_dir,
    )
    assert not report.ok
    return report, os.path.join(bundle_dir, f"{SCENARIO}-seed3")


def test_no_bundle_when_invariants_hold(tmp_path):
    bundle_dir = str(tmp_path / "bundle")
    report = run_chaos(
        scenario=SCENARIO, seed=3, plan=PLAN,
        sessions=True, bundle_dir=bundle_dir,
    )
    assert report.ok
    assert not os.path.exists(bundle_dir)


def test_bundle_layout_matches_manifest(failed_bundle):
    report, root = failed_bundle
    with open(os.path.join(root, "manifest.json")) as fh:
        manifest = json.load(fh)

    assert manifest["scenario"] == SCENARIO
    assert manifest["seed"] == 3
    assert manifest["plan"] == PLAN
    assert manifest["violations"] == report.violations
    assert {"alice", "bob", "relay"} <= set(manifest["nodes"])
    for rel in manifest["files"]:
        assert os.path.exists(os.path.join(root, rel)), rel

    with open(os.path.join(root, "report.json")) as fh:
        assert json.load(fh) == json.loads(report.to_json())


def test_bundle_node_files_validate_and_carry_flight_rings(failed_bundle):
    _, root = failed_bundle
    with open(os.path.join(root, "manifest.json")) as fh:
        manifest = json.load(fh)
    failing_traces = set(manifest["traces"])
    assert failing_traces

    # every node that took part in the failed transfer kept flight-ring
    # evidence stamped with the failing trace identity
    for node in ("alice", "bob", "relay"):
        path = os.path.join(root, "nodes", f"{node}.jsonl")
        validate_jsonl(path)
        records = read_jsonl(path)
        assert records[0]["node"] == node
        flights = [r for r in records if r["type"] == "flight"]
        assert flights, f"{node} has an empty flight ring"
        assert any(r.get("trace_id") in failing_traces for r in flights), (
            f"{node}'s flight ring never saw the failing trace"
        )


def test_bundle_trace_spans_all_three_nodes(failed_bundle):
    _, root = failed_bundle
    with open(os.path.join(root, "trace.json")) as fh:
        assembled = json.load(fh)
    nodes = set()
    for trace in assembled["traces"]:
        nodes.update(trace["nodes"])
    assert {"alice", "bob", "relay"} <= nodes

    with open(os.path.join(root, "trace.txt")) as fh:
        text = fh.read()
    assert "chaos.stage [alice]" in text
    assert "critical path" in text


def test_export_dir_assembles_into_cross_node_tree(tmp_path):
    """The headline acceptance: routed transfer with sessions, per-node
    exports stitched by the assembler into one initiator→relay→target
    tree with per-hop latencies and a critical path."""
    out = str(tmp_path / "export")
    report = run_chaos(
        scenario=SCENARIO, seed=3, plan=PLAN,
        sessions=True, export_dir=out,
    )
    assert report.ok

    files = sorted(os.listdir(out))
    assert {"alice.jsonl", "bob.jsonl", "relay.jsonl", "run.jsonl"} <= set(files)
    for name in files:
        validate_jsonl(os.path.join(out, name))

    result = assemble_files(os.path.join(out, f) for f in files)
    # the transfer stage is one trace spanning all three nodes
    spanning = [
        t for t in result["traces"]
        if {"alice", "bob", "relay"} <= set(t["nodes"])
    ]
    assert spanning, [t["nodes"] for t in result["traces"]]
    trace = spanning[0]
    assert trace["roots"][0]["name"] == "chaos.stage"
    assert trace["roots"][0]["node"] == "alice"
    hop_nodes = {(h["from"]["node"], h["to"]["node"]) for h in trace["hops"]}
    assert ("alice", "relay") in hop_nodes
    assert ("alice", "bob") in hop_nodes
    assert all(h["latency"] >= 0 for h in trace["hops"])
    assert trace["critical_path"][0]["node"] == "alice"
    # the relay crash forced a session resume inside the same trace
    span_names = set()

    def walk(span):
        span_names.add(span["name"])
        for child in span.get("children", []):
            walk(child)

    for root_span in trace["roots"]:
        walk(root_span)
    assert "session.resume" in span_names
