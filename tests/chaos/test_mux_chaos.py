"""Chaos scenarios for the mux subsystem (ISSUE acceptance).

``mux_fanin`` pushes 32 logical channels over a single routed WAN link
through the factory's shared per-peer endpoint; ``mux_starvation`` runs
a bulk stream next to an interactive request/echo conversation on the
same carrier.  Both must come out green on the generic delivery audits,
the registry-wide credit-conservation invariant and their own fairness
post-checks, and the reports must be byte-identical across reruns.
"""

from repro.chaos import run_chaos
from repro.chaos.invariants import _mux_violations
from repro.mux import DEFAULT_WINDOW
from repro.obs import MetricsRegistry


class TestMuxFanin:
    def test_32_channels_over_one_routed_link(self):
        report = run_chaos(
            scenario="mux_fanin", seed=1, plan="", retries=False
        )
        assert report.ok, report.violations
        assert len(report.channels) == 32
        assert all(c["complete"] for c in report.channels)
        assert all(
            c["sent_digest"] == c["received_digest"] for c in report.channels
        )
        # one carrier through the relay moved every payload byte
        total = sum(c["sent_bytes"] for c in report.channels)
        assert report.stats["relay_forwarded_bytes"] >= total

    def test_report_is_deterministic(self):
        a = run_chaos(scenario="mux_fanin", seed=7, plan="", retries=False)
        b = run_chaos(scenario="mux_fanin", seed=7, plan="", retries=False)
        assert a.to_json() == b.to_json()

    def test_sessions_compose_under_mux(self):
        report = run_chaos(
            scenario="mux_fanin", seed=2, plan="", retries=True, sessions=True
        )
        assert report.ok, report.violations


class TestMuxStarvation:
    def test_interactive_latency_bounded_beside_bulk(self):
        report = run_chaos(
            scenario="mux_starvation", seed=1, plan="", retries=False
        )
        assert report.ok, report.violations
        names = {c["name"] for c in report.channels}
        assert names == {"bulk", "interactive"}
        assert all(c["complete"] for c in report.channels)


class TestMuxInvariants:
    def test_conservation_violation_detected(self):
        reg = MetricsRegistry()
        reg.counter("mux.tx_bytes", node="a", channel="1").inc(1000)
        reg.counter("mux.rx_bytes", node="b", channel="1").inc(900)
        out = _mux_violations(reg)
        assert any("conservation" in v for v in out)

    def test_credit_overrun_detected(self):
        reg = MetricsRegistry()
        sent = DEFAULT_WINDOW + 1
        reg.counter("mux.tx_bytes", node="a", channel="1").inc(sent)
        reg.counter("mux.rx_bytes", node="b", channel="1").inc(sent)
        out = _mux_violations(reg)
        assert any("credit overrun" in v for v in out)

    def test_granted_credit_raises_the_bound(self):
        reg = MetricsRegistry()
        sent = DEFAULT_WINDOW + 500
        reg.counter("mux.tx_bytes", node="a", channel="1").inc(sent)
        reg.counter("mux.rx_bytes", node="b", channel="1").inc(sent)
        reg.counter("mux.credit_granted", node="b", channel="1").inc(500)
        assert _mux_violations(reg) == []
