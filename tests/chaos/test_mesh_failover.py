"""Mesh failover polarity: the kill that sessions+mesh survive is fatal
to every weaker configuration.

The canonical plan kills the carrying relay (and then a second one) in
the middle of a routed transfer over the 3-relay mesh:

* **mesh + sessions** — survives: the death is gossiped within the
  detection bound, the route table fails over to the survivor, and the
  replay window resumes the stream with zero byte loss;
* **mesh, no sessions** — fails: the routed link EOFs with the relay
  and nothing can replay the in-flight bytes;
* **no mesh** (``wan_transfer_routed``) — fails even WITH sessions and
  retries: there is no surviving relay to fail over to.

That asymmetry — not "it recovers" but "only this layering recovers" —
is the acceptance polarity for the mesh subsystem.
"""

import pytest

from repro.chaos import run_chaos

#: kill the (seeded) carrying relay mid-transfer, then a second relay
#: while recovery is in flight — the survivor must absorb both streams.
KILL_PLAN = "relay_kill@2:relay=r1;relay_kill@2.2:relay=r2"


class TestFailoverPolarity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mesh_with_sessions_survives_double_kill(self, seed):
        report = run_chaos(
            scenario="mesh_failover",
            seed=seed,
            plan=KILL_PLAN,
            retries=True,
            sessions=True,
        )
        assert report.ok, report.violations
        assert [e["kind"] for e in report.injected] == [
            "relay_kill", "relay_kill",
        ]
        # Zero payload loss: every byte arrived exactly once, in order.
        for channel in report.channels:
            assert channel["complete"]
            assert channel["received_bytes"] == channel["sent_bytes"] > 0
            assert channel["received_digest"] == channel["sent_digest"]
        # The recovery was real: the session resumed at least once and
        # the survivors declared the dead relays dead (the convergence
        # invariant would have flagged an unbounded detection).
        assert report.stats["session_reconnects"] >= 1
        assert report.stats["mesh_deaths"] >= 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mesh_without_sessions_fails(self, seed):
        report = run_chaos(
            scenario="mesh_failover",
            seed=seed,
            plan=KILL_PLAN,
            retries=True,
            sessions=False,
        )
        assert not report.ok
        assert any("sender did not complete" in v for v in report.violations)

    def test_without_mesh_the_same_kill_is_fatal(self):
        # The single-relay routed scenario with the full recovery stack
        # (sessions + retries) still cannot survive an unhealed kill of
        # its only relay: failover needs somewhere to fail over TO.
        report = run_chaos(
            scenario="wan_transfer_routed",
            seed=1,
            plan="relay_kill@2:relay=r1",
            retries=True,
            sessions=True,
        )
        assert not report.ok

    def test_failover_reports_are_deterministic(self):
        a = run_chaos(
            scenario="mesh_failover", seed=2, plan=KILL_PLAN,
            retries=True, sessions=True,
        )
        b = run_chaos(
            scenario="mesh_failover", seed=2, plan=KILL_PLAN,
            retries=True, sessions=True,
        )
        assert a.to_json() == b.to_json()
