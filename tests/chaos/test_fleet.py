"""Fleet-scale fan-in scenario on the flow tier, through the chaos runner."""

import pytest

from repro.chaos import run_chaos
from repro.chaos.fleet import SIZE_CLASSES, FleetScenario
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def small_fleet(monkeypatch):
    """Shrink the fleet so every test runs in well under a second."""
    monkeypatch.setenv("REPRO_FLEET_ENDPOINTS", "400")
    monkeypatch.setenv("REPRO_FLEET_WAVES", "5")
    obs_metrics().reset()
    yield
    obs_metrics().reset()


# waves start at exactly t=1+5k; 16.2 lands inside wave 3's activity
# window, so the partition stalls its still-running transfers
_PARTITION_PLAN = "link_down@16.2:site=hub,for=2"


def _expected_bytes(endpoints):
    return endpoints // len(SIZE_CLASSES) * sum(SIZE_CLASSES)


class TestRunner:
    def test_partition_heal_resume(self):
        report = run_chaos(
            scenario="fleet_fanin",
            seed=3,
            plan=_PARTITION_PLAN,
            sessions=True,
            until=600.0,
        )
        assert report.ok, report.violations
        assert report.fidelity == "flow"
        stats = report.stats
        assert stats["endpoints"] == 400
        assert stats["flows_completed"] == 400
        assert stats["relay_forwarded_bytes"] == _expected_bytes(400)
        assert stats["relay_forwarded_messages"] == 400
        # the mid-wave partition must have stalled someone
        assert stats["reconnects"] > 0
        assert stats["session_reconnects"] == stats["reconnects"]

    def test_without_sessions_no_resume_accounting(self):
        report = run_chaos(
            scenario="fleet_fanin",
            seed=3,
            plan=_PARTITION_PLAN,
            sessions=False,
            until=600.0,
        )
        assert report.ok, report.violations
        assert report.stats["reconnects"] == 0
        assert report.stats["session_reconnects"] == 0
        assert report.stats["flows_completed"] == 400

    def test_deterministic_replay(self):
        first = run_chaos(
            scenario="fleet_fanin", seed=5, plan=_PARTITION_PLAN,
            sessions=True, until=600.0,
        )
        obs_metrics().reset()
        second = run_chaos(
            scenario="fleet_fanin", seed=5, plan=_PARTITION_PLAN,
            sessions=True, until=600.0,
        )
        assert first.to_json() == second.to_json()

    def test_clean_run_no_faults(self):
        report = run_chaos(
            scenario="fleet_fanin", seed=1, plan="", until=600.0,
        )
        assert report.ok, report.violations
        assert report.stats["reconnects"] == 0
        # solver passes must stay bounded (quantized size classes), not
        # scale per-flow
        assert report.stats["rate_resolves"] < 200


class TestScenarioSurface:
    def test_site_wan_link_targets(self):
        scn = FleetScenario(seed=0, endpoints=8, waves=2)
        hub = scn.site_wan_link("hub")
        assert hub is scn.net.hosts["hub"].uplink
        ep = scn.site_wan_link("ep000003")
        assert ep is scn.net.hosts["ep000003"].uplink
        with pytest.raises(KeyError):
            scn.site_wan_link("nowhere")

    def test_constructor_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_ENDPOINTS", "999")
        scn = FleetScenario(seed=0, endpoints=8, waves=2)
        assert scn.endpoints == 8
        assert scn.waves == 2

    def test_completion_violations_before_run(self):
        scn = FleetScenario(seed=0, endpoints=8, waves=2)
        violations = scn.completion_violations()
        assert violations  # nothing ran yet: expected flows are missing

    def test_completion_violations_clear_after_run(self):
        scn = FleetScenario(seed=0, endpoints=8, waves=2)
        scn.sim.run(until=60.0)
        assert scn.completion_violations() == []
        assert scn.relay.forwarded_messages == 8
