"""FaultPlan parsing/canonicalization and individual fault injection."""

import pytest

from repro.chaos import (
    ConntrackFlush,
    FaultPlan,
    FaultPlanError,
    FaultScheduler,
    LinkDown,
    LossBurst,
    NatExpiry,
    PeerDrop,
    RelayCrash,
)
from repro.core.scenarios import GridScenario

DEMO = "relay_crash@2:for=8;link_down@12:site=A,for=0.4;link_down@13.5:site=B,for=0.4"


# -- plan parsing -------------------------------------------------------------


def test_parse_round_trips_canonical_form():
    plan = FaultPlan.parse(DEMO)
    assert plan.spec() == DEMO
    assert FaultPlan.parse(plan.spec()) == plan
    assert len(plan) == 3


def test_plan_is_canonically_ordered():
    a = FaultPlan.of(LinkDown(at=12.0, site="A", duration=0.4), RelayCrash(at=2.0, duration=8.0))
    b = FaultPlan.of(RelayCrash(at=2.0, duration=8.0), LinkDown(at=12.0, site="A", duration=0.4))
    assert a == b
    assert a.spec() == b.spec()
    assert [f.at for f in a] == [2.0, 12.0]


def test_parse_all_kinds():
    plan = FaultPlan.parse(
        "link_down@1:site=A,for=2;loss_burst@2:site=B,loss=0.5,for=1;"
        "relay_crash@3:for=5;peer_drop@4:node=alice;"
        "conntrack_flush@5:site=A;nat_expiry@6:site=B"
    )
    kinds = [f.kind for f in plan]
    assert kinds == [
        "link_down", "loss_burst", "relay_crash",
        "peer_drop", "conntrack_flush", "nat_expiry",
    ]
    assert FaultPlan.parse(plan.spec()) == plan


def test_empty_plan():
    assert len(FaultPlan.parse("")) == 0
    assert FaultPlan.parse("").spec() == ""


@pytest.mark.parametrize(
    "bad",
    [
        "meteor@1",                    # unknown kind
        "relay_crash",                 # missing @time
        "relay_crash@soon",            # unparsable time
        "link_down@1:site",            # argument without '='
        "link_down@1:planet=mars",     # unknown argument
    ],
)
def test_parse_rejects_malformed(bad):
    with pytest.raises(FaultPlanError):
        FaultPlan.parse(bad)


# -- injection ----------------------------------------------------------------


@pytest.fixture
def scenario():
    scn = GridScenario(seed=3)
    scn.add_site("A", "firewall")
    scn.add_site("B", "cone_nat")
    return scn


def test_link_down_flap_heals(scenario):
    plan = FaultPlan.parse("link_down@1:site=A,for=2")
    sched = FaultScheduler(scenario, plan)
    sched.arm()
    link = scenario.site_wan_link("A")
    scenario.sim.run(until=1.5)
    assert link.down
    scenario.sim.run(until=4.0)
    assert not link.down
    assert [e["kind"] for e in sched.injected] == ["link_down"]
    assert [e["kind"] for e in sched.healed] == ["link_down"]


def test_loss_burst_restores_previous_rate(scenario):
    link = scenario.site_wan_link("B")
    plan = FaultPlan.of(LossBurst(at=1.0, site="B", loss=0.9, duration=1.0))
    FaultScheduler(scenario, plan).arm()
    scenario.sim.run(until=1.5)
    assert link.a_to_b.loss == 0.9 and link.b_to_a.loss == 0.9
    scenario.sim.run(until=3.0)
    assert link.a_to_b.loss == 0.0 and link.b_to_a.loss == 0.0


def test_relay_crash_drops_sessions_then_restarts(scenario):
    node = scenario.add_node("A", "alice")

    def boot():
        yield from node.start()

    scenario.sim.process(boot())
    FaultScheduler(
        scenario, FaultPlan.of(RelayCrash(at=1.0, duration=2.0))
    ).arm()
    scenario.sim.run(until=1.5)
    assert not scenario.relay.sessions
    assert not node.relay_client.connected
    scenario.sim.run(until=5.0)
    # Relay is back and accepting (no auto_reconnect: the node stays out).
    assert scenario.relay._listener is not None


def test_peer_drop_and_middlebox_faults(scenario):
    node = scenario.add_node("B", "bob")

    def boot():
        yield from node.start()

    scenario.sim.process(boot())
    plan = FaultPlan.of(
        PeerDrop(at=1.0, node="bob"),
        ConntrackFlush(at=1.5, site="A"),
        NatExpiry(at=1.5, site="B"),
    )
    sched = FaultScheduler(scenario, plan)
    sched.arm()
    scenario.sim.run(until=3.0)
    assert not node.relay_client.connected
    assert len(sched.injected) == 3
    # NAT table was populated by bob's relay session, then expired.
    nat_event = [e for e in sched.injected if e["kind"] == "nat_expiry"][0]
    assert nat_event["mappings"] >= 1
    assert not scenario.site_nat("B")._out_map


def test_injection_emits_chaos_trace_events(scenario):
    from repro import obs

    prev = obs.set_tracer(obs.TraceRecorder())
    try:
        FaultScheduler(
            scenario, FaultPlan.parse("link_down@1:site=A,for=0.5")
        ).arm()
        scenario.sim.run(until=2.0)
        active = obs.tracer()
        assert len(active.events("chaos.injected")) == 1
        assert len(active.events("chaos.heal")) == 1
        assert len(active.spans("chaos.inject")) == 1
    finally:
        obs.set_tracer(prev)
