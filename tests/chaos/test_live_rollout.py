"""Canary-rollout polarity on the *live* backend.

Same gate, real sockets: four asyncio senders stream through the chaos
gateway while per-sender telemetry publishers feed the aggregator on
the event loop, and the rollout gate polls it under wall-clock time.
The bad policy must be detected and reverted inside the bake window;
the healthy one must promote.  Live timing is real, so the assertions
pin the *decisions* (state, trigger source, event order) and the byte
audit, not exact timestamps.

Marked ``live_chaos`` (multi-second wall-clock runs on loopback);
``LIVE_CHAOS_SEED`` selects the seed, ``LIVE_CHAOS_BUNDLE_DIR`` drops
postmortem bundles on failure for CI artifact upload.
"""

import os

import pytest

from repro.chaos import run_chaos

pytestmark = [pytest.mark.livenet, pytest.mark.live_chaos]

SEED = int(os.environ.get("LIVE_CHAOS_SEED", "1"))
BUNDLE_DIR = os.environ.get("LIVE_CHAOS_BUNDLE_DIR")

#: senders finish ~5s in, the gate decides by ~4s; generous on top
BUDGET = 30.0


def _run(scenario: str):
    return run_chaos(
        scenario=scenario,
        backend="live",
        seed=SEED,
        until=BUDGET,
        bundle_dir=BUNDLE_DIR,
    )


def test_bad_policy_is_rolled_back_live():
    report = _run("canary_rollout")
    assert report.ok, report.violations
    assert report.backend == "live"
    rollout = report.stats["rollout"]
    assert rollout["state"] == "rolled_back"
    assert rollout["trigger"]["source"] in ("c1", "c2")
    assert rollout["trigger"]["slo"] == "throughput"
    assert rollout["events"] == ["apply", "rollback"]
    assert (
        rollout["decided_at"] - rollout["applied_at"]
        <= rollout["bake_seconds"]
    )
    assert report.stats["telemetry_records"] > 0
    for channel in report.channels:
        assert channel["complete"]
        assert channel["received_digest"] == channel["sent_digest"]


def test_healthy_policy_is_promoted_live():
    report = _run("canary_rollout_good")
    assert report.ok, report.violations
    rollout = report.stats["rollout"]
    assert rollout["state"] == "promoted"
    assert rollout["trigger"] is None
    assert rollout["events"] == ["apply", "promote"]
    assert report.stats["telemetry_records"] > 0
    for channel in report.channels:
        assert channel["complete"]
        assert channel["received_digest"] == channel["sent_digest"]
