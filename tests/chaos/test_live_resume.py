"""Session-resume polarity on the *live* backend, through the proxy.

The sim acceptance matrix (``test_resume.py``) proves the session layer
carries a stream across mid-transfer faults in simulated time.  These
cells re-run the core polarity on real sockets: the same fault plan,
injected by the in-process chaos gateway under wall-clock scheduling,
must complete byte-identically with ``sessions=True`` and reproducibly
fail with ``sessions=False``.  Passing here means the resume protocol —
redial through the gateway, offset handshake, replay-window refill — is
not an artifact of the simulator's cooperative scheduling.

Marked ``live_chaos`` (implies real sockets + multi-second wall-clock
runs); the CI ``live-chaos`` job runs this suite across several seeds,
``LIVE_CHAOS_SEED`` selects the seed and ``LIVE_CHAOS_BUNDLE_DIR``
makes failures drop postmortem bundles for artifact upload.
"""

import os

import pytest

from repro.chaos import run_chaos

pytestmark = [pytest.mark.livenet, pytest.mark.live_chaos]

SEED = int(os.environ.get("LIVE_CHAOS_SEED", "1"))
BUNDLE_DIR = os.environ.get("LIVE_CHAOS_BUNDLE_DIR")

#: hard wall-clock budget per run: generous against loopback reality
#: (a passing sessions run takes ~3-6s), tight enough that a wedged
#: resume loop fails the suite instead of stalling it.
POSITIVE_BUDGET = 45.0
#: the failing polarity runs to its deadline by construction (the dead
#: stage never completes), so give it a short one.
NEGATIVE_DEADLINE = 8.0

#: mid-stream fault plans whose recovery demands a full session resume
PLANS = [
    "conn_kill@0.3:site=B",
    "conn_kill@0.25:site=B;conn_kill@0.8:site=B",
    "truncate@0.3:site=B,bytes=100000",
]


def _run(plan: str, sessions: bool, until: float):
    return run_chaos(
        scenario="wan_transfer",
        backend="live",
        seed=SEED,
        plan=plan,
        sessions=sessions,
        until=until,
        bundle_dir=BUNDLE_DIR,
    )


@pytest.mark.parametrize("plan", PLANS)
def test_mid_stream_fault_survived_with_sessions(plan):
    report = _run(plan, sessions=True, until=POSITIVE_BUDGET)
    assert report.ok, report.violations
    assert report.backend == "live"
    assert report.stats["wall_seconds"] < POSITIVE_BUDGET
    # recovery was a real resume, observable end to end: the initiator
    # reconnected and the replay window refilled the gap
    assert report.stats["session_reconnects"] >= 1
    assert report.stats["session_replayed_bytes"] >= 0
    # the proxy's ledger balances even across the kill
    assert (
        report.stats["proxy.B.bytes_in"]
        == report.stats["proxy.B.bytes_forwarded"]
        + report.stats["proxy.B.bytes_dropped"]
        + report.stats["proxy.B.bytes_lost"]
    )


@pytest.mark.parametrize("plan", PLANS)
def test_mid_stream_fault_fatal_without_sessions(plan):
    report = _run(plan, sessions=False, until=NEGATIVE_DEADLINE)
    assert not report.ok
    assert report.stats["session_reconnects"] == 0


def test_polarity_is_the_session_layer_not_the_fault_being_soft():
    """Control cell: with no fault at all, both polarities succeed —
    so the failures above are the fault's doing, and the successes are
    the session layer's."""
    for sessions in (True, False):
        report = _run("", sessions=sessions, until=POSITIVE_BUDGET)
        assert report.ok, report.violations
        assert report.stats["session_reconnects"] == 0
