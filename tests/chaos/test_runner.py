"""Chaos scenario runner: the ISSUE's acceptance demo + determinism.

The demo plan crashes the relay for 8 s in the middle of stage 1's bulk
transfer and flaps both sites' WAN links while stage 2 is being
re-established.  With the retry layer on, the run must complete with all
invariants green and the recovery visible in the trace; with retries off
the *same* plan must fail, reproducibly.
"""

import json

import pytest

from repro import obs
from repro.chaos import ChaosReport, FaultPlan, run_chaos

DEMO_PLAN = (
    "relay_crash@2:for=8;"
    "link_down@12:site=A,for=0.4;"
    "link_down@13.5:site=B,for=0.4"
)


def test_clean_run_passes_invariants():
    report = run_chaos(scenario="wan_transfer", seed=1, plan="")
    assert report.ok, report.violations
    assert report.injected == [] and report.healed == []
    assert all(c["complete"] for c in report.channels)
    assert all(
        c["sent_digest"] == c["received_digest"] for c in report.channels
    )


def test_demo_relay_crash_and_flaps_recovers_with_retries():
    report = run_chaos(
        scenario="wan_transfer", seed=1, plan=DEMO_PLAN, retries=True
    )
    assert report.ok, report.violations
    # All three faults fired and healed.
    assert [e["kind"] for e in report.injected] == [
        "relay_crash", "link_down", "link_down",
    ]
    assert len(report.healed) == 3
    # Recovery actually happened (both nodes re-registered).
    assert report.stats["reconnects"] >= 2
    # Every payload byte arrived exactly once, in order.
    for channel in report.channels:
        assert channel["complete"]
        assert channel["received_bytes"] == channel["sent_bytes"] > 0
        assert channel["received_digest"] == channel["sent_digest"]


def test_demo_recovery_is_visible_in_trace(tmp_path):
    trace = tmp_path / "chaos.jsonl"
    report = run_chaos(
        scenario="wan_transfer",
        seed=1,
        plan=DEMO_PLAN,
        retries=True,
        trace_path=str(trace),
    )
    assert report.ok, report.violations
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    names = [r.get("name") for r in records if r.get("type") == "trace"]
    assert names.count("chaos.injected") == 3
    assert names.count("chaos.heal") == 3
    assert "relay.client.lost" in names
    assert "relay.client.reconnected" in names
    # The stage-2 establishment had to back off at least once.
    assert any(n in names for n in ("broker.connect.retry", "broker.connect.recovered"))


def test_same_plan_without_retries_reproducibly_fails():
    a = run_chaos(scenario="wan_transfer", seed=1, plan=DEMO_PLAN, retries=False)
    assert not a.ok
    # Stage 2 was stranded by the relay crash.
    assert any("stage1" in v for v in a.violations)
    assert any(v.startswith("process: sender") for v in a.violations)
    b = run_chaos(scenario="wan_transfer", seed=1, plan=DEMO_PLAN, retries=False)
    assert a.to_json() == b.to_json()


def test_reports_are_byte_identical_for_same_triple():
    a = run_chaos(scenario="wan_transfer", seed=5, plan=DEMO_PLAN)
    b = run_chaos(scenario="wan_transfer", seed=5, plan=DEMO_PLAN)
    assert a.triple() == b.triple()
    assert a.to_json() == b.to_json()


def test_different_seed_changes_payload_but_still_passes():
    a = run_chaos(scenario="wan_transfer", seed=1, plan=DEMO_PLAN)
    c = run_chaos(scenario="wan_transfer", seed=2, plan=DEMO_PLAN)
    assert c.ok, c.violations
    assert a.to_json() != c.to_json()


def test_plan_object_and_string_are_equivalent():
    plan = FaultPlan.parse(DEMO_PLAN)
    a = run_chaos(scenario="wan_transfer", seed=3, plan=plan)
    b = run_chaos(scenario="wan_transfer", seed=3, plan=DEMO_PLAN)
    assert a.to_json() == b.to_json()


def test_runner_restores_process_wide_obs_state():
    registry = obs.get_registry()
    recorder = obs.tracer()
    run_chaos(scenario="wan_transfer", seed=1, plan="")
    assert obs.get_registry() is registry
    assert obs.tracer() is recorder


def test_unknown_scenario_is_an_error():
    with pytest.raises(ValueError, match="unknown chaos scenario"):
        run_chaos(scenario="nope", seed=1, plan="")


def test_report_json_shape():
    report = run_chaos(scenario="wan_transfer", seed=1, plan="")
    data = json.loads(report.to_json())
    assert isinstance(report, ChaosReport)
    assert data["scenario"] == "wan_transfer"
    assert data["seed"] == 1
    assert data["retries"] is True
    assert data["ok"] is True
    assert {"violations", "injected", "healed", "channels", "errors", "stats"} <= set(data)
