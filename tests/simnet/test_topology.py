"""Topology: routing, forwarding, sites, the Internet builder."""

import pytest

from repro.simnet import (
    ConeNAT,
    Internet,
    Network,
    StatefulFirewall,
    connect,
    listen,
)
from repro.simnet.packet import Segment, is_private
from repro.simnet.testing import drive, echo_server


def test_connected_route_and_lookup():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.connect(a, b, "192.168.0.1", "192.168.0.2", 24)
    assert a.route("192.168.0.2") is a.interfaces[0]
    assert a.route("8.8.8.8") is None


def test_longest_prefix_wins():
    net = Network()
    r = net.add_router("r")
    a = net.add_host("a")
    b = net.add_host("b")
    net.connect(r, a, "10.0.0.1", "10.0.0.2", 24)
    net.connect(r, b, "10.0.1.1", "10.0.1.2", 24)
    r.add_route("10.0.0.0", 8, r.interfaces[1])  # broad route via b's side
    # /24 beats /8
    assert r.route("10.0.0.99") is r.interfaces[0]
    assert r.route("10.9.9.9") is r.interfaces[1]


def test_default_route():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.connect(a, b, "10.0.0.1", "10.0.0.2", 30)
    a.default_route(a.interfaces[0])
    assert a.route("203.0.113.9") is a.interfaces[0]


def test_loopback_delivery():
    inet = Internet()
    host = inet.add_public_host("h")
    result = {}

    def proc():
        inet.sim.process(echo_server(host, 7000))
        sock = yield from connect(host, (host.ip, 7000))
        yield from sock.send_all(b"self-talk")
        result["echo"] = yield from sock.recv_exactly(9)
        sock.close()

    drive(inet.sim, proc())
    assert result["echo"] == b"self-talk"


def test_ttl_prevents_forwarding_loops():
    net = Network()
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    net.connect(r1, r2, "10.0.0.1", "10.0.0.2", 30)
    # Both route the victim prefix at each other: a loop.
    r1.add_route("203.0.113.0", 24, r1.interfaces[0])
    r2.add_route("203.0.113.0", 24, r2.interfaces[0])
    drops = []
    net.tracers.append(lambda e: drops.append(e) if e["kind"] == "drop" else None)
    seg = Segment(src=("10.0.0.1", 1), dst=("203.0.113.5", 2))
    r1.send_segment(seg)
    net.run()
    assert any(e["reason"] == "ttl" for e in drops)


def test_no_route_drops():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.connect(a, b, "10.0.0.1", "10.0.0.2", 30)
    drops = []
    net.tracers.append(lambda e: drops.append(e) if e["kind"] == "drop" else None)
    a.send_segment(Segment(src=(a.ip, 1), dst=("203.0.113.1", 2)))
    net.run()
    assert any(e["reason"] == "no-route" for e in drops)


def test_non_forwarding_host_drops_transit():
    net = Network()
    a = net.add_host("a")  # not a router
    b = net.add_host("b")
    net.connect(a, b, "10.0.0.1", "10.0.0.2", 30)
    drops = []
    net.tracers.append(lambda e: drops.append(e) if e["kind"] == "drop" else None)
    b.send_segment(Segment(src=(b.ip, 1), dst=("203.0.113.1", 2)))
    b.default_route(b.interfaces[0])
    b.send_segment(Segment(src=(b.ip, 1), dst=("203.0.113.1", 2)))
    net.run()
    assert any(e["reason"] == "not-for-me" for e in drops)


def test_duplicate_host_name_rejected():
    net = Network()
    net.add_host("x")
    with pytest.raises(ValueError):
        net.add_host("x")


class TestInternetBuilder:
    def test_public_hosts_can_talk_both_ways(self):
        inet = Internet()
        a = inet.add_public_host("a")
        b = inet.add_public_host("b")
        result = {}

        def proc():
            inet.sim.process(echo_server(b, 5000))
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"ping")
            result["r"] = yield from sock.recv_exactly(4)
            sock.close()

        drive(inet.sim, proc())
        assert result["r"] == b"ping"

    def test_open_site_nodes_have_public_addresses(self):
        inet = Internet()
        site = inet.add_site("open")
        node = site.add_node()
        assert not is_private(node.ip)

    def test_nat_site_nodes_have_private_addresses(self):
        inet = Internet()
        site = inet.add_site("natted", nat=ConeNAT())
        node = site.add_node()
        assert is_private(node.ip)

    def test_two_nodes_same_site_communicate(self):
        inet = Internet()
        site = inet.add_site("s")
        n1, n2 = site.add_node(), site.add_node()
        result = {}

        def proc():
            inet.sim.process(echo_server(n2, 6000))
            sock = yield from connect(n1, (n2.ip, 6000))
            yield from sock.send_all(b"lan")
            result["r"] = yield from sock.recv_exactly(3)

        drive(inet.sim, proc())
        assert result["r"] == b"lan"

    def test_cross_site_open_to_open(self):
        inet = Internet()
        s1, s2 = inet.add_site("x"), inet.add_site("y")
        n1, n2 = s1.add_node(), s2.add_node()
        result = {}

        def proc():
            inet.sim.process(echo_server(n2, 6000))
            sock = yield from connect(n1, (n2.ip, 6000))
            yield from sock.send_all(b"wan")
            result["r"] = yield from sock.recv_exactly(3)

        drive(inet.sim, proc())
        assert result["r"] == b"wan"

    def test_gateway_reachable_from_inside_and_outside(self):
        inet = Internet()
        site = inet.add_site("fw", firewall=StatefulFirewall())
        node = site.add_node()
        outside = inet.add_public_host("out")
        result = {}

        def proc():
            inet.sim.process(echo_server(site.gateway, 1234))
            inet.sim.process(echo_server(site.gateway, 1235))
            s1 = yield from connect(node, (site.gateway.ip, 1234))
            yield from s1.send_all(b"in")
            result["in"] = yield from s1.recv_exactly(2)
            s2 = yield from connect(outside, (site.gateway.ip, 1235))
            yield from s2.send_all(b"out")
            result["out"] = yield from s2.recv_exactly(3)

        drive(inet.sim, proc())
        assert result == {"in": b"in", "out": b"out"}

    def test_private_addresses_not_routable_from_outside(self):
        inet = Internet()
        site = inet.add_site("natted", nat=ConeNAT())
        node = site.add_node()
        outside = inet.add_public_host("out")
        drops = []
        inet.net.tracers.append(
            lambda e: drops.append(e) if e["kind"] == "drop" else None
        )
        seg = Segment(src=(outside.ip, 1), dst=(node.ip, 2))
        outside.send_segment(seg)
        inet.net.run()
        assert any(e["reason"] == "no-route" for e in drops)
