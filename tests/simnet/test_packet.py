"""Packet model and address utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.packet import (
    SEGMENT_OVERHEAD,
    Segment,
    in_prefix,
    int_to_ip,
    ip_to_int,
    is_private,
)


class TestIpConversion:
    def test_round_trip_known(self):
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1
        assert int_to_ip((10 << 24) + 1) == "10.0.0.1"
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("0.0.0.0") == 0

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_round_trip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_int_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestPrefix:
    def test_in_prefix(self):
        assert in_prefix("10.1.2.3", "10.0.0.0", 8)
        assert not in_prefix("11.1.2.3", "10.0.0.0", 8)
        assert in_prefix("192.168.5.7", "192.168.5.0", 24)
        assert not in_prefix("192.168.6.7", "192.168.5.0", 24)

    def test_zero_prefix_matches_everything(self):
        assert in_prefix("1.2.3.4", "0.0.0.0", 0)
        assert in_prefix("255.255.255.255", "9.9.9.9", 0)

    def test_host_prefix_exact(self):
        assert in_prefix("1.2.3.4", "1.2.3.4", 32)
        assert not in_prefix("1.2.3.5", "1.2.3.4", 32)

    def test_bad_prefixlen(self):
        with pytest.raises(ValueError):
            in_prefix("1.2.3.4", "1.0.0.0", 33)

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=32),
    )
    def test_address_always_in_own_prefix(self, value, plen):
        ip = int_to_ip(value)
        assert in_prefix(ip, ip, plen)


class TestPrivate:
    @pytest.mark.parametrize(
        "ip,expected",
        [
            ("10.0.0.1", True),
            ("10.255.255.254", True),
            ("172.16.0.1", True),
            ("172.31.9.9", True),
            ("172.32.0.1", False),
            ("192.168.1.1", True),
            ("192.169.1.1", False),
            ("198.51.100.7", False),
            ("8.8.8.8", False),
        ],
    )
    def test_rfc1918(self, ip, expected):
        assert is_private(ip) is expected


class TestSegment:
    def test_size_includes_headers(self):
        seg = Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2), payload=b"x" * 100)
        assert seg.size == SEGMENT_OVERHEAD + 100

    def test_seg_len_counts_syn_and_fin(self):
        seg = Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2), syn=True)
        assert seg.seg_len == 1
        seg = Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2), fin=True, payload=b"ab")
        assert seg.seg_len == 3

    def test_flags_str(self):
        seg = Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2), syn=True, ack_flag=True)
        assert seg.flags_str() == "SYN|ACK"
        plain = Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2))
        assert plain.flags_str() == "."

    def test_copy_gets_fresh_id(self):
        seg = Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2))
        dup = seg.copy(payload=b"zz")
        assert dup.pkt_id != seg.pkt_id
        assert dup.payload == b"zz"
        assert dup.src == seg.src

    def test_describe_mentions_endpoints(self):
        seg = Segment(src=("1.1.1.1", 10), dst=("2.2.2.2", 20), seq=5, payload=b"abc")
        text = seg.describe()
        assert "1.1.1.1:10" in text
        assert "2.2.2.2:20" in text
        assert "len=3" in text
