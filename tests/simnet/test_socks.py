"""SOCKS5 proxy: CONNECT, BIND, error handling."""

import pytest

from repro.simnet import (
    Internet,
    SocksError,
    SocksServer,
    connect,
    listen,
    socks_accept_bound,
    socks_bind,
    socks_connect,
)
from repro.simnet.testing import drive, echo_server


def _setup():
    inet = Internet(seed=8)
    proxy_host = inet.add_public_host("proxy")
    client_host = inet.add_public_host("client")
    target_host = inet.add_public_host("target")
    server = SocksServer(proxy_host, 1080)
    server.start()
    return inet, server, client_host, target_host


def test_connect_pipes_both_directions():
    inet, server, client, target = _setup()
    result = {}

    def proc():
        inet.sim.process(echo_server(target, 7000))
        sock = yield from socks_connect(client, server.addr, (target.ip, 7000))
        yield from sock.send_all(b"via-proxy")
        result["echo"] = yield from sock.recv_exactly(9)
        sock.close()

    drive(inet.sim, proc())
    assert result["echo"] == b"via-proxy"
    assert server.sessions == 1


def test_connect_to_refusing_target_reports_error():
    inet, server, client, target = _setup()

    def proc():
        with pytest.raises(SocksError, match="error 5"):
            yield from socks_connect(client, server.addr, (target.ip, 4444))

    drive(inet.sim, proc())


def test_bind_allows_inbound_through_proxy():
    inet, server, client, target = _setup()
    result = {}

    def binder():
        control, bound = yield from socks_bind(client, server.addr)
        result["bound"] = bound

        def dialer():
            sock = yield from connect(target, bound)
            yield from sock.send_all(b"inbound!")

        inet.sim.process(dialer())
        peer = yield from socks_accept_bound(control)
        result["peer_ip"] = peer[0]
        result["data"] = yield from control.recv_exactly(8)

    drive(inet.sim, proc_gen := binder())
    assert result["bound"][0] == server.addr[0]  # bound on the proxy itself
    assert result["peer_ip"] == target.ip
    assert result["data"] == b"inbound!"


def test_large_transfer_through_proxy():
    inet, server, client, target = _setup()
    payload = bytes(i % 251 for i in range(300_000))
    result = {}

    def sink():
        listener = listen(target, 7000)
        sock = yield from listener.accept()
        result["got"] = yield from sock.recv_exactly(len(payload))

    def proc():
        inet.sim.process(sink())
        sock = yield from socks_connect(client, server.addr, (target.ip, 7000))
        yield from sock.send_all(payload)

    inet.sim.process(proc())
    inet.sim.run(until=120)
    assert result["got"] == payload


def test_eof_propagates_through_pipes():
    inet, server, client, target = _setup()
    result = {}

    def sink():
        listener = listen(target, 7000)
        sock = yield from listener.accept()
        data = yield from sock.recv(100)
        result["target_got"] = data
        eof = yield from sock.recv(100)
        result["target_eof"] = eof
        sock.close()

    def proc():
        inet.sim.process(sink())
        sock = yield from socks_connect(client, server.addr, (target.ip, 7000))
        yield from sock.send_all(b"done")
        sock.close()

    inet.sim.process(proc())
    inet.sim.run(until=60)
    assert result == {"target_got": b"done", "target_eof": b""}


def test_garbage_greeting_aborted():
    from repro.simnet import ConnectionReset

    inet, server, client, _target = _setup()
    result = {}

    def proc():
        sock = yield from connect(client, server.addr)
        yield from sock.send_all(b"\x04\x01")  # SOCKS4: unsupported
        try:
            result["reply"] = yield from sock.recv(10)
        except ConnectionReset:
            result["reply"] = "reset"

    inet.sim.process(proc())
    inet.sim.run(until=60)
    # The proxy aborts the session: EOF or reset, never a SOCKS5 reply.
    assert result["reply"] in (b"", "reset")
