"""Link model: serialization, propagation, queueing, loss."""

import random

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Link, Transmitter
from repro.simnet.packet import SEGMENT_OVERHEAD, Segment


class _Sink:
    def __init__(self):
        self.got = []

    def __call__(self, seg):
        self.got.append(seg)


def _seg(n=0):
    return Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2), payload=b"x" * n)


def _tx(sim, delay=0.01, bandwidth=1e6, queue=10**9, loss=0.0, seed=0):
    tx = Transmitter(sim, delay, bandwidth, queue, loss, random.Random(seed))
    sink = _Sink()
    tx.deliver = sink
    return tx, sink


def test_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    tx, sink = _tx(sim, delay=0.01, bandwidth=1e6)
    seg = _seg(960)  # 1000 bytes on the wire
    tx.transmit(seg)
    sim.run()
    # 1000 B / 1e6 B/s = 1 ms serialization + 10 ms propagation
    assert sim.now == pytest.approx(0.011)
    assert sink.got == [seg]


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    tx, sink = _tx(sim, delay=0.0, bandwidth=1e6)
    times = []
    tx.deliver = lambda seg: times.append(sim.now)
    for _ in range(3):
        tx.transmit(_seg(960))
    sim.run()
    assert times == [pytest.approx(0.001 * (i + 1)) for i in range(3)]


def test_queue_drop_tail():
    sim = Simulator()
    seg_size = SEGMENT_OVERHEAD + 960
    tx, sink = _tx(sim, bandwidth=1e6, queue=2 * seg_size)
    for _ in range(5):
        tx.transmit(_seg(960))
    sim.run()
    assert len(sink.got) == 2
    assert tx.stats.drops_queue == 3


def test_loss_is_deterministic_per_seed():
    def run(seed):
        sim = Simulator()
        tx, sink = _tx(sim, loss=0.5, seed=seed)
        for _ in range(50):
            tx.transmit(_seg(10))
        sim.run()
        return len(sink.got), tx.stats.drops_loss

    assert run(1) == run(1)
    delivered, dropped = run(1)
    assert delivered + dropped == 50
    assert 0 < dropped < 50


def test_counters_track_bytes():
    sim = Simulator()
    tx, sink = _tx(sim)
    tx.transmit(_seg(100))
    sim.run()
    assert tx.stats.tx_bytes == SEGMENT_OVERHEAD + 100
    assert tx.stats.delivered_bytes == SEGMENT_OVERHEAD + 100


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Transmitter(sim, -1, 1e6, 10, 0.0, random.Random())
    with pytest.raises(ValueError):
        Transmitter(sim, 0.0, 0, 10, 0.0, random.Random())
    with pytest.raises(ValueError):
        Transmitter(sim, 0.0, 1e6, 10, 1.0, random.Random())


def test_link_default_queue_is_bdp_floored():
    sim = Simulator()
    link = Link(sim, delay=0.1, bandwidth=1e7)
    assert link.a_to_b.queue_bytes == int(1e7 * 0.1)
    small = Link(sim, delay=0.0001, bandwidth=1e6)
    assert small.a_to_b.queue_bytes == 65536


def test_link_directions_independent():
    sim = Simulator()
    link = Link(sim, delay=0.01, bandwidth=1e6, name="t")

    class FakeIface:
        def __init__(self):
            self.got = []

        def attach(self, link, tx):
            self.tx = tx

        def receive(self, seg):
            self.got.append(seg)

    fa, fb = FakeIface(), FakeIface()
    link.connect(fa, fb)
    fa.tx.transmit(_seg(10))
    fa.tx.transmit(_seg(10))
    fb.tx.transmit(_seg(10))
    sim.run()
    assert len(fb.got) == 2
    assert len(fa.got) == 1
