"""Measurement helpers and trace rendering utilities."""

import pytest

from repro.obs import SeriesRecorder, TransferMeter
from repro.simnet import Tracer, connect, handshake_diagram, mb_per_s
from repro.simnet.engine import Simulator
from repro.simnet.testing import drive, echo_server, two_public_hosts
from repro.simnet.trace import format_trace


class TestDeprecatedStatsShim:
    """The old ``repro.simnet.stats`` home still works, but warns."""

    @pytest.mark.filterwarnings("always::DeprecationWarning")
    def test_shim_warns_and_reexports(self):
        import repro.simnet.stats as stats

        with pytest.warns(DeprecationWarning, match="moved to repro.obs"):
            shimmed = stats.TransferMeter
        assert shimmed is TransferMeter
        with pytest.warns(DeprecationWarning, match="moved to repro.obs"):
            assert stats.SeriesRecorder is SeriesRecorder


class TestMbPerS:
    def test_basic(self):
        assert mb_per_s(1_000_000, 1.0) == 1.0
        assert mb_per_s(500_000, 0.25) == 2.0

    def test_zero_time_is_infinite(self):
        assert mb_per_s(100, 0.0) == float("inf")


class TestTransferMeter:
    def test_measures_interval(self):
        sim = Simulator()
        meter = TransferMeter(sim)

        def proc():
            meter.start()
            yield sim.timeout(2.0)
            meter.add(4_000_000)
            meter.stop()

        sim.process(proc())
        sim.run()
        assert meter.seconds == 2.0
        assert meter.throughput == pytest.approx(2.0)

    def test_unstopped_meter_uses_now(self):
        sim = Simulator()
        meter = TransferMeter(sim)
        meter.start()
        meter.add(100)
        sim.call_later(5.0, lambda: None)
        sim.run()
        assert meter.seconds == 5.0

    def test_unstarted_meter_raises(self):
        meter = TransferMeter(Simulator())
        with pytest.raises(RuntimeError):
            meter.seconds


class TestSeriesRecorder:
    def test_collects_points(self):
        series = SeriesRecorder("plain")
        series.add(16384, 0.9)
        series.add(65536, 1.2)
        assert series.xs() == [16384, 65536]
        assert series.ys() == [0.9, 1.2]
        assert series.peak() == 1.2

    def test_empty_peak_is_zero(self):
        assert SeriesRecorder("x").peak() == 0.0

    def test_format_rows(self):
        series = SeriesRecorder("s")
        series.add(100, 1.5)
        text = series.format_rows()
        assert "100" in text and "1.50" in text


class TestTraceRendering:
    def _trace(self):
        inet, a, b = two_public_hosts(seed=2)
        tracer = Tracer(inet.net, only={"rx"})

        def proc():
            inet.sim.process(echo_server(b, 5000))
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"x")
            yield from sock.recv_exactly(1)
            sock.close()

        drive(inet.sim, proc())
        return tracer

    def test_handshake_diagram_arrows(self):
        tracer = self._trace()
        arrows = handshake_diagram(tracer, "a", "b")
        assert any("SYN" in arrow and "-->" in arrow for arrow in arrows)

    def test_format_trace_lines(self):
        tracer = self._trace()
        text = format_trace(tracer.entries[:5])
        assert text.count("\n") == 4
        assert "rx" in text

    def test_filter_predicate(self):
        tracer = self._trace()
        syns = tracer.filter(
            lambda e: e.segment is not None and e.segment.syn
        )
        assert syns and all(e.segment.syn for e in syns)
