"""SimBackend protocol: both tiers answer the same narrow surface."""

import pytest

from repro.simnet import (
    FIDELITIES,
    FlowBackend,
    PacketBackend,
    SimBackend,
    make_backend,
)
from repro.simnet.testing import two_public_hosts


class TestFactory:
    def test_fidelities_make(self):
        for fidelity in FIDELITIES:
            backend = make_backend(fidelity)
            assert isinstance(backend, SimBackend)
            assert backend.fidelity == fidelity

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            make_backend("bogus")


class TestProtocolSurface:
    @pytest.mark.parametrize("fidelity", FIDELITIES)
    def test_clock_and_scheduling(self, fidelity):
        backend = make_backend(fidelity)
        assert backend.now == 0.0
        fired = []
        backend.call_later(1.0, fired.append, "later")
        backend.call_at(2.0, fired.append, "at")

        def proc():
            yield backend.timeout(0.5)
            fired.append("proc")

        backend.process(proc())
        backend.run(until=3.0)
        assert fired == ["proc", "later", "at"]
        assert backend.now == 3.0
        assert backend.pending_events == 0

    @pytest.mark.parametrize("fidelity", FIDELITIES)
    def test_run_until_triggered(self, fidelity):
        backend = make_backend(fidelity)
        ev = backend.event()
        backend.call_later(0.25, ev.succeed, 42)
        assert backend.run_until_triggered(ev, limit=10.0) == 42

    @pytest.mark.parametrize("fidelity", FIDELITIES)
    def test_describe_names_the_tier(self, fidelity):
        d = make_backend(fidelity).describe()
        assert d["fidelity"] == fidelity
        assert d["hosts"] == 0 and d["links"] == 0


class TestPacketLiveConnections:
    def test_open_connection_is_reported(self):
        from repro.simnet.sockets import connect, listen

        inet, a, b = two_public_hosts(seed=1)
        backend = PacketBackend(net=inet.net)
        assert backend.live_connections() == []

        def server():
            listener = listen(b, 5001)
            yield from listener.accept()

        def client():
            yield from connect(a, (b.ip, 5001))

        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=5.0)
        leaks = backend.live_connections()
        assert len(leaks) >= 2  # both ends of the established connection
        assert any("ESTABLISHED" in leak for leak in leaks)


class TestFlowLiveConnections:
    def test_in_flight_flow_is_reported(self):
        backend = FlowBackend()
        net = backend.net
        net.add_host("wan")
        net.add_host("a", "wan", bandwidth=1e6, delay=0.01)
        net.add_host("b", "wan", bandwidth=1e6, delay=0.01)
        net.start_flow("a", "b", 4 << 20, name="bulk")
        backend.run(until=1.0)
        leaks = backend.live_connections()
        assert len(leaks) == 1
        assert "bulk" in leaks[0] and "active" in leaks[0]
        backend.run(until=120.0)
        assert backend.live_connections() == []
        assert backend.pending_events == 0

    def test_describe_includes_flow_stats(self):
        backend = FlowBackend()
        backend.net.add_host("root")
        backend.net.add_host("a", "root")
        backend.net.add_host("b", "root")
        backend.net.start_flow("a", "b", 10_000)
        backend.run(until=30.0)
        d = backend.describe()
        assert d["hosts"] == 3 and d["links"] == 2
        assert d["flows_completed"] == 1
