"""Packet reordering (link jitter) and TCP's resilience to it."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import connect, listen
from repro.simnet.engine import Simulator
from repro.simnet.link import Transmitter
from repro.simnet.packet import Segment
from repro.simnet.testing import wan_pair


def test_jitter_reorders_packets():
    sim = Simulator()
    tx = Transmitter(
        sim, delay=0.001, bandwidth=1e9, queue_bytes=1 << 20, loss=0.0,
        rng=random.Random(3), jitter=0.005,
    )
    order = []
    tx.deliver = lambda seg: order.append(seg.seq)
    for i in range(50):
        tx.transmit(Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2), seq=i))
    sim.run()
    assert sorted(order) == list(range(50))
    assert order != list(range(50))  # genuinely reordered


def test_zero_jitter_preserves_order():
    sim = Simulator()
    tx = Transmitter(
        sim, delay=0.001, bandwidth=1e9, queue_bytes=1 << 20, loss=0.0,
        rng=random.Random(3), jitter=0.0,
    )
    order = []
    tx.deliver = lambda seg: order.append(seg.seq)
    for i in range(50):
        tx.transmit(Segment(src=("1.1.1.1", 1), dst=("2.2.2.2", 2), seq=i))
    sim.run()
    assert order == list(range(50))


def test_negative_jitter_rejected():
    with pytest.raises(ValueError):
        Transmitter(
            Simulator(), 0.001, 1e6, 1 << 20, 0.0, random.Random(), jitter=-1
        )


class TestTcpUnderReordering:
    def _transfer(self, jitter, loss, nbytes, seed):
        inet, a, b = wan_pair(
            capacity=4e6, one_way_delay=0.01, loss=loss, seed=seed, jitter=jitter
        )
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            got = bytearray()
            while True:
                data = yield from sock.recv(16384)
                if not data:
                    break
                got.extend(data)
            result["data"] = bytes(got)

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            payload = bytes((seed + i) % 256 for i in range(nbytes))
            result["sent"] = payload
            yield from sock.send_all(payload)
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=900)
        return result

    def test_integrity_with_heavy_jitter(self):
        res = self._transfer(jitter=0.02, loss=0.0, nbytes=500_000, seed=1)
        assert res["data"] == res["sent"]

    def test_integrity_with_jitter_and_loss(self):
        res = self._transfer(jitter=0.01, loss=0.02, nbytes=300_000, seed=2)
        assert res["data"] == res["sent"]

    @settings(max_examples=8, deadline=None)
    @given(
        jitter=st.sampled_from([0.0, 0.002, 0.01]),
        loss=st.sampled_from([0.0, 0.03]),
        seed=st.integers(0, 300),
        nbytes=st.integers(1, 40_000),
    )
    def test_stream_integrity_property(self, jitter, loss, seed, nbytes):
        res = self._transfer(jitter=jitter, loss=loss, nbytes=nbytes, seed=seed)
        assert res["data"] == res["sent"]

    def test_reordering_causes_spurious_fast_retransmits(self):
        """Reordering looks like loss to Reno: dupacks trigger retransmits
        even with zero actual loss — a real TCP phenomenon."""
        inet, a, b = wan_pair(
            capacity=4e6, one_way_delay=0.01, loss=0.0, seed=9, jitter=0.015
        )
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            while (yield from sock.recv(65536)):
                pass

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"r" * 2_000_000)
            result["retx"] = sock.tcp.retransmits
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=600)
        assert result["retx"] > 0
