"""Stateful firewall: conntrack, exemptions, strict outbound."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.firewall import StatefulFirewall
from repro.simnet.packet import Segment


def _seg(src, dst, sport=1000, dport=2000, **kwargs):
    return Segment(src=(src, sport), dst=(dst, dport), **kwargs)


INSIDE = "10.1.0.10"
OUTSIDE = "198.51.100.7"


class TestConntrack:
    def test_outbound_allowed_and_tracked(self):
        fw = StatefulFirewall()
        assert fw.egress(_seg(INSIDE, OUTSIDE, syn=True)) is not None
        assert fw.stats.out_allowed == 1

    def test_unsolicited_inbound_dropped(self):
        fw = StatefulFirewall()
        assert fw.ingress(_seg(OUTSIDE, INSIDE, syn=True)) is None
        assert fw.stats.in_dropped == 1

    def test_reply_to_tracked_flow_allowed(self):
        fw = StatefulFirewall()
        fw.egress(_seg(INSIDE, OUTSIDE, sport=5, dport=6, syn=True))
        reply = _seg(OUTSIDE, INSIDE, sport=6, dport=5, syn=True, ack_flag=True)
        assert fw.ingress(reply) is not None

    def test_crossing_syn_allowed_after_outbound_syn(self):
        """The Figure 2 splicing property."""
        fw = StatefulFirewall()
        fw.egress(_seg(INSIDE, OUTSIDE, sport=7000, dport=7001, syn=True))
        crossing = _seg(OUTSIDE, INSIDE, sport=7001, dport=7000, syn=True)
        assert fw.ingress(crossing) is not None

    def test_flow_match_is_exact(self):
        fw = StatefulFirewall()
        fw.egress(_seg(INSIDE, OUTSIDE, sport=1, dport=2))
        # different remote port: not the mirrored flow
        assert fw.ingress(_seg(OUTSIDE, INSIDE, sport=3, dport=1)) is None

    def test_flush_drops_state(self):
        fw = StatefulFirewall()
        fw.egress(_seg(INSIDE, OUTSIDE, sport=5, dport=6))
        fw.flush()
        assert fw.ingress(_seg(OUTSIDE, INSIDE, sport=6, dport=5)) is None

    def test_conntrack_expiry(self):
        sim = Simulator()
        fw = StatefulFirewall(conntrack_timeout=10.0, sim=sim)
        fw.egress(_seg(INSIDE, OUTSIDE, sport=5, dport=6))
        sim.run(until=100.0)  # advance the clock
        assert fw.ingress(_seg(OUTSIDE, INSIDE, sport=6, dport=5)) is None

    def test_activity_refreshes_entry(self):
        sim = Simulator()
        fw = StatefulFirewall(conntrack_timeout=10.0, sim=sim)
        fw.egress(_seg(INSIDE, OUTSIDE, sport=5, dport=6))
        sim.run(until=8.0)
        fw.egress(_seg(INSIDE, OUTSIDE, sport=5, dport=6))  # refresh
        sim.run(until=16.0)
        assert fw.ingress(_seg(OUTSIDE, INSIDE, sport=6, dport=5)) is not None


class TestPolicies:
    def test_open_ports_admit_unsolicited(self):
        fw = StatefulFirewall(open_ports={22})
        assert fw.ingress(_seg(OUTSIDE, INSIDE, dport=22, syn=True)) is not None
        assert fw.ingress(_seg(OUTSIDE, INSIDE, dport=23, syn=True)) is None

    def test_exempt_gateway_addresses(self):
        fw = StatefulFirewall()
        fw.exempt_ips.add("198.51.1.2")
        inbound = _seg(OUTSIDE, "198.51.1.2", syn=True)
        assert fw.ingress(inbound) is not None
        outbound = _seg("198.51.1.2", OUTSIDE, syn=True)
        assert fw.egress(outbound) is not None

    def test_strict_outbound_blocks_direct(self):
        fw = StatefulFirewall(
            strict_outbound=True, allowed_destinations={"198.51.1.2"}
        )
        assert fw.egress(_seg(INSIDE, OUTSIDE, syn=True)) is None
        assert fw.stats.out_dropped == 1
        assert fw.egress(_seg(INSIDE, "198.51.1.2", syn=True)) is not None

    def test_strict_outbound_established_flow_continues(self):
        fw = StatefulFirewall(
            strict_outbound=True, allowed_destinations={"198.51.1.2"}
        )
        fw.egress(_seg(INSIDE, "198.51.1.2", sport=1, dport=2, syn=True))
        # follow-up packets of the tracked flow pass
        assert fw.egress(_seg(INSIDE, "198.51.1.2", sport=1, dport=2)) is not None
