"""The library's own scenario helpers (repro.simnet.testing)."""

import pytest

from repro.simnet import ConeNAT, Internet, connect
from repro.simnet.testing import (
    drive,
    echo_server,
    reflector_server,
    run_transfer,
    sink_server,
    stun_probe,
    two_public_hosts,
    wan_pair,
)


class TestBuilders:
    def test_two_public_hosts_distinct(self):
        inet, a, b = two_public_hosts()
        assert a.ip != b.ip
        assert a.route(b.ip) is not None  # default route exists

    def test_wan_pair_rtt_matches(self):
        inet, a, b = wan_pair(capacity=5e6, one_way_delay=0.02, seed=1)
        out = {}

        def proc():
            inet.sim.process(echo_server(b, 5000))
            sock = yield from connect(a, (b.ip, 5000))
            t0 = inet.sim.now
            yield from sock.send_all(b"x")
            yield from sock.recv_exactly(1)
            out["rtt"] = inet.sim.now - t0

        drive(inet.sim, proc())
        assert out["rtt"] == pytest.approx(0.04, rel=0.2)

    def test_wan_pair_queue_floor(self):
        inet, a, b = wan_pair(capacity=1e5, one_way_delay=0.001, seed=1)
        # Tiny BDP still gets the 64 KiB router-buffer floor.
        assert inet.sites["left"].wan_link.a_to_b.queue_bytes >= 65536


class TestRunTransfer:
    def test_reports_consistent_metrics(self):
        inet, a, b = wan_pair(capacity=4e6, one_way_delay=0.005, seed=2)
        result = run_transfer(inet, a, b, 1_000_000)
        assert result["received"] == 1_000_000
        assert result["seconds"] > 0
        assert result["throughput"] == pytest.approx(
            1.0 / result["seconds"], rel=1e-6
        )

    def test_timeout_raises(self):
        inet, a, b = wan_pair(capacity=1e4, one_way_delay=0.01, seed=3)
        with pytest.raises(RuntimeError, match="did not complete"):
            run_transfer(inet, a, b, 50_000_000, until=1.0)


class TestSinkAndStun:
    def test_sink_server_counts(self):
        inet, a, b = two_public_hosts(seed=4)
        result = {}
        inet.sim.process(sink_server(b, 7000, result))

        def cli():
            sock = yield from connect(a, (b.ip, 7000))
            yield from sock.send_all(b"s" * 12345)
            sock.close()

        inet.sim.process(cli())
        inet.sim.run(until=inet.sim.now + 30)
        assert result["received"] == 12345

    def test_stun_probe_sees_nat_mapping(self):
        inet = Internet(seed=5)
        site = inet.add_site("n", nat=ConeNAT())
        node = site.add_node()
        public = inet.add_public_host("reflector")
        inet.sim.process(reflector_server(public, 3478))
        out = {}

        def proc():
            observed, probe = yield from stun_probe(node, (public.ip, 3478), 7100)
            out["observed"] = observed
            probe.close()

        drive(inet.sim, proc())
        assert out["observed"][0] == site.wan_ip  # the NAT's external face
