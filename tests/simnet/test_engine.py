"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import (
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(1.5)
        log.append(sim.now)
        yield sim.timeout(0.5)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [1.5, 2.0]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    log = []

    def proc(name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in "abcd":
        sim.process(proc(name))
    sim.run()
    assert log == list("abcd")


def test_timeout_value():
    sim = Simulator()
    out = []

    def proc():
        value = yield sim.timeout(1.0, value="hello")
        out.append(value)

    sim.process(proc())
    sim.run()
    assert out == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    def trigger():
        yield sim.timeout(3.0)
        ev.succeed(42)

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == [42]


def test_event_fail_propagates_into_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_raises_from_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody home"))
    with pytest.raises(RuntimeError, match="nobody home"):
        sim.run()


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_process_is_waitable_event():
    sim = Simulator()
    out = []

    def child():
        yield sim.timeout(2.0)
        return "result"

    def parent():
        value = yield sim.process(child())
        out.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert out == [(2.0, "result")]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["child died"]


def test_unwaited_process_exception_raises_from_run():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.process(child())
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    def interrupter(proc):
        yield sim.timeout(1.0)
        proc.interrupt("wake up")

    proc = sim.process(sleeper())
    sim.process(interrupter(proc))
    sim.run()
    assert log == [(1.0, "wake up")]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.1)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_any_of_triggers_on_first():
    sim = Simulator()
    out = []

    def proc():
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(5.0, value="slow")
        result = yield any_of(sim, [t1, t2])
        out.append((sim.now, list(result.values())))

    sim.process(proc())
    sim.run()
    assert out == [(1.0, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    out = []

    def proc():
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(5.0, value="b")
        result = yield all_of(sim, [t1, t2])
        out.append((sim.now, sorted(result.values())))

    sim.process(proc())
    sim.run()
    assert out == [(5.0, ["a", "b"])]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    out = []

    def proc():
        result = yield all_of(sim, [])
        out.append(result)

    sim.process(proc())
    sim.run()
    assert out == [{}]


def test_run_until_bound():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [10.0]


def test_call_later_and_call_at():
    sim = Simulator()
    log = []
    sim.call_later(2.0, lambda: log.append(("later", sim.now)))
    sim.call_at(1.0, lambda: log.append(("at", sim.now)))
    sim.run()
    assert log == [("at", 1.0), ("later", 2.0)]


def test_call_at_past_rejected():
    sim = Simulator()
    sim.call_later(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(1.0, lambda: None)


def test_run_until_triggered_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(3.0)
        return 99

    assert sim.run_until_triggered(sim.process(proc())) == 99


def test_run_until_triggered_raises_when_drained():
    sim = Simulator()
    ev = sim.event()  # never triggered
    with pytest.raises(SimulationError):
        sim.run_until_triggered(ev, limit=10.0)


def test_stop_ends_run():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(1.0)
        log.append("first")
        sim.stop()
        yield sim.timeout(1.0)
        log.append("second")

    sim.process(proc())
    sim.run()
    assert log == ["first"]
    sim.run()
    assert log == ["first", "second"]


def test_nested_yield_from_generators():
    sim = Simulator()
    out = []

    def inner():
        yield sim.timeout(1.0)
        return "inner-value"

    def outer():
        value = yield from inner()
        out.append((sim.now, value))

    sim.process(outer())
    sim.run()
    assert out == [(1.0, "inner-value")]


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        log = []

        def proc(n):
            for i in range(n):
                yield sim.timeout(0.5 * n)
                log.append((sim.now, n, i))

        for n in (1, 2, 3):
            sim.process(proc(n))
        sim.run()
        return log

    assert build() == build()
