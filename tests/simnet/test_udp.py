"""UDP datagram substrate."""

import pytest

from repro.simnet import Internet
from repro.simnet.testing import drive, two_public_hosts, wan_pair
from repro.simnet.udp import MAX_DATAGRAM, UdpError


class TestUdpSockets:
    def test_datagram_round_trip(self):
        inet, a, b = two_public_hosts(seed=1)
        res = {}

        def receiver():
            sock = b.udp.bind(9000)
            data, src = yield sock.recvfrom()
            res["data"] = data
            res["src_ip"] = src[0]
            sock.sendto(b"pong", src)

        def sender():
            sock = a.udp.bind(0)
            sock.sendto(b"ping", (b.ip, 9000))
            data, _src = yield sock.recvfrom()
            res["reply"] = data

        inet.sim.process(receiver())
        inet.sim.process(sender())
        inet.sim.run(until=10)
        assert res == {"data": b"ping", "src_ip": a.ip, "reply": b"pong"}

    def test_no_listener_drops_silently(self):
        inet, a, b = two_public_hosts(seed=2)

        def sender():
            sock = a.udp.bind(0)
            sock.sendto(b"void", (b.ip, 9999))
            yield inet.sim.timeout(1.0)

        drive(inet.sim, sender())
        assert b.udp.dropped_no_socket == 1

    def test_oversized_datagram_rejected(self):
        inet, a, _b = two_public_hosts(seed=3)
        sock = a.udp.bind(0)
        with pytest.raises(UdpError, match="too large"):
            sock.sendto(b"x" * (MAX_DATAGRAM + 1), ("198.51.100.11", 1))

    def test_duplicate_bind_rejected(self):
        inet, a, _b = two_public_hosts(seed=3)
        a.udp.bind(7777)
        with pytest.raises(UdpError, match="already bound"):
            a.udp.bind(7777)

    def test_close_releases_port(self):
        inet, a, _b = two_public_hosts(seed=3)
        sock = a.udp.bind(7777)
        sock.close()
        a.udp.bind(7777)  # rebindable

    def test_loss_applies_to_datagrams(self):
        inet, a, b = wan_pair(capacity=5e6, one_way_delay=0.005, loss=0.3, seed=7)
        res = {"got": 0}

        def receiver():
            sock = b.udp.bind(9000)
            while True:
                yield sock.recvfrom()
                res["got"] += 1

        def sender():
            sock = a.udp.bind(0)
            for _ in range(200):
                sock.sendto(b"d" * 100, (b.ip, 9000))
                yield inet.sim.timeout(0.001)

        inet.sim.process(receiver())
        inet.sim.process(sender())
        inet.sim.run(until=inet.sim.now + 10)
        assert 80 < res["got"] < 180  # ~30% loss

    def test_queue_overflow_drops(self):
        inet, a, b = two_public_hosts(seed=4)
        res = {}

        def sender():
            sock = a.udp.bind(0)
            rx = b.udp.bind(9000, rcv_queue=4)
            res["rx"] = rx
            for _ in range(10):
                sock.sendto(b"q", (b.ip, 9000))
            yield inet.sim.timeout(1.0)

        drive(inet.sim, sender())
        assert res["rx"].drops_queue_full == 6

    def test_udp_crosses_nat_outbound(self):
        from repro.simnet import ConeNAT

        inet = Internet(seed=5)
        site = inet.add_site("natted", nat=ConeNAT())
        inside = site.add_node()
        outside = inet.add_public_host("out")
        res = {}

        def server():
            sock = outside.udp.bind(9000)
            data, src = yield sock.recvfrom()
            res["data"] = data
            res["src_is_external"] = src[0] == site.wan_ip
            sock.sendto(b"back", src)

        def client():
            sock = inside.udp.bind(0)
            sock.sendto(b"out-through-nat", (outside.ip, 9000))
            data, _src = yield sock.recvfrom()
            res["reply"] = data

        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=10)
        assert res == {
            "data": b"out-through-nat",
            "src_is_external": True,
            "reply": b"back",
        }
