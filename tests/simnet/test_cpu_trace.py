"""CPU cost model and the packet tracer."""

import pytest

from repro.simnet import Internet, Tracer, connect, listen
from repro.simnet.cpu import CpuModel, charge
from repro.simnet.engine import Simulator
from repro.simnet.testing import drive, echo_server


class TestCpuModel:
    def test_work_takes_time(self):
        sim = Simulator()
        cpu = CpuModel(sim, rates={"compress": 1e6})
        done = []

        def proc():
            yield cpu.work("compress", 500_000)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_work_serializes_on_one_core(self):
        sim = Simulator()
        cpu = CpuModel(sim, rates={"compress": 1e6})
        done = []

        def proc(n):
            yield cpu.work("compress", 100_000)
            done.append((n, sim.now))

        sim.process(proc(1))
        sim.process(proc(2))
        sim.run()
        assert done[0][1] == pytest.approx(0.1)
        assert done[1][1] == pytest.approx(0.2)  # queued behind the first

    def test_two_cores_run_parallel(self):
        sim = Simulator()
        cpu = CpuModel(sim, rates={"compress": 1e6}, cores=2)
        done = []

        def proc(n):
            yield cpu.work("compress", 100_000)
            done.append(sim.now)

        sim.process(proc(1))
        sim.process(proc(2))
        sim.run()
        assert done == [pytest.approx(0.1), pytest.approx(0.1)]

    def test_unknown_kind_is_free(self):
        sim = Simulator()
        cpu = CpuModel(sim, rates={})
        done = []

        def proc():
            yield cpu.work("nonexistent", 10**9)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [0.0]

    def test_fixed_cost_ops(self):
        sim = Simulator()
        cpu = CpuModel(sim, op_costs={"dh": 0.02})
        done = []

        def proc():
            yield cpu.op("dh")
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(0.02)]

    def test_charge_helper_without_model_is_free(self):
        sim = Simulator()

        class FakeHost:
            cpu = None

        host = FakeHost()
        host.sim = sim
        done = []

        def proc():
            yield charge(host, "compress", 10**9)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [0.0]

    def test_busy_seconds_accumulates(self):
        sim = Simulator()
        cpu = CpuModel(sim, rates={"compress": 1e6})

        def proc():
            yield cpu.work("compress", 250_000)

        sim.process(proc())
        sim.run()
        assert cpu.busy_seconds == pytest.approx(0.25)

    def test_bad_cores_rejected(self):
        with pytest.raises(ValueError):
            CpuModel(Simulator(), cores=0)


class TestTracer:
    def _traced_transfer(self, **tracer_kwargs):
        inet = Internet(seed=4)
        a = inet.add_public_host("a")
        b = inet.add_public_host("b")
        tracer = Tracer(inet.net, **tracer_kwargs)

        def proc():
            inet.sim.process(echo_server(b, 5000))
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"traceme")
            yield from sock.recv_exactly(7)
            sock.close()

        drive(inet.sim, proc())
        return tracer

    def test_records_tx_and_rx(self):
        tracer = self._traced_transfer()
        kinds = {e.kind for e in tracer.entries}
        assert "tx" in kinds and "rx" in kinds

    def test_kind_filter(self):
        tracer = self._traced_transfer(only={"rx"})
        assert all(e.kind == "rx" for e in tracer.entries)

    def test_host_filter(self):
        tracer = self._traced_transfer(hosts={"a"})
        assert all(e.host == "a" for e in tracer.entries)
        assert tracer.entries

    def test_handshake_segments_extracted(self):
        tracer = self._traced_transfer(only={"rx"})
        flags = [e.segment.flags_str() for e in tracer.handshake_segments()]
        assert "SYN" in flags and "SYN|ACK" in flags

    def test_render_is_readable(self):
        tracer = self._traced_transfer(only={"rx"}, hosts={"b"})
        text = tracer.render()
        assert "SYN" in text
        assert "ms" in text

    def test_detach_stops_recording(self):
        inet = Internet(seed=4)
        a = inet.add_public_host("a")
        b = inet.add_public_host("b")
        tracer = Tracer(inet.net)
        tracer.detach()

        def proc():
            inet.sim.process(echo_server(b, 5000))
            sock = yield from connect(a, (b.ip, 5000))
            sock.close()

        drive(inet.sim, proc())
        assert tracer.entries == []

    def test_state_transitions_traced(self):
        tracer = self._traced_transfer(only={"tcp-state"})
        details = [e.detail for e in tracer.entries]
        assert any("ESTABLISHED" in d for d in details)
