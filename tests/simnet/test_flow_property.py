"""Property: on loss-free WAN mixes the two tiers agree within 15%.

Hypothesis draws a small random topology (sites with random access
capacities hanging off one backbone) plus a random transfer mix, builds
the *same* experiment on the packet tier and the flow tier, and compares
aggregate throughput (total bytes / makespan).  The draw is constrained
to the regime the flow tier claims to model: bulk transfers
(>= 1.5 MiB, so the fluid slow-start approximation is amortized),
configured loss zero (drop-tail queue loss still happens under
congestion), equal WAN-scale access delays so no flow is RTT-biased,
one-directional site roles, and one transfer per (src, dst) site pair.
The excluded shapes are exactly the documented model limits (see
docs/SIMNET.md): opposite-direction transfers on one path disturb each
other's ACK clocking, and a bundle of loss-free connections on one
short-RTT path synchronizes its drop-tail sawteeth — both packet-tier
effects a fluid rate model deliberately does not represent (and which
statistical multiplexing washes out at the fleet scale this tier
targets).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.flow import FlowNetwork
from repro.simnet.testing import sink_server
from repro.simnet.topology import Internet
from repro.simnet.sockets import connect

AGREEMENT = 0.15

sites_strategy = st.lists(
    st.floats(min_value=1.5e6, max_value=2.5e6),  # access capacity, B/s
    min_size=2,
    max_size=4,
)
transfers_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),  # src site index (mod n_sites)
        st.integers(0, 3),  # dst offset (never 0 after mod)
        st.integers(1536 * 1024, 3 * 1024 * 1024),  # bytes
    ),
    min_size=1,
    max_size=3,
)


def _mix(capacities, raw_transfers):
    # bipartite roles (a site either sends or receives) and distinct
    # (src, dst) pairs: flows share links only through partially
    # overlapping pairs; surplus draws are dropped once pairs run out
    n = len(capacities)
    split = max(1, n // 2)
    pairs = [(a, b) for a in range(split) for b in range(split, n)]
    transfers = []
    used = set()
    for src, off, size in raw_transfers:
        start = (src * 7 + off) % len(pairs)
        for k in range(len(pairs)):
            pair = pairs[(start + k) % len(pairs)]
            if pair not in used:
                used.add(pair)
                transfers.append((pair[0], pair[1], size))
                break
    return transfers


def _packet_makespan(capacities, transfers, delay, seed):
    inet = Internet(seed=seed)
    nodes = []
    for i, cap in enumerate(capacities):
        site = inet.add_site(
            f"s{i}",
            access_delay=delay,
            access_bandwidth=cap,
            queue_bytes=max(65536, int(cap * 4 * delay)),
        )
        # one node per transfer endpoint keeps ports trivially distinct
        nodes.append(site)
    done = {}
    for t, (a, b, size) in enumerate(transfers):
        sender = nodes[a].add_node(f"tx{t}")
        receiver = nodes[b].add_node(f"rx{t}")
        inet.sim.process(sink_server(receiver, 5001, done, key=str(t)))

        def client(sender=sender, receiver=receiver, size=size):
            sock = yield from connect(sender, (receiver.ip, 5001))
            chunk = bytes(65536)
            remaining = size
            while remaining > 0:
                n = min(len(chunk), remaining)
                yield from sock.send_all(chunk[:n])
                remaining -= n
            sock.close()

        inet.sim.process(client())
    inet.sim.run(until=3600.0)
    stamps = [done.get(f"{t}_t") for t in range(len(transfers))]
    assert all(s is not None for s in stamps), "packet transfer incomplete"
    return max(stamps)


def _flow_makespan(capacities, transfers, delay, seed):
    net = FlowNetwork(seed=seed)
    net.add_host("wan")
    for i, cap in enumerate(capacities):
        net.add_host(f"s{i}", "wan", bandwidth=cap, delay=delay)
    flows = [
        net.start_flow(f"s{a}", f"s{b}", size)
        for a, b, size in transfers
    ]
    net.sim.run(until=3600.0)
    assert all(f.state == "done" for f in flows), "flow transfer incomplete"
    return max(f.finished_at for f in flows)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(
    capacities=sites_strategy,
    raw_transfers=transfers_strategy,
    delay=st.sampled_from([0.015, 0.020, 0.025]),
    seed=st.integers(0, 100),
)
def test_tiers_agree_on_random_mix(capacities, raw_transfers, delay, seed):
    transfers = _mix(capacities, raw_transfers)
    total = sum(size for _, _, size in transfers)
    packet = total / _packet_makespan(capacities, transfers, delay, seed)
    flow = total / _flow_makespan(capacities, transfers, delay, seed)
    ratio = flow / packet
    assert abs(ratio - 1.0) <= AGREEMENT, (
        f"sites={[f'{c:.2e}' for c in capacities]} transfers={transfers} "
        f"delay={delay}: flow {flow:.0f} vs packet {packet:.0f} B/s "
        f"(ratio {ratio:.3f})"
    )
