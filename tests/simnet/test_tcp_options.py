"""Nagle (TCP_NODELAY) and delayed-ACK behaviour (paper §4.1).

"TCP does have a built-in mechanism for packet aggregation, called
TCP_DELAY, but this is unfortunately unfit for parallel programming since
it adds significantly to the latency."
"""

import pytest

from repro.simnet import TcpConfig, Tracer, connect, listen
from repro.simnet.testing import two_public_hosts


def _two_part_request(nodelay, delayed_ack=0.0, seed=3):
    """Client writes a request in two small parts; server answers after
    receiving both — the classic write-write-read pattern Nagle penalizes."""
    inet, a, b = two_public_hosts(seed=seed)
    cfg = TcpConfig(nodelay=nodelay, delayed_ack=delayed_ack)
    res = {}

    def server():
        b.tcp.config = cfg
        listener = listen(b, 5000)
        sock = yield from listener.accept()
        yield from sock.recv_exactly(8)  # header + body
        yield from sock.send_all(b"resp")

    def client():
        sock = yield from connect(a, (b.ip, 5000), config=cfg)
        t0 = inet.sim.now
        yield from sock.send_all(b"head")  # part 1 (runt)
        yield from sock.send_all(b"body")  # part 2 (runt, Nagle-held)
        yield from sock.recv_exactly(4)
        res["elapsed"] = inet.sim.now - t0

    inet.sim.process(server())
    inet.sim.process(client())
    inet.sim.run(until=inet.sim.now + 30)
    return res["elapsed"]


class TestNagle:
    def test_nodelay_sends_runts_immediately(self):
        inet, a, b = two_public_hosts(seed=1)
        tracer = Tracer(inet.net, only={"tx"}, hosts={"a"})
        res = {}

        def server():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            res["got"] = yield from sock.recv_exactly(8)

        def client():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"tiny")
            yield from sock.send_all(b"tiny")

        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=inet.sim.now + 10)
        payload_segments = [
            e for e in tracer.entries if e.segment is not None and e.segment.payload
        ]
        # Two separate runt segments went out back to back.
        assert len(payload_segments) == 2

    def test_nagle_coalesces_runts(self):
        inet, a, b = two_public_hosts(seed=1)
        cfg = TcpConfig(nodelay=False)
        tracer = Tracer(inet.net, only={"tx"}, hosts={"a"})
        res = {}

        def server():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            res["got"] = yield from sock.recv_exactly(12)

        def client():
            sock = yield from connect(a, (b.ip, 5000), config=cfg)
            yield from sock.send_all(b"tiny")  # flies immediately (no flight)
            yield from sock.send_all(b"tiny")  # held by Nagle
            yield from sock.send_all(b"tiny")  # coalesced with the held one
        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=inet.sim.now + 10)
        assert res["got"] == b"tiny" * 3
        payload_segments = [
            e for e in tracer.entries if e.segment is not None and e.segment.payload
        ]
        # First runt + one coalesced segment, not three.
        assert len(payload_segments) == 2

    def test_nagle_adds_latency_to_two_part_requests(self):
        fast = _two_part_request(nodelay=True)
        slow = _two_part_request(nodelay=False)
        # The second part waits for the first part's ACK: ~ one extra RTT.
        assert slow > fast + 0.004

    def test_nagle_does_not_block_full_segments(self):
        inet, a, b = two_public_hosts(seed=2)
        cfg = TcpConfig(nodelay=False)
        res = {}

        def server():
            b.tcp.config = cfg
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            res["got"] = len((yield from sock.recv_exactly(100_000)))

        def client():
            sock = yield from connect(a, (b.ip, 5000), config=cfg)
            yield from sock.send_all(b"B" * 100_000)

        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=inet.sim.now + 30)
        assert res["got"] == 100_000


class TestDelayedAck:
    def test_lone_segment_ack_is_delayed(self):
        inet, a, b = two_public_hosts(seed=4)
        cfg = TcpConfig(delayed_ack=0.04)
        res = {}

        def server():
            b.tcp.config = cfg
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            yield from sock.recv_exactly(4)

        def client():
            sock = yield from connect(a, (b.ip, 5000), config=cfg)
            t0 = inet.sim.now
            yield from sock.send_all(b"solo")
            # Wait until the data is acknowledged.
            while sock.tcp.snd_una < sock.tcp.snd_nxt:
                yield inet.sim.timeout(0.001)
            res["ack_delay"] = inet.sim.now - t0

        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=inet.sim.now + 10)
        # RTT is ~8 ms; the delayed-ACK timer adds ~40 ms on top.
        assert res["ack_delay"] > 0.035

    def test_second_segment_triggers_immediate_ack(self):
        inet, a, b = two_public_hosts(seed=4)
        cfg = TcpConfig(delayed_ack=0.04)
        res = {}

        def server():
            b.tcp.config = cfg
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            yield from sock.recv_exactly(2920)

        def client():
            sock = yield from connect(a, (b.ip, 5000), config=cfg)
            t0 = inet.sim.now
            yield from sock.send_all(b"x" * 2920)  # exactly two segments
            while sock.tcp.snd_una < sock.tcp.snd_nxt:
                yield inet.sim.timeout(0.001)
            res["ack_delay"] = inet.sim.now - t0

        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=inet.sim.now + 10)
        assert res["ack_delay"] < 0.03  # no 40 ms stall

    def test_bulk_transfer_survives_delayed_acks(self):
        inet, a, b = two_public_hosts(seed=5)
        cfg = TcpConfig(delayed_ack=0.04)
        res = {}

        def server():
            b.tcp.config = cfg
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            got = bytearray()
            while len(got) < 200_000:
                got.extend((yield from sock.recv(65536)))
            res["n"] = len(got)

        def client():
            sock = yield from connect(a, (b.ip, 5000), config=cfg)
            yield from sock.send_all(b"y" * 200_000)

        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=inet.sim.now + 60)
        assert res["n"] == 200_000
