"""TCP state machine: handshakes, splicing, reliability, congestion control."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import (
    ConnectRefused,
    ConnectTimeout,
    Internet,
    TcpConfig,
    Tracer,
    connect,
    connect_simultaneous,
    listen,
)
from repro.simnet.testing import (
    drive,
    echo_server,
    run_transfer,
    two_public_hosts,
    wan_pair,
)


class TestHandshake:
    def test_client_server_establishes(self):
        inet, a, b = two_public_hosts()
        result = {}

        def proc():
            inet.sim.process(echo_server(b, 5000))
            sock = yield from connect(a, (b.ip, 5000))
            result["laddr"] = sock.laddr
            result["raddr"] = sock.raddr
            sock.close()

        drive(inet.sim, proc())
        assert result["raddr"] == (b.ip, 5000)
        assert result["laddr"][0] == a.ip

    def test_connect_to_closed_port_refused(self):
        inet, a, b = two_public_hosts()

        def proc():
            with pytest.raises(ConnectRefused):
                yield from connect(a, (b.ip, 4444))

        drive(inet.sim, proc())

    def test_connect_to_unreachable_times_out(self):
        inet, a, b = two_public_hosts()

        def proc():
            with pytest.raises(ConnectTimeout):
                # No route to this address: SYNs vanish.
                yield from connect(a, ("198.51.99.99", 80))

        drive(inet.sim, proc(), until=600)

    def test_handshake_packet_sequence(self):
        inet, a, b = two_public_hosts()
        tracer = Tracer(inet.net, only={"rx"}, hosts={"a", "b"})

        def proc():
            inet.sim.process(echo_server(b, 5000))
            sock = yield from connect(a, (b.ip, 5000))
            sock.close()

        drive(inet.sim, proc())
        syn_segs = [
            e.segment.flags_str()
            for e in tracer.entries
            if e.segment is not None and e.segment.syn
        ]
        # Figure 1 left: SYN then SYN|ACK (final ACK carries no SYN).
        assert syn_segs[:2] == ["SYN", "SYN|ACK"]

    def test_splicing_packet_sequence(self):
        inet, a, b = two_public_hosts()
        tracer = Tracer(inet.net, only={"rx"}, hosts={"a", "b"})
        done = {}

        def side(host, peer, lport, rport, key):
            sock = yield from connect_simultaneous(host, (peer.ip, rport), lport)
            done[key] = sock.laddr

        inet.sim.process(side(a, b, 7000, 7001, "a"))
        inet.sim.process(side(b, a, 7001, 7000, "b"))
        inet.sim.run(until=30)
        assert done.keys() == {"a", "b"}
        syns = [
            e.segment.flags_str()
            for e in tracer.entries
            if e.segment is not None and e.segment.syn
        ]
        # Figure 1 right: both bare SYNs cross, then both SYN|ACKs.
        assert syns.count("SYN") == 2
        assert syns.count("SYN|ACK") == 2

    def test_accept_queue_multiple_clients(self):
        inet = Internet()
        server = inet.add_public_host("srv")
        clients = [inet.add_public_host(f"c{i}") for i in range(3)]
        result = {"served": 0}

        def srv():
            listener = listen(server, 5000, backlog=8)
            for _ in range(3):
                sock = yield from listener.accept()
                data = yield from sock.recv_exactly(2)
                assert data == b"hi"
                result["served"] += 1
                sock.close()

        def cli(host):
            sock = yield from connect(host, (server.ip, 5000))
            yield from sock.send_all(b"hi")
            sock.close()

        inet.sim.process(srv())
        for c in clients:
            inet.sim.process(cli(c))
        inet.sim.run(until=30)
        assert result["served"] == 3


class TestDataTransfer:
    def test_bytes_arrive_intact_and_ordered(self):
        inet, a, b = two_public_hosts()
        payload = bytes(i % 251 for i in range(200_000))
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            got = bytearray()
            while True:
                data = yield from sock.recv(8192)
                if not data:
                    break
                got.extend(data)
            result["data"] = bytes(got)

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(payload)
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=120)
        assert result["data"] == payload

    def test_transfer_survives_packet_loss(self):
        inet, sender, receiver = wan_pair(
            capacity=2e6, one_way_delay=0.02, loss=0.02, seed=3
        )
        result = run_transfer(inet, sender, receiver, 500_000)
        assert result["received"] == 500_000
        assert result["throughput"] > 0.05

    def test_retransmission_counters_increase_under_loss(self):
        inet, a, b = wan_pair(capacity=2e6, one_way_delay=0.01, loss=0.05, seed=5)
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            total = 0
            while True:
                data = yield from sock.recv(65536)
                if not data:
                    break
                total += len(data)
            result["total"] = total

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"z" * 300_000)
            result["retx"] = sock.tcp.retransmits
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=600)
        assert result["total"] == 300_000
        assert result["retx"] > 0

    def test_bidirectional_transfer(self):
        inet, a, b = two_public_hosts()
        result = {}

        def side(me, peer_ip, port, peer_port, key, starts):
            if starts:
                listener = listen(me, port)
                sock = yield from listener.accept()
            else:
                sock = yield from connect(me, (peer_ip, peer_port))
            yield from sock.send_all(bytes([len(key)]) * 50_000)
            got = yield from sock.recv_exactly(50_000)
            result[key] = got[:1]
            sock.close()

        inet.sim.process(side(a, b.ip, 0, 5000, "a", False))
        inet.sim.process(side(b, a.ip, 5000, 0, "bb", True))
        inet.sim.run(until=60)
        assert result == {"a": bytes([2]), "bb": bytes([1])}

    def test_eof_after_close(self):
        inet, a, b = two_public_hosts()
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            result["first"] = yield from sock.recv(100)
            result["eof"] = yield from sock.recv(100)
            sock.close()

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"bye")
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=30)
        assert result == {"first": b"bye", "eof": b""}

    def test_flow_control_slow_reader(self):
        """A slow reader's window throttles the sender without data loss."""
        inet, a, b = two_public_hosts()
        n = 300_000
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            got = 0
            while True:
                data = yield from sock.recv(4096)
                if not data:
                    break
                got += len(data)
                yield inet.sim.timeout(0.001)  # read slowly
            result["got"] = got

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"q" * n)
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=600)
        assert result["got"] == n

    @settings(max_examples=10, deadline=None)
    @given(
        nbytes=st.integers(min_value=1, max_value=60_000),
        loss=st.sampled_from([0.0, 0.01, 0.05]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_stream_integrity_property(self, nbytes, loss, seed):
        """TCP delivers exactly the sent byte stream under any loss rate."""
        inet, a, b = wan_pair(capacity=5e6, one_way_delay=0.005, loss=loss, seed=seed)
        payload = bytes((seed + i) % 256 for i in range(nbytes))
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            got = bytearray()
            while True:
                data = yield from sock.recv(8192)
                if not data:
                    break
                got.extend(data)
            result["data"] = bytes(got)

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(payload)
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=900)
        assert result["data"] == payload


class TestCongestionAndWindows:
    def test_receive_window_caps_wan_throughput(self):
        """High-BDP link: throughput ~ rcvbuf/RTT, far below capacity (§4.2)."""
        inet, a, b = wan_pair(capacity=9e6, one_way_delay=0.0215, seed=1)
        result = run_transfer(inet, a, b, 2_000_000)
        rtt = 0.043
        window_limit = 65536 / rtt / 1e6  # MB/s
        assert result["throughput"] < 0.35 * 9  # nowhere near capacity
        assert result["throughput"] == pytest.approx(window_limit, rel=0.35)

    def test_bigger_buffers_help_but_recovery_is_inert(self):
        """§4.2: window scaling lifts the cap, but single-stream TCP still
        cannot fill a high-BDP pipe because loss recovery is slow."""
        inet, a, b = wan_pair(capacity=9e6, one_way_delay=0.0215, seed=1)
        small = run_transfer(inet, a, b, 2_000_000)
        inet, a, b = wan_pair(capacity=9e6, one_way_delay=0.0215, seed=1)
        cfg = TcpConfig(sndbuf=1 << 20, rcvbuf=1 << 20)
        big = run_transfer(inet, a, b, 16_000_000, config=cfg)
        assert big["throughput"] > 1.8 * small["throughput"]
        assert big["throughput"] < 0.8 * 9  # still not filling the pipe

    def test_low_bdp_lan_reaches_capacity(self):
        inet, a, b = two_public_hosts()  # 2ms, 125 MB/s access links
        # LAN-ish pair: short path below; use wan_pair with tiny delay
        inet, a, b = wan_pair(capacity=12.5e6, one_way_delay=0.0005, seed=2)
        result = run_transfer(inet, a, b, 3_000_000)
        assert result["throughput"] > 0.8 * 12.5

    def test_slow_start_then_congestion_avoidance(self):
        inet, a, b = wan_pair(capacity=1.6e6, one_way_delay=0.015, seed=4)
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            while True:
                data = yield from sock.recv(65536)
                if not data:
                    break

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            cfg = sock.tcp.cfg
            assert sock.tcp.cwnd == cfg.initial_cwnd * cfg.mss
            yield from sock.send_all(b"x" * 400_000)
            result["cwnd"] = sock.tcp.cwnd
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=300)
        # cwnd grew beyond the initial value
        assert result["cwnd"] > 2 * 1460

    def test_fast_retransmit_triggers_on_loss(self):
        inet, a, b = wan_pair(capacity=4e6, one_way_delay=0.01, loss=0.01, seed=9)
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            total = 0
            while True:
                data = yield from sock.recv(65536)
                if not data:
                    break
                total += len(data)
            result["total"] = total

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"f" * 1_000_000)
            result["fast"] = sock.tcp.fast_retransmits
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=600)
        assert result["total"] == 1_000_000
        assert result["fast"] > 0

    def test_rtt_estimator_converges(self):
        inet, a, b = wan_pair(capacity=5e6, one_way_delay=0.02, seed=6)
        result = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            while (yield from sock.recv(65536)):
                pass

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"r" * 200_000)
            result["srtt"] = sock.tcp.srtt
            sock.close()

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=120)
        assert result["srtt"] == pytest.approx(0.04, rel=0.5)


class TestPortManagement:
    def test_duplicate_bind_rejected(self):
        inet, a, b = two_public_hosts()
        listen(a, 5000)
        from repro.simnet.tcp import TcpError

        with pytest.raises(TcpError):
            listen(a, 5000)

    def test_reuse_allows_shared_port(self):
        inet, a, b = two_public_hosts()
        result = {}

        def proc():
            inet.sim.process(echo_server(b, 5000))
            inet.sim.process(echo_server(b, 5001))
            s1 = yield from connect(a, (b.ip, 5000), lport=9000, reuse=True)
            s2 = yield from connect(a, (b.ip, 5001), lport=9000, reuse=True)
            yield from s1.send_all(b"one")
            yield from s2.send_all(b"two")
            result["r1"] = yield from s1.recv_exactly(3)
            result["r2"] = yield from s2.recv_exactly(3)

        drive(inet.sim, proc())
        assert result == {"r1": b"one", "r2": b"two"}

    def test_ephemeral_ports_unique(self):
        inet, a, b = two_public_hosts()
        ports = set()

        def proc():
            for i in range(5):
                inet.sim.process(echo_server(b, 6000 + i))
            socks = []
            for i in range(5):
                s = yield from connect(a, (b.ip, 6000 + i))
                ports.add(s.laddr[1])
                socks.append(s)

        drive(inet.sim, proc())
        assert len(ports) == 5
