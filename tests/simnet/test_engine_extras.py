"""Engine utilities added during integration: with_timeout and friends."""

import pytest

from repro.simnet.engine import (
    Interrupt,
    SimulationError,
    Simulator,
    with_timeout,
)


class TestWithTimeout:
    def test_returns_value_when_fast_enough(self):
        sim = Simulator()
        out = []

        def inner():
            yield sim.timeout(1.0)
            return "done"

        def outer():
            value = yield from with_timeout(sim, inner(), 5.0)
            out.append((sim.now, value))

        sim.process(outer())
        sim.run()
        assert out == [(1.0, "done")]

    def test_raises_timeout_and_interrupts_inner(self):
        sim = Simulator()
        out = {}

        def inner():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                out["interrupted_at"] = sim.now
                raise

        def outer():
            try:
                yield from with_timeout(sim, inner(), 2.0)
            except TimeoutError:
                out["timeout_at"] = sim.now

        sim.process(outer())
        sim.run()
        assert out == {"interrupted_at": 2.0, "timeout_at": 2.0}

    def test_inner_exception_propagates(self):
        sim = Simulator()
        out = {}

        def inner():
            yield sim.timeout(0.5)
            raise ValueError("inner boom")

        def outer():
            try:
                yield from with_timeout(sim, inner(), 5.0)
            except ValueError as exc:
                out["error"] = str(exc)

        sim.process(outer())
        sim.run()
        assert out == {"error": "inner boom"}

    def test_inner_cleanup_runs_on_timeout(self):
        sim = Simulator()
        cleaned = []

        def inner():
            try:
                yield sim.timeout(100.0)
            finally:
                cleaned.append(sim.now)

        def outer():
            with pytest.raises(TimeoutError):
                yield from with_timeout(sim, inner(), 1.5)

        sim.process(outer())
        sim.run()
        assert cleaned == [1.5]


class TestProcessEdgeCases:
    def test_process_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_self_interrupt_rejected(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0)
            me = sim.active_process
            with pytest.raises(SimulationError):
                me.interrupt()

        sim.process(proc())
        sim.run()

    def test_immediate_return_process(self):
        sim = Simulator()

        def empty():
            return 7
            yield  # pragma: no cover

        value = sim.run_until_triggered(sim.process(empty()))
        assert value == 7

    def test_waiting_on_already_finished_process(self):
        sim = Simulator()
        out = []

        def quick():
            yield sim.timeout(0.1)
            return "early"

        def late(proc):
            yield sim.timeout(5.0)
            value = yield proc  # already processed
            out.append(value)

        proc = sim.process(quick())
        sim.process(late(proc))
        sim.run()
        assert out == ["early"]
