"""Flow-level fidelity tier: rate model, solver, lifecycle, faults."""

import math

import pytest

from repro.core.utilization.spec import StackSpec
from repro.simnet.flow import (
    MSS,
    PIPE_UTILIZATION,
    WINDOW_EFFICIENCY,
    WIRE_EFFICIENCY,
    FlowNetwork,
    aimd_rate,
    slow_start_penalty,
    spec_flow_params,
)


def _goodput(capacity):
    return capacity * WIRE_EFFICIENCY * PIPE_UTILIZATION


def dumbbell(capacity=2_000_000.0, delay=0.01, loss=0.0):
    net = FlowNetwork()
    net.add_host("wan")
    net.add_host("a", "wan", bandwidth=capacity, delay=delay, loss=loss)
    net.add_host("b", "wan", bandwidth=capacity, delay=delay)
    return net


class TestAimdRate:
    def test_loss_free_is_window_bound(self):
        rtt = 0.04
        expected = WINDOW_EFFICIENCY * 65536.0 / MSS
        expected = max(1.0, expected) * MSS / rtt
        assert aimd_rate(rtt, 0.0) == pytest.approx(expected)

    def test_heavy_loss_follows_mathis_scaling(self):
        # deep in the loss-limited regime, rate ~ 1/sqrt(p)
        r1 = aimd_rate(0.03, 0.01)
        r2 = aimd_rate(0.03, 0.04)
        assert r1 / r2 == pytest.approx(2.0, rel=0.01)

    def test_loss_monotonic(self):
        rates = [aimd_rate(0.04, p) for p in (0.0, 1e-5, 1e-4, 1e-3, 1e-2)]
        assert rates == sorted(rates, reverse=True)
        # even rare loss costs something against the loss-free ceiling
        assert rates[1] < rates[0]

    def test_streams_add_linearly(self):
        one = aimd_rate(0.03, 0.001)
        assert aimd_rate(0.03, 0.001, streams=8) == pytest.approx(8 * one)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            aimd_rate(0.0, 0.0)
        with pytest.raises(ValueError):
            aimd_rate(0.03, 1.0)
        with pytest.raises(ValueError):
            aimd_rate(0.03, 0.0, streams=0)


class TestSlowStartPenalty:
    def test_small_window_is_free(self):
        assert slow_start_penalty(MSS / 0.04, 0.04) == 0.0

    def test_large_window_pays_rtts(self):
        rate = 256 * MSS / 0.04  # W = 256 segments
        penalty = slow_start_penalty(rate, 0.04)
        assert penalty == pytest.approx(0.04 * (math.log2(256) - 3.0))


class TestSpecFlowParams:
    def test_parallel_streams(self):
        assert spec_flow_params(StackSpec.parallel(4))["streams"] == 4

    def test_mux_window_caps_rwnd(self):
        spec = StackSpec.tcp().with_mux(window=16384)
        assert spec_flow_params(spec)["rwnd"] == 16384.0

    def test_plain_tcp(self):
        params = spec_flow_params(StackSpec.tcp())
        assert params == {"streams": 1}


class TestSolver:
    def test_single_flow_gets_its_ceiling(self):
        net = dumbbell(capacity=20_000_000.0)
        flow = net.start_flow("a", "b", 1 << 20)
        net.sim.run(until=0.2)
        assert flow.state == "active"
        assert flow.rate == pytest.approx(flow.ceiling)

    def test_bottleneck_shared_fairly(self):
        net = dumbbell(capacity=1_000_000.0)
        flows = [net.start_flow("a", "b", 8 << 20) for _ in range(4)]
        net.sim.run(until=0.5)
        fair = _goodput(1_000_000.0) / 4
        for f in flows:
            assert f.rate == pytest.approx(fair)

    def test_max_min_with_mixed_ceilings(self):
        # two flows share a 2 MB/s pipe; one is window-capped well below
        # its fair share, the other picks up the slack
        net = FlowNetwork()
        net.add_host("wan")
        net.add_host("a", "wan", bandwidth=2_000_000.0, delay=0.05)
        net.add_host("b", "wan", bandwidth=2_000_000.0, delay=0.0001)
        net.add_host("c", "wan", bandwidth=2_000_000.0, delay=0.0001)
        small = net.start_flow("a", "c", 8 << 20, rwnd=16384.0)
        big = net.start_flow("b", "c", 8 << 20)
        net.sim.run(until=0.5)
        bottleneck = _goodput(2_000_000.0)
        assert small.rate == pytest.approx(small.ceiling)
        assert small.ceiling < bottleneck / 2
        assert big.rate == pytest.approx(
            min(big.ceiling, bottleneck - small.ceiling)
        )

    def test_completion_frees_bandwidth(self):
        net = dumbbell(capacity=1_000_000.0)
        short = net.start_flow("a", "b", 100_000)
        long = net.start_flow("a", "b", 4 << 20)
        net.sim.run(until=120.0)
        assert short.state == "done" and long.state == "done"
        assert short.finished_at < long.finished_at
        assert long.delivered == pytest.approx(4 << 20, abs=1.0)

    def test_completion_time_matches_rate_integral(self):
        net = dumbbell(capacity=2_000_000.0)
        size = 2 << 20
        flow = net.start_flow("a", "b", size)
        net.sim.run(until=60.0)
        rate = min(flow.ceiling, _goodput(2_000_000.0))
        expected = flow.active_from + size / rate
        assert flow.finished_at == pytest.approx(expected, rel=1e-6)

    def test_done_event_triggers(self):
        net = dumbbell()
        flow = net.start_flow("a", "b", 50_000)
        result = net.sim.run_until_triggered(flow.done, limit=30.0)
        assert result is flow
        assert flow.state == "done"

    def test_on_complete_callback(self):
        net = dumbbell()
        seen = []
        net.start_flow("a", "b", 50_000, on_complete=seen.append)
        net.sim.run(until=30.0)
        assert len(seen) == 1 and seen[0].state == "done"

    def test_heap_drains_after_completion(self):
        net = dumbbell()
        net.start_flow("a", "b", 50_000)
        net.sim.run(until=200.0)
        assert net.sim.pending == 0

    def test_stats_accounting(self):
        net = dumbbell()
        net.start_flow("a", "b", 50_000)
        net.start_flow("a", "b", 60_000)
        net.sim.run(until=30.0)
        stats = net.stats()
        assert stats["flows_started"] == 2
        assert stats["flows_completed"] == 2
        assert stats["flows_active"] == 0
        assert stats["delivered_bytes"] == pytest.approx(110_000, abs=1.0)


class TestFaults:
    def test_link_down_stalls_and_heals(self):
        net = dumbbell(capacity=1_000_000.0)
        flow = net.start_flow("a", "b", 4 << 20)
        link = net.hosts["a"].uplink
        net.sim.call_at(1.0, link.set_down, True)
        net.sim.call_at(3.0, link.set_down, False)
        net.sim.run(until=2.0)
        assert flow.state == "active" and flow.rate == 0.0
        delivered_mid = flow.delivered
        net.sim.run(until=60.0)
        assert flow.state == "done"
        # the two down seconds moved the completion, not the byte count
        assert flow.delivered == pytest.approx(4 << 20, abs=1.0)
        assert flow.finished_at > 3.0
        assert delivered_mid < 4 << 20

    def test_link_change_subscribers_fire(self):
        net = dumbbell()
        events = []
        net.on_link_change.append(lambda link, down: events.append(down))
        link = net.hosts["a"].uplink
        link.set_down(True)
        link.set_down(True)  # no transition, no callback
        link.set_down(False)
        assert events == [True, False]

    def test_abort_keeps_partial_bytes(self):
        net = dumbbell(capacity=1_000_000.0)
        flow = net.start_flow("a", "b", 8 << 20)
        net.sim.run(until=2.0)
        flow.abort()
        assert flow.state == "aborted"
        assert 0 < flow.delivered < 8 << 20
        net.sim.run(until=120.0)
        assert net.flows_aborted == 1
        assert net.sim.pending == 0

    def test_loss_burst_alias_surface(self):
        # chaos LossBurst writes a_to_b/b_to_a loss on the link
        net = dumbbell()
        link = net.hosts["a"].uplink
        link.a_to_b.loss = 0.02
        link.b_to_a.loss = 0.02
        lossy = net.start_flow("a", "b", 1 << 20)
        clean_net = dumbbell()
        clean = clean_net.start_flow("a", "b", 1 << 20)
        assert lossy.ceiling < clean.ceiling


class TestTopology:
    def test_route_walks_lca(self):
        net = FlowNetwork()
        net.add_host("root")
        net.add_host("agg1", "root")
        net.add_host("agg2", "root")
        net.add_host("leaf1", "agg1")
        net.add_host("leaf2", "agg2")
        pipes, rtt, loss = net.route("leaf1", "leaf2")
        assert len(pipes) == 4  # leaf1 up, agg1 up, agg2 down, leaf2 down
        assert loss == 0.0

    def test_asymmetric_delay_halves_sum_into_rtt(self):
        net = FlowNetwork()
        net.add_host("wan")
        net.add_host("a", "wan", delay=0.030, delay_back=0.010)
        net.add_host("b", "wan", delay=0.005)
        link = net.hosts["a"].uplink
        assert link.delay_ab == 0.030
        assert link.delay_ba == 0.010
        assert link.rtt == pytest.approx(0.040)
        _, rtt, _ = net.route("a", "b")
        assert rtt == pytest.approx(0.040 + 0.010)

    def test_duplicate_host_rejected(self):
        net = FlowNetwork()
        net.add_host("root")
        with pytest.raises(ValueError):
            net.add_host("root")

    def test_second_root_rejected(self):
        net = FlowNetwork()
        net.add_host("root")
        with pytest.raises(ValueError):
            net.add_host("other")

    def test_self_flow_rejected(self):
        net = FlowNetwork()
        net.add_host("root")
        net.add_host("a", "root")
        with pytest.raises(ValueError):
            net.start_flow("a", "a", 1000)
