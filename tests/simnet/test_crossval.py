"""Flow tier vs packet tier on the paper's measured WANs (fig9/fig10).

These are the acceptance pins for the flow fast path: the same bulk
transfer, same dumbbell, same clock on both tiers must agree within
``TOLERANCE`` on throughput.  If a calibration constant in
``repro.simnet.flow`` drifts, this is the suite that catches it.
"""

import pytest

from repro.simnet.crossval import PROFILES, TOLERANCE, crossval

# fig10 is 9 MB/s; the default ~10s-of-steady-state transfer costs ~30s
# of wall clock per cell on the packet tier.  24 MB keeps slow start
# amortized (ratio well inside tolerance) at a quarter of the cost.
_CELLS = [
    ("fig9", 1, None),
    ("fig9", 8, None),
    ("fig10", 1, 24 << 20),
    ("fig10", 8, 24 << 20),
]


@pytest.mark.parametrize("profile,streams,total_bytes", _CELLS)
def test_tiers_agree(profile, streams, total_bytes):
    result = crossval(profile, streams=streams, total_bytes=total_bytes)
    assert result["packet_bps"] > 0 and result["flow_bps"] > 0
    assert abs(result["ratio"] - 1.0) <= TOLERANCE, (
        f"{profile} x{streams}: flow {result['flow_bps']:.0f} B/s vs "
        f"packet {result['packet_bps']:.0f} B/s (ratio {result['ratio']:.3f})"
    )


def test_profiles_match_paper_benchmarks():
    # the crossval WANs must stay in lockstep with benchmarks/paperlinks.py
    assert PROFILES["fig9"]["capacity"] == pytest.approx(1.6e6)
    assert PROFILES["fig10"]["capacity"] == pytest.approx(9e6)
    assert set(PROFILES) == {"fig9", "fig10"}


def test_parallel_streams_beat_single_on_lossy_wan():
    # the paper's headline: parallel streams recover lossy-WAN bandwidth;
    # both tiers must reproduce the direction of that effect
    one = crossval("fig9", streams=1)
    eight = crossval("fig9", streams=8)
    # 8 streams saturate the 1.6 MB/s link, so the speedup is capacity-
    # capped well below 8x; both tiers land around 1.4-1.6x
    assert eight["packet_bps"] > one["packet_bps"] * 1.3
    assert eight["flow_bps"] > one["flow_bps"] * 1.3
