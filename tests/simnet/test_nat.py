"""NAT flavours: mapping rules, rewriting, the splicing-relevant behaviours."""

import pytest

from repro.simnet.nat import BrokenNAT, ConeNAT, SymmetricNAT
from repro.simnet.packet import Segment

EXT = "198.51.1.2"
IN_A = ("10.1.0.10", 5000)
IN_B = ("10.1.0.11", 5000)
DST1 = ("198.51.100.7", 80)
DST2 = ("198.51.100.8", 80)


def _nat(cls):
    nat = cls()
    nat.configure(external_ip=EXT)
    return nat


def _seg(src, dst, **kwargs):
    return Segment(src=src, dst=dst, **kwargs)


class TestConeNAT:
    def test_outbound_rewritten_to_external(self):
        nat = _nat(ConeNAT)
        seg = nat.egress(_seg(IN_A, DST1))
        assert seg.src[0] == EXT

    def test_port_preserving_when_free(self):
        nat = _nat(ConeNAT)
        seg = nat.egress(_seg(IN_A, DST1))
        assert seg.src[1] == IN_A[1]

    def test_endpoint_independent_mapping(self):
        nat = _nat(ConeNAT)
        p1 = nat.egress(_seg(IN_A, DST1)).src[1]
        p2 = nat.egress(_seg(IN_A, DST2)).src[1]
        assert p1 == p2  # same mapping toward any destination

    def test_colliding_internal_ports_get_distinct_mappings(self):
        nat = _nat(ConeNAT)
        p1 = nat.egress(_seg(IN_A, DST1)).src[1]
        p2 = nat.egress(_seg(IN_B, DST1)).src[1]
        assert p1 != p2

    def test_inbound_translated_back(self):
        nat = _nat(ConeNAT)
        out = nat.egress(_seg(IN_A, DST1))
        back = nat.ingress(_seg(DST1, (EXT, out.src[1]), ack_flag=True))
        assert back is not None
        assert back.dst == IN_A

    def test_inbound_bare_syn_forwarded(self):
        """Simultaneous open traverses a compliant cone NAT."""
        nat = _nat(ConeNAT)
        out = nat.egress(_seg(IN_A, DST1, syn=True))
        crossing = nat.ingress(_seg(DST1, (EXT, out.src[1]), syn=True))
        assert crossing is not None
        assert crossing.dst == IN_A

    def test_unmapped_port_passes_to_gateway(self):
        """Traffic for the gateway's own services is not NAT business."""
        nat = _nat(ConeNAT)
        seg = nat.ingress(_seg(DST1, (EXT, 1080), syn=True))
        assert seg is not None
        assert seg.dst == (EXT, 1080)

    def test_wrong_external_ip_dropped(self):
        nat = _nat(ConeNAT)
        assert nat.ingress(_seg(DST1, ("198.51.9.9", 80))) is None

    def test_gateway_own_traffic_untouched(self):
        nat = _nat(ConeNAT)
        seg = nat.egress(_seg((EXT, 4000), DST1))
        assert seg.src == (EXT, 4000)

    def test_high_internal_ports_not_preserved(self):
        """Ephemeral-range ports would collide with the gateway's own."""
        nat = _nat(ConeNAT)
        seg = nat.egress(_seg(("10.1.0.10", 60000), DST1))
        assert seg.src[1] < 49152


class TestSymmetricNAT:
    def test_mapping_differs_per_destination(self):
        nat = _nat(SymmetricNAT)
        p1 = nat.egress(_seg(IN_A, DST1)).src[1]
        p2 = nat.egress(_seg(IN_A, DST2)).src[1]
        assert p1 != p2

    def test_inbound_from_other_source_filtered(self):
        nat = _nat(SymmetricNAT)
        out = nat.egress(_seg(IN_A, DST1))
        # DST2 aims at DST1's mapping: address-dependent filtering drops it
        assert nat.ingress(_seg(DST2, (EXT, out.src[1]))) is None
        assert nat.ingress(_seg(DST1, (EXT, out.src[1]))) is not None

    def test_not_endpoint_independent_flag(self):
        assert SymmetricNAT.endpoint_independent is False
        assert ConeNAT.endpoint_independent is True


class TestBrokenNAT:
    def test_inbound_bare_syn_dropped(self):
        nat = _nat(BrokenNAT)
        out = nat.egress(_seg(IN_A, DST1, syn=True))
        assert nat.ingress(_seg(DST1, (EXT, out.src[1]), syn=True)) is None
        assert nat.stats.dropped_syn == 1

    def test_syn_ack_still_passes(self):
        """Ordinary client traffic is unaffected — only splicing breaks."""
        nat = _nat(BrokenNAT)
        out = nat.egress(_seg(IN_A, DST1, syn=True))
        reply = nat.ingress(
            _seg(DST1, (EXT, out.src[1]), syn=True, ack_flag=True)
        )
        assert reply is not None

    def test_flag(self):
        assert BrokenNAT.allows_simultaneous_open is False
