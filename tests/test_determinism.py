"""End-to-end reproducibility: identical runs produce identical results.

EXPERIMENTS.md promises bit-for-bit reproducibility; these tests hold the
whole stack to it — same seeds, same event ordering, same numbers.
"""

from repro.core.scenarios import GridScenario
from repro.core.utilization import StackSpec
from repro.simnet.testing import run_transfer, wan_pair
from repro.workloads import payload_with_ratio


def _establishment_run(seed):
    sc = GridScenario(seed=seed)
    sc.add_site("A", "open")
    sc.add_site("B", "broken_nat")
    sc.add_node("A", "a")
    sc.add_node("B", "b")
    res = sc.establish_pair("a", "b", until=400)
    return (res["method"], res["delay"], tuple(res["initiator_log"]))


def test_establishment_is_deterministic():
    assert _establishment_run(123) == _establishment_run(123)


def test_different_seeds_may_differ_but_still_succeed():
    a = _establishment_run(1)
    b = _establishment_run(2)
    assert a[0] == b[0] == "socks_proxy"  # outcome stable across seeds


def _throughput_run(seed):
    inet, a, b = wan_pair(capacity=2e6, one_way_delay=0.01, loss=0.01, seed=seed)
    result = run_transfer(inet, a, b, 1_000_000)
    return result["throughput"], result["seconds"]


def test_lossy_transfer_is_deterministic():
    assert _throughput_run(7) == _throughput_run(7)


def test_stacked_transfer_is_deterministic():
    def run():
        sc = GridScenario(seed=99)
        for name in ("x", "y"):
            sc.add_site(name, "firewall", access_bandwidth=2e6, access_delay=0.01)
        sc.add_node("x", "src")
        sc.add_node("y", "dst")
        payload = payload_with_ratio(1 << 18, 3.0, seed=1)
        r = sc.measure_stack_throughput(
            "src", "dst", StackSpec.parallel(2).with_compression(),
            payload, 1_500_000,
        )
        return r["throughput"], r["seconds"], r["received"]

    assert run() == run()


def test_workload_generators_are_deterministic():
    assert payload_with_ratio(65536, 2.5, seed=4) == payload_with_ratio(
        65536, 2.5, seed=4
    )
