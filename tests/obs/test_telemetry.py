"""Streaming telemetry: delta semantics, windows, SLOs, replay exactness.

The contract under test, in rough dependency order:

* publisher delta records are exact — counters never regress, histogram
  bucket deltas sum to the count delta, zero-delta instruments are
  omitted, a registry reset mid-stream rebases instead of going
  negative;
* :func:`replay_deltas` folds any captured stream back into the *exact*
  final registry snapshot (the hypothesis property);
* the aggregator's sliding window evicts correctly and its SLO monitors
  fire (with sustain) and clear, honouring :meth:`retire` and
  ``breaches_since``;
* all of it stays consistent when producers hammer the registry from
  threads while a publisher snapshots concurrently.
"""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.export import SchemaError, validate_jsonl, validate_record
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    SLO,
    TelemetryAggregator,
    TelemetryLog,
    TelemetryPublisher,
    read_telemetry_jsonl,
    replay_deltas,
    sli_counter_increase,
    sli_counter_rate,
    sli_gauge,
    sli_histogram_mean,
    sli_proxy_drift,
    telemetry_violations,
)


class _Clock:
    def __init__(self, start=0.0):
        self.t = start

    def __call__(self):
        return self.t


def _publisher(registry, clock, **kw):
    log = TelemetryLog()
    pub = TelemetryPublisher(registry, "src", clock=clock, **kw)
    pub.add_sink(log)
    return pub, log


class TestDeltaSemantics:
    def test_counter_deltas_are_exact_and_positive(self):
        reg = MetricsRegistry()
        clock = _Clock()
        pub, log = _publisher(reg, clock)
        c = reg.counter("tx.bytes_total", node="a")
        c.inc(100)
        clock.t = 0.5
        pub.publish()
        c.inc(250)
        clock.t = 1.0
        pub.publish()
        deltas = [r["counters"] for r in log.records]
        assert deltas[0] == [["tx.bytes_total", {"node": "a"}, 100]]
        assert deltas[1] == [["tx.bytes_total", {"node": "a"}, 250]]
        assert telemetry_violations(log.records) == []

    def test_zero_delta_instruments_are_omitted(self):
        reg = MetricsRegistry()
        pub, log = _publisher(reg, _Clock())
        reg.counter("c").inc(5)
        reg.histogram("h", buckets=(1, 10)).observe(3)
        pub.publish()
        pub.publish()  # nothing moved: a pure heartbeat
        beat = log.records[1]
        assert beat["counters"] == []
        assert beat["histograms"] == []
        assert beat["gauges"] == []
        assert beat["seq"] == 2

    def test_seq_is_gap_free_per_source(self):
        reg = MetricsRegistry()
        pub, log = _publisher(reg, _Clock())
        for _ in range(4):
            pub.publish()
        assert [r["seq"] for r in log.records] == [1, 2, 3, 4]
        broken = [dict(r) for r in log.records]
        broken[2]["seq"] = 7
        assert any("gap" in v for v in telemetry_violations(broken))

    def test_histogram_bucket_deltas_sum_to_count_delta(self):
        reg = MetricsRegistry()
        pub, log = _publisher(reg, _Clock())
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        pub.publish()
        h.observe(5.0)
        pub.publish()
        entries = [r["histograms"] for r in log.records]
        name, labels, count_delta, count, total, deltas, bounds = entries[0][0]
        assert count_delta == 2 and count == 2
        assert sum(deltas) == count_delta
        assert len(deltas) == len(bounds) + 1  # overflow bucket rides along
        _, _, count_delta2, count2, _, deltas2, _ = entries[1][0]
        assert count_delta2 == 1 and count2 == 3
        assert deltas2 == [0, 0, 1]  # the 5.0 landed past the last bound
        assert telemetry_violations(log.records) == []

    def test_gauge_samples_are_absolute_and_deduped(self):
        reg = MetricsRegistry()
        clock = _Clock()
        reg.set_clock(clock)
        pub, log = _publisher(reg, clock)
        g = reg.gauge("depth", node="a")
        g.set(3)
        pub.publish()
        pub.publish()  # unchanged: omitted
        clock.t = 2.0
        g.set(1)
        pub.publish()
        samples = [r["gauges"] for r in log.records]
        assert samples[0] == [["depth", {"node": "a"}, 3, 0.0]]
        assert samples[1] == []
        assert samples[2] == [["depth", {"node": "a"}, 1, 2.0]]

    def test_registry_reset_rebases_instead_of_regressing(self):
        reg = MetricsRegistry()
        pub, log = _publisher(reg, _Clock())
        reg.counter("c").inc(10)
        pub.publish()
        reg.reset()
        reg.counter("c").inc(4)
        pub.publish()
        assert log.records[1].get("rebased") is True
        assert log.records[1]["counters"] == [["c", {}, 4]]
        assert telemetry_violations(log.records) == []

    def test_select_narrows_the_stream(self):
        reg = MetricsRegistry()
        reg.counter("x", node="a").inc(1)
        reg.counter("x", node="b").inc(1)
        pub, log = _publisher(
            reg, _Clock(), select=lambda name, labels: labels.get("node") == "a"
        )
        pub.publish()
        assert log.records[0]["counters"] == [["x", {"node": "a"}, 1]]

    def test_stop_flush_emits_one_final_record(self):
        reg = MetricsRegistry()
        pub, log = _publisher(reg, _Clock())
        pub._running = True
        reg.counter("c").inc(1)
        pub.stop(flush=True)
        assert len(log.records) == 1
        pub.stop(flush=True)  # idempotent: already stopped
        assert len(log.records) == 1


# -- replay exactness ---------------------------------------------------------

_NAMES = ("a.total", "b.total")
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("inc"), st.sampled_from(_NAMES), st.integers(1, 1000)
        ),
        st.tuples(
            st.just("gauge"), st.just("g"), st.integers(-50, 50)
        ),
        st.tuples(
            st.just("observe"),
            st.just("h"),
            st.floats(0.001, 100.0, allow_nan=False),
        ),
        st.tuples(st.just("publish"), st.just(""), st.just(0)),
    ),
    max_size=60,
)


class TestReplay:
    @settings(max_examples=60)
    @given(ops=_OPS)
    def test_replaying_deltas_reconstructs_the_final_snapshot(self, ops):
        reg = MetricsRegistry()
        clock = _Clock()
        reg.set_clock(clock)
        pub, log = _publisher(reg, clock)
        pub._running = True
        for kind, name, value in ops:
            clock.t += 0.25
            if kind == "inc":
                reg.counter(name, node="n").inc(value)
            elif kind == "gauge":
                reg.gauge(name).set(value)
            elif kind == "observe":
                reg.histogram(name, buckets=(0.1, 1.0, 10.0)).observe(value)
            else:
                pub.publish()
        pub.stop(flush=True)
        assert telemetry_violations(log.records) == []
        assert replay_deltas(log.records) == reg.snapshot()

    def test_multi_source_replay_filters_by_source(self):
        reg = MetricsRegistry()
        reg.counter("x", node="a").inc(7)
        reg.counter("x", node="b").inc(9)
        log = TelemetryLog()
        for node in ("a", "b"):
            pub = TelemetryPublisher(
                reg, node, clock=_Clock(1.0),
                select=lambda n, labels, _id=node: labels.get("node") == _id,
            )
            pub.add_sink(log)
            pub.publish()
        merged = replay_deltas(log.records)
        assert merged == reg.snapshot()
        only_a = replay_deltas(log.records, source="a")
        assert only_a == [r for r in reg.snapshot() if r["labels"]["node"] == "a"]


# -- thread-safety hammer -----------------------------------------------------


class TestConcurrency:
    def test_snapshot_under_concurrent_updates_stays_consistent(self):
        reg = MetricsRegistry()
        clock = _Clock()
        pub, log = _publisher(reg, clock)
        pub._running = True
        per_thread = 5_000

        def hammer(i):
            c = reg.counter("hammer.total", worker=str(i))
            h = reg.histogram("hammer.lat", buckets=(1, 10, 100))
            for n in range(per_thread):
                c.inc(1)
                h.observe(n % 200)

        def churn_structure():
            # create brand-new instruments while snapshots iterate
            # (bounded, or the registry growth makes publishes quadratic)
            for n in range(500):
                reg.counter("churn.total", n=str(n)).inc(1)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ] + [threading.Thread(target=churn_structure)]
        for t in threads:
            t.start()
        try:
            while any(t.is_alive() for t in threads):
                clock.t += 0.1
                pub.publish()
        finally:
            for t in threads:
                t.join()
        pub.stop(flush=True)
        # every mid-churn snapshot was internally consistent
        assert telemetry_violations(log.records) == []
        # and the stream still reconstructs the final state exactly
        assert replay_deltas(log.records) == reg.snapshot()
        total = sum(
            delta
            for r in log.records
            for name, _l, delta in r["counters"]
            if name == "hammer.total"
        )
        assert total == 4 * per_thread


# -- asyncio driver -----------------------------------------------------------


@pytest.mark.livenet
class TestAsyncPublisher:
    def test_start_async_ticks_on_the_event_loop(self):
        import asyncio

        reg = MetricsRegistry()
        log = TelemetryLog()
        pub = TelemetryPublisher(reg, "live-src", interval=0.02)
        pub.add_sink(log)
        c = reg.counter("c")

        async def run():
            task = pub.start_async()
            for _ in range(5):
                c.inc(10)
                await asyncio.sleep(0.03)
            pub.stop(flush=True)
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(run())
        assert len(log.records) >= 3
        assert telemetry_violations(log.records) == []
        assert replay_deltas(log.records) == reg.snapshot()
        assert [r["seq"] for r in log.records] == list(
            range(1, len(log.records) + 1)
        )


# -- aggregator: windows, SLOs, retirement ------------------------------------


def _record(source, seq, ts, counters=(), gauges=(), interval=0.5):
    return {
        "type": "telemetry",
        "source": source,
        "seq": seq,
        "ts": ts,
        "interval": interval,
        "counters": list(counters),
        "gauges": list(gauges),
        "histograms": [],
    }


class TestAggregator:
    def test_window_eviction(self):
        agg = TelemetryAggregator(window=1.0)
        for seq, ts in enumerate((0.0, 0.5, 1.0, 2.0), start=1):
            agg.ingest(_record("a", seq, ts))
        kept = [r["ts"] for r in agg.window_records("a")]
        assert kept == [1.0, 2.0]  # 0.0 and 0.5 fell off the left edge

    def test_breach_fires_and_clears_with_events(self, fresh_obs):
        obs.enable_tracing()
        agg = TelemetryAggregator(window=2.0)
        agg.add_slo(
            SLO("rate", sli_counter_rate("tx"), threshold=100.0, op=">=")
        )
        agg.ingest(_record("a", 1, 0.5, [["tx", {}, 200]]))
        assert agg.breaches == []
        agg.ingest(_record("a", 2, 1.0, [["tx", {}, 1]]))
        agg.ingest(_record("a", 3, 3.5, [["tx", {}, 1]]))
        assert len(agg.breaches) == 1
        breach = agg.breaches[0]
        assert breach.source == "a" and breach.slo == "rate"
        assert breach.cleared is None
        assert agg.active_breaches("a") == [breach]
        # recover: a fat delta pushes the windowed rate back over
        agg.ingest(_record("a", 4, 4.0, [["tx", {}, 10_000]]))
        assert breach.cleared == 4.0
        assert agg.active_breaches("a") == []
        names = [r["name"] for r in obs.tracer().events()]
        assert "slo.breach" in names and "slo.clear" in names

    def test_sustain_requires_for_seconds_of_bad(self):
        agg = TelemetryAggregator(window=10.0)
        agg.add_slo(
            SLO("rate", sli_counter_rate("tx"), threshold=100.0,
                for_seconds=1.0)
        )
        agg.ingest(_record("a", 1, 0.5, [["tx", {}, 1]]))
        assert agg.breaches == []  # bad, but not yet sustained
        agg.ingest(_record("a", 2, 1.0, [["tx", {}, 1]]))
        assert agg.breaches == []
        agg.ingest(_record("a", 3, 1.5, [["tx", {}, 1]]))
        assert len(agg.breaches) == 1
        assert agg.breaches[0].started == 0.5  # backdated to the first bad

    def test_one_bad_sample_between_healthy_is_noise(self):
        agg = TelemetryAggregator(window=1.0)
        agg.add_slo(
            SLO("rate", sli_counter_rate("tx"), threshold=100.0,
                for_seconds=1.0)
        )
        agg.ingest(_record("a", 1, 0.5, [["tx", {}, 1]]))
        agg.ingest(_record("a", 2, 1.0, [["tx", {}, 10_000]]))
        agg.ingest(_record("a", 3, 1.5, [["tx", {}, 10_000]]))
        assert agg.breaches == []

    def test_retired_sources_are_not_evaluated(self):
        agg = TelemetryAggregator(window=1.0)
        agg.add_slo(SLO("rate", sli_counter_rate("tx"), threshold=100.0))
        agg.ingest(_record("a", 1, 0.5, [["tx", {}, 10_000]]))
        agg.retire("a")
        # the stream decays to a trickle after the clean finish
        agg.ingest(_record("a", 2, 1.0, [["tx", {}, 1]]))
        agg.ingest(_record("a", 3, 1.5, []))
        assert agg.breaches == []
        assert agg.health("a")["retired"] is True

    def test_breaches_since_filters_by_start_and_source(self):
        agg = TelemetryAggregator(window=1.0)
        agg.add_slo(SLO("rate", sli_counter_rate("tx"), threshold=100.0))
        agg.ingest(_record("a", 1, 0.5, [["tx", {}, 1]]))
        agg.ingest(_record("b", 1, 2.5, [["tx", {}, 1]]))
        assert len(agg.breaches) == 2
        assert [b.source for b in agg.breaches_since(1.0)] == ["b"]
        assert agg.breaches_since(0.0, sources={"a"})[0].source == "a"
        assert agg.breaches_since(3.0) == []

    def test_health_rows(self):
        agg = TelemetryAggregator(window=2.0)
        agg.ingest(_record("a", 1, 0.5, [["tx", {}, 100]]))
        agg.ingest(_record("a", 2, 1.0, [["tx", {}, 100]]))
        health = agg.health("a")
        assert health["seq"] == 2 and health["records"] == 2
        assert health["rates"]["tx"] == pytest.approx(200.0)

    def test_non_telemetry_records_are_rejected(self):
        agg = TelemetryAggregator()
        with pytest.raises(ValueError):
            agg.ingest({"type": "metric"})


class TestSLIs:
    def test_rate_returns_none_until_the_counter_appears(self):
        sli = sli_counter_rate("tx")
        assert sli([]) is None
        assert sli([_record("a", 1, 0.5)]) is None  # records, no entries
        assert sli([_record("a", 1, 0.5, [["tx", {}, 50]])]) == 100.0

    def test_rate_matches_labels(self):
        sli = sli_counter_rate("tx", node="a")
        records = [
            _record("a", 1, 0.5, [["tx", {"node": "a"}, 30],
                                  ["tx", {"node": "b"}, 999]])
        ]
        assert sli(records) == 60.0

    def test_increase_totals_the_window(self):
        sli = sli_counter_increase("resumes")
        records = [
            _record("a", 1, 0.5, [["resumes", {}, 1]]),
            _record("a", 2, 1.0, [["resumes", {}, 2]]),
        ]
        assert sli(records) == 3.0
        assert sli([]) is None

    def test_gauge_takes_latest_by_updated_at(self):
        sli = sli_gauge("lag")
        records = [
            _record("a", 1, 0.5, gauges=[["lag", {}, 9.0, 0.4]]),
            _record("a", 2, 1.0, gauges=[["lag", {}, 2.0, 0.9]]),
        ]
        assert sli(records) == 2.0
        assert sli([_record("a", 1, 0.5)]) is None

    def test_histogram_mean_is_window_exact(self):
        def hist(seq, ts, count_delta, count, total):
            r = _record("a", seq, ts)
            r["histograms"] = [
                ["lat", {}, count_delta, count, total, [count_delta], []]
            ]
            return r

        sli = sli_histogram_mean("lat")
        # stream-opening record: its own observations count
        assert sli([hist(1, 0.5, 2, 2, 10.0)]) == 5.0
        # later records: mean of the window's observations only
        records = [hist(5, 4.0, 1, 10, 100.0), hist(6, 4.5, 2, 12, 130.0)]
        assert sli(records) == 15.0  # (130-100)/(12-10)
        assert sli([]) is None

    def test_proxy_drift_balances_the_ledger(self):
        sli = sli_proxy_drift()
        records = [
            _record("a", 1, 0.5, [
                ["proxy.bytes_in_total", {"proxy": "gw"}, 1000],
                ["proxy.bytes_forwarded_total", {"proxy": "gw"}, 700],
                ["proxy.bytes_dropped_total", {"proxy": "gw"}, 200],
            ]),
        ]
        assert sli(records) == 100.0  # 100 bytes unaccounted in the window
        assert sli([]) is None


# -- schema + JSONL round trip ------------------------------------------------


class TestSchema:
    def test_telemetry_record_validates(self):
        reg = MetricsRegistry()
        pub, log = _publisher(reg, _Clock(1.0))
        reg.counter("c").inc(1)
        reg.gauge("g").set(2)
        reg.histogram("h", buckets=(1,)).observe(0.5)
        pub.publish()
        assert validate_record(log.records[0]) == "telemetry"

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda r: r.pop("source"),
            lambda r: r.__setitem__("seq", 0),
            lambda r: r.__setitem__("interval", 0),
            lambda r: r.__setitem__("counters", [["c", {}, -1]]),
            lambda r: r.__setitem__("counters", [["c", {}]]),
            lambda r: r.__setitem__("gauges", [["g", {}, 1]]),
            lambda r: r.__setitem__("histograms", [["h", {}, 1, 1, 0.5]]),
        ],
    )
    def test_malformed_telemetry_is_rejected(self, mutate):
        record = _record("a", 1, 0.5, [["c", {}, 1]])
        mutate(record)
        with pytest.raises(SchemaError):
            validate_record(record)

    def test_jsonl_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        clock = _Clock()
        pub, log = _publisher(reg, clock)
        for i in range(3):
            reg.counter("c").inc(i + 1)
            clock.t += 0.5
            pub.publish()
        path = str(tmp_path / "telemetry.jsonl")
        log.write_jsonl(path)
        assert validate_jsonl(path) == {"meta": 1, "telemetry": 3}
        back = read_telemetry_jsonl(path)
        assert back == log.records
        assert replay_deltas(back) == reg.snapshot()
        with open(path, encoding="utf-8") as fh:
            meta = json.loads(fh.readline())
        assert meta["stream"] == "telemetry"
