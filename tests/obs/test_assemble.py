"""Cross-node trace assembly: stitching, skew, orphans, round-trips.

The assembler's contract is that per-node JSONL exports — each a partial,
possibly overlapping, possibly clock-skewed view of a run — rebuild into
the same causal span tree the run actually executed.  These tests feed it
hand-built record sets with known shapes (so every assertion is exact)
plus a full export/validate/read/assemble round-trip through real
recorder objects.
"""

import io
import json

import pytest

from repro import obs
from repro.obs import context as obs_context
from repro.obs.assemble import assemble, assemble_files, main, render_text
from repro.obs.context import TraceContext, fmt_id, next_id, seed_ids
from repro.obs.export import export_jsonl, read_jsonl, validate_jsonl
from repro.obs.flight import FlightRecorder


def _span(name, node, ctx, ts, duration, **attrs):
    rec = {
        "type": "trace",
        "kind": "span",
        "name": name,
        "node": node,
        "ts": ts,
        "duration": duration,
        "attrs": attrs,
    }
    rec.update(ctx.ids())
    return rec


def _event(name, node, ctx, ts, **attrs):
    rec = {
        "type": "trace",
        "kind": "event",
        "name": name,
        "node": node,
        "ts": ts,
        "attrs": attrs,
    }
    rec.update(ctx.ids())
    return rec


@pytest.fixture(autouse=True)
def _deterministic_ids():
    seed_ids(1234)
    yield
    seed_ids(0)


def _three_node_records(skew_bob=0.0):
    """A connect spanning alice -> relay -> bob, one record list per node.

    ``skew_bob`` shifts every bob-recorded timestamp, simulating a node
    whose clock runs behind the others.
    """
    root = TraceContext.new()
    relay_ctx = root.child()
    bob_ctx = root.child()
    alice = [
        _span("chaos.stage", "alice", root, 1.0, 4.0, stage="tx0"),
        _event("session.established", "alice", root, 1.2),
    ]
    relay = [
        _span("relay.route", "relay", relay_ctx, 1.5, 3.0),
    ]
    bob = [
        _span("stack.assemble", "bob", bob_ctx, 2.0 + skew_bob, 0.5),
        _event("link.accepted", "bob", bob_ctx, 2.1 + skew_bob),
    ]
    return root, alice, relay, bob


def test_multi_node_stitching_builds_one_tree():
    root, alice, relay, bob = _three_node_records()
    result = assemble(alice + relay + bob)

    assert result["records"] == 5
    assert result["untraced"] == 0
    assert len(result["traces"]) == 1
    trace = result["traces"][0]
    assert trace["trace_id"] == fmt_id(root.trace_id)
    assert trace["nodes"] == ["alice", "bob", "relay"]
    assert trace["spans"] == 3
    assert trace["orphans"] == 0

    [tree] = trace["roots"]
    assert tree["name"] == "chaos.stage"
    assert tree["node"] == "alice"
    children = {c["name"]: c for c in tree["children"]}
    assert set(children) == {"relay.route", "stack.assemble"}
    assert children["relay.route"]["node"] == "relay"
    assert children["stack.assemble"]["node"] == "bob"
    # events attach to the span whose context stamped them
    assert [e["name"] for e in tree["events"]] == ["session.established"]
    assert [e["name"] for e in children["stack.assemble"]["events"]] == [
        "link.accepted"
    ]


def test_cross_node_hops_and_critical_path():
    _, alice, relay, bob = _three_node_records()
    trace = assemble(alice + relay + bob)["traces"][0]

    hops = {(h["from"]["node"], h["to"]["node"]): h["latency"] for h in trace["hops"]}
    assert hops == {("alice", "bob"): pytest.approx(1.0),
                    ("alice", "relay"): pytest.approx(0.5)}
    # the relay span ends latest (1.5 + 3.0), so it is the critical leaf
    path = [(s["name"], s["node"]) for s in trace["critical_path"]]
    assert path == [("chaos.stage", "alice"), ("relay.route", "relay")]
    assert trace["critical_path"][-1]["end"] == pytest.approx(4.5)


def test_clock_skew_estimated_and_subtracted():
    # bob's clock runs 2s behind: its spans *appear* to start before the
    # parent that caused them, which is impossible — the assembler must
    # recover (at least) that deficit.
    root, alice, relay, bob = _three_node_records(skew_bob=-2.0)
    trace = assemble(alice + relay + bob)["traces"][0]

    assert trace["skew"] == {"bob": pytest.approx(1.0)}  # parent ts 1.0 - child ts 0.0
    [tree] = trace["roots"]
    child = {c["name"]: c for c in tree["children"]}["stack.assemble"]
    assert child["start"] >= tree["start"]  # no negative hop survives
    hops = {(h["from"]["node"], h["to"]["node"]): h["latency"] for h in trace["hops"]}
    assert hops[("alice", "bob")] >= 0.0


def test_explicit_offsets_compose_with_estimation():
    _, alice, relay, bob = _three_node_records(skew_bob=-2.0)
    trace = assemble(alice + relay + bob, offsets={"bob": 2.0})["traces"][0]
    # the explicit offset already repairs the deficit; estimation adds nothing
    assert trace["skew"] == {"bob": pytest.approx(2.0)}
    child = {c["name"]: c
             for c in trace["roots"][0]["children"]}["stack.assemble"]
    assert child["start"] == pytest.approx(2.0)

    noskew = assemble(alice + relay + bob, adjust_skew=False)["traces"][0]
    assert noskew["skew"] == {}


def test_dropped_parent_makes_orphan_not_loss():
    # bob's file survived but alice's (holding the root span) was lost.
    _, alice, relay, bob = _three_node_records()
    trace = assemble(relay + bob)["traces"][0]

    assert trace["spans"] == 2
    assert trace["orphans"] == 2  # both reference the missing root
    names = {r["name"] for r in trace["roots"]}
    assert names == {"relay.route", "stack.assemble"}
    assert all(r["orphan"] for r in trace["roots"])
    # the orphaned bob span still keeps its own attached event
    bob_root = [r for r in trace["roots"] if r["node"] == "bob"][0]
    assert [e["name"] for e in bob_root["events"]] == ["link.accepted"]


def test_unattached_records_are_counted_not_dropped():
    root, alice, _, _ = _three_node_records()
    stray = _event("late.event", "bob", root.child().child(), 9.0)
    trace = assemble(alice + [stray])["traces"][0]
    assert trace["unattached"] == 1
    assert trace["events"] == 2  # both counted, one attached


def test_overlapping_exports_deduplicate():
    _, alice, relay, bob = _three_node_records()
    combined = alice + relay + bob
    # per-node files plus a combined run.jsonl: every record appears twice
    result = assemble(combined + combined)
    assert result["records"] == 5
    assert result["traces"][0]["spans"] == 3
    assert len(result["traces"][0]["roots"][0]["events"]) == 1


def test_flight_records_attach_by_identity():
    root, alice, relay, bob = _three_node_records()
    flight = FlightRecorder("relay")
    flight.note("relay.accept", ctx=TraceContext(
        root.trace_id, next_id(), root.span_id))
    records = alice + relay + bob + flight.records()
    trace = assemble(records)["traces"][0]
    assert trace["flight"] == 1
    # attaches via parent_id fallback (its own span was never opened)
    assert any(
        e["name"] == "relay.accept"
        for e in trace["roots"][0].get("events", [])
    )


def test_assemble_accepts_one_shot_streaming_iterator():
    # ROADMAP: streaming input — a generator is consumed in one pass,
    # never re-iterated or materialized.
    root, alice, relay, bob = _three_node_records()
    untraced = {"type": "trace", "kind": "event", "name": "loose",
                "ts": 0.5, "attrs": {}}

    consumed = []

    def stream():
        for record in alice + relay + bob + [untraced]:
            consumed.append(record)
            yield record

    result = assemble(stream())
    assert len(consumed) == 6  # fully drained, exactly once
    assert result["records"] == 5
    assert result["untraced"] == 1
    assert result["traces"][0]["spans"] == 3


def test_assemble_files_streams_from_disk(tmp_path):
    import json as _json

    _, alice, relay, bob = _three_node_records()
    for name, records in (("alice", alice), ("relay", relay), ("bob", bob)):
        path = tmp_path / f"{name}.jsonl"
        path.write_text(
            "".join(_json.dumps(r) + "\n" for r in records), encoding="utf-8"
        )
    result = assemble_files(sorted(str(p) for p in tmp_path.iterdir()))
    assert result["records"] == 5
    assert result["traces"][0]["spans"] == 3


def test_iter_jsonl_is_lazy(tmp_path):
    from repro.obs.export import SchemaError, iter_jsonl

    path = tmp_path / "mixed.jsonl"
    path.write_text('{"ok": 1}\nnot-json\n', encoding="utf-8")
    stream = iter_jsonl(str(path))
    assert next(stream) == {"ok": 1}  # first record before the bad line
    with pytest.raises(SchemaError, match="line 2"):
        next(stream)


def test_separate_traces_stay_separate():
    _, alice_a, relay_a, bob_a = _three_node_records()
    _, alice_b, relay_b, bob_b = _three_node_records()
    result = assemble(alice_a + relay_a + bob_a + alice_b + relay_b + bob_b)
    assert len(result["traces"]) == 2
    assert result["traces"][0]["trace_id"] != result["traces"][1]["trace_id"]


def test_schema_v2_export_roundtrip(fresh_obs, tmp_path):
    """Real recorder -> per-node export -> validate -> read -> assemble."""
    obs.enable_tracing()
    root = TraceContext.new()
    child = root.child()
    obs.record_span("chaos.stage", 0.0, 3.0, ctx=root, node="alice")
    obs.record_span("stack.assemble", 1.0, 2.0, ctx=child, node="bob")
    obs.event("session.established", ctx=root, node="alice")
    flight = FlightRecorder("bob")
    flight.note("link.opened", ctx=child)

    alice_path = str(tmp_path / "alice.jsonl")
    bob_path = str(tmp_path / "bob.jsonl")
    export_jsonl(alice_path, registry=None, node="alice")
    export_jsonl(bob_path, registry=None, node="bob", flight=flight)

    # every line of both files passes schema v2
    counts_a = validate_jsonl(alice_path)
    counts_b = validate_jsonl(bob_path)
    assert counts_a == {"meta": 1, "trace/span": 1, "trace/event": 1}
    assert counts_b == {"meta": 1, "trace/span": 1, "flight": 1}

    # node filtering really happened
    meta_a = read_jsonl(alice_path)[0]
    assert meta_a == {"type": "meta", "schema": 2, "node": "alice"}
    assert all(r["node"] == "alice" for r in read_jsonl(alice_path)[1:])

    trace = assemble_files([alice_path, bob_path])["traces"][0]
    assert trace["nodes"] == ["alice", "bob"]
    assert trace["spans"] == 2
    assert trace["flight"] == 1
    [tree] = trace["roots"]
    assert tree["name"] == "chaos.stage"
    assert tree["children"][0]["name"] == "stack.assemble"


def test_export_to_file_object(fresh_obs):
    obs.enable_tracing()
    obs.record_span("x", 0.0, 1.0, ctx=TraceContext.new(), node="n")
    buf = io.StringIO()
    lines = export_jsonl(buf, registry=None, node="n")
    assert lines == 2
    assert json.loads(buf.getvalue().splitlines()[0])["schema"] == 2


def test_cli_text_and_json(tmp_path, capsys):
    _, alice, relay, bob = _three_node_records()
    path = str(tmp_path / "run.jsonl")
    with open(path, "w") as out:
        for rec in alice + relay + bob:
            out.write(json.dumps(rec) + "\n")

    assert main([path]) == 0
    text = capsys.readouterr().out
    assert "chaos.stage [alice]" in text
    assert "relay.route [relay]" in text
    assert "critical path" in text
    assert "hops:" in text

    assert main([path, "--json", "--offset", "bob=0.5"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["traces"][0]["skew"] == {"bob": 0.5}


def test_render_text_marks_orphans():
    _, alice, relay, bob = _three_node_records()
    text = render_text(assemble(relay + bob))
    assert "(orphan)" in text


class TestTraceContext:
    def test_ids_are_deterministic_per_seed(self):
        seed_ids(7)
        a = [next_id() for _ in range(5)]
        seed_ids(7)
        b = [next_id() for _ in range(5)]
        assert a == b
        seed_ids(8)
        assert [next_id() for _ in range(5)] != a

    def test_wire_roundtrip(self):
        ctx = TraceContext.new().child()
        blob = ctx.encode()
        assert len(blob) == TraceContext.WIRE_SIZE == 24
        assert TraceContext.decode(blob) == ctx
        with pytest.raises(ValueError):
            TraceContext.decode(blob[:-1])

    def test_child_keeps_trace_and_links_parent(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert root.parent_id == 0
        assert "parent_id" not in root.ids()
        assert child.ids()["parent_id"] == fmt_id(root.span_id)

    def test_ambient_context_scoping(self):
        assert obs_context.current() is None
        ctx = TraceContext.new()
        with obs_context.use(ctx):
            assert obs_context.current() is ctx
            with obs_context.use(None):
                assert obs_context.current() is None
            assert obs_context.current() is ctx
        assert obs_context.current() is None


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        flight = FlightRecorder("n", capacity=3)
        for i in range(5):
            flight.note(f"e{i}")
        assert len(flight) == 3
        assert flight.dropped == 2
        assert [r["name"] for r in flight.records()] == ["e2", "e3", "e4"]

    def test_notes_capture_ambient_context(self):
        flight = FlightRecorder("n")
        ctx = TraceContext.new()
        with obs_context.use(ctx):
            flight.note("auto")
        flight.note("explicit", ctx=ctx.child(), detail=1)
        auto, explicit = flight.records()
        assert auto["trace_id"] == fmt_id(ctx.trace_id)
        assert explicit["parent_id"] == fmt_id(ctx.span_id)
        assert explicit["attrs"] == {"detail": 1}

    def test_clock_callable_stamps_ts(self):
        now = [0.0]
        flight = FlightRecorder("n", clock=lambda: now[0])
        flight.note("a")
        now[0] = 2.5
        flight.note("b")
        assert [r["ts"] for r in flight.records()] == [0.0, 2.5]
