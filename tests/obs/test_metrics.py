"""MetricsRegistry semantics: dedup, kinds, buckets, snapshots, clocks."""

import pytest

from repro.obs import (
    DEFAULT_BYTE_BUCKETS,
    MetricError,
    MetricsRegistry,
)


class TestLabelDedup:
    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x.total", driver="tcp", direction="tx")
        b = reg.counter("x.total", direction="tx", driver="tcp")  # order-free
        assert a is b
        a.inc(5)
        assert b.value == 5

    def test_different_labels_different_instruments(self):
        reg = MetricsRegistry()
        tx = reg.counter("x.total", direction="tx")
        rx = reg.counter("x.total", direction="rx")
        assert tx is not rx
        tx.inc()
        assert rx.value == 0

    def test_get_returns_existing_or_none(self):
        reg = MetricsRegistry()
        created = reg.gauge("g", k="v")
        assert reg.get("g", k="v") is created
        assert reg.get("g", k="other") is None
        assert reg.get("missing") is None


class TestKindAndBucketConflicts:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(MetricError):
            reg.gauge("m")
        with pytest.raises(MetricError):
            reg.histogram("m")

    def test_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1, 2, 3))
        with pytest.raises(MetricError):
            reg.histogram("h", buckets=(10, 20))
        # same buckets (or unspecified) is fine
        reg.histogram("h", buckets=(1, 2, 3))
        reg.histogram("h")

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("c").inc(-1)


class TestHistogram:
    def test_bucket_placement_le_semantics(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(10, 20))
        for value in (5, 10, 15, 25):
            h.observe(value)
        assert h.count == 4
        assert h.sum == 55
        counts = dict(h.bucket_counts())
        assert counts[10] == 2  # 5 and the boundary value 10
        assert counts[20] == 1  # 15
        assert counts["inf"] == 1  # 25 overflows
        assert h.mean == pytest.approx(13.75)

    def test_default_buckets_are_bytes(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes")
        assert h.buckets == DEFAULT_BYTE_BUCKETS


class TestSnapshotAndReset:
    def test_snapshot_shape(self):
        reg = MetricsRegistry(clock=lambda: 7.0)
        reg.counter("c.total", a="1").inc(3)
        reg.gauge("g").set(2.5)
        reg.histogram("h", buckets=(10,)).observe(4)
        records = reg.snapshot()
        assert [r["name"] for r in records] == ["c.total", "g", "h"]
        by_name = {r["name"]: r for r in records}
        assert by_name["c.total"] == {
            "type": "metric", "kind": "counter", "name": "c.total",
            "labels": {"a": "1"}, "value": 3,
        }
        assert by_name["g"]["value"] == 2.5
        assert by_name["g"]["updated_at"] == 7.0
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["buckets"] == [[10, 1], ["inf", 0]]

    def test_reset_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("c.total")
        c.inc(9)
        reg.reset()
        assert reg.counter("c.total") is c
        assert c.value == 0

    def test_clear_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("c.total").inc()
        reg.clear()
        assert reg.names() == []


class TestClocks:
    def test_wall_clock_is_default(self):
        import time

        reg = MetricsRegistry()
        before = time.time()
        reg.gauge("g").set(1.0)
        assert reg.gauge("g").updated_at >= before

    def test_sim_clock_injection_and_rebinding(self):
        class FakeSim:
            now = 0.0

        sim = FakeSim()
        reg = MetricsRegistry(clock=lambda: 111.0)
        g = reg.gauge("g")
        g.set(1.0)
        assert g.updated_at == 111.0
        # rebinding the registry clock rebinds existing gauges too
        reg.set_clock(lambda: sim.now)
        sim.now = 42.5
        g.set(2.0)
        assert g.updated_at == 42.5
        assert reg.now() == 42.5

    def test_use_sim_clock_binds_global_registry(self, fresh_obs):
        from repro import obs

        class FakeSim:
            now = 9.25

        obs.use_sim_clock(FakeSim())
        assert obs.get_registry().now() == 9.25
