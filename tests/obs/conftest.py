"""Observability tests run against an isolated registry and recorder."""

import pytest

from repro import obs


@pytest.fixture
def fresh_obs():
    """A fresh process-wide registry; tracing off before and after."""
    previous = obs.set_registry(obs.MetricsRegistry())
    obs.disable_tracing()
    try:
        yield obs.get_registry()
    finally:
        obs.disable_tracing()
        obs.set_registry(previous)
