"""Unit tests for the structural signature + diff (no sockets needed).

The live golden gate (``tests/chaos/test_goldens.py``) proves the gate
end to end; these tests pin the signature's *contract* on hand-built
assembled forests: what is kept (names, nesting, node, polarity attrs,
orphan counts), what is dropped (ids, timings, byte counts), and that
the diff names the precise path that moved.
"""

import copy

from repro.obs.tracediff import SIGNATURE_VERSION, diff, signature


def _span(name, node="n1", attrs=None, events=(), children=()):
    return {
        "name": name,
        "node": node,
        "attrs": attrs or {},
        "events": list(events),
        "children": list(children),
        "trace_id": "t" * 16,
        "span_id": "s" * 16,
        "start": 1.0,
        "end": 2.0,
    }


def _forest(*roots, untraced=0):
    return {
        "untraced": untraced,
        "traces": [
            {
                "trace_id": "t" * 16,
                "nodes": sorted({r["node"] for r in roots}),
                "orphans": 0,
                "unattached": 0,
                "roots": list(roots),
            }
        ],
    }


def test_volatile_fields_are_dropped():
    a = _forest(_span("stage", attrs={"outcome": "ok", "bytes": 123}))
    b = copy.deepcopy(a)
    root = b["traces"][0]["roots"][0]
    root["attrs"]["bytes"] = 999_999      # volumetric: dropped
    root["start"], root["end"] = 5.0, 9.0  # timing: dropped
    root["span_id"] = "x" * 16             # identity: dropped
    assert signature(a) == signature(b)
    assert diff(signature(a), signature(b)) == []


def test_structural_attrs_are_kept():
    ok = _forest(_span("stage", attrs={"outcome": "ok"}))
    err = _forest(_span("stage", attrs={"outcome": "error"}))
    lines = diff(signature(ok), signature(err))
    assert lines
    assert any("outcome" in line for line in lines)


def test_sibling_and_event_order_is_canonicalised():
    ev_tx = {"name": "msg", "node": "n1", "attrs": {"direction": "tx"}}
    ev_rx = {"name": "msg", "node": "n1", "attrs": {"direction": "rx"}}
    child_a = _span("a")
    child_b = _span("b")
    one = _forest(_span("root", events=[ev_tx, ev_rx],
                        children=[child_a, child_b]))
    other = _forest(_span("root", events=[ev_rx, ev_tx],
                          children=[child_b, child_a]))
    assert signature(one) == signature(other)


def test_missing_child_is_named_in_the_diff():
    with_resume = _forest(
        _span("chaos.stage", children=[_span("session.resume",
                                             attrs={"outcome": "ok"})])
    )
    without = _forest(_span("chaos.stage"))
    lines = diff(signature(with_resume), signature(without))
    assert any("session.resume" in line for line in lines)
    assert any("missing from observed" in line
               or "entries" in line for line in lines)


def test_extra_span_is_flagged_symmetrically():
    lean = _forest(_span("chaos.stage"))
    fat = _forest(_span("chaos.stage"), _span("surprise"))
    lines = diff(signature(lean), signature(fat))
    assert any("surprise" in line or "unexpected" in line for line in lines)


def test_untraced_and_orphan_counts_are_load_bearing():
    a = _forest(_span("root"), untraced=4)
    b = _forest(_span("root"), untraced=0)
    lines = diff(signature(a), signature(b))
    assert any("untraced" in line for line in lines)

    c = _forest(_span("root"))
    d = copy.deepcopy(c)
    d["traces"][0]["orphans"] = 2
    lines = diff(signature(c), signature(d))
    assert any("orphans" in line for line in lines)


def test_diff_output_is_capped():
    a = _forest(*[_span(f"s{i}", attrs={"outcome": "ok"})
                  for i in range(100)])
    b = _forest(*[_span(f"s{i}", attrs={"outcome": "error"})
                  for i in range(100)])
    lines = diff(signature(a), signature(b), limit=10)
    assert len(lines) <= 10


def test_signature_is_versioned():
    assert signature(_forest(_span("x")))["version"] == SIGNATURE_VERSION
