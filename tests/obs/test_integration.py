"""End-to-end: a brokered parallel+compression transfer on each backend
produces the expected counters and spans in the shared registry."""

import asyncio

import pytest

from repro import StackSpec, obs
from repro.core.scenarios import GridScenario
from repro.livenet import (
    AsyncBlockChannel,
    AsyncCompressionDriver,
    AsyncParallelStreamsDriver,
    AsyncTcpBlockDriver,
    live_connect,
    live_listen,
)

TOTAL = 2_000_000
SPEC = StackSpec.parallel(4).with_compression()


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def _socket_pair(n=1):
    listener = await live_listen()
    client_socks, server_socks = [], []
    for _ in range(n):
        client, server = await asyncio.gather(
            live_connect(listener.addr), listener.accept()
        )
        client_socks.append(client)
        server_socks.append(server)
    listener.close()
    return client_socks, server_socks


class TestSimnetTransfer:
    @pytest.fixture
    def transfer(self, fresh_obs):
        recorder = obs.enable_tracing()
        sc = GridScenario(seed=71)
        for name in ("a", "b"):
            sc.add_site(name, "open", access_bandwidth=4e6, access_delay=0.005)
        sc.add_node("a", "src")
        sc.add_node("b", "dst")
        result = sc.measure_stack_throughput(
            "src", "dst", SPEC, b"p" * 65536, TOTAL
        )
        return fresh_obs, recorder, sc, result

    def test_driver_counters(self, transfer):
        reg, _rec, _sc, result = transfer
        # the helper rounds up to whole 64 KiB messages
        assert result["received"] == result["sent"] >= TOTAL
        tx = reg.get("driver.bytes_total",
                     driver="parallel", direction="tx", backend="sim")
        rx = reg.get("driver.bytes_total",
                     driver="parallel", direction="rx", backend="sim")
        assert tx.value == rx.value > 0
        # the payload is all-"p", so the wire carried far fewer bytes
        assert tx.value < result["sent"]
        assert reg.get("driver.streams",
                       driver="parallel", backend="sim").value == 4
        hist = reg.get("driver.block_bytes",
                       driver="parallel", direction="tx", backend="sim")
        assert hist.count > 0 and hist.sum == tx.value

    def test_compression_counters(self, transfer):
        reg, _rec, _sc, result = transfer
        bytes_in = reg.get("compress.bytes_total",
                           driver="compress", stage="in", backend="sim")
        bytes_out = reg.get("compress.bytes_total",
                            driver="compress", stage="out", backend="sim")
        assert bytes_in.value == result["sent"]
        assert 0 < bytes_out.value < bytes_in.value
        assert reg.get("compress.ratio",
                       driver="compress", backend="sim").value > 1.0

    def test_establishment_metrics_and_spans(self, transfer):
        reg, rec, _sc, _result = transfer
        ok_initiator = sum(
            c.value for c in reg.instruments("establish.attempts_total")
            if c.labels["outcome"] == "ok" and c.labels["role"] == "initiator"
        )
        assert ok_initiator >= SPEC.links_required == 4
        seconds = reg.instruments("establish.attempt_seconds")
        assert sum(h.count for h in seconds) >= 8  # both roles recorded
        ok_spans = [
            s for s in rec.spans("establish.attempt")
            if s["attrs"]["outcome"] == "ok"
        ]
        assert len(ok_spans) >= 8
        assert all("method" in s["attrs"] for s in ok_spans)

    def test_stack_assembly_spans_and_sim_clock(self, transfer):
        reg, rec, sc, _result = transfer
        assembles = rec.spans("stack.assemble")
        assert {s["attrs"]["role"] for s in assembles} == {
            "initiator", "responder"
        }
        for record in assembles:
            assert record["attrs"]["spec"] == str(SPEC) == "compress:1|parallel:4"
            assert record["attrs"]["links"] == 4
            # timestamps follow the simulation clock, not the wall clock
            assert 0.0 <= record["ts"] <= sc.sim.now
        assert reg.now() == sc.sim.now


class TestLivenetTransfer:
    def test_live_parallel_compress_counters(self, fresh_obs):
        payload = b"live-payload!" * 5041  # ~64 KiB, compressible
        rounds = 8

        async def main():
            client_socks, server_socks = await _socket_pair(4)
            sender = AsyncBlockChannel(AsyncCompressionDriver(
                AsyncParallelStreamsDriver(client_socks, fragment=2048)))
            receiver = AsyncBlockChannel(AsyncCompressionDriver(
                AsyncParallelStreamsDriver(server_socks, fragment=2048)))

            async def send():
                for _ in range(rounds):
                    await sender.write(payload)
                await sender.flush()
                sender.close()

            async def recv():
                total = 0
                while True:
                    data = await receiver.read(1 << 20)
                    if not data:
                        break
                    total += len(data)
                receiver.close()
                return total

            _, total = await asyncio.gather(send(), recv())
            return total

        assert run(main()) == rounds * len(payload)
        reg = fresh_obs
        tx = reg.get("driver.bytes_total",
                     driver="parallel", direction="tx", backend="live")
        rx = reg.get("driver.bytes_total",
                     driver="parallel", direction="rx", backend="live")
        assert tx.value == rx.value > 0
        assert reg.get("driver.streams",
                       driver="parallel", backend="live").value == 4
        assert reg.get("compress.bytes_total", driver="compress",
                       stage="in", backend="live").value == rounds * len(payload)
        assert reg.get("compress.ratio",
                       driver="compress", backend="live").value > 1.0
        # sim-labelled instruments must not exist after a live-only run
        assert reg.get("driver.bytes_total",
                       driver="parallel", direction="tx", backend="sim") is None


class TestConstructorParity:
    """The live drivers accept the sim drivers' keyword shapes."""

    def test_tcp_block_link_and_sock_are_aliases(self):
        class FakeSock:
            def close(self):
                pass

        sock = FakeSock()
        by_link = AsyncTcpBlockDriver(sock)
        by_sock = AsyncTcpBlockDriver(sock=sock)
        assert by_link.link is by_link.sock is sock
        assert by_sock.link is by_sock.sock is sock
        with pytest.raises(ValueError):
            AsyncTcpBlockDriver()

    def test_parallel_links_and_socks_are_aliases(self):
        class FakeSock:
            def close(self):
                pass

        socks = [FakeSock(), FakeSock()]

        async def main():
            by_links = AsyncParallelStreamsDriver(socks, fragment=512)
            by_socks = AsyncParallelStreamsDriver(socks=socks)
            assert by_links.links == by_links.socks == socks
            assert by_socks.links == socks
            assert by_socks.fragment > 0
            by_links.close()
            by_socks.close()
            await asyncio.sleep(0)

        run(main())
        with pytest.raises(ValueError):
            AsyncParallelStreamsDriver([])
