"""Trace recorder, span semantics, JSONL export and the report CLI."""

import io
import json

import pytest

from repro import obs
from repro.obs import (
    SchemaError,
    TraceRecorder,
    export_jsonl,
    read_jsonl,
    validate_jsonl,
    validate_record,
)
from repro.obs import report


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestSpans:
    def test_span_duration_and_ok_outcome(self):
        clock = FakeClock(10.0)
        rec = TraceRecorder(clock=clock)
        with rec.span("work", task="t1"):
            clock.now = 12.5
        (record,) = rec.spans("work")
        assert record["ts"] == 10.0
        assert record["duration"] == 2.5
        assert record["attrs"] == {"task": "t1", "outcome": "ok"}

    def test_span_error_outcome_names_exception(self):
        rec = TraceRecorder(clock=FakeClock())
        with pytest.raises(ValueError):
            with rec.span("work"):
                raise ValueError("boom")
        (record,) = rec.spans("work")
        assert record["attrs"]["outcome"] == "error"
        assert record["attrs"]["error"] == "ValueError"

    def test_explicit_outcome_wins(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("work") as sp:
            sp.set(outcome="nak", method="upgrade")
        (record,) = rec.spans("work")
        assert record["attrs"]["outcome"] == "nak"
        assert record["attrs"]["method"] == "upgrade"

    def test_module_helpers_are_noops_when_disabled(self, fresh_obs):
        assert obs.tracer() is None
        with obs.span("ignored") as sp:
            sp.set(x=1)
        obs.event("ignored")
        # enabling afterwards starts from a clean recorder
        rec = obs.enable_tracing(clock=FakeClock())
        obs.event("seen", n=1)
        assert rec.events("ignored") == []
        (record,) = rec.events("seen")
        assert record["attrs"] == {"n": 1}

    def test_limit_counts_dropped_records(self):
        rec = TraceRecorder(clock=FakeClock(), limit=2)
        for i in range(5):
            rec.event("e", i=i)
        assert len(rec.records) == 2
        assert rec.dropped == 3
        rec.clear()
        assert rec.records == [] and rec.dropped == 0


class TestExport:
    def test_roundtrip_and_validation(self, fresh_obs, tmp_path):
        reg = fresh_obs
        reg.counter("c.total", k="v").inc(2)
        reg.histogram("h", buckets=(10,)).observe(3)
        rec = obs.enable_tracing(clock=FakeClock(1.0))
        with rec.span("s"):
            pass
        rec.event("e")
        path = str(tmp_path / "out.jsonl")
        lines = export_jsonl(path)
        assert lines == 5  # meta + 2 metrics + span + event
        counts = validate_jsonl(path)
        assert counts == {
            "meta": 1, "metric/counter": 1, "metric/histogram": 1,
            "trace/span": 1, "trace/event": 1,
        }
        records = read_jsonl(path)
        assert records[0]["schema"] == obs.SCHEMA_VERSION

    def test_export_to_file_object(self, fresh_obs):
        fresh_obs.gauge("g").set(1.0)
        buf = io.StringIO()
        export_jsonl(buf)
        for line in buf.getvalue().splitlines():
            validate_record(json.loads(line))

    def test_dropped_records_surface_in_header(self, fresh_obs, tmp_path):
        rec = obs.enable_tracing(clock=FakeClock(), limit=1)
        rec.event("a")
        rec.event("b")
        path = str(tmp_path / "out.jsonl")
        export_jsonl(path)
        assert read_jsonl(path)[0]["dropped_trace_records"] == 1

    def test_validate_rejects_malformed_records(self, tmp_path):
        with pytest.raises(SchemaError):
            validate_record({"type": "metric", "kind": "counter"})
        with pytest.raises(SchemaError):
            validate_record({"type": "trace", "kind": "span", "name": "s",
                             "ts": 0.0, "attrs": {}})  # missing duration
        with pytest.raises(SchemaError):
            validate_record({"type": "wat"})
        with pytest.raises(SchemaError):
            validate_record("not a dict")
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(SchemaError):
            validate_jsonl(str(bad))


class TestReport:
    def _export(self, tmp_path):
        reg = obs.MetricsRegistry(clock=lambda: 0.0)
        reg.counter("c.total").inc(4)
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("phase") as sp:
            sp.set(outcome="nak")
        with rec.span("phase"):
            pass
        rec.event("tick")
        path = str(tmp_path / "out.jsonl")
        export_jsonl(path, registry=reg, recorder=rec)
        return path

    def test_summarize_groups_spans_by_outcome(self, tmp_path):
        summary = report.summarize(read_jsonl(self._export(tmp_path)))
        assert summary["schema"] == obs.SCHEMA_VERSION
        assert summary["spans"]["phase"]["count"] == 2
        assert summary["spans"]["phase"]["outcomes"] == {"nak": 1, "ok": 1}
        assert summary["events"] == {"tick": 1}
        text = report.render(summary)
        assert "c.total" in text and "phase" in text and "1 nak" in text

    def test_main_text_and_json(self, tmp_path, capsys):
        path = self._export(tmp_path)
        assert report.main([path]) == 0
        assert "observability export" in capsys.readouterr().out
        assert report.main([path, "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["records"] == 5

    def test_main_error_exits(self, tmp_path, capsys):
        assert report.main([str(tmp_path / "missing.jsonl")]) == 2
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        assert report.main([str(bad)]) == 1
        capsys.readouterr()

