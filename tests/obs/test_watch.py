"""The watch CLI (rolling health) and report CLI telemetry sections."""

import json

import pytest

from repro.obs import report, watch
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    TelemetryAggregator,
    TelemetryLog,
    TelemetryPublisher,
)


class _Clock:
    def __init__(self, start=0.0):
        self.t = start

    def __call__(self):
        return self.t


@pytest.fixture
def capture(tmp_path):
    """A two-source telemetry JSONL: `fast` keeps going, `slow` stalls."""
    reg = MetricsRegistry()
    clock = _Clock()
    log = TelemetryLog()
    pubs = {}
    for node in ("fast", "slow"):
        pub = TelemetryPublisher(
            reg, node, clock=clock, interval=0.5,
            select=lambda n, labels, _id=node: labels.get("node") == _id,
        )
        pub.add_sink(log)
        pubs[node] = pub
    for step in range(1, 9):
        clock.t = step * 0.5
        reg.counter("tx", node="fast").inc(1000)
        pubs["fast"].publish()
        if step <= 3:  # slow's stream stops advancing at t=1.5
            reg.counter("tx", node="slow").inc(10)
            pubs["slow"].publish()
    path = tmp_path / "telemetry.jsonl"
    log.write_jsonl(str(path))
    return str(path)


class TestIngest:
    def test_skips_noise_and_clips(self):
        agg = TelemetryAggregator(window=10.0)
        lines = [
            '{"type": "meta", "schema": 2}',
            "not json at all",
            "",
            json.dumps({"type": "telemetry", "source": "a", "seq": 1,
                        "ts": 0.5, "interval": 0.5, "counters": [],
                        "gauges": [], "histograms": []}),
            json.dumps({"type": "telemetry", "source": "a", "seq": 2,
                        "ts": 9.0, "interval": 0.5, "counters": [],
                        "gauges": [], "histograms": []}),
        ]
        assert watch.ingest_lines(lines, agg, clip=1.0) == 1
        assert agg.health("a")["seq"] == 1


class TestRenderHealth:
    def test_empty_aggregator(self):
        assert "no records" in watch.render_health(TelemetryAggregator())

    def test_flags_the_stalled_source(self, capture):
        agg = TelemetryAggregator(window=2.0)
        with open(capture, encoding="utf-8") as fh:
            watch.ingest_lines(fh, agg)
        table = watch.render_health(agg)
        slow_row = next(l for l in table.splitlines() if "slow" in l)
        fast_row = next(l for l in table.splitlines() if "fast" in l)
        assert "[STALE]" in slow_row  # last heard t=1.5, newest is t=4.0
        assert "[STALE]" not in fast_row
        assert "tx=2,000.0/s" in fast_row
        assert "sources=2" in table

    def test_retired_beats_stale(self, capture):
        agg = TelemetryAggregator(window=2.0)
        with open(capture, encoding="utf-8") as fh:
            watch.ingest_lines(fh, agg)
        agg.retire("slow")
        table = watch.render_health(agg)
        slow_row = next(l for l in table.splitlines() if "slow" in l)
        assert "[retired]" in slow_row and "[STALE]" not in slow_row


class TestWatchMain:
    def test_table_output(self, capture, capsys):
        assert watch.main([capture, "--window", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "telemetry @ t=4.000" in out
        assert "fast" in out and "slow" in out

    def test_at_travels_back_in_time(self, capture, capsys):
        assert watch.main([capture, "--window", "2.0", "--at", "1.5"]) == 0
        out = capsys.readouterr().out
        # at t=1.5 both streams were live: nothing is stale yet
        assert "STALE" not in out
        assert "telemetry @ t=1.500" in out

    def test_json_output(self, capture, capsys):
        assert watch.main([capture, "--json"]) == 0
        health = json.loads(capsys.readouterr().out)
        assert set(health) == {"fast", "slow"}
        assert health["slow"]["seq"] == 3

    def test_missing_file(self, tmp_path, capsys):
        assert watch.main([str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestReportTelemetry:
    def test_telemetry_section_renders(self, capture, capsys):
        assert report.main([capture]) == 0
        out = capsys.readouterr().out
        assert "== telemetry (11 records) ==" in out
        assert "tx+8000" in out  # fast's total delta
        assert "tx+30" in out

    def test_multiple_files_merge(self, capture, tmp_path, capsys):
        other = tmp_path / "more.jsonl"
        record = {"type": "telemetry", "source": "extra", "seq": 1,
                  "ts": 0.5, "interval": 0.5,
                  "counters": [["rx", {}, 7]], "gauges": [],
                  "histograms": []}
        other.write_text(
            '{"type": "meta", "schema": 2, "exported_at": 0, "records": 1}\n'
            + json.dumps(record) + "\n"
        )
        assert report.main([capture, str(other), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary["telemetry"]) == {"fast", "slow", "extra"}
        assert summary["telemetry"]["extra"]["counters"] == {"rx": 7}

    def test_json_flag_is_a_deprecated_alias(self, capture, capsys):
        assert report.main([capture, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["telemetry"]["fast"]["last_seq"] == 8
