"""Failure injection: crashes, tampering, loss bursts, middlebox amnesia."""

import pytest

from repro.core.factory import BrokeredConnectionFactory, TlsConfig
from repro.core.scenarios import GridScenario
from repro.core.utilization import DriverError
from repro.core.utilization.spec import StackSpec
from repro.security import CertificateAuthority, Identity
from repro.simnet import ConnectionReset, connect, listen
from repro.simnet.packet import Segment
from repro.simnet.testing import two_public_hosts, wan_pair
from repro.simnet.topology import PacketFilter


class TestRelayCrash:
    def test_routed_link_sees_eof_when_relay_dies(self):
        sc = GridScenario(seed=61)
        sc.add_site("A", "firewall")
        sc.add_site("B", "firewall")
        a = sc.add_node("A", "a")
        b = sc.add_node("B", "b")
        res = {}

        def sender():
            yield from a.start()
            while not b.relay_client.connected:
                yield sc.sim.timeout(0.05)
            link = yield from a.relay_client.open_link("b", payload=b"service")
            yield from link.send_all(b"before-crash")
            yield sc.sim.timeout(1.0)
            sc.relay.stop()  # the relay machine dies
            yield sc.sim.timeout(5.0)
            try:
                yield from link.send_all(b"after-crash")
                data = yield from link.recv(10)
                res["after"] = data
            except Exception as exc:
                res["after"] = type(exc).__name__

        def receiver():
            yield from b.start()
            link = yield from b.dispatcher.accept_service()
            res["got"] = yield from link.recv_exactly(12)
            data = yield from link.recv(10)
            res["eof"] = data

        sc.sim.process(sender())
        sc.sim.process(receiver())
        sc.run(until=120)
        assert res["got"] == b"before-crash"
        assert res["eof"] == b""  # EOF propagated to the receiver
        # The sender's link is dead one way or another.
        assert res["after"] in (b"", "RelayError", "ConnectionReset", "EOFError")


class _BitFlipper(PacketFilter):
    """Flips one bit in the Nth inbound data segment (in-flight tampering).

    Stays dormant until ``armed`` so the (self-protecting) handshake runs
    untouched and the tampering hits application records.
    """

    def __init__(self, target_index: int = 3, min_payload: int = 64):
        self.target_index = target_index
        self.min_payload = min_payload
        self.seen = 0
        self.flipped = False
        self.armed = False

    def ingress(self, segment: Segment):
        if (
            self.armed
            and segment.payload
            and len(segment.payload) >= self.min_payload
        ):
            self.seen += 1
            if self.seen == self.target_index and not self.flipped:
                tampered = bytearray(segment.payload)
                tampered[10] ^= 0x40
                segment.payload = bytes(tampered)
                self.flipped = True
        return segment


class TestTampering:
    def test_tls_detects_in_flight_modification(self):
        sc = GridScenario(seed=62)
        sc.add_site("A", "firewall")
        sc.add_site("B", "firewall")
        src = sc.add_node("A", "src")
        dst = sc.add_node("B", "dst")
        flipper = _BitFlipper()
        sc.sites["B"].wan_iface.filters.append(flipper)

        ca = CertificateAuthority("root")
        ka, cert_a = ca.issue_identity("src")
        kb, cert_b = ca.issue_identity("dst")
        tls_a = TlsConfig([ca.certificate], Identity(ka, [cert_a]))
        tls_b = TlsConfig([ca.certificate], Identity(kb, [cert_b]))
        res = {}

        def sender():
            yield from src.start()
            while not dst.relay_client.connected:
                yield sc.sim.timeout(0.05)
            service = yield from src.open_service_link("dst")
            factory = BrokeredConnectionFactory(src, tls_a)
            channel = yield from factory.connect(service, dst.info, spec=StackSpec.parse("tls|tcp_block"))
            flipper.armed = True  # handshake done; tamper with data records
            for i in range(20):
                yield from channel.send_message(b"record-%03d" % i * 50)

        def receiver():
            yield from dst.start()
            _p, service = yield from dst.accept_service_link()
            factory = BrokeredConnectionFactory(dst, tls_b)
            channel = yield from factory.accept(service)
            count = 0
            try:
                while True:
                    yield from channel.recv_message()
                    count += 1
            except DriverError as exc:
                res["error"] = str(exc)
            res["delivered"] = count

        sc.sim.process(sender())
        sc.sim.process(receiver())
        sc.run(until=240)
        assert flipper.flipped
        assert "authentication failed" in res["error"]
        assert res["delivered"] < 20  # the tampered record never delivers


class TestLossBurst:
    def test_transfer_survives_temporary_blackout(self):
        inet, a, b = wan_pair(capacity=2e6, one_way_delay=0.01, seed=63)
        sim = inet.sim
        res = {}
        # Find the WAN transmitters to sabotage.
        wan_link = inet.sites["left"].wan_link

        def saboteur():
            yield sim.timeout(2.0)
            wan_link.a_to_b.loss = 0.95
            wan_link.b_to_a.loss = 0.95
            yield sim.timeout(3.0)
            wan_link.a_to_b.loss = 0.0
            wan_link.b_to_a.loss = 0.0

        def server():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            got = 0
            while got < 4_000_000:
                data = yield from sock.recv(65536)
                if not data:
                    break
                got += len(data)
            res["got"] = got

        def client():
            sock = yield from connect(a, (b.ip, 5000))
            yield from sock.send_all(b"z" * 4_000_000)
            res["retx"] = sock.tcp.retransmits

        sim.process(server())
        sim.process(client())
        sim.process(saboteur())
        sim.run(until=600)
        assert res["got"] == 4_000_000
        assert res["retx"] > 0


class TestPeerFailure:
    def test_receiver_abort_resets_sender(self):
        inet, a, b = two_public_hosts(seed=64)
        res = {}

        def server():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            yield from sock.recv(1024)
            sock.abort()  # process crash

        def client():
            sock = yield from connect(a, (b.ip, 5000))
            try:
                # Keep pushing until the reset surfaces.
                for _ in range(1000):
                    yield from sock.send_all(b"w" * 8192)
                    yield inet.sim.timeout(0.01)
                res["outcome"] = "never-failed"
            except ConnectionReset:
                res["outcome"] = "reset"

        inet.sim.process(server())
        inet.sim.process(client())
        inet.sim.run(until=60)
        assert res["outcome"] == "reset"


class TestMiddleboxAmnesia:
    def test_firewall_conntrack_expiry_stalls_idle_connection(self):
        """An idle spliced connection dies when the firewall forgets it."""
        from repro.simnet.firewall import StatefulFirewall

        sc = GridScenario(seed=65)
        sc.add_site("A", "open")
        # Short conntrack timeout on site B.
        sc.add_site("B", "firewall")
        fw: StatefulFirewall = sc.sites["B"].firewall
        fw.conntrack_timeout = 30.0
        a = sc.sites["A"].add_node("a-node")
        b = sc.sites["B"].add_node("b-node")
        res = {}

        from repro.simnet.sockets import connect_simultaneous

        def side_b():
            sock = yield from connect_simultaneous(b, (a.ip, 7000), 7001)
            res["first"] = yield from sock.recv_exactly(5)
            res["second"] = yield from sock.recv(5)  # expected never to arrive

        def side_a():
            sock = yield from connect_simultaneous(a, (b.ip, 7001), 7000)
            yield from sock.send_all(b"early")
            # Idle far beyond the conntrack timeout; the entry expires.
            yield sc.sim.timeout(120.0)
            yield from sock.send_all(b"later")
            yield sc.sim.timeout(30.0)
            res["sender_retx"] = sock.tcp.retransmits
            sock.abort()

        sc.sim.process(side_b())
        sc.sim.process(side_a())
        sc.run(until=300)
        assert res["first"] == b"early"
        assert res.get("second") in (None, b"")  # never delivered
        assert res["sender_retx"] > 0  # the sender kept trying