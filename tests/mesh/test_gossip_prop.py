"""Property test: gossip converges from ANY delivery order.

Seeded-random style (no hypothesis at runtime, same idiom as
``tests/mux/test_frames_prop.py``).  The merge is a join-semilattice —
per relay id, keep the larger ``(incarnation, seq)`` — so folding the
same multiset of entries into a view must reach the same final state
regardless of

* the order entries are delivered,
* how they are batched into gossip messages,
* duplication (at-least-once delivery),
* a round trip through the wire codec.

Each seed fabricates a random history of entries (several relays, each
with several versions), then delivers random shuffles/batchings of it to
independent observers and asserts every observer's digest is identical
— and equal to the per-id maximum version, computed independently.
"""

import random

import pytest

from repro.mesh.config import MeshConfig
from repro.mesh.state import MeshState, RelayEntry, decode_entries, encode_entries

CFG = MeshConfig()

RELAY_IDS = ["r1", "r2", "r3", "r4", "r5"]
NODE_POOL = ["alice", "bob", "carol", "dave"]


def _random_history(rng: random.Random) -> list[RelayEntry]:
    """A multiset of versioned entries: several lives per relay."""
    history = []
    for rid in rng.sample(RELAY_IDS, rng.randint(2, len(RELAY_IDS))):
        for incarnation in range(1, rng.randint(2, 4)):
            for seq in range(1, rng.randint(2, 6)):
                history.append(
                    RelayEntry(
                        rid,
                        ("10.0.0.1", 9000 + incarnation),
                        incarnation,
                        seq,
                        load=rng.randrange(0, 20),
                        nodes=tuple(
                            sorted(
                                rng.sample(
                                    NODE_POOL, rng.randint(0, len(NODE_POOL))
                                )
                            )
                        ),
                    )
                )
    return history


def _deliver(history, rng: random.Random, through_wire: bool) -> MeshState:
    """Fold a random shuffle/batching (with duplicates) into a view."""
    state = MeshState("", CFG)
    deliveries = list(history)
    # At-least-once: duplicate a random sample of entries.
    deliveries.extend(rng.sample(history, rng.randint(0, len(history) // 2)))
    rng.shuffle(deliveries)
    now = 0.0
    while deliveries:
        batch = [deliveries.pop() for _ in range(
            min(len(deliveries), rng.randint(1, 7)))]
        if through_wire:
            batch = decode_entries(encode_entries(batch))
        state.merge(batch, now=now)
        now += rng.random()
    return state


@pytest.mark.parametrize("seed", range(25))
def test_any_delivery_order_converges(seed):
    rng = random.Random(f"gossip-prop:{seed}")
    history = _random_history(rng)
    expected = {}
    for e in history:
        if e.relay_id not in expected or e.dominates(expected[e.relay_id]):
            expected[e.relay_id] = e

    observers = [
        _deliver(history, random.Random(f"gossip-prop:{seed}:{i}"),
                 through_wire=bool(i % 2))
        for i in range(4)
    ]
    digests = [obs.digest() for obs in observers]
    assert all(d == digests[0] for d in digests)
    # Converged state is exactly the per-id maximum version, with the
    # dominating entry's full body (load, ownership) — not just the tag.
    for state in observers:
        assert state.entries == expected


@pytest.mark.parametrize("seed", range(10))
def test_merge_is_idempotent_and_commutative_pairwise(seed):
    rng = random.Random(f"gossip-pair:{seed}")
    history = _random_history(rng)
    a, b = history[: len(history) // 2], history[len(history) // 2:]

    ab = MeshState("", CFG)
    ab.merge(a, 0.0)
    ab.merge(b, 1.0)
    ba = MeshState("", CFG)
    ba.merge(b, 0.0)
    ba.merge(a, 1.0)
    twice = MeshState("", CFG)
    for _ in range(2):
        twice.merge(history, 0.0)

    assert ab.entries == ba.entries == twice.entries
