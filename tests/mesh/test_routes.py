"""RouteTable: scoring, peer preference, hysteresis, balancing."""

import random

from repro.mesh.config import MeshConfig
from repro.mesh.routes import RouteTable
from repro.mesh.state import MeshState, RelayEntry

CFG = MeshConfig(hysteresis=0.25, load_weight=0.1, rtt_weight=1.0)


def table(*entries, usable=None, cfg=CFG):
    state = MeshState("", cfg)
    state.merge(entries, now=0.0)
    return state, RouteTable(state, cfg, usable=usable)


def entry(rid, load=0, nodes=()):
    return RelayEntry(rid, ("10.0.0.1", 9000), 1, 1, load=load,
                      nodes=tuple(nodes))


class TestScoring:
    def test_load_depresses_score(self):
        _, rt = table(entry("r1", load=0), entry("r2", load=10))
        assert rt.score(entry("r1", load=0)) > rt.score(entry("r2", load=10))
        assert rt.pick("bob").relay_id == "r1"

    def test_rtt_depresses_score_but_never_gates(self):
        _, rt = table(entry("r1"), entry("r2"))
        rt.update_path("r1", 2.0)  # terrible path toward r1
        assert rt.pick("bob").relay_id == "r2"
        # An unmeasured relay is still routable: telemetry refines only.
        _, rt2 = table(entry("r1"))
        rt2.update_path("r1", 9.0)
        assert rt2.pick("bob").relay_id == "r1"

    def test_peer_holding_relay_outranks_raw_score(self):
        _, rt = table(
            entry("r1", load=50, nodes=("bob",)),  # busy but has bob
            entry("r2", load=0),
        )
        assert rt.pick("bob").relay_id == "r1"


class TestHysteresis:
    def test_incumbent_sticks_under_small_challenges(self):
        state, rt = table(entry("r1", load=0), entry("r2", load=0))
        first = rt.pick("bob").relay_id
        # A challenger that is only marginally better must not flip the
        # route: depress the incumbent's score inside the margin.
        state.merge(
            [RelayEntry(first, ("10.0.0.1", 9000), 1, 2, load=1)], now=1.0
        )
        assert rt.pick("bob").relay_id == first
        assert rt.route_changes == 0

    def test_big_enough_challenger_switches(self):
        state, rt = table(entry("r1", load=0), entry("r2", load=0))
        first = rt.pick("bob").relay_id
        state.merge(
            [RelayEntry(first, ("10.0.0.1", 9000), 1, 2, load=100)], now=1.0
        )
        assert rt.pick("bob").relay_id != first
        assert rt.route_changes == 1

    def test_dead_incumbent_is_replaced(self):
        state, rt = table(entry("r1"), entry("r2"))
        first = rt.pick("bob").relay_id
        state.dead[first] = 1.0
        rt.invalidate(first)
        replacement = rt.pick("bob").relay_id
        assert replacement != first

    def test_no_usable_relay_returns_none(self):
        _, rt = table(entry("r1"), usable=lambda rid: False)
        assert rt.pick("bob") is None
        assert rt.current("bob") is None


class TestBalancing:
    def test_weighted_choice_is_deterministic_under_seed(self):
        picks_a = []
        picks_b = []
        for picks, seed in ((picks_a, 7), (picks_b, 7)):
            for peer in range(20):
                _, rt = table(entry("r1"), entry("r2"), entry("r3"))
                rng = random.Random(seed + peer)
                picks.append(rt.pick(f"peer{peer}", rng=rng).relay_id)
        assert picks_a == picks_b
        assert len(set(picks_a)) > 1  # the choice does spread
