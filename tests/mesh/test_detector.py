"""DeadlineDetector: bounded, deterministic failure detection."""

from repro.mesh.config import MeshConfig
from repro.mesh.detector import DeadlineDetector

CFG = MeshConfig(gossip_interval=0.5, phi_threshold=6.0, deadline=3.0)


class TestDetector:
    def test_never_heard_is_never_suspected(self):
        det = DeadlineDetector(CFG)
        assert not det.suspect("ghost", now=1e9)
        assert det.phi("ghost", now=0.0) == float("inf")

    def test_regular_heartbeats_stay_unsuspected(self):
        det = DeadlineDetector(CFG)
        now = 0.0
        for _ in range(20):
            det.heard("r2", now)
            now += CFG.gossip_interval
            assert not det.suspect("r2", now)

    def test_deadline_bounds_detection(self):
        det = DeadlineDetector(CFG)
        det.heard("r2", 0.0)
        assert not det.suspect("r2", CFG.deadline - 0.01)
        assert det.suspect("r2", CFG.deadline)

    def test_phi_fires_before_deadline_on_fast_cadence(self):
        # After many rapid heartbeats the smoothed interval shrinks, so
        # phi crosses the threshold well inside the hard deadline.
        det = DeadlineDetector(CFG)
        now = 0.0
        for _ in range(50):
            det.heard("r2", now)
            now += 0.1
        assert det.suspect("r2", now + 1.0)  # phi >= 6 after ~6 intervals
        assert now + 1.0 < det.last_heard("r2") + CFG.deadline

    def test_burst_cannot_collapse_the_interval(self):
        # Many heartbeats at the same instant must not make an honest
        # peer instantly suspect (the _MIN_INTERVAL floor).
        det = DeadlineDetector(CFG)
        for _ in range(100):
            det.heard("r2", 5.0)
        assert not det.suspect("r2", 5.0)

    def test_reset_clock_keeps_intervals_but_forgives_silence(self):
        det = DeadlineDetector(CFG)
        det.heard("r2", 0.0)
        det.reset_clock(100.0)
        assert det.last_heard("r2") == 100.0
        assert not det.suspect("r2", 100.0)
        assert det.suspect("r2", 100.0 + CFG.deadline)

    def test_forget_clears_history(self):
        det = DeadlineDetector(CFG)
        det.heard("r2", 0.0)
        det.forget("r2")
        assert not det.suspect("r2", 1e9)
