"""MeshState: the gossiped view and its join-semilattice merge."""

from repro.mesh.config import MeshConfig
from repro.mesh.state import MeshState, RelayEntry, decode_entries, encode_entries

CFG = MeshConfig(gossip_interval=0.5, deadline=3.0)


def entry(rid, inc=1, seq=1, load=0, nodes=(), port=9000):
    return RelayEntry(rid, ("10.0.0.1", port), inc, seq, load=load,
                      nodes=tuple(nodes))


class TestRelayEntry:
    def test_version_ordering(self):
        assert entry("r", inc=2, seq=1).dominates(entry("r", inc=1, seq=9))
        assert entry("r", inc=1, seq=2).dominates(entry("r", inc=1, seq=1))
        assert not entry("r", inc=1, seq=1).dominates(entry("r", inc=1, seq=1))

    def test_codec_round_trip(self):
        entries = [
            entry("r2", inc=3, seq=7, load=4, nodes=("alice", "bob")),
            entry("r1", inc=1, seq=1),
        ]
        decoded = decode_entries(encode_entries(entries))
        # Wire order is deterministic (sorted by id) regardless of input.
        assert decoded == sorted(entries, key=lambda e: e.relay_id)


class TestMerge:
    def test_dominating_entry_advances_view(self):
        state = MeshState("r1", CFG)
        assert state.merge([entry("r2", seq=1)], now=0.0) == ["r2"]
        assert state.merge([entry("r2", seq=1)], now=1.0) == []  # stale
        assert state.merge([entry("r2", seq=2)], now=2.0) == ["r2"]

    def test_dominating_entry_resurrects_the_dead(self):
        state = MeshState("r1", CFG)
        state.merge([entry("r2", seq=1)], now=0.0)
        state.sweep(now=10.0)
        assert "r2" in state.dead
        # A restarted r2 (higher incarnation) must come back alive.
        state.merge([entry("r2", inc=2, seq=1)], now=10.5)
        assert "r2" not in state.dead
        assert "r2" in state.alive_ids()

    def test_rumour_of_higher_self_incarnation_is_adopted(self):
        # A stale network still carrying our previous life's entries must
        # not outrank us forever: adopt the larger incarnation.
        state = MeshState("r1", CFG)
        state.refresh_self(0.0, ("10.0.0.1", 9000), 0, [], incarnation=1)
        state.merge([entry("r1", inc=5, seq=99, load=7)], now=1.0)
        mine = state.entries["r1"]
        assert mine.incarnation == 5
        assert mine.load == 0  # only the incarnation is adopted, not the body

    def test_refresh_self_bumps_seq(self):
        state = MeshState("r1", CFG)
        first = state.refresh_self(0.0, ("10.0.0.1", 9000), 0, [], 1)
        second = state.refresh_self(0.5, ("10.0.0.1", 9000), 2, ["n"], 1)
        assert (first.seq, second.seq) == (1, 2)
        assert second.dominates(first)


class TestSweep:
    def test_silent_peer_declared_dead_within_bound(self):
        state = MeshState("r1", CFG)
        state.merge([entry("r2")], now=0.0)
        assert state.sweep(now=0.0 + CFG.deadline - 0.01) == []
        assert state.sweep(now=0.0 + CFG.deadline) == ["r2"]
        lag = [(det - heard) for _rid, heard, det in state.deaths]
        assert all(d <= CFG.detect_bound for d in lag)

    def test_sweep_is_idempotent(self):
        state = MeshState("r1", CFG)
        state.merge([entry("r2")], now=0.0)
        assert state.sweep(now=100.0) == ["r2"]
        assert state.sweep(now=200.0) == []
        assert len(state.deaths) == 1

    def test_restarted_rebaselines_suspicion(self):
        # The observer was down for 100 s: its peers' "silence" spans its
        # own outage and must not count as evidence of death.
        state = MeshState("r1", CFG)
        state.merge([entry("r2")], now=0.0)
        state.restarted(now=100.0)
        assert state.sweep(now=100.0 + CFG.deadline - 0.01) == []
        assert state.sweep(now=100.0 + CFG.deadline) == ["r2"]


class TestQueries:
    def test_owner_of_prefers_live_lowest_id(self):
        state = MeshState("", CFG)
        state.merge(
            [
                entry("r2", nodes=("bob",)),
                entry("r1", nodes=("bob",)),
                entry("r3"),
            ],
            now=0.0,
        )
        assert state.owner_of("bob").relay_id == "r1"
        state.dead["r1"] = 1.0
        assert state.owner_of("bob").relay_id == "r2"
        assert state.owner_of("nobody") is None
