"""Test-suite configuration: deterministic property testing.

Hypothesis is derandomized so the suite is bit-for-bit reproducible —
matching the determinism guarantee the simulator itself makes.  Deadlines
are disabled because simulation wall-time varies with machine load while
simulated results do not.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")
