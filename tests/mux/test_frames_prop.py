"""Property tests: mux frame codec + arbitrary channel interleavings.

Seeded-random style (no hypothesis at runtime, same idiom as
``tests/util/test_framing_prop.py``): each seed generates an arbitrary
schedule of channel opens, chunked writes, reads and closes on both
sides of a mux link, and the properties are

* every channel's bytes round-trip intact (no loss under backpressure),
* no bytes ever cross between channels (leakage),
* the whole schedule drains without deadlock (the sim run completes),
* every frame the codec can produce decodes back to itself.
"""

import random

import pytest

from repro import obs
from repro.core.links import TcpLink
from repro.mux import MuxEndpoint, decode_frame
from repro.mux.frames import (
    CLOSE_ERROR,
    CLOSE_GRACEFUL,
    MuxProtocolError,
    encode_accept,
    encode_close,
    encode_credit,
    encode_data,
    encode_hello,
    encode_open,
    encode_window,
)
from repro.obs.metrics import MetricsRegistry
from repro.simnet import connect, listen
from repro.simnet.testing import two_public_hosts


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


class TestCodecRoundTrip:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_frames_round_trip(self, seed):
        rng = random.Random(f"mux-codec:{seed}")
        for _ in range(50):
            kind = rng.choice(["hello", "open", "accept", "data", "credit",
                               "window", "close"])
            cid = rng.randrange(1, 1 << 31)
            if kind == "hello":
                body = encode_hello(rng.randrange(1, 1 << 16),
                                    rng.randrange(0, 1 << 31))
                frame = decode_frame(body)
                assert (frame.name, frame.channel) == ("hello", 0)
            elif kind == "open":
                tag = rng.randbytes(rng.randrange(0, 64))
                ctx = rng.randbytes(rng.choice([0, 24]))
                window = rng.randrange(1, 1 << 31)
                frame = decode_frame(encode_open(cid, window, tag, ctx))
                assert (frame.channel, frame.window, frame.tag, frame.ctx) \
                    == (cid, window, tag, ctx)
            elif kind == "accept":
                window = rng.randrange(1, 1 << 31)
                frame = decode_frame(encode_accept(cid, window))
                assert (frame.channel, frame.window) == (cid, window)
            elif kind == "data":
                payload = rng.randbytes(rng.randrange(0, 2048))
                frame = decode_frame(encode_data(cid, payload))
                assert (frame.channel, frame.payload) == (cid, payload)
            elif kind == "credit":
                grant = rng.randrange(0, 1 << 31)
                frame = decode_frame(encode_credit(cid, grant))
                assert (frame.channel, frame.grant) == (cid, grant)
            elif kind == "window":
                window = rng.randrange(1, 1 << 31)
                frame = decode_frame(encode_window(cid, window))
                assert (frame.name, frame.channel, frame.window) \
                    == ("window", cid, window)
            else:
                flags = rng.choice([CLOSE_GRACEFUL, CLOSE_ERROR])
                reason = "".join(rng.choices("abcdef ", k=rng.randrange(0, 30)))
                frame = decode_frame(encode_close(cid, flags, reason))
                assert (frame.channel, frame.flags, frame.reason) \
                    == (cid, flags, reason)

    @pytest.mark.parametrize("seed", range(10))
    def test_truncated_frames_rejected(self, seed):
        rng = random.Random(f"mux-trunc:{seed}")
        body = encode_open(7, 1024, rng.randbytes(16), rng.randbytes(24))
        cut = rng.randrange(1, len(body))
        with pytest.raises(MuxProtocolError):
            decode_frame(body[:cut])

    def test_unknown_type_rejected(self):
        with pytest.raises(MuxProtocolError):
            decode_frame(b"\x2a" + b"\x00" * 4)


def _mux_pair(window):
    inet, a, b = two_public_hosts()
    sim = inet.sim
    out = {}

    def srv():
        listener = listen(b, 5000)
        sock = yield from listener.accept()
        out["resp"] = yield from MuxEndpoint.establish(
            TcpLink(sock, "client_server"), MuxEndpoint.RESPONDER,
            window=window, node="resp")

    def cli():
        sock = yield from connect(a, (b.ip, 5000))
        out["ini"] = yield from MuxEndpoint.establish(
            TcpLink(sock, "client_server"), MuxEndpoint.INITIATOR,
            window=window, node="ini")

    sim.process(srv())
    sim.process(cli())
    sim.run(until=30)
    return sim, out["ini"], out["resp"]


class TestInterleavings:
    @pytest.mark.parametrize("seed", range(12))
    def test_arbitrary_schedules_round_trip_without_leakage(self, seed):
        rng = random.Random(f"mux-interleave:{seed}")
        window = rng.choice([512, 2048, 8192, 65536])
        sim, ini, resp = _mux_pair(window)
        n_channels = rng.randrange(2, 9)
        payloads = {}
        for i in range(n_channels):
            # distinct per-channel byte pattern: leakage corrupts digests
            size = rng.randrange(1, 30_000)
            payloads[i] = bytes((i * 37 + j) % 251 for j in range(size))
        received = {}
        done = []

        def writer(i, opener_ep):
            yield sim.timeout(rng.random() * 2)
            ch = yield from opener_ep.open_channel(tag=str(i).encode())
            remaining = payloads[i]
            while remaining:
                cut = rng.randrange(1, len(remaining) + 1)
                yield from ch.send_all(remaining[:cut])
                remaining = remaining[cut:]
                if rng.random() < 0.3:
                    yield sim.timeout(rng.random() * 0.5)
            ch.close()
            done.append(("w", i))

        def reader(ch):
            chunks = []
            while True:
                data = yield from ch.recv(rng.randrange(100, 5000))
                if not data:
                    break
                chunks.append(data)
                if rng.random() < 0.2:
                    yield sim.timeout(rng.random() * 0.3)
            received[int(ch.tag)] = b"".join(chunks)
            done.append(("r", int(ch.tag)))

        def acceptor(ep, count):
            for _ in range(count):
                ch = yield from ep.accept_channel()
                sim.process(reader(ch), name=f"reader-{ch.channel_id}")

        # a random subset of channels opens in the reverse direction
        from_ini = [i for i in range(n_channels) if rng.random() < 0.7]
        from_resp = [i for i in range(n_channels) if i not in from_ini]
        for i in from_ini:
            sim.process(writer(i, ini))
        for i in from_resp:
            sim.process(writer(i, resp))
        sim.process(acceptor(resp, len(from_ini)))
        sim.process(acceptor(ini, len(from_resp)))
        sim.run(until=3600)
        assert received == payloads, "leakage or loss across channels"
        assert len(done) == 2 * n_channels, "schedule deadlocked"


class TestPortTagCodec:
    """The IPL port-connect OPEN tag (PR 8): round-trip + no nonce theft."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_port_tags_round_trip(self, seed):
        from repro.core.utilization.spec import StackSpec
        from repro.ipl.runtime import (
            decode_port_tag,
            encode_port_tag,
            is_port_tag,
        )

        rng = random.Random(f"port-tag:{seed}")
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-_."
        for _ in range(25):
            port = "".join(rng.choices(alphabet, k=rng.randrange(1, 40)))
            sender = "".join(rng.choices(alphabet, k=rng.randrange(1, 40)))
            spec = rng.choice(
                ["tcp_block|mux", "parallel:2|mux", "compress|tcp_block|mux"]
            )
            block = rng.randrange(1, 1 << 31)
            tag = encode_port_tag(port, sender, StackSpec.parse(spec), block)
            assert is_port_tag(tag)
            assert decode_port_tag(tag) == (port, sender, spec, block)

    @pytest.mark.parametrize("seed", range(10))
    def test_nonce_tags_never_match(self, seed):
        # the factory's conversation tags are exactly 8 nonce bytes; the
        # fast-open matcher must never claim one, even when the nonce
        # happens to start with the magic
        from repro.ipl.runtime import PORT_TAG_MAGIC, is_port_tag

        rng = random.Random(f"nonce-tag:{seed}")
        for _ in range(50):
            nonce = rng.randrange(0, 1 << 64).to_bytes(8, "big")
            assert not is_port_tag(nonce)
        assert not is_port_tag(PORT_TAG_MAGIC + b"\x00" * 4)  # still 8 bytes

    @pytest.mark.parametrize("seed", range(5))
    def test_truncated_port_tags_rejected(self, seed):
        from repro.core.utilization.spec import StackSpec
        from repro.ipl.runtime import decode_port_tag, encode_port_tag
        from repro.util.framing import FrameError

        rng = random.Random(f"port-tag-trunc:{seed}")
        tag = encode_port_tag(
            "in", "alpha", StackSpec.parse("tcp_block|mux"), 4096
        )
        cut = rng.randrange(0, len(tag))
        with pytest.raises(FrameError):
            decode_port_tag(tag[:cut])
