"""Muxed stacks through the brokered factory: one link, many channels."""

import pytest

from repro.core.factory import BrokeredConnectionFactory
from repro.core.scenarios import GridScenario
from repro.core.session import SessionLink
from repro.core.utilization.spec import StackSpec, StackSpecError
from repro.mux import MuxChannel


def _run_channel(kind_a, kind_b, spec, payload, seed=11, until=600):
    spec = StackSpec.parse(spec) if isinstance(spec, str) else spec
    sc = GridScenario(seed=seed)
    sc.add_site("A", kind_a)
    sc.add_site("B", kind_b)
    node_a = sc.add_node("A", "a")
    node_b = sc.add_node("B", "b")
    res = {"node_a": node_a, "node_b": node_b}

    def run_a():
        yield from node_a.start()
        while not node_b.relay_client.connected:
            yield sc.sim.timeout(0.05)
        service = yield from node_a.open_service_link("b")
        factory = BrokeredConnectionFactory(node_a)
        channel = yield from factory.connect(service, node_b.info, spec=spec)
        yield from channel.send_message(payload)
        res["echo"] = yield from channel.recv_message()
        res["channel"] = channel
        channel.close()

    def run_b():
        yield from node_b.start()
        _peer, service = yield from node_b.accept_service_link()
        factory = BrokeredConnectionFactory(node_b)
        channel = yield from factory.accept(service)
        msg = yield from channel.recv_message()
        res["received"] = msg
        yield from channel.send_message(msg)
        res["channel_b"] = channel

    sc.sim.process(run_a())
    sc.sim.process(run_b())
    sc.run(until=until)
    return res


PAYLOAD = bytes(range(256)) * 64


def _bottom_links(channel):
    driver = channel.driver
    while hasattr(driver, "child"):
        driver = driver.child
    if hasattr(driver, "links"):
        return list(driver.links)
    return [driver.link]


class TestSpecMux:
    def test_with_mux_round_trips(self):
        spec = StackSpec.tcp().with_mux(window=32768)
        assert str(spec) == "tcp_block|mux:32768"
        assert StackSpec.parse(str(spec)) == spec
        assert spec.mux.get("win") == 32768
        assert spec.without_mux() == StackSpec.tcp()

    def test_with_mux_is_single_shot(self):
        spec = StackSpec.tcp().with_mux()
        with pytest.raises(StackSpecError):
            spec.with_mux()

    def test_session_composes_in_either_builder_order(self):
        a = StackSpec.tcp().with_mux().with_session()
        b = StackSpec.tcp().with_session().with_mux()
        assert str(a) == str(b) == "tcp_block|session|mux"

    def test_mux_must_sit_at_the_bottom(self):
        with pytest.raises(StackSpecError):
            StackSpec.parse("mux|tcp_block")
        with pytest.raises(StackSpecError):
            StackSpec.parse("tcp_block|mux|session")
        spec = StackSpec.parse("compress|parallel:4|session|mux:win=8192")
        assert spec.links_required == 4
        assert spec.mux.get("win") == 8192

    def test_scheduler_param_round_trips(self):
        spec = StackSpec.tcp().with_mux(scheduler="drr")
        assert StackSpec.parse(str(spec)).mux.get("sched") == "drr"


class TestFactoryMux:
    @pytest.mark.parametrize(
        "spec",
        ["tcp_block|mux", "parallel:4|mux", "compress|tcp_block|mux",
         "compress|parallel:2|mux:win=16384"],
    )
    def test_muxed_specs_between_firewalled_sites(self, spec):
        res = _run_channel("firewall", "firewall", spec, PAYLOAD)
        assert res["echo"] == PAYLOAD
        assert res["received"] == PAYLOAD

    def test_parallel_channels_share_one_physical_link(self):
        res = _run_channel("firewall", "cone_nat", "parallel:4|mux", PAYLOAD)
        links = _bottom_links(res["channel"])
        assert len(links) == 4
        assert all(isinstance(l, MuxChannel) for l in links)
        endpoints = {l._ep for l in links}
        assert len(endpoints) == 1, "channels must share one mux endpoint"

    def test_responder_joins_initiator_trace(self):
        res = _run_channel("open", "open", "tcp_block|mux", PAYLOAD)
        links = _bottom_links(res["channel_b"])
        assert links[0].ctx is not None

    def test_second_connect_reuses_shared_endpoint(self):
        """Two muxed conversations between the same peer pair share one
        carrier link: the second connect skips establishment entirely."""
        from repro import obs
        from repro.obs import TraceRecorder

        recorder = TraceRecorder()
        previous = obs.set_tracer(recorder)
        try:
            sc = GridScenario(seed=31)
            sc.add_site("A", "firewall")
            sc.add_site("B", "firewall")
            node_a = sc.add_node("A", "a")
            node_b = sc.add_node("B", "b")
            sim = sc.sim
            spec = StackSpec.parse("tcp_block|mux")
            res = {}

            def run_a():
                yield from node_a.start()
                while not node_b.relay_client.connected:
                    yield sim.timeout(0.05)
                factory = BrokeredConnectionFactory(node_a)
                channels = []
                for i in range(2):
                    service = yield from node_a.open_service_link("b")
                    ch = yield from factory.connect(
                        service, node_b.info, spec=spec
                    )
                    yield from ch.send_message(b"conv-%d" % i)
                    channels.append(ch)
                res["channels"] = channels

            def run_b():
                yield from node_b.start()
                factory = BrokeredConnectionFactory(node_b)
                got = []
                for _ in range(2):
                    _peer, service = yield from node_b.accept_service_link()
                    ch = yield from factory.accept(service)
                    got.append((yield from ch.recv_message()))
                res["got"] = got

            sim.process(run_a())
            sim.process(run_b())
            sc.run(until=600)
            assert res["got"] == [b"conv-0", b"conv-1"]
            eps = {_bottom_links(ch)[0]._ep for ch in res["channels"]}
            assert len(eps) == 1, "second connect must reuse the endpoint"
            reused = [
                r for r in recorder.records
                if r.get("name") == "mux.endpoint_reused"
            ]
            assert len(reused) == 1
        finally:
            obs.set_tracer(previous)

    def test_ipl_ports_share_one_muxed_data_link(self):
        """Two IPL port connects to the same peer with a muxed spec ride
        one shared carrier: the node's factory caches the endpoint."""
        sc = GridScenario(seed=37)
        sc.add_site("A", "firewall")
        sc.add_site("B", "firewall")
        alpha = sc.add_ibis("A", "alpha")
        beta = sc.add_ibis("B", "beta")
        spec = StackSpec.tcp().with_mux()
        res = {}

        def receiver():
            yield from beta.start()
            in1 = yield from beta.create_receive_port("in1")
            in2 = yield from beta.create_receive_port("in2")
            res["m1"] = (yield from in1.receive()).read_int()
            res["m2"] = (yield from in2.receive()).read_int()

        def sender():
            yield from alpha.start()
            sp1 = alpha.create_send_port("out1")
            sp2 = alpha.create_send_port("out2")
            for sp, target in ((sp1, "in1"), (sp2, "in2")):
                while True:
                    try:
                        yield from sp.connect(target, spec=spec)
                        break
                    except Exception:
                        yield sc.sim.timeout(0.2)
            for sp, value in ((sp1, 7), (sp2, 8)):
                m = sp.new_message()
                m.write_int(value)
                yield from m.finish()
            res["eps"] = {
                _bottom_links(ch)[0]._ep
                for sp in (sp1, sp2)
                for ch in sp.channels.values()
            }

        sc.sim.process(receiver())
        sc.sim.process(sender())
        sc.run(until=120)
        assert res.get("m1") == 7 and res.get("m2") == 8
        assert len(res["eps"]) == 1, "port connects must share the carrier"

    def test_session_under_mux_clamps_replay_window(self):
        res = _run_channel(
            "firewall", "firewall", "tcp_block|session|mux:win=8192", PAYLOAD
        )
        assert res["echo"] == PAYLOAD
        sessions = [
            s for s in res["node_a"].sessions._sessions.values()
            if s.role == SessionLink.INITIATOR
        ]
        assert sessions, "initiator session missing"
        assert all(s.config.max_buffer == 8192 for s in sessions)
        # the session link wraps a mux channel, not a raw link
        assert all(isinstance(s._raw, MuxChannel) for s in sessions)
