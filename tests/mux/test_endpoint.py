"""MuxEndpoint: channels, credit flow control, scheduling, failure."""

import pytest

from repro import obs
from repro.core.links import LinkClosed, TcpLink
from repro.mux import (
    DEFAULT_WINDOW,
    MuxEndpoint,
    MuxProtocolError,
    WeightedScheduler,
)
from repro.obs.metrics import MetricsRegistry
from repro.simnet import connect, listen
from repro.simnet.testing import two_public_hosts


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


def make_pair(window=DEFAULT_WINDOW, scheduler_a=None, scheduler_b=None):
    """Two running MuxEndpoints over one simulated TCP link."""
    inet, a, b = two_public_hosts()
    sim = inet.sim
    out = {}

    def srv():
        listener = listen(b, 5000)
        sock = yield from listener.accept()
        out["resp"] = yield from MuxEndpoint.establish(
            TcpLink(sock, "client_server"), MuxEndpoint.RESPONDER,
            window=window, scheduler=scheduler_b, node="resp")

    def cli():
        sock = yield from connect(a, (b.ip, 5000))
        out["ini"] = yield from MuxEndpoint.establish(
            TcpLink(sock, "client_server"), MuxEndpoint.INITIATOR,
            window=window, scheduler=scheduler_a, node="ini")

    sim.process(srv())
    sim.process(cli())
    sim.run(until=30)
    return sim, out["ini"], out["resp"]


def run(sim, until=300):
    sim.run(until=until)


class TestChannels:
    def test_open_accept_round_trip(self):
        sim, ini, resp = make_pair()
        got = {}

        def opener():
            ch = yield from ini.open_channel(tag=b"greeting")
            yield from ch.send_all(b"hello over mux")
            got["reply"] = yield from ch.recv_exactly(2)

        def acceptor():
            ch = yield from resp.accept_channel()
            got["tag"] = ch.tag
            got["data"] = yield from ch.recv_exactly(14)
            yield from ch.send_all(b"ok")

        sim.process(opener())
        sim.process(acceptor())
        run(sim)
        assert got["tag"] == b"greeting"
        assert got["data"] == b"hello over mux"
        assert got["reply"] == b"ok"

    def test_many_channels_no_cross_leakage(self):
        sim, ini, resp = make_pair()
        n = 12
        payloads = {i: bytes([i]) * (3000 + 137 * i) for i in range(n)}
        received = {}

        def opener(i):
            ch = yield from ini.open_channel(tag=str(i).encode())
            yield from ch.send_all(payloads[i])
            ch.close()

        def acceptor():
            for _ in range(n):
                ch = yield from resp.accept_channel()
                sim.process(drain(ch), name=f"drain-{ch.tag!r}")

        def drain(ch):
            chunks = []
            while True:
                data = yield from ch.recv(4096)
                if not data:
                    break
                chunks.append(data)
            received[int(ch.tag)] = b"".join(chunks)

        for i in range(n):
            sim.process(opener(i))
        sim.process(acceptor())
        run(sim)
        assert received == payloads

    def test_both_sides_can_open(self):
        sim, ini, resp = make_pair()
        got = {}

        def from_resp():
            ch = yield from resp.open_channel(tag=b"reverse")
            yield from ch.send_all(b"responder speaks first")
            ch.close()

        def on_ini():
            ch = yield from ini.accept_channel()
            got["tag"] = ch.tag
            got["data"] = yield from ch.recv_exactly(22)

        sim.process(from_resp())
        sim.process(on_ini())
        run(sim)
        assert got == {"tag": b"reverse", "data": b"responder speaks first"}

    def test_channel_ids_do_not_collide(self):
        sim, ini, resp = make_pair()
        ids = {}

        def open_two(ep, key):
            a = yield from ep.open_channel()
            b = yield from ep.open_channel()
            ids[key] = (a.channel_id, b.channel_id)

        def accept_two(ep):
            yield from ep.accept_channel()
            yield from ep.accept_channel()

        sim.process(open_two(ini, "ini"))
        sim.process(open_two(resp, "resp"))
        sim.process(accept_two(ini))
        sim.process(accept_two(resp))
        run(sim)
        assert ids["ini"] == (1, 3)
        assert ids["resp"] == (2, 4)


class TestCredit:
    def test_sender_blocks_until_receiver_drains(self):
        # window of 4 KiB, payload of 64 KiB: the sender cannot finish
        # before the receiver starts consuming.
        sim, ini, resp = make_pair(window=4096)
        events = []

        def opener():
            ch = yield from ini.open_channel()
            yield from ch.send_all(b"x" * 65536)
            events.append(("sent", sim.now))
            ch.close()

        def acceptor():
            ch = yield from resp.accept_channel()
            yield sim.timeout(5.0)  # let the sender hit the credit wall
            events.append(("drain_start", sim.now))
            total = 0
            while total < 65536:
                data = yield from ch.recv(65536)
                total += len(data)
            events.append(("drained", sim.now))

        sim.process(opener())
        sim.process(acceptor())
        run(sim)
        order = [name for name, _ in sorted(events, key=lambda e: e[1])]
        assert order == ["drain_start", "sent", "drained"]
        reg = obs.metrics()
        assert reg.counter("mux.backpressure_waits", node="ini").value > 0

    def test_credit_conservation_counters(self):
        sim, ini, resp = make_pair(window=8192)
        total = 50_000

        def opener():
            ch = yield from ini.open_channel()
            yield from ch.send_all(b"y" * total)
            ch.close()

        def acceptor():
            ch = yield from resp.accept_channel()
            got = 0
            while got < total:
                data = yield from ch.recv(4096)
                got += len(data)

        sim.process(opener())
        sim.process(acceptor())
        run(sim)
        reg = obs.metrics()
        tx = reg.counter("mux.tx_bytes", node="ini", channel="1").value
        rx = reg.counter("mux.rx_bytes", node="resp", channel="1").value
        granted = reg.counter("mux.credit_granted", node="resp",
                              channel="1").value
        assert tx == rx == total
        # sent bytes never exceed the initial window plus explicit grants
        assert tx <= 8192 + granted

    def test_zero_copy_of_dropped_bytes_never_happens(self):
        # backpressure means blocking, not dropping: every byte arrives
        sim, ini, resp = make_pair(window=1024)
        payload = bytes(range(256)) * 100
        got = []

        def opener():
            ch = yield from ini.open_channel()
            yield from ch.send_all(payload)
            ch.close()

        def acceptor():
            ch = yield from resp.accept_channel()
            while True:
                data = yield from ch.recv(777)
                if not data:
                    break
                got.append(data)

        sim.process(opener())
        sim.process(acceptor())
        run(sim)
        assert b"".join(got) == payload


class TestScheduling:
    def test_round_robin_interleaves_bulk_and_small(self):
        sim, ini, resp = make_pair()
        finish = {}

        def bulk():
            ch = yield from ini.open_channel(tag=b"bulk")
            yield from ch.send_all(b"b" * 4_000_000)
            finish["bulk"] = sim.now

        def small():
            ch = yield from ini.open_channel(tag=b"small")
            yield from ch.send_all(b"s" * 2000)
            finish["small"] = sim.now

        def acceptor():
            for _ in range(2):
                ch = yield from resp.accept_channel()
                sim.process(drain(ch))

        def drain(ch):
            while True:
                data = yield from ch.recv(65536)
                if not data:
                    return

        sim.process(bulk())
        sim.process(small())
        sim.process(acceptor())
        run(sim, until=600)
        # the small channel must not wait for the bulk transfer to finish
        assert finish["small"] < finish["bulk"]

    def test_weighted_scheduler_biases_throughput(self):
        sim, ini, resp = make_pair(scheduler_a=WeightedScheduler(quantum=4096))
        total = 300_000
        first_done = {}

        def sender(tag, weight):
            ch = yield from ini.open_channel(tag=tag, weight=weight)
            yield from ch.send_all(tag * (total // len(tag)))
            first_done.setdefault("winner", tag)

        def acceptor():
            for _ in range(2):
                ch = yield from resp.accept_channel()
                sim.process(drain(ch))

        def drain(ch):
            while True:
                data = yield from ch.recv(65536)
                if not data:
                    return

        sim.process(sender(b"heavy", 4))
        sim.process(sender(b"light", 1))
        sim.process(acceptor())
        run(sim, until=900)
        assert first_done["winner"] == b"heavy"


class TestFailure:
    def test_link_death_fails_all_channels(self):
        sim, ini, resp = make_pair()
        errors = []

        def opener():
            ch = yield from ini.open_channel()
            yield from ch.send_all(b"z" * 1000)
            yield sim.timeout(2.0)
            ini.link.abort()  # the shared link dies under us
            try:
                yield from ch.send_all(b"z" * 200_000)
            except Exception as exc:
                errors.append(type(exc).__name__)

        def acceptor():
            ch = yield from resp.accept_channel()
            try:
                while True:
                    data = yield from ch.recv(4096)
                    if not data:
                        return
            except Exception as exc:
                errors.append(type(exc).__name__)

        sim.process(opener())
        sim.process(acceptor())
        run(sim)
        assert len(errors) == 2

    def test_endpoint_close_is_clean(self):
        sim, ini, resp = make_pair()

        def opener():
            ch = yield from ini.open_channel()
            yield from ch.send_all(b"bye")
            ch.close()
            ini.close()

        def acceptor():
            ch = yield from resp.accept_channel()
            data = yield from ch.recv_exactly(3)
            assert data == b"bye"

        sim.process(opener())
        sim.process(acceptor())
        run(sim)
        assert not ini.alive

    def test_version_mismatch_refused(self):
        from repro.core.wire import recv_frame, send_frame
        from repro.mux.frames import encode_hello

        inet, a, b = two_public_hosts()
        sim = inet.sim
        failures = []

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            link = TcpLink(sock, "client_server")
            yield from send_frame(link, encode_hello(version=99))
            yield from recv_frame(link)

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            link = TcpLink(sock, "client_server")
            try:
                yield from MuxEndpoint.establish(link, MuxEndpoint.INITIATOR)
            except MuxProtocolError as exc:
                failures.append(str(exc))

        sim.process(srv())
        sim.process(cli())
        sim.run(until=30)
        assert failures and "version mismatch" in failures[0]
