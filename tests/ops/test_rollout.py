"""CanaryRollout state machine, driven by a fake clock and fed records."""

import asyncio

import pytest

from repro.obs.telemetry import SLO, TelemetryAggregator, sli_counter_rate
from repro.ops.rollout import CanaryRollout, ConfigChange, RolloutError


class _Clock:
    def __init__(self, start=0.0):
        self.t = start

    def __call__(self):
        return self.t


def _record(source, seq, ts, rate):
    return {
        "type": "telemetry",
        "source": source,
        "seq": seq,
        "ts": ts,
        "interval": 0.5,
        "counters": [["tx", {}, int(rate * 0.5)]],
        "gauges": [],
        "histograms": [],
    }


def _rig(clock, bake=5.0, canaries=("c1",), targets=("c1", "s1")):
    """An aggregator with one >=100/s throughput SLO plus a rollout."""
    agg = TelemetryAggregator(window=2.0)
    agg.add_slo(SLO("rate", sli_counter_rate("tx"), threshold=100.0))
    applied = []

    change = ConfigChange(
        name="tuner-v2",
        apply=lambda target: applied.append(("apply", target)),
        revert=lambda target: applied.append(("revert", target)),
    )
    rollout = CanaryRollout(
        change,
        agg,
        targets={name: name for name in targets},
        canaries=list(canaries),
        bake_seconds=bake,
        poll_seconds=0.5,
        clock=clock,
    )
    return agg, rollout, applied


class TestValidation:
    def test_needs_a_canary(self):
        agg = TelemetryAggregator()
        change = ConfigChange("x", lambda t: None, lambda t: None)
        with pytest.raises(RolloutError):
            CanaryRollout(change, agg, targets={"a": "a"}, canaries=[])

    def test_canaries_must_be_targets(self):
        agg = TelemetryAggregator()
        change = ConfigChange("x", lambda t: None, lambda t: None)
        with pytest.raises(RolloutError, match="ghost"):
            CanaryRollout(change, agg, targets={"a": "a"}, canaries=["ghost"])

    def test_windows_must_be_positive(self):
        agg = TelemetryAggregator()
        change = ConfigChange("x", lambda t: None, lambda t: None)
        with pytest.raises(RolloutError):
            CanaryRollout(
                change, agg, targets={"a": "a"}, canaries=["a"],
                bake_seconds=0,
            )

    def test_cannot_start_twice(self):
        clock = _Clock()
        _agg, rollout, _applied = _rig(clock)
        rollout.start()
        with pytest.raises(RolloutError):
            rollout.start()


class TestPromotion:
    def test_clean_bake_promotes_the_rest(self):
        clock = _Clock()
        agg, rollout, applied = _rig(clock, bake=5.0)
        rollout.start()
        assert rollout.state == "canary"
        assert applied == [("apply", "c1")]  # canary only, so far
        for step in range(1, 12):
            clock.t = step * 0.5
            agg.ingest(_record("c1", step, clock.t, rate=500.0))
            rollout.poll()
        assert rollout.state == "promoted"
        assert rollout.done
        assert applied == [("apply", "c1"), ("apply", "s1")]
        assert rollout.decided_at - rollout.applied_at >= 5.0
        assert rollout.trigger is None
        assert [e["kind"] for e in rollout.events] == ["apply", "promote"]

    def test_poll_is_a_noop_after_terminal(self):
        clock = _Clock()
        agg, rollout, applied = _rig(clock, bake=0.5)
        rollout.start()
        clock.t = 1.0
        agg.ingest(_record("c1", 1, 1.0, rate=500.0))
        assert rollout.poll() == "promoted"
        before = list(applied)
        assert rollout.poll() == "promoted"
        assert applied == before

    def test_pending_poll_returns_pending(self):
        clock = _Clock()
        _agg, rollout, _applied = _rig(clock)
        assert rollout.poll() == "pending"


class TestRollback:
    def test_canary_breach_reverts_canaries_only(self):
        clock = _Clock()
        agg, rollout, applied = _rig(
            clock, bake=5.0, canaries=("c1",), targets=("c1", "s1")
        )
        rollout.start()
        clock.t = 1.0
        agg.ingest(_record("c1", 1, 1.0, rate=2.0))  # trickle: breach
        rollout.poll()
        assert rollout.state == "rolled_back"
        assert applied == [("apply", "c1"), ("revert", "c1")]
        assert rollout.trigger["source"] == "c1"
        assert rollout.trigger["slo"] == "rate"
        assert [e["kind"] for e in rollout.events] == ["apply", "rollback"]

    def test_control_breach_does_not_trip_the_gate(self):
        clock = _Clock()
        agg, rollout, _applied = _rig(clock, bake=1.0)
        rollout.start()
        clock.t = 0.5
        agg.ingest(_record("s1", 1, 0.5, rate=2.0))  # control degrades
        agg.ingest(_record("c1", 1, 0.5, rate=500.0))
        rollout.poll()
        assert rollout.state == "canary"
        clock.t = 1.5
        agg.ingest(_record("c1", 2, 1.5, rate=500.0))
        assert rollout.poll() == "promoted"

    def test_breach_predating_the_rollout_is_ignored(self):
        clock = _Clock()
        agg, rollout, _applied = _rig(clock, bake=1.0)
        agg.ingest(_record("c1", 1, 0.2, rate=2.0))  # old wound
        clock.t = 1.0
        rollout.start()
        clock.t = 1.5
        agg.ingest(_record("c1", 2, 1.5, rate=500.0))
        rollout.poll()
        assert rollout.state == "canary"

    def test_source_mapping_widens_the_canary_set(self):
        clock = _Clock()
        agg = TelemetryAggregator(window=2.0)
        agg.add_slo(SLO("rate", sli_counter_rate("tx"), threshold=100.0))
        change = ConfigChange("x", lambda t: None, lambda t: None)
        rollout = CanaryRollout(
            change, agg, targets={"c1": "c1"}, canaries=["c1"],
            clock=clock, sources={"c1": ["c1.north", "c1.south"]},
        )
        rollout.start()
        clock.t = 1.0
        agg.ingest(_record("c1.south", 1, 1.0, rate=2.0))
        rollout.poll()
        assert rollout.state == "rolled_back"
        assert rollout.trigger["source"] == "c1.south"


class TestDrivers:
    def test_stats_is_json_able(self):
        import json

        clock = _Clock()
        agg, rollout, _applied = _rig(clock, bake=0.5)
        rollout.start()
        clock.t = 1.0
        agg.ingest(_record("c1", 1, 1.0, rate=500.0))
        rollout.poll()
        stats = json.loads(json.dumps(rollout.stats()))
        assert stats["state"] == "promoted"
        assert stats["change"] == "tuner-v2"
        assert stats["canaries"] == ["c1"]
        assert stats["events"] == ["apply", "promote"]

    def test_run_async_promotes_on_the_event_loop(self):
        clock = _Clock()
        agg, rollout, _applied = _rig(clock, bake=0.1)
        rollout.poll_seconds = 0.01

        async def drive():
            async def feed():
                for step in range(1, 30):
                    clock.t = step * 0.01
                    agg.ingest(_record("c1", step, clock.t, rate=500.0))
                    await asyncio.sleep(0.005)
                    if rollout.done:
                        break

            feeder = asyncio.ensure_future(feed())
            state = await rollout.run_async(start_after=0.0)
            await feeder
            return state

        assert asyncio.run(drive()) == "promoted"
