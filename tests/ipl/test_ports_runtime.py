"""Send/receive ports and the Ibis runtime, end to end over the grid."""

import array

import pytest

from repro.core.scenarios import GridScenario
from repro.core.utilization.spec import StackSpec
from repro.ipl.ports import PortClosed


def _two_node_setup(kind_a="open", kind_b="open", seed=31, **ibis_kwargs):
    sc = GridScenario(seed=seed)
    sc.add_site("A", kind_a)
    sc.add_site("B", kind_b)
    ia = sc.add_ibis("A", "alpha", **ibis_kwargs)
    ib = sc.add_ibis("B", "beta", **ibis_kwargs)
    return sc, ia, ib


def _connect_with_retry(sc, send_port, target, spec=None):
    while True:
        try:
            yield from send_port.connect(target, spec=spec)
            return
        except Exception:
            yield sc.sim.timeout(0.2)


class TestBasicMessaging:
    def test_one_message(self):
        sc, ia, ib = _two_node_setup()
        res = {}

        def receiver():
            yield from ib.start()
            port = yield from ib.create_receive_port("in")
            msg = yield from port.receive()
            res["value"] = msg.read_int()
            res["origin"] = msg.origin
            msg.finish()

        def sender():
            yield from ia.start()
            sp = ia.create_send_port("out")
            yield from _connect_with_retry(sc, sp, "in")
            m = sp.new_message()
            m.write_int(99)
            yield from m.finish()

        sc.sim.process(receiver())
        sc.sim.process(sender())
        sc.run(until=60)
        assert res == {"value": 99, "origin": "alpha"}

    def test_fifo_ordering(self):
        sc, ia, ib = _two_node_setup()
        res = {"got": []}

        def receiver():
            yield from ib.start()
            port = yield from ib.create_receive_port("in")
            for _ in range(10):
                msg = yield from port.receive()
                res["got"].append(msg.read_int())

        def sender():
            yield from ia.start()
            sp = ia.create_send_port("out")
            yield from _connect_with_retry(sc, sp, "in")
            for i in range(10):
                m = sp.new_message()
                m.write_int(i)
                yield from m.finish()

        sc.sim.process(receiver())
        sc.sim.process(sender())
        sc.run(until=60)
        assert res["got"] == list(range(10))

    def test_typed_payloads_across_firewalls(self):
        sc, ia, ib = _two_node_setup("firewall", "firewall")
        res = {}

        def receiver():
            yield from ib.start()
            port = yield from ib.create_receive_port("in")
            msg = yield from port.receive()
            res["s"] = msg.read_string()
            res["arr"] = list(msg.read_array())
            res["obj"] = msg.read_object()
            msg.finish()

        def sender():
            yield from ia.start()
            sp = ia.create_send_port("out")
            yield from _connect_with_retry(sc, sp, "in")
            m = sp.new_message()
            m.write_string("résult")
            m.write_array(array.array("d", [0.5, 1.5]))
            m.write_object({"k": (1, 2)})
            yield from m.finish()

        sc.sim.process(receiver())
        sc.sim.process(sender())
        sc.run(until=120)
        assert res == {"s": "résult", "arr": [0.5, 1.5], "obj": {"k": (1, 2)}}


class TestGroupCommunication:
    def test_one_send_port_to_many_receive_ports(self):
        """§5: 'one send port might be connected to multiple receive ports'."""
        sc = GridScenario(seed=33)
        sc.add_site("A", "open")
        sc.add_site("B", "firewall")
        sc.add_site("C", "cone_nat")
        sender_ibis = sc.add_ibis("A", "root")
        workers = [sc.add_ibis(s, f"w{i}") for i, s in enumerate(["B", "C"])]
        res = {}

        def worker(ibis, i):
            yield from ibis.start()
            port = yield from ibis.create_receive_port(f"worker-{i}")
            msg = yield from port.receive()
            res[f"w{i}"] = msg.read_string()

        def root():
            yield from sender_ibis.start()
            sp = sender_ibis.create_send_port("bcast")
            for i in range(2):
                yield from _connect_with_retry(sc, sp, f"worker-{i}")
            m = sp.new_message()
            m.write_string("broadcast!")
            yield from m.finish()

        for i, w in enumerate(workers):
            sc.sim.process(worker(w, i))
        sc.sim.process(root())
        sc.run(until=240)
        assert res == {"w0": "broadcast!", "w1": "broadcast!"}

    def test_many_send_ports_to_one_receive_port(self):
        """§5: '... and vice versa' — fan-in with per-sender origin."""
        sc = GridScenario(seed=34)
        sc.add_site("A", "open")
        sc.add_site("B", "firewall")
        sc.add_site("C", "open")
        sink = sc.add_ibis("A", "sink")
        sources = [sc.add_ibis(s, f"src{i}") for i, s in enumerate(["B", "C"])]
        res = {"got": {}}

        def sink_proc():
            yield from sink.start()
            port = yield from sink.create_receive_port("gather")
            for _ in range(2):
                msg = yield from port.receive()
                res["got"][msg.origin] = msg.read_int()

        def source_proc(ibis, value):
            yield from ibis.start()
            sp = ibis.create_send_port("out")
            yield from _connect_with_retry(sc, sp, "gather")
            m = sp.new_message()
            m.write_int(value)
            yield from m.finish()

        sc.sim.process(sink_proc())
        for i, src in enumerate(sources):
            sc.sim.process(source_proc(src, i * 10))
        sc.run(until=240)
        assert res["got"] == {"src0": 0, "src1": 10}


class TestRuntimeBehaviour:
    def test_connect_to_unknown_port_fails(self):
        sc, ia, ib = _two_node_setup()
        res = {}

        def proc():
            yield from ia.start()
            sp = ia.create_send_port("out")
            try:
                yield from sp.connect("no-such-port")
            except Exception as exc:
                res["error"] = type(exc).__name__

        sc.sim.process(proc())
        sc.run(until=60)
        assert res["error"] in ("RegistryError", "IbisError")

    def test_custom_stack_spec_per_connection(self):
        sc, ia, ib = _two_node_setup("firewall", "firewall")
        res = {}

        def receiver():
            yield from ib.start()
            port = yield from ib.create_receive_port("in")
            msg = yield from port.receive()
            res["data"] = msg.read_bytes()

        def sender():
            yield from ia.start()
            sp = ia.create_send_port("out")
            yield from _connect_with_retry(sc, sp, "in", spec=StackSpec.parse("compress|parallel:2"))
            m = sp.new_message()
            m.write_bytes(b"pattern" * 5000)
            yield from m.finish()

        sc.sim.process(receiver())
        sc.sim.process(sender())
        sc.run(until=120)
        assert res["data"] == b"pattern" * 5000

    def test_send_without_connect_fails(self):
        sc, ia, ib = _two_node_setup()

        def proc():
            yield from ia.start()
            sp = ia.create_send_port("out")
            with pytest.raises(PortClosed, match="not connected"):
                sp.new_message()

        sc.sim.process(proc())
        sc.run(until=30)

    def test_election(self):
        sc, ia, ib = _two_node_setup()
        res = {}

        def a():
            yield from ia.start()
            res["a"] = yield from ia.elect("coordinator")

        def b():
            yield from ib.start()
            yield sc.sim.timeout(5.0)
            res["b"] = yield from ib.elect("coordinator")

        sc.sim.process(a())
        sc.sim.process(b())
        sc.run(until=60)
        assert res["a"] == res["b"]

    def test_leave_unregisters(self):
        sc, ia, ib = _two_node_setup()
        res = {}

        def a():
            yield from ia.start()
            yield from ia.create_receive_port("temp")
            yield from ia.leave()
            res["left"] = True

        def b():
            yield from ib.start()
            yield sc.sim.timeout(10.0)
            sp = ib.create_send_port("out")
            try:
                yield from sp.connect("temp")
                res["connected"] = True
            except Exception:
                res["connected"] = False

        sc.sim.process(a())
        sc.sim.process(b())
        sc.run(until=120)
        assert res == {"left": True, "connected": False}

    def test_poll_nonblocking(self):
        sc, ia, ib = _two_node_setup()
        res = {}

        def receiver():
            yield from ib.start()
            port = yield from ib.create_receive_port("in")
            res["empty"] = port.poll()
            msg = yield from port.receive()
            res["value"] = msg.read_int()

        def sender():
            yield from ia.start()
            sp = ia.create_send_port("out")
            yield from _connect_with_retry(sc, sp, "in")
            m = sp.new_message()
            m.write_int(5)
            yield from m.finish()

        sc.sim.process(receiver())
        sc.sim.process(sender())
        sc.run(until=60)
        assert res == {"empty": None, "value": 5}


class TestFastOpen:
    """PR 8 satellite: the mux OPEN tag carries the port-connect request.

    The first muxed connect to a peer walks the slow path (service link +
    ``REQ_PORT_CONNECT`` round trip) and leaves a shared endpoint behind;
    every later connect to that peer opens a channel whose OPEN tag *is*
    the request, skipping the service link entirely.
    """

    def test_second_connect_rides_the_open_tag(self):
        from repro import obs
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        prev = obs.set_registry(registry)
        try:
            sc, ia, ib = _two_node_setup()
            spec = StackSpec.parse("tcp_block|mux")
            res = {}

            def receiver():
                yield from ib.start()
                p1 = yield from ib.create_receive_port("in1")
                p2 = yield from ib.create_receive_port("in2")
                m1 = yield from p1.receive()
                res["v1"] = m1.read_int()
                m1.finish()
                m2 = yield from p2.receive()
                res["v2"] = m2.read_int()
                res["origin2"] = m2.origin
                m2.finish()

            def sender():
                yield from ia.start()
                sp1 = ia.create_send_port("out1")
                sp2 = ia.create_send_port("out2")
                yield from _connect_with_retry(sc, sp1, "in1", spec=spec)
                yield from _connect_with_retry(sc, sp2, "in2", spec=spec)
                for sp, value in ((sp1, 1), (sp2, 2)):
                    m = sp.new_message()
                    m.write_int(value)
                    yield from m.finish()

            sc.sim.process(receiver())
            sc.sim.process(sender())
            sc.run(until=120)
            assert res == {"v1": 1, "v2": 2, "origin2": "alpha"}
            fast = sum(
                c.value for c in registry.instruments("ipl.fast_opens_total")
            )
            assert fast == 1, "second connect should ride the OPEN tag"
        finally:
            obs.set_registry(prev)

    def test_non_mux_spec_never_fast_opens(self):
        from repro import obs
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        prev = obs.set_registry(registry)
        try:
            sc, ia, ib = _two_node_setup()
            res = {}

            def receiver():
                yield from ib.start()
                p1 = yield from ib.create_receive_port("in1")
                p2 = yield from ib.create_receive_port("in2")
                for key, port in (("v1", p1), ("v2", p2)):
                    msg = yield from port.receive()
                    res[key] = msg.read_int()
                    msg.finish()

            def sender():
                yield from ia.start()
                sp1 = ia.create_send_port("out1")
                sp2 = ia.create_send_port("out2")
                yield from _connect_with_retry(sc, sp1, "in1")
                yield from _connect_with_retry(sc, sp2, "in2")
                for sp, value in ((sp1, 1), (sp2, 2)):
                    m = sp.new_message()
                    m.write_int(value)
                    yield from m.finish()

            sc.sim.process(receiver())
            sc.sim.process(sender())
            sc.run(until=120)
            assert res == {"v1": 1, "v2": 2}
            assert not list(registry.instruments("ipl.fast_opens_total"))
        finally:
            obs.set_registry(prev)
