"""Property-based round-trips for the IPL typed serialization.

Randomized (but seeded, hence reproducible) sequences of typed items are
written, re-read and compared — including the machine-typed array fast
path — and every truncation of an encoding must fail loudly rather than
misread (the tag-prefixed format's core promise).
"""

import array
import math
import random
import struct

import pytest

from repro.ipl.serialization import MessageReader, MessageWriter, SerializationError

ARRAY_TYPECODES = "bBhHiIlLqQfd"


def _random_double(rng):
    value = struct.unpack("!d", rng.randbytes(8))[0]
    return 0.0 if math.isnan(value) else value


def _random_array(rng):
    code = rng.choice(ARRAY_TYPECODES)
    out = array.array(code)
    out.frombytes(rng.randbytes(out.itemsize * rng.randrange(0, 64)))
    if code in "fd":  # NaN payloads never compare equal
        for i, v in enumerate(out):
            if math.isnan(v):
                out[i] = 0.0
    return out


ITEM_KINDS = [
    ("bool", lambda rng: rng.random() < 0.5),
    ("int", lambda rng: rng.randrange(-(1 << 31), 1 << 31)),
    ("long", lambda rng: rng.randrange(-(1 << 63), 1 << 63)),
    ("double", _random_double),
    (
        "string",
        lambda rng: "".join(
            chr(rng.choice([rng.randrange(32, 127), rng.randrange(0x370, 0x3FF)]))
            for _ in range(rng.randrange(0, 60))
        ),
    ),
    ("bytes", lambda rng: rng.randbytes(rng.randrange(0, 300))),
    ("array", _random_array),
    ("object", lambda rng: {"k": rng.randrange(100), "v": [rng.random(), None]}),
]


def random_items(rng, n):
    items = []
    for _ in range(n):
        kind, gen = rng.choice(ITEM_KINDS)
        items.append((kind, gen(rng)))
    return items


@pytest.mark.parametrize("seed", range(25))
def test_typed_round_trip_random_sequences(seed):
    rng = random.Random(f"serial:{seed}")
    items = random_items(rng, rng.randrange(1, 25))
    writer = MessageWriter()
    for kind, value in items:
        getattr(writer, f"write_{kind}")(value)
    payload = writer.getvalue()
    assert writer.size == len(payload)

    reader = MessageReader(payload)
    for kind, value in items:
        got = getattr(reader, f"read_{kind}")()
        assert got == value, (kind, value)
    reader.finish()


@pytest.mark.parametrize("seed", range(10))
def test_reading_wrong_type_fails_loudly(seed):
    rng = random.Random(f"mismatch:{seed}")
    kind, gen = rng.choice(ITEM_KINDS)
    writer = MessageWriter()
    getattr(writer, f"write_{kind}")(gen(rng))
    wrong = rng.choice([k for k, _ in ITEM_KINDS if k != kind])
    reader = MessageReader(writer.getvalue())
    with pytest.raises(SerializationError, match="type mismatch|truncated"):
        getattr(reader, f"read_{wrong}")()


@pytest.mark.parametrize("seed", range(10))
def test_truncation_never_misreads(seed):
    rng = random.Random(f"serial-trunc:{seed}")
    items = random_items(rng, rng.randrange(1, 10))
    writer = MessageWriter()
    for kind, value in items:
        getattr(writer, f"write_{kind}")(value)
    payload = writer.getvalue()
    cut = rng.randrange(0, len(payload))
    reader = MessageReader(payload[:cut])
    with pytest.raises(SerializationError):
        for kind, _value in items:
            getattr(reader, f"read_{kind}")()
        reader.finish()


@pytest.mark.parametrize("seed", range(10))
def test_ndarray_round_trip(seed):
    numpy = pytest.importorskip("numpy")
    rng = random.Random(f"ndarray:{seed}")
    dtype = rng.choice(["<i4", "<i8", "<f4", "<f8", "<u2", "|u1"])
    shape = tuple(rng.randrange(0, 6) for _ in range(rng.randrange(0, 4)))
    count = int(numpy.prod(shape)) if shape else 1
    arr = numpy.frombuffer(
        rng.randbytes(count * numpy.dtype(dtype).itemsize), dtype=dtype
    ).reshape(shape)
    arr = numpy.nan_to_num(arr) if arr.dtype.kind == "f" else arr

    payload = MessageWriter().write_ndarray(arr).getvalue()
    out = MessageReader(payload).read_ndarray()
    assert out.shape == arr.shape
    assert out.dtype == arr.dtype
    assert numpy.array_equal(out, arr)


def test_finish_rejects_unread_items():
    payload = MessageWriter().write_int(1).write_int(2).getvalue()
    reader = MessageReader(payload)
    assert reader.read_int() == 1
    with pytest.raises(SerializationError, match="unread"):
        reader.finish()
