"""Typed message serialization."""

import array

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipl.serialization import (
    MessageReader,
    MessageWriter,
    SerializationError,
)


class TestRoundTrips:
    def test_all_types(self):
        w = MessageWriter()
        w.write_bool(True).write_int(-5).write_long(1 << 40)
        w.write_double(3.25).write_string("grüß dich").write_bytes(b"\x00\xff")
        w.write_array(array.array("i", [1, 2, 3]))
        w.write_object({"nested": [1, "two"]})
        r = MessageReader(w.getvalue())
        assert r.read_bool() is True
        assert r.read_int() == -5
        assert r.read_long() == 1 << 40
        assert r.read_double() == 3.25
        assert r.read_string() == "grüß dich"
        assert r.read_bytes() == b"\x00\xff"
        assert list(r.read_array()) == [1, 2, 3]
        assert r.read_object() == {"nested": [1, "two"]}
        r.finish()

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_int_property(self, value):
        r = MessageReader(MessageWriter().write_int(value).getvalue())
        assert r.read_int() == value

    @given(st.floats(allow_nan=False))
    def test_double_property(self, value):
        r = MessageReader(MessageWriter().write_double(value).getvalue())
        assert r.read_double() == value

    @given(st.text(max_size=200))
    def test_string_property(self, value):
        r = MessageReader(MessageWriter().write_string(value).getvalue())
        assert r.read_string() == value

    @given(st.lists(st.floats(allow_nan=False, width=64), max_size=50))
    def test_double_array_property(self, values):
        arr = array.array("d", values)
        r = MessageReader(MessageWriter().write_array(arr).getvalue())
        assert list(r.read_array()) == values

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), max_size=50))
    def test_int_array_property(self, values):
        arr = array.array("i", values)
        r = MessageReader(MessageWriter().write_array(arr).getvalue())
        assert list(r.read_array()) == values


class TestTypeSafety:
    def test_type_mismatch_detected(self):
        payload = MessageWriter().write_int(1).getvalue()
        r = MessageReader(payload)
        with pytest.raises(SerializationError, match="type mismatch"):
            r.read_string()

    def test_truncated_detected(self):
        payload = MessageWriter().write_long(5).getvalue()[:-2]
        r = MessageReader(payload)
        with pytest.raises(SerializationError, match="truncated"):
            r.read_long()

    def test_unread_items_detected(self):
        payload = MessageWriter().write_int(1).write_int(2).getvalue()
        r = MessageReader(payload)
        r.read_int()
        with pytest.raises(SerializationError, match="unread"):
            r.finish()

    def test_write_array_rejects_lists(self):
        with pytest.raises(SerializationError):
            MessageWriter().write_array([1, 2, 3])

    def test_size_tracks_payload(self):
        w = MessageWriter()
        w.write_bytes(b"x" * 100)
        assert w.size == len(w.getvalue()) == 1 + 4 + 100


class TestNumpyArrays:
    def test_2d_round_trip(self):
        import numpy as np

        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        r = MessageReader(MessageWriter().write_ndarray(arr).getvalue())
        got = r.read_ndarray()
        assert got.dtype == arr.dtype
        assert got.shape == arr.shape
        assert (got == arr).all()

    def test_various_dtypes(self):
        import numpy as np

        for dtype in (np.int8, np.int32, np.uint16, np.float32, np.complex128):
            arr = np.array([[1, 2], [3, 4]], dtype=dtype)
            got = MessageReader(
                MessageWriter().write_ndarray(arr).getvalue()
            ).read_ndarray()
            assert got.dtype == arr.dtype
            assert (got == arr).all()

    def test_empty_and_scalar_shapes(self):
        import numpy as np

        for arr in (np.zeros((0, 5)), np.array(7.5)):
            got = MessageReader(
                MessageWriter().write_ndarray(arr).getvalue()
            ).read_ndarray()
            assert got.shape == arr.shape

    def test_noncontiguous_input_handled(self):
        import numpy as np

        base = np.arange(20).reshape(4, 5)
        view = base[:, ::2]  # non-contiguous
        got = MessageReader(
            MessageWriter().write_ndarray(view).getvalue()
        ).read_ndarray()
        assert (got == view).all()

    def test_result_is_writable_copy(self):
        import numpy as np

        arr = np.ones(4)
        got = MessageReader(
            MessageWriter().write_ndarray(arr).getvalue()
        ).read_ndarray()
        got[0] = 99  # must not raise (frombuffer alone would be read-only)

    def test_wire_size_is_near_raw(self):
        import numpy as np

        arr = np.zeros(10000, dtype=np.float64)
        payload = MessageWriter().write_ndarray(arr).getvalue()
        assert len(payload) < arr.nbytes + 64  # tag+dtype+shape overhead only
