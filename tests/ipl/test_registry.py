"""The Ibis Name Service."""

import pytest

from repro.core.addressing import EndpointInfo
from repro.ipl.registry import RegistryClient, RegistryError, RegistryServer
from repro.simnet import Internet
from repro.simnet.testing import drive


def _setup(n_clients=2):
    inet = Internet(seed=5)
    server_host = inet.add_public_host("ns")
    server = RegistryServer(server_host, 4100)
    server.start()
    clients = []
    for i in range(n_clients):
        host = inet.add_public_host(f"n{i}")
        clients.append((host, RegistryClient(host, server.addr)))
    return inet, server, clients


def _info(name, ip):
    return EndpointInfo(node_id=name, local_ip=ip)


def test_register_and_lookup_node():
    inet, server, [(h0, c0), (h1, c1)] = _setup()

    def proc():
        yield from c0.connect()
        yield from c0.register("n0", _info("n0", h0.ip))
        yield from c1.connect()
        info = yield from c1.lookup_node("n0")
        assert info.node_id == "n0"
        assert info.local_ip == h0.ip

    drive(inet.sim, proc())


def test_duplicate_node_rejected():
    inet, server, [(h0, c0), (h1, c1)] = _setup()

    def proc():
        yield from c0.connect()
        yield from c0.register("same", _info("same", h0.ip))
        yield from c1.connect()
        with pytest.raises(RegistryError, match="already registered"):
            yield from c1.register("same", _info("same", h1.ip))

    drive(inet.sim, proc())


def test_lookup_unknown_fails():
    inet, server, [(h0, c0)] = _setup(1)

    def proc():
        yield from c0.connect()
        with pytest.raises(RegistryError, match="unknown node"):
            yield from c0.lookup_node("ghost")

    drive(inet.sim, proc())


def test_port_registration_and_lookup():
    inet, server, [(h0, c0), (h1, c1)] = _setup()

    def proc():
        yield from c0.connect()
        yield from c0.register("owner", _info("owner", h0.ip))
        yield from c0.register_port("work-in", "owner")
        yield from c1.connect()
        owner, info = yield from c1.lookup_port("work-in")
        assert owner == "owner"
        assert info.local_ip == h0.ip

    drive(inet.sim, proc())


def test_port_requires_registered_owner():
    inet, server, [(h0, c0)] = _setup(1)

    def proc():
        yield from c0.connect()
        with pytest.raises(RegistryError, match="not registered"):
            yield from c0.register_port("p", "nobody")

    drive(inet.sim, proc())


def test_unregister_port():
    inet, server, [(h0, c0)] = _setup(1)

    def proc():
        yield from c0.connect()
        yield from c0.register("o", _info("o", h0.ip))
        yield from c0.register_port("p", "o")
        yield from c0.unregister_port("p")
        with pytest.raises(RegistryError, match="unknown port"):
            yield from c0.lookup_port("p")

    drive(inet.sim, proc())


def test_election_first_wins():
    inet, server, [(h0, c0), (h1, c1)] = _setup()

    def proc():
        yield from c0.connect()
        yield from c1.connect()
        first = yield from c0.elect("leader", "n0")
        second = yield from c1.elect("leader", "n1")
        assert first == "n0"
        assert second == "n0"  # already decided

    drive(inet.sim, proc())


def test_leave_removes_node_and_its_ports():
    inet, server, [(h0, c0), (h1, c1)] = _setup()

    def proc():
        yield from c0.connect()
        yield from c0.register("o", _info("o", h0.ip))
        yield from c0.register_port("p", "o")
        yield from c0.leave("o")
        yield from c1.connect()
        with pytest.raises(RegistryError):
            yield from c1.lookup_node("o")
        with pytest.raises(RegistryError):
            yield from c1.lookup_port("p")

    drive(inet.sim, proc())


def test_disconnect_cleans_up_registration():
    inet, server, [(h0, c0), (h1, c1)] = _setup()
    result = {}

    def proc0():
        yield from c0.connect()
        yield from c0.register("transient", _info("transient", h0.ip))
        c0.close()

    def proc1():
        yield inet.sim.timeout(5.0)
        yield from c1.connect()
        try:
            yield from c1.lookup_node("transient")
            result["found"] = True
        except RegistryError:
            result["found"] = False

    inet.sim.process(proc0())
    inet.sim.process(proc1())
    inet.sim.run(until=30)
    assert result["found"] is False


def test_list_nodes():
    inet, server, [(h0, c0), (h1, c1)] = _setup()

    def proc():
        yield from c0.connect()
        yield from c0.register("a", _info("a", h0.ip))
        yield from c1.connect()
        yield from c1.register("b", _info("b", h1.ip))
        names = yield from c1.list_nodes()
        assert sorted(names) == ["a", "b"]

    drive(inet.sim, proc())
