"""WAN-aware collectives (MagPIe-style) over the IPL."""

import pytest

from repro.core.scenarios import GridScenario
from repro.ipl.collectives import CollectiveError, CollectiveGroup


def _grid(n_clusters=2, per_cluster=2, seed=51, kinds=("open", "firewall", "cone_nat")):
    sc = GridScenario(seed=seed)
    members = []
    clusters = {}
    instances = {}
    for c in range(n_clusters):
        site = f"site{c}"
        sc.add_site(site, kinds[c % len(kinds)])
        for i in range(per_cluster):
            name = f"n{c}-{i}"
            instances[name] = sc.add_ibis(site, name)
            members.append(name)
            clusters[name] = site
    return sc, members, clusters, instances


def _run_collective(sc, members, clusters, instances, body, wan_aware=True, until=600):
    """Run `body(group, ibis)` on every member; returns {member: result}."""
    results = {}

    def member_proc(name):
        ibis = instances[name]
        yield from ibis.start()
        group = CollectiveGroup(
            ibis, "g", members, clusters, root=members[0], wan_aware=wan_aware
        )
        yield from group.setup()
        results[name] = yield from body(group, ibis)

    for name in members:
        sc.sim.process(member_proc(name))
    sc.run(until=until)
    missing = set(members) - set(results)
    assert not missing, f"members never finished: {missing}"
    return results


class TestTopology:
    def test_coordinators_deterministic(self):
        sc, members, clusters, instances = _grid()
        ibis = instances[members[0]]
        group = CollectiveGroup(ibis, "g", members, clusters, root="n0-0")
        assert group.coordinator("site0") == "n0-0"  # root's cluster -> root
        assert group.coordinator("site1") == "n1-0"

    def test_wan_aware_root_children(self):
        sc, members, clusters, instances = _grid(n_clusters=3)
        group = CollectiveGroup(
            instances["n0-0"], "g", members, clusters, root="n0-0"
        )
        # Remote coordinators + local members; NOT remote non-coordinators.
        assert set(group.children()) == {"n1-0", "n2-0", "n0-1"}

    def test_flat_root_children(self):
        sc, members, clusters, instances = _grid(n_clusters=2)
        group = CollectiveGroup(
            instances["n0-0"], "g", members, clusters, root="n0-0", wan_aware=False
        )
        assert set(group.children()) == set(members) - {"n0-0"}

    def test_misconfiguration_rejected(self):
        sc, members, clusters, instances = _grid()
        ibis = instances[members[0]]
        with pytest.raises(CollectiveError):
            CollectiveGroup(ibis, "g", members, {}, root=members[0])
        with pytest.raises(CollectiveError):
            CollectiveGroup(ibis, "g", members, clusters, root="stranger")


class TestOperations:
    def test_broadcast_reaches_everyone(self):
        sc, members, clusters, instances = _grid(n_clusters=2, per_cluster=2)

        def body(group, ibis):
            value = {"data": 42} if ibis.name == members[0] else None
            result = yield from group.broadcast(value)
            return result

        results = _run_collective(sc, members, clusters, instances, body)
        assert all(v == {"data": 42} for v in results.values())

    def test_reduce_combines_all_contributions(self):
        sc, members, clusters, instances = _grid(n_clusters=2, per_cluster=2)

        def body(group, ibis):
            contribution = int(ibis.name[-1]) + 10 * int(ibis.name[1])
            result = yield from group.reduce(contribution, lambda a, b: a + b)
            return result

        results = _run_collective(sc, members, clusters, instances, body)
        expected_sum = sum(int(m[-1]) + 10 * int(m[1]) for m in members)
        assert results[members[0]] == expected_sum
        assert all(results[m] is None for m in members[1:])

    def test_allreduce_everyone_gets_the_sum(self):
        sc, members, clusters, instances = _grid(n_clusters=3, per_cluster=2)

        def body(group, ibis):
            result = yield from group.allreduce(1, lambda a, b: a + b)
            return result

        results = _run_collective(sc, members, clusters, instances, body)
        assert all(v == len(members) for v in results.values())

    def test_barrier_synchronizes(self):
        sc, members, clusters, instances = _grid(n_clusters=2, per_cluster=2)
        arrivals = {}
        departures = {}

        def body(group, ibis):
            # Members arrive at the barrier at staggered times.
            delay = 0.5 * int(ibis.name[-1]) + int(ibis.name[1])
            yield sc.sim.timeout(delay)
            arrivals[ibis.name] = sc.sim.now
            yield from group.barrier()
            departures[ibis.name] = sc.sim.now
            return True

        _run_collective(sc, members, clusters, instances, body)
        assert min(departures.values()) >= max(arrivals.values())

    def test_back_to_back_collectives_stay_ordered(self):
        sc, members, clusters, instances = _grid(n_clusters=2, per_cluster=2)

        def body(group, ibis):
            out = []
            for round_no in range(4):
                value = yield from group.allreduce(round_no, lambda a, b: max(a, b))
                out.append(value)
            return out

        results = _run_collective(sc, members, clusters, instances, body)
        assert all(v == [0, 1, 2, 3] for v in results.values())

    def test_flat_mode_works_too(self):
        sc, members, clusters, instances = _grid(n_clusters=2, per_cluster=2)

        def body(group, ibis):
            value = "flat!" if ibis.name == members[0] else None
            return (yield from group.broadcast(value))

        results = _run_collective(
            sc, members, clusters, instances, body, wan_aware=False
        )
        assert all(v == "flat!" for v in results.values())
