"""HKDF (RFC 5869 vectors), DH, and Schnorr signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.dh import (
    GROUP14_G,
    GROUP14_P,
    GROUP14_Q,
    DHPrivateKey,
    shared_secret,
)
from repro.security.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.security.schnorr import (
    SignatureError,
    SigningKey,
    VerifyKey,
    sign,
    verify,
)


class TestHkdfRfc5869:
    def test_case_1(self):
        ikm = b"\x0b" * 22
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_3_empty_salt_info(self):
        ikm = b"\x0b" * 22
        okm = hkdf(b"", ikm, b"", 42)
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_expand_too_long_rejected(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    @given(st.binary(max_size=64), st.binary(max_size=64), st.integers(1, 500))
    def test_deterministic(self, salt, ikm, length):
        assert hkdf(salt, ikm, b"x", length) == hkdf(salt, ikm, b"x", length)


class TestGroup14:
    def test_p_is_odd_2048_bit(self):
        assert GROUP14_P.bit_length() == 2048
        assert GROUP14_P % 2 == 1

    def test_g_generates_prime_order_subgroup(self):
        # g^q == 1 (g is a quadratic residue in a safe-prime group)
        assert pow(GROUP14_G, GROUP14_Q, GROUP14_P) == 1
        assert pow(GROUP14_G, 2, GROUP14_P) != 1


class TestDH:
    def test_key_agreement(self):
        a = DHPrivateKey(exponent=0x1234567890ABCDEF1234567890ABCDEF)
        b = DHPrivateKey(exponent=0xFEDCBA0987654321FEDCBA0987654321)
        assert a.shared(b.public) == b.shared(a.public)

    def test_shared_secret_is_256_bytes(self):
        a = DHPrivateKey()
        b = DHPrivateKey()
        assert len(a.shared(b.public)) == 256

    def test_rejects_degenerate_publics(self):
        a = DHPrivateKey()
        for bad in (0, 1, GROUP14_P - 1, GROUP14_P):
            with pytest.raises(ValueError):
                a.shared(bad)

    def test_rejects_small_subgroup_element(self):
        a = DHPrivateKey()
        # An element of order 2 (the only small subgroup in a safe prime
        # group is {1, p-1}); also test a non-residue.
        non_residue = GROUP14_P - 2  # -2 is not a QR when 2 is
        with pytest.raises(ValueError):
            a.shared(non_residue)

    def test_distinct_keys_distinct_secrets(self):
        a, b, c = DHPrivateKey(), DHPrivateKey(), DHPrivateKey()
        assert a.shared(b.public) != a.shared(c.public)


class TestSchnorr:
    def test_sign_verify_round_trip(self):
        key = SigningKey.from_seed(b"alice")
        sig = key.sign(b"message")
        assert verify(key.verify_key.public, b"message", sig)

    def test_wrong_message_fails(self):
        key = SigningKey.from_seed(b"alice")
        sig = key.sign(b"message")
        assert not verify(key.verify_key.public, b"other", sig)

    def test_wrong_key_fails(self):
        alice = SigningKey.from_seed(b"alice")
        mallory = SigningKey.from_seed(b"mallory")
        sig = alice.sign(b"message")
        assert not verify(mallory.verify_key.public, b"message", sig)

    def test_tampered_signature_fails(self):
        key = SigningKey.from_seed(b"alice")
        e, s = key.sign(b"message")
        assert not verify(key.verify_key.public, b"message", (e, (s + 1) % GROUP14_Q))
        assert not verify(key.verify_key.public, b"message", ((e + 1) % GROUP14_Q, s))

    def test_deterministic_signatures(self):
        key = SigningKey.from_seed(b"alice")
        assert key.sign(b"m") == key.sign(b"m")

    def test_verify_key_raises_on_bad(self):
        key = SigningKey.from_seed(b"alice")
        with pytest.raises(SignatureError):
            key.verify_key.verify(b"m", (1, 2))

    def test_verify_key_encode_decode(self):
        key = SigningKey.from_seed(b"bob")
        encoded = key.verify_key.encode()
        assert VerifyKey.decode(encoded) == key.verify_key

    def test_out_of_range_signature_rejected(self):
        key = SigningKey.from_seed(b"alice")
        assert not verify(key.verify_key.public, b"m", (GROUP14_Q, 5))
        assert not verify(key.verify_key.public, b"m", (5, GROUP14_Q))

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=128))
    def test_round_trip_property(self, message):
        key = SigningKey.from_seed(b"prop")
        assert verify(key.verify_key.public, message, key.sign(message))
