"""Record layer and TLS-like handshake, including tampering scenarios."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import (
    CertificateAuthority,
    ClientHandshake,
    HandshakeError,
    Identity,
    RecordCipher,
    RecordError,
    ServerHandshake,
)


@pytest.fixture(scope="module")
def pki():
    ca = CertificateAuthority("grid-root")
    skey, scert = ca.issue_identity("server.grid")
    ckey, ccert = ca.issue_identity("client.grid")
    return {
        "ca": ca,
        "server": Identity(skey, [scert]),
        "client": Identity(ckey, [ccert]),
    }


def _run_handshake(pki, client_kwargs=None, server_kwargs=None):
    client = ClientHandshake(
        trust_anchors=[pki["ca"].certificate],
        seed=b"c",
        dh_exponent=0x123456789ABCDEF0123456789ABCDEF1,
        **(client_kwargs or {}),
    )
    server = ServerHandshake(
        identity=pki["server"],
        seed=b"s",
        dh_exponent=0x23456789ABCDEF0123456789ABCDEF12,
        **(server_kwargs or {}),
    )
    ch = client.hello()
    sh = server.respond(ch)
    cf, client_session = client.finish(sh)
    server_session = server.finish(cf)
    return client, server, client_session, server_session


class TestRecordLayer:
    def _pair(self):
        return (
            RecordCipher(b"e" * 32, b"m" * 32),
            RecordCipher(b"e" * 32, b"m" * 32),
        )

    def test_seal_open_round_trip(self):
        tx, rx = self._pair()
        assert rx.open(tx.seal(b"hello")) == b"hello"

    @given(st.lists(st.binary(max_size=200), min_size=1, max_size=10))
    def test_record_sequence_round_trips(self, messages):
        tx, rx = self._pair()
        for msg in messages:
            assert rx.open(tx.seal(msg)) == msg

    def test_tampered_ciphertext_fails(self):
        tx, rx = self._pair()
        record = bytearray(tx.seal(b"secret"))
        record[0] ^= 0xFF
        with pytest.raises(RecordError, match="MAC"):
            rx.open(bytes(record))

    def test_tampered_mac_fails(self):
        tx, rx = self._pair()
        record = bytearray(tx.seal(b"secret"))
        record[-1] ^= 0x01
        with pytest.raises(RecordError):
            rx.open(bytes(record))

    def test_replay_fails(self):
        tx, rx = self._pair()
        record = tx.seal(b"one")
        rx.open(record)
        with pytest.raises(RecordError):
            rx.open(record)  # sequence number advanced

    def test_reorder_fails(self):
        tx, rx = self._pair()
        r1, r2 = tx.seal(b"one"), tx.seal(b"two")
        with pytest.raises(RecordError):
            rx.open(r2)

    def test_truncated_record_fails(self):
        _tx, rx = self._pair()
        with pytest.raises(RecordError, match="shorter"):
            rx.open(b"tiny")

    def test_ciphertext_differs_from_plaintext(self):
        tx, _rx = self._pair()
        sealed = tx.seal(b"plaintext!")
        assert b"plaintext!" not in sealed


class TestHandshake:
    def test_anonymous_client_handshake(self, pki):
        client, server, cs, ss = _run_handshake(pki)
        assert client.peer_subject == "server.grid"
        assert server.peer_subject is None
        assert ss.open(cs.seal(b"up")) == b"up"
        assert cs.open(ss.seal(b"down")) == b"down"

    def test_mutual_auth(self, pki):
        client, server, cs, ss = _run_handshake(
            pki,
            client_kwargs={"identity": pki["client"]},
            server_kwargs={
                "trust_anchors": [pki["ca"].certificate],
                "require_client_auth": True,
            },
        )
        assert server.peer_subject == "client.grid"

    def test_server_requires_client_auth(self, pki):
        with pytest.raises(HandshakeError, match="client authentication"):
            _run_handshake(
                pki,
                server_kwargs={
                    "trust_anchors": [pki["ca"].certificate],
                    "require_client_auth": True,
                },
            )

    def test_expected_server_name_enforced(self, pki):
        with pytest.raises(HandshakeError, match="subject mismatch"):
            _run_handshake(pki, client_kwargs={"expected_server": "other.grid"})

    def test_untrusted_server_rejected(self, pki):
        rogue_ca = CertificateAuthority("rogue")
        key, cert = rogue_ca.issue_identity("server.grid")
        client = ClientHandshake(trust_anchors=[pki["ca"].certificate], seed=b"c")
        server = ServerHandshake(identity=Identity(key, [cert]), seed=b"s")
        sh = server.respond(client.hello())
        with pytest.raises(HandshakeError, match="certificate rejected"):
            client.finish(sh)

    def test_tampered_server_hello_rejected(self, pki):
        client = ClientHandshake(trust_anchors=[pki["ca"].certificate], seed=b"c")
        server = ServerHandshake(identity=pki["server"], seed=b"s")
        sh = bytearray(server.respond(client.hello()))
        sh[5] ^= 0x01  # flip a bit in the server random
        with pytest.raises(HandshakeError):
            client.finish(bytes(sh))

    def test_tampered_client_finished_rejected(self, pki):
        client = ClientHandshake(trust_anchors=[pki["ca"].certificate], seed=b"c")
        server = ServerHandshake(identity=pki["server"], seed=b"s")
        sh = server.respond(client.hello())
        cf, _cs = client.finish(sh)
        corrupted = bytearray(cf)
        corrupted[-1] ^= 0x01
        with pytest.raises(HandshakeError, match="Finished MAC"):
            server.finish(bytes(corrupted))

    def test_mitm_key_substitution_detected(self, pki):
        """An attacker rewriting the DH value is caught — either by the
        server's subgroup validation or by the client's Finished MAC."""
        client = ClientHandshake(trust_anchors=[pki["ca"].certificate], seed=b"c")
        server = ServerHandshake(identity=pki["server"], seed=b"s")
        ch = bytearray(client.hello())
        # Attacker rewrites the client's DH public value in flight.
        ch[40] ^= 0x01
        with pytest.raises(HandshakeError):
            sh = server.respond(bytes(ch))
            client.finish(sh)

    def test_expired_server_certificate_rejected(self, pki):
        skey, _ = pki["ca"].issue_identity("old.grid")
        expired = pki["ca"].issue("old.grid", skey.verify_key, 0.0, 10.0)
        client = ClientHandshake(
            trust_anchors=[pki["ca"].certificate], now=99.0, seed=b"c"
        )
        server = ServerHandshake(identity=Identity(skey, [expired]), seed=b"s")
        sh = server.respond(client.hello())
        with pytest.raises(HandshakeError, match="certificate rejected"):
            client.finish(sh)

    def test_malformed_messages_rejected(self, pki):
        server = ServerHandshake(identity=pki["server"], seed=b"s")
        with pytest.raises(HandshakeError):
            server.respond(b"\x07nonsense")
        client = ClientHandshake(trust_anchors=[pki["ca"].certificate], seed=b"c")
        client.hello()
        with pytest.raises(HandshakeError):
            client.finish(b"\x99")

    def test_finish_before_hello_is_error(self, pki):
        client = ClientHandshake(trust_anchors=[pki["ca"].certificate], seed=b"c")
        with pytest.raises(HandshakeError, match="hello"):
            client.finish(b"\x02" + b"\x00" * 40)

    @settings(max_examples=5, deadline=None)
    @given(st.binary(min_size=0, max_size=1000))
    def test_session_transports_arbitrary_payloads(self, pki, payload):
        _c, _s, cs, ss = _run_handshake(pki)
        assert ss.open(cs.seal(payload)) == payload
