"""Grid certificate issuance and chain verification."""

import pytest

from repro.security.certs import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    verify_chain,
)
from repro.security.schnorr import SigningKey


@pytest.fixture
def ca():
    return CertificateAuthority("grid-root")


def test_self_signed_root_verifies(ca):
    leaf = verify_chain([ca.certificate], [ca.certificate], now=1.0)
    assert leaf.subject == "grid-root"
    assert leaf.is_ca


def test_issue_and_verify_leaf(ca):
    key, cert = ca.issue_identity("node-1")
    leaf = verify_chain([cert], [ca.certificate], now=0.0)
    assert leaf.subject == "node-1"
    assert leaf.public_key == key.verify_key


def test_encode_decode_round_trip(ca):
    _key, cert = ca.issue_identity("node-2")
    assert Certificate.decode(cert.encode()) == cert


def test_expired_certificate_rejected(ca):
    key = SigningKey.from_seed(b"n")
    cert = ca.issue("node", key.verify_key, valid_from=0.0, valid_to=10.0)
    verify_chain([cert], [ca.certificate], now=5.0)
    with pytest.raises(CertificateError, match="not valid"):
        verify_chain([cert], [ca.certificate], now=11.0)


def test_not_yet_valid_rejected(ca):
    key = SigningKey.from_seed(b"n")
    cert = ca.issue("node", key.verify_key, valid_from=100.0, valid_to=200.0)
    with pytest.raises(CertificateError, match="not valid"):
        verify_chain([cert], [ca.certificate], now=5.0)


def test_wrong_issuer_rejected(ca):
    other = CertificateAuthority("evil-root")
    _key, cert = other.issue_identity("node")
    with pytest.raises(CertificateError):
        verify_chain([cert], [ca.certificate], now=0.0)


def test_tampered_subject_rejected(ca):
    _key, cert = ca.issue_identity("node")
    forged = Certificate(**{**cert.__dict__, "subject": "admin"})
    with pytest.raises(CertificateError, match="bad issuer signature"):
        verify_chain([forged], [ca.certificate], now=0.0)


def test_intermediate_chain(ca):
    inter_key = SigningKey.from_seed(b"intermediate")
    inter_cert = ca.issue("site-ca", inter_key.verify_key, is_ca=True)
    site_ca = CertificateAuthority("site-ca", key=inter_key)
    site_ca.certificate = inter_cert
    _key, leaf = site_ca.issue_identity("node-3")
    result = verify_chain([leaf, inter_cert], [ca.certificate], now=0.0)
    assert result.subject == "node-3"


def test_intermediate_without_ca_flag_rejected(ca):
    inter_key = SigningKey.from_seed(b"intermediate")
    inter_cert = ca.issue("fake-ca", inter_key.verify_key, is_ca=False)
    fake = CertificateAuthority("fake-ca", key=inter_key)
    _key, leaf = fake.issue_identity("node")
    with pytest.raises(CertificateError, match="CA flag"):
        verify_chain([leaf, inter_cert], [ca.certificate], now=0.0)


def test_broken_chain_order_rejected(ca):
    _key, leaf = ca.issue_identity("node")
    other = CertificateAuthority("unrelated")
    with pytest.raises(CertificateError):
        verify_chain([leaf, other.certificate], [other.certificate], now=0.0)


def test_chain_not_reaching_anchor_rejected(ca):
    lone = CertificateAuthority("island")
    _key, leaf = lone.issue_identity("node")
    with pytest.raises(CertificateError, match="without reaching"):
        verify_chain([leaf, lone.certificate], [ca.certificate], now=0.0)


def test_subject_mismatch_rejected(ca):
    _key, cert = ca.issue_identity("node-a")
    with pytest.raises(CertificateError, match="subject mismatch"):
        verify_chain([cert], [ca.certificate], now=0.0, expected_subject="node-b")


def test_empty_chain_rejected(ca):
    with pytest.raises(CertificateError, match="empty"):
        verify_chain([], [ca.certificate], now=0.0)


def test_malformed_bytes_rejected():
    with pytest.raises(CertificateError):
        Certificate.decode(b"garbage")
