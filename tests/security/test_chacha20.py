"""ChaCha20 against the RFC 7539 test vectors plus property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.security.chacha20 import ChaCha20, chacha20_block, chacha20_xor


class TestRfc7539Vectors:
    def test_block_function_vector(self):
        """RFC 7539 §2.3.2."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(key, 1, nonce)
        expected = bytes.fromhex(
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e"
        )
        assert block == expected

    def test_encryption_vector(self):
        """RFC 7539 §2.4.2."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        plaintext = (
            b"Ladies and Gentlemen of the class of '99: If I could offer you "
            b"only one tip for the future, sunscreen would be it."
        )
        ciphertext = chacha20_xor(key, 1, nonce, plaintext)
        expected = bytes.fromhex(
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d"
        )
        assert ciphertext == expected


class TestProperties:
    @given(st.binary(min_size=0, max_size=500), st.integers(0, 2**31))
    def test_xor_round_trip(self, data, counter):
        key = bytes(range(32))
        nonce = b"\x01" * 12
        assert chacha20_xor(key, counter, nonce, chacha20_xor(key, counter, nonce, data)) == data

    @given(st.binary(min_size=1, max_size=200))
    def test_different_keys_differ(self, data):
        nonce = b"\x00" * 12
        c1 = chacha20_xor(b"\x01" * 32, 0, nonce, data)
        c2 = chacha20_xor(b"\x02" * 32, 0, nonce, data)
        assert c1 != c2

    @given(st.binary(min_size=0, max_size=300), st.integers(0, 2**40))
    def test_stateful_wrapper_round_trip(self, data, seq):
        enc = ChaCha20(b"k" * 32)
        dec = ChaCha20(b"k" * 32)
        assert dec.process(seq, enc.process(seq, data)) == data

    def test_different_seq_gives_different_stream(self):
        c = ChaCha20(b"k" * 32)
        data = b"a" * 64
        assert c.process(0, data) != c.process(1, data)


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            chacha20_block(b"short", 0, b"\x00" * 12)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            chacha20_block(b"\x00" * 32, 0, b"\x00" * 8)

    def test_counter_out_of_range(self):
        with pytest.raises(ValueError):
            chacha20_block(b"\x00" * 32, 1 << 32, b"\x00" * 12)

    def test_bad_prefix(self):
        with pytest.raises(ValueError):
            ChaCha20(b"\x00" * 32, prefix=b"abc")
