"""Public API surface: exports exist, are documented, and are importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.simnet",
    "repro.security",
    "repro.core",
    "repro.core.establishment",
    "repro.core.utilization",
    "repro.ipl",
    "repro.livenet",
    "repro.workloads",
    "repro.util",
    "repro.obs",
    "repro.chaos",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name, None) is not None, f"{package}.{name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and module.__doc__.strip()


def test_public_classes_are_documented():
    import repro.core as core
    import repro.ipl as ipl
    import repro.simnet as simnet

    for module in (core, ipl, simnet):
        for name in module.__all__:
            obj = getattr(module, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"


def test_top_level_convenience_exports():
    import repro

    assert repro.GridScenario.__name__ == "GridScenario"
    assert repro.Ibis.__name__ == "Ibis"
    assert repro.LiveIbis.__name__ == "LiveIbis"
    with pytest.raises(AttributeError):
        repro.NotAThing


def test_top_level_surface_is_coherent():
    """The redesigned top-level API: one import for the common objects."""
    import repro

    for name in (
        "GridNode",
        "BrokeredConnectionFactory",
        "TlsConfig",
        "StackSpec",
        "LayerSpec",
        "SendPort",
        "ReceivePort",
        "PathMonitor",
        "select_spec",
        "MetricsRegistry",
        "get_registry",
        "enable_tracing",
        "disable_tracing",
        "span",
        "event",
        "export_jsonl",
    ):
        assert name in repro.__all__, name
        assert getattr(repro, name) is not None, name
    # __dir__ advertises the lazy exports too
    assert "StackSpec" in dir(repro)


def test_typed_stack_spec_round_trip():
    import repro

    spec = repro.StackSpec.parallel(4).with_compression()
    assert str(spec) == "compress:1|parallel:4"
    assert repro.StackSpec.parse(str(spec)) == spec


def test_string_spec_coercion_shim_is_gone():
    # The as_spec deprecation shim was deleted: strings are wire-only and
    # must go through StackSpec.parse explicitly.
    import pytest

    with pytest.raises(ImportError):
        from repro.core.utilization.spec import as_spec  # noqa: F401

    from repro.core.utilization.stack import parse_stack

    with pytest.raises(TypeError):
        parse_stack("compress:1|parallel:4")


def test_fidelity_tier_surface_is_public():
    """The SimBackend protocol and both tiers are first-class exports."""
    import repro.simnet as simnet

    for name in (
        "SimBackend",
        "PacketBackend",
        "FlowBackend",
        "FlowNetwork",
        "FluidFlow",
        "make_backend",
        "FIDELITIES",
        "aimd_rate",
        "spec_flow_params",
    ):
        assert name in simnet.__all__, name
        assert getattr(simnet, name) is not None, name
    assert simnet.FIDELITIES == ("packet", "flow")


def test_chaos_registry_surface_is_public():
    """Scenario lookup goes through the registry, not the legacy dict."""
    import repro.chaos as chaos

    for name in ("scenario", "get_scenario", "scenario_names", "ScenarioDef"):
        assert name in chaos.__all__, name
        assert getattr(chaos, name) is not None, name
    assert "fleet_fanin" in chaos.scenario_names()


def test_legacy_scenarios_dict_warns():
    import repro.chaos as chaos

    with pytest.warns(DeprecationWarning, match="SCENARIOS is deprecated"):
        chaos.SCENARIOS["wan_transfer"]


def test_version_is_pep440ish():
    import repro

    parts = repro.__version__.split(".")
    assert all(part.isdigit() for part in parts)


def test_stats_shim_module_is_gone():
    # repro.simnet.stats (the deprecated meters home) was removed outright;
    # the helpers live in repro.obs.meters.
    import pytest

    with pytest.raises(ModuleNotFoundError):
        import repro.simnet.stats  # noqa: F401


def test_measure_stack_throughput_rejects_strings():
    import pytest

    from repro.core.scenarios import GridScenario

    sc = GridScenario(seed=1)
    sc.add_site("a", "open")
    sc.add_site("b", "open")
    sc.add_node("a", "src")
    sc.add_node("b", "dst")
    with pytest.raises(TypeError, match="wire-only"):
        sc.measure_stack_throughput("src", "dst", "tcp_block", b"x", 1024)
