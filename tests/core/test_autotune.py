"""Stream-count auto-tuning (§8 future work)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.autotune import estimate_bdp, recommend_streams


class TestBdp:
    def test_known_value(self):
        assert estimate_bdp(9e6, 0.043) == pytest.approx(387_000)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            estimate_bdp(0, 0.01)
        with pytest.raises(ValueError):
            estimate_bdp(1e6, -1)


class TestRecommendation:
    def test_paper_links(self):
        # Delft-Sophia: the paper's best measurement used 8 streams.
        assert recommend_streams(9e6, 0.043, 65536) == 8
        # Amsterdam-Rennes: low BDP — a single stream covers the window,
        # only loss resilience argues for more.
        assert recommend_streams(1.6e6, 0.030, 65536) == 1

    def test_lan_needs_one(self):
        assert recommend_streams(12.5e6, 0.0001, 65536) == 1

    def test_bigger_buffers_need_fewer_streams(self):
        small = recommend_streams(9e6, 0.043, 65536)
        big = recommend_streams(9e6, 0.043, 1 << 20)
        assert big < small

    def test_capped_at_max(self):
        assert recommend_streams(1e9, 0.2, 65536, max_streams=16) == 16

    def test_rejects_bad_rcvbuf(self):
        with pytest.raises(ValueError):
            recommend_streams(1e6, 0.01, 0)

    @given(
        st.floats(min_value=1e5, max_value=1e9),
        st.floats(min_value=1e-4, max_value=1.0),
        st.integers(min_value=1024, max_value=1 << 22),
    )
    def test_always_in_range_and_monotone_in_bdp(self, capacity, rtt, rcvbuf):
        n = recommend_streams(capacity, rtt, rcvbuf)
        assert 1 <= n <= 16
        # doubling the BDP never reduces the recommendation
        n2 = recommend_streams(capacity * 2, rtt, rcvbuf)
        assert n2 >= n
