"""Brokered establishment across the paper's topologies (§6 qualitative)."""

import pytest

from repro.core import CLIENT_SERVER, ROUTED, SOCKS_PROXY, SPLICING
from repro.core.scenarios import GridScenario


def _pair(kind_a, kind_b, seed=7, **kwargs):
    sc = GridScenario(seed=seed)
    sc.add_site("A", kind_a)
    sc.add_site("B", kind_b)
    sc.add_node("A", "a")
    sc.add_node("B", "b")
    return sc, sc.establish_pair("a", "b", **kwargs)


class TestMethodSelection:
    def test_open_to_open_uses_client_server(self):
        _sc, r = _pair("open", "open")
        assert r["method"] == CLIENT_SERVER
        assert r["native_tcp"] and not r["relayed"]

    def test_firewalled_pairs_use_splicing(self):
        for pair in [("open", "firewall"), ("firewall", "firewall")]:
            _sc, r = _pair(*pair)
            assert r["method"] == SPLICING
            assert r["native_tcp"] and not r["relayed"]

    def test_cone_nat_splices_with_mapping_probe(self):
        sc, r = _pair("open", "cone_nat")
        assert r["method"] == SPLICING
        assert sc.reflector.probes >= 1  # the NATted side probed its mapping

    def test_double_cone_nat_splices(self):
        _sc, r = _pair("cone_nat", "cone_nat")
        assert r["method"] == SPLICING

    def test_broken_nat_falls_back_to_socks(self):
        """§6: 'several NAT implementations were not fully
        standards-compliant ... there was no choice but to revert to a
        standard SOCKS proxy'."""
        _sc, r = _pair("open", "broken_nat")
        assert r["method"] == SOCKS_PROXY
        assert ("splicing", False) in r["initiator_log"]
        assert ("socks_proxy", True) in r["initiator_log"]

    def test_symmetric_nat_skips_splicing(self):
        _sc, r = _pair("open", "symmetric_nat")
        assert r["method"] == SOCKS_PROXY
        # splicing never attempted: the decision tree knows the mapping is
        # unpredictable
        assert all(m != "splicing" for m, _ok in r["initiator_log"])

    def test_severe_firewall_relays(self):
        _sc, r = _pair("severe", "firewall")
        assert r["method"] == ROUTED
        assert r["relayed"] and not r["native_tcp"]

    def test_severe_firewall_uses_proxy_toward_open(self):
        _sc, r = _pair("severe", "open")
        # negotiated as client/server, transported through the site proxy
        assert ("client_server", True) in r["initiator_log"]
        assert r["echo"] == b"ping"

    def test_payload_flows_both_ways(self):
        _sc, r = _pair("firewall", "cone_nat", payload=b"x" * 5000)
        assert r["echo"] == b"x" * 5000


class TestFallbackBehaviour:
    def test_fallback_adds_establishment_delay(self):
        _sc, direct = _pair("open", "firewall")
        _sc, fallback = _pair("open", "broken_nat")
        assert fallback["delay"] > direct["delay"]

    def test_attempt_logs_agree(self):
        _sc, r = _pair("open", "broken_nat")
        assert [m for m, _ in r["initiator_log"]] == [
            m for m, _ in r["responder_log"]
        ]

    def test_method_override_forces_routed(self):
        _sc, r = _pair("open", "open", methods=[ROUTED])
        assert r["method"] == ROUTED

    def test_method_override_socks_between_open_sites(self):
        # An explicitly requested proxy method still works when a proxy
        # exists: use broken_nat's responder-side proxy shape instead.
        _sc, r = _pair("open", "broken_nat", methods=[SOCKS_PROXY])
        assert r["method"] == SOCKS_PROXY


class TestAllPairsConnectivity:
    """§6: 'we were able to establish a connection from every node to every
    other node without opening ports in firewalls'."""

    KINDS = ["open", "firewall", "cone_nat", "broken_nat", "symmetric_nat"]

    @pytest.mark.parametrize("kind_a", KINDS)
    @pytest.mark.parametrize("kind_b", KINDS)
    def test_every_pair_connects(self, kind_a, kind_b):
        _sc, r = _pair(kind_a, kind_b, until=400)
        assert r["echo"] == b"ping"
