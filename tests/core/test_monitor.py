"""Path monitoring + automated stack selection (§8)."""

import pytest

from repro.core.monitor import PathEstimate, PathMonitor, select_spec
from repro.core.scenarios import GridScenario
from repro.core.utilization.spec import StackSpec


def _measure(capacity, one_way_delay, kind_a="firewall", kind_b="firewall", seed=81):
    sc = GridScenario(seed=seed)
    queue = max(65536, int(capacity * 2 * one_way_delay))
    sc.add_site(
        "A", kind_a, access_delay=one_way_delay / 2, access_bandwidth=capacity,
        queue_bytes=queue,
    )
    sc.add_site(
        "B", kind_b, access_delay=one_way_delay / 2, access_bandwidth=capacity,
        queue_bytes=queue,
    )
    a = sc.add_node("A", "a")
    b = sc.add_node("B", "b")
    res = {}

    def initiator():
        yield from a.start()
        while not b.relay_client.connected:
            yield sc.sim.timeout(0.05)
        service = yield from a.open_service_link("b")
        monitor = PathMonitor(a)
        res["estimate"] = yield from monitor.estimate(service, b.info)
        yield from monitor.finish(service)

    def responder():
        yield from b.start()
        _peer, service = yield from b.accept_service_link()
        monitor = PathMonitor(b)
        yield from monitor.serve(service)

    sc.sim.process(initiator())
    sc.sim.process(responder())
    sc.run(until=600)
    assert "estimate" in res, "probe never completed"
    return res["estimate"]


class TestPathMonitor:
    def test_rtt_measured_accurately(self):
        est = _measure(capacity=4e6, one_way_delay=0.02)
        assert est.rtt == pytest.approx(0.04, rel=0.3)

    def test_narrow_link_measured_near_capacity(self):
        est = _measure(capacity=1e6, one_way_delay=0.005)
        # Low BDP: a single stream sees the true capacity.
        assert est.capacity == pytest.approx(1e6, rel=0.4)
        assert not est.window_limited
        assert est.probe_streams == 1

    def test_fat_link_detected_as_window_limited(self):
        est = _measure(capacity=9e6, one_way_delay=0.0215)
        assert est.probe_streams >= 4  # escalation happened
        assert est.window_limited
        assert est.capacity > 2.0 * est.single_stream
        # With escalation to 8 streams the capacity estimate approaches the
        # true 9 MB/s.
        assert est.capacity > 6e6

    def test_probing_works_through_nat(self):
        est = _measure(
            capacity=3e6, one_way_delay=0.01, kind_a="open", kind_b="cone_nat"
        )
        assert est.capacity > 1e6


class TestSelectSpec:
    def _estimate(self, capacity, rtt, single=None):
        single = single if single is not None else min(capacity, 65536 / rtt)
        return PathEstimate(
            rtt=rtt, single_stream=single, capacity=capacity, probe_streams=4
        )

    def test_low_bdp_single_stream(self):
        spec = select_spec(self._estimate(1e6, 0.01), compress_rate=1e5,
                           payload_ratio=1.0)
        assert isinstance(spec, StackSpec)
        assert spec == StackSpec.tcp()
        assert str(spec) == "tcp_block"

    def test_high_bdp_gets_streams(self):
        spec = select_spec(self._estimate(9e6, 0.043), compress_rate=1e5,
                           payload_ratio=1.0)
        assert spec == StackSpec.parallel(8)

    def test_slow_link_fast_cpu_compresses(self):
        spec = select_spec(
            self._estimate(1.6e6, 0.03),
            compress_rate=3.6e6,
            payload_ratio=3.6,
        )
        assert spec.layer("compress") is not None

    def test_fast_link_slow_cpu_skips_compression(self):
        spec = select_spec(
            self._estimate(9e6, 0.043),
            compress_rate=5.2e6,
            payload_ratio=3.6,
        )
        assert "compress" not in spec and "adaptive" not in spec

    def test_unknown_cpu_uses_adaptive(self):
        spec = select_spec(self._estimate(2e6, 0.02))
        assert spec.layers[0].name == "adaptive"
        assert spec.label.endswith("#compressibility-unknown")


class TestEndToEndSelection:
    def test_selected_spec_outperforms_naive_on_fat_link(self):
        """The full §8 loop: probe, select, transfer — beats plain TCP."""
        sc = GridScenario(seed=91)
        for name in ("A", "B"):
            sc.add_site(
                name, "firewall", access_delay=0.0107, access_bandwidth=9e6,
                queue_bytes=int(9e6 * 0.043),
            )
        a = sc.add_node("A", "a")
        b = sc.add_node("B", "b")
        res = {}

        def initiator():
            yield from a.start()
            while not b.relay_client.connected:
                yield sc.sim.timeout(0.05)
            service = yield from a.open_service_link("b")
            monitor = PathMonitor(a)
            estimate = yield from monitor.estimate(service, b.info)
            yield from monitor.finish(service)
            res["spec"] = select_spec(estimate, compress_rate=5e6, payload_ratio=1.0)

        def responder():
            yield from b.start()
            _peer, service = yield from b.accept_service_link()
            monitor = PathMonitor(b)
            yield from monitor.serve(service)

        sc.sim.process(initiator())
        sc.sim.process(responder())
        sc.run(until=600)
        assert res["spec"].bottom.name == "parallel"
        assert res["spec"].links_required >= 4
        assert res["spec"].label  # the decision is recorded for the axis
