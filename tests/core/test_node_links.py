"""GridNode's direct API and the Link abstraction's contract."""

import pytest

from repro.core import CLIENT_SERVER, SPLICING
from repro.core.links import Link, TcpLink
from repro.core.scenarios import GridScenario
from repro.simnet import connect, listen
from repro.simnet.testing import drive, two_public_hosts


class TestLinkContract:
    def _tcp_link_pair(self):
        inet, a, b = two_public_hosts(seed=5)
        out = {}

        def srv():
            listener = listen(b, 5000)
            sock = yield from listener.accept()
            out["b"] = TcpLink(sock, CLIENT_SERVER)

        def cli():
            sock = yield from connect(a, (b.ip, 5000))
            out["a"] = TcpLink(sock, CLIENT_SERVER)

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=inet.sim.now + 10)
        return inet, out["a"], out["b"]

    def test_metadata(self):
        _inet, la, _lb = self._tcp_link_pair()
        assert la.method == CLIENT_SERVER
        assert la.native_tcp is True
        assert la.relayed is False
        assert la.sim is not None
        assert la.laddr[0] != la.raddr[0]

    def test_recv_exactly_raises_on_early_eof(self):
        inet, la, lb = self._tcp_link_pair()
        out = {}

        def sender():
            yield from la.send_all(b"abc")
            la.close()

        def receiver():
            try:
                yield from lb.recv_exactly(10)
            except EOFError as exc:
                out["error"] = str(exc)

        inet.sim.process(sender())
        inet.sim.process(receiver())
        inet.sim.run(until=inet.sim.now + 10)
        assert "7/10 bytes missing" in out["error"]

    def test_base_class_is_abstract(self):
        link = Link()
        with pytest.raises(NotImplementedError):
            link.close()
        with pytest.raises(NotImplementedError):
            link.sim


class TestGridNodeApi:
    def _pair(self):
        sc = GridScenario(seed=85)
        sc.add_site("A", "firewall")
        sc.add_site("B", "firewall")
        return sc, sc.add_node("A", "a"), sc.add_node("B", "b")

    def test_service_link_carries_peer_identity(self):
        sc, a, b = self._pair()
        out = {}

        def initiator():
            yield from a.start()
            while not b.relay_client.connected:
                yield sc.sim.timeout(0.05)
            link = yield from a.open_service_link("b")
            yield from link.send_all(b"hi")

        def responder():
            yield from b.start()
            peer, link = yield from b.accept_service_link()
            out["peer"] = peer
            out["data"] = yield from link.recv_exactly(2)

        sc.sim.process(initiator())
        sc.sim.process(responder())
        sc.run(until=60)
        assert out == {"peer": "a", "data": b"hi"}

    def test_data_links_record_method_and_verify(self):
        sc, a, b = self._pair()
        out = {}

        def initiator():
            yield from a.start()
            while not b.relay_client.connected:
                yield sc.sim.timeout(0.05)
            service = yield from a.open_service_link("b")
            link = yield from a.connect_data(service, b.info)
            out["method"] = link.method
            link.close()

        def responder():
            yield from b.start()
            _peer, service = yield from b.accept_service_link()
            link = yield from b.accept_data(service)
            out["responder_method"] = link.method

        sc.sim.process(initiator())
        sc.sim.process(responder())
        sc.run(until=120)
        assert out["method"] == SPLICING
        assert out["responder_method"] == SPLICING

    def test_stop_disconnects_relay(self):
        sc, a, b = self._pair()

        def proc():
            yield from a.start()
            assert a.relay_client.connected
            a.stop()

        drive(sc.sim, proc())
        sc.run(until=sc.sim.now + 10)
        assert not a.relay_client.connected

    def test_node_id_property(self):
        sc, a, _b = self._pair()
        assert a.node_id == "a"
