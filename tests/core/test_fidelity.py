"""The fidelity= knob on StackSpec and the factory.

Fidelity is an execution hint — which simulation tier should run this
stack — not a protocol field: it never travels the wire, never affects
spec equality, and a packet-tier factory refuses flow-pinned work with a
pointer at the fluid path.
"""

import pytest

from repro.core.factory import BrokeredConnectionFactory
from repro.core.scenarios import GridScenario
from repro.core.utilization.spec import StackSpec, StackSpecError


class TestSpecFidelity:
    def test_default_is_packet(self):
        assert StackSpec.tcp().fidelity == "packet"

    def test_with_fidelity_returns_pinned_copy(self):
        spec = StackSpec.parse("tls|parallel:streams=4")
        flow = spec.with_fidelity("flow")
        assert flow.fidelity == "flow"
        assert spec.fidelity == "packet"  # original untouched
        assert flow.layers == spec.layers

    def test_unknown_tier_rejected(self):
        with pytest.raises(StackSpecError, match="unknown fidelity"):
            StackSpec.tcp().with_fidelity("quantum")

    def test_composition_preserves_fidelity(self):
        spec = StackSpec.parallel(4).with_fidelity("flow")
        assert spec.with_compression().fidelity == "flow"
        assert spec.with_session().fidelity == "flow"
        assert spec.with_mux().fidelity == "flow"
        assert spec.with_label("x").fidelity == "flow"

    def test_excluded_from_wire_form(self):
        spec = StackSpec.parse("compress:level=6|parallel:streams=4")
        assert str(spec.with_fidelity("flow")) == str(spec)

    def test_excluded_from_equality_and_hash(self):
        spec = StackSpec.tcp()
        flow = spec.with_fidelity("flow")
        assert spec == flow
        assert hash(spec) == hash(flow)

    def test_repr_round_trips_the_pin(self):
        flow = StackSpec.tcp().with_fidelity("flow")
        assert "with_fidelity('flow')" in repr(flow)
        assert "with_fidelity" not in repr(StackSpec.tcp())


def _node():
    sc = GridScenario(seed=1)
    sc.add_site("A", "open")
    return sc.add_node("A", "a")


class TestFactoryFidelity:
    def test_unknown_tier_rejected(self):
        with pytest.raises(StackSpecError, match="unknown fidelity"):
            BrokeredConnectionFactory(_node(), fidelity="quantum")

    def test_flow_factory_refuses_driver_assembly(self):
        factory = BrokeredConnectionFactory(_node(), fidelity="flow")
        with pytest.raises(StackSpecError, match="start_flow"):
            factory._check_fidelity(StackSpec.tcp().with_fidelity("flow"))

    def test_packet_factory_refuses_flow_pinned_spec(self):
        factory = BrokeredConnectionFactory(_node())
        with pytest.raises(StackSpecError, match="pinned to fidelity"):
            factory._check_fidelity(StackSpec.tcp().with_fidelity("flow"))

    def test_packet_spec_passes(self):
        factory = BrokeredConnectionFactory(_node())
        factory._check_fidelity(StackSpec.parse("tls|parallel:streams=2"))
