"""Utilization drivers: TCP_Block, parallel streams, compression, TLS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.links import TcpLink
from repro.core.utilization import (
    AdaptiveCompressionDriver,
    BlockChannel,
    CompressionDriver,
    DriverError,
    ParallelStreamsDriver,
    TcpBlockDriver,
    TlsDriver,
)
from repro.security import CertificateAuthority, Identity
from repro.simnet import CpuModel, connect, listen
from repro.simnet.testing import two_public_hosts, wan_pair


def _linked_pair(inet, a, b, n=1, port=5000):
    """Create n TCP links between a and b; returns (a_links, b_links)."""
    sim = inet.sim
    out = {}

    def srv():
        listener = listen(b, port, backlog=n)
        links = []
        for _ in range(n):
            sock = yield from listener.accept()
            links.append(TcpLink(sock, "client_server"))
        out["b"] = links

    def cli():
        links = []
        for _ in range(n):
            sock = yield from connect(a, (b.ip, port))
            links.append(TcpLink(sock, "client_server"))
        out["a"] = links

    sim.process(srv())
    sim.process(cli())
    sim.run(until=sim.now + 30)
    return out["a"], out["b"]


def _exchange(inet, send_driver, recv_driver, blocks, until=120):
    """Send blocks through one driver, collect from the other."""
    sim = inet.sim
    received = []

    def sender():
        for block in blocks:
            yield from send_driver.send_block(block)
        send_driver.close()

    def receiver():
        while True:
            try:
                block = yield from recv_driver.recv_block()
            except EOFError:
                return
            received.append(block)
            if len(received) == len(blocks):
                return

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=sim.now + until)
    return received


class TestTcpBlockDriver:
    def test_blocks_round_trip(self):
        inet, a, b = two_public_hosts()
        (la,), (lb,) = _linked_pair(inet, a, b)
        blocks = [b"one", b"two" * 1000, b"", b"three"]
        assert _exchange(inet, TcpBlockDriver(la), TcpBlockDriver(lb), blocks) == blocks

    def test_counts(self):
        inet, a, b = two_public_hosts()
        (la,), (lb,) = _linked_pair(inet, a, b)
        tx, rx = TcpBlockDriver(la), TcpBlockDriver(lb)
        _exchange(inet, tx, rx, [b"x"] * 5)
        assert tx.blocks_sent == 5
        assert rx.blocks_received == 5

    def test_eof_on_close(self):
        inet, a, b = two_public_hosts()
        (la,), (lb,) = _linked_pair(inet, a, b)
        rx = TcpBlockDriver(lb)
        out = _exchange(inet, TcpBlockDriver(la), rx, [b"only"])
        assert out == [b"only"]


class TestParallelStreams:
    @pytest.mark.parametrize("nstreams", [1, 2, 4, 8])
    def test_blocks_round_trip(self, nstreams):
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, n=nstreams)
        blocks = [bytes([i]) * (1000 * i + 1) for i in range(6)]
        tx = ParallelStreamsDriver(la, fragment=512)
        rx = ParallelStreamsDriver(lb, fragment=512)
        assert _exchange(inet, tx, rx, blocks) == blocks

    def test_fragmentation_is_transparent(self):
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, n=3)
        block = bytes(range(256)) * 100  # not a multiple of the fragment
        tx = ParallelStreamsDriver(la, fragment=999)
        rx = ParallelStreamsDriver(lb, fragment=999)
        assert _exchange(inet, tx, rx, [block]) == [block]

    def test_mismatched_fragment_sizes_would_break(self):
        # Striping requires both sides to agree on the fragment size; the
        # stack-spec negotiation guarantees it.  Verify the premise.
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, n=2)
        tx = ParallelStreamsDriver(la, fragment=100)
        rx = ParallelStreamsDriver(lb, fragment=100)
        blocks = [b"z" * 250]
        assert _exchange(inet, tx, rx, blocks) == blocks

    def test_empty_links_rejected(self):
        with pytest.raises(DriverError):
            ParallelStreamsDriver([])

    def test_bad_fragment_rejected(self):
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, n=1)
        with pytest.raises(DriverError):
            ParallelStreamsDriver(la, fragment=0)

    def test_multiple_streams_beat_one_on_high_bdp(self):
        """The §4.2 effect through the driver itself."""

        def run(nstreams):
            inet, a, b = wan_pair(capacity=9e6, one_way_delay=0.0215, seed=1)
            la, lb = _linked_pair(inet, a, b, n=nstreams)
            tx = ParallelStreamsDriver(la)
            rx = ParallelStreamsDriver(lb)
            cha, chb = BlockChannel(tx), BlockChannel(rx)
            nbytes = 4_000_000
            res = {}

            def sender():
                payload = b"d" * 65536
                sent = 0
                res["t0"] = inet.sim.now
                while sent < nbytes:
                    yield from cha.write(payload)
                    sent += len(payload)
                yield from cha.flush()

            def receiver():
                got = 0
                while got < nbytes:
                    got += len((yield from chb.read(1 << 20)))
                res["t1"] = inet.sim.now

            inet.sim.process(sender())
            inet.sim.process(receiver())
            inet.sim.run(until=600)
            return nbytes / (res["t1"] - res["t0"]) / 1e6

        one, four = run(1), run(4)
        assert four > 2.5 * one


class TestCompression:
    def _pair(self, inet, a, b, level=1, host=None):
        (la,), (lb,) = _linked_pair(inet, a, b)
        tx = CompressionDriver(TcpBlockDriver(la), host=host, level=level)
        rx = CompressionDriver(TcpBlockDriver(lb), host=host, level=level)
        return tx, rx

    def test_compressible_data_round_trips(self):
        inet, a, b = two_public_hosts()
        tx, rx = self._pair(inet, a, b)
        blocks = [b"abcd" * 5000, b"x" * 100]
        assert _exchange(inet, tx, rx, blocks) == blocks
        assert tx.ratio > 2.0

    def test_incompressible_data_sent_raw(self):
        import os

        inet, a, b = two_public_hosts()
        tx, rx = self._pair(inet, a, b)
        block = bytes(os.urandom(10000))
        assert _exchange(inet, tx, rx, [block]) == [block]
        assert tx.ratio <= 1.0  # flag byte makes it slightly negative

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=5000))
    def test_arbitrary_payload_property(self, payload):
        inet, a, b = two_public_hosts()
        tx, rx = self._pair(inet, a, b)
        assert _exchange(inet, tx, rx, [payload]) == [payload]

    def test_bad_level_rejected(self):
        with pytest.raises(DriverError):
            CompressionDriver(None, level=0)

    def test_cpu_model_charges_time(self):
        inet, a, b = two_public_hosts()
        cpu = CpuModel(inet.sim, rates={"compress": 1_000_000.0}).attach(a)
        tx, rx = self._pair(inet, a, b, host=a)
        t0 = inet.sim.now
        _exchange(inet, tx, rx, [b"q" * 1_000_000])
        # 1 MB at 1 MB/s -> at least ~1 simulated second of CPU time
        assert cpu.busy_seconds >= 0.99


class TestAdaptiveCompression:
    def _channel_pair(self, capacity, compress_rate, seed=1):
        inet, a, b = wan_pair(capacity=capacity, one_way_delay=0.01, seed=seed)
        CpuModel(inet.sim, rates={"compress": compress_rate}).attach(a)
        CpuModel(inet.sim, rates={"decompress": 50e6}).attach(b)
        (la,), (lb,) = _linked_pair(inet, a, b)
        tx = AdaptiveCompressionDriver(TcpBlockDriver(la), a)
        rx = AdaptiveCompressionDriver(TcpBlockDriver(lb), b)
        return inet, tx, rx

    def _stream(self, inet, tx, rx, nblocks=120, block=b"text-like-data " * 1000):
        blocks = [block] * nblocks
        got = _exchange(inet, tx, rx, blocks, until=600)
        assert got == blocks

    def test_slow_link_prefers_compression(self):
        inet, tx, rx = self._channel_pair(capacity=1e6, compress_rate=20e6)
        self._stream(inet, tx, rx)
        assert tx.current_preference == "compress"
        assert tx.mode_counts[1] > tx.mode_counts[0]

    def test_fast_link_slow_cpu_prefers_raw(self):
        inet, tx, rx = self._channel_pair(capacity=50e6, compress_rate=1e6)
        self._stream(inet, tx, rx)
        assert tx.current_preference == "raw"

    def test_requires_host(self):
        with pytest.raises(DriverError):
            AdaptiveCompressionDriver(None, None)


class TestTlsDriver:
    @pytest.fixture(scope="class")
    def pki(self):
        ca = CertificateAuthority("root")
        key, cert = ca.issue_identity("server.node")
        return {"ca": ca, "server": Identity(key, [cert])}

    def _secured_pair(self, inet, a, b, pki):
        (la,), (lb,) = _linked_pair(inet, a, b)
        tx = TlsDriver(TcpBlockDriver(la))
        rx = TlsDriver(TcpBlockDriver(lb))
        done = {}

        def client():
            yield from tx.handshake_client([pki["ca"].certificate], seed=b"c")
            done["client"] = True

        def server():
            yield from rx.handshake_server(pki["server"], seed=b"s")
            done["server"] = True

        inet.sim.process(client())
        inet.sim.process(server())
        inet.sim.run(until=inet.sim.now + 30)
        assert done == {"client": True, "server": True}
        return tx, rx

    def test_handshake_and_transfer(self, pki):
        inet, a, b = two_public_hosts()
        tx, rx = self._secured_pair(inet, a, b, pki)
        assert tx.peer_subject == "server.node"
        blocks = [b"secret-block" * 100, b"two"]
        assert _exchange(inet, tx, rx, blocks) == blocks

    def test_data_on_wire_is_ciphertext(self, pki):
        inet, a, b = two_public_hosts()
        seen = []
        inet.net.tracers.append(
            lambda e: seen.append(e["segment"].payload)
            if e["kind"] == "tx" and e["segment"].payload
            else None
        )
        tx, rx = self._secured_pair(inet, a, b, pki)
        _exchange(inet, tx, rx, [b"TOP-SECRET-PAYLOAD" * 50])
        joined = b"".join(seen)
        assert b"TOP-SECRET-PAYLOAD" not in joined

    def test_send_before_handshake_fails(self, pki):
        inet, a, b = two_public_hosts()
        (la,), (lb,) = _linked_pair(inet, a, b)
        tx = TlsDriver(TcpBlockDriver(la))
        with pytest.raises(DriverError, match="handshake"):
            for _ in tx.send_block(b"x"):
                pass

    def test_tampered_record_detected(self, pki):
        from repro.security import RecordError

        inet, a, b = two_public_hosts()
        tx, rx = self._secured_pair(inet, a, b, pki)
        # Seal a record, corrupt it, feed it below the receiver's TLS.
        record = bytearray(tx.session.seal(b"block"))
        record[-1] ^= 1
        with pytest.raises(RecordError):
            rx.session.open(bytes(record))


class TestBlockChannel:
    def test_write_flush_read(self):
        inet, a, b = two_public_hosts()
        (la,), (lb,) = _linked_pair(inet, a, b)
        cha = BlockChannel(TcpBlockDriver(la), block_size=1024)
        chb = BlockChannel(TcpBlockDriver(lb), block_size=1024)
        payload = bytes(range(256)) * 20
        result = {}

        def writer():
            yield from cha.write(payload)
            yield from cha.flush()

        def reader():
            result["data"] = yield from chb.read_exactly(len(payload))

        inet.sim.process(writer())
        inet.sim.process(reader())
        inet.sim.run(until=inet.sim.now + 30)
        assert result["data"] == payload

    def test_small_writes_are_aggregated(self):
        """§4.1: many small sends leave as few blocks."""
        inet, a, b = two_public_hosts()
        (la,), (lb,) = _linked_pair(inet, a, b)
        drv = TcpBlockDriver(la)
        cha = BlockChannel(drv, block_size=4096)
        chb = BlockChannel(TcpBlockDriver(lb), block_size=4096)
        result = {}

        def writer():
            for _ in range(4096):
                yield from cha.write(b"x")  # 4096 one-byte writes
            yield from cha.flush()

        def reader():
            result["data"] = yield from chb.read_exactly(4096)

        inet.sim.process(writer())
        inet.sim.process(reader())
        inet.sim.run(until=inet.sim.now + 30)
        assert result["data"] == b"x" * 4096
        assert drv.blocks_sent == 1  # a single aggregated block

    def test_messages_round_trip(self):
        inet, a, b = two_public_hosts()
        (la,), (lb,) = _linked_pair(inet, a, b)
        cha = BlockChannel(TcpBlockDriver(la))
        chb = BlockChannel(TcpBlockDriver(lb))
        messages = [b"first", b"", b"third" * 1000]
        result = {"got": []}

        def writer():
            for msg in messages:
                yield from cha.send_message(msg)

        def reader():
            for _ in messages:
                result["got"].append((yield from chb.recv_message()))

        inet.sim.process(writer())
        inet.sim.process(reader())
        inet.sim.run(until=inet.sim.now + 30)
        assert result["got"] == messages

    def test_eof_propagates(self):
        inet, a, b = two_public_hosts()
        (la,), (lb,) = _linked_pair(inet, a, b)
        cha = BlockChannel(TcpBlockDriver(la))
        chb = BlockChannel(TcpBlockDriver(lb))
        result = {}

        def writer():
            yield from cha.write(b"tail")
            yield from cha.flush()
            cha.close()

        def reader():
            result["data"] = yield from chb.read(100)
            result["eof"] = yield from chb.read(100)

        inet.sim.process(writer())
        inet.sim.process(reader())
        inet.sim.run(until=inet.sim.now + 30)
        assert result == {"data": b"tail", "eof": b""}

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            BlockChannel(None, block_size=0)
