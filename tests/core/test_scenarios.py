"""The GridScenario builder itself."""

import pytest

from repro.core.scenarios import SITE_KINDS, GridScenario
from repro.core.utilization import StackSpec
from repro.simnet.packet import is_private


class TestBuilder:
    def test_unknown_kind_rejected(self):
        sc = GridScenario()
        with pytest.raises(ValueError):
            sc.add_site("x", "bogus")

    def test_all_kinds_buildable(self):
        sc = GridScenario()
        for i, kind in enumerate(SITE_KINDS):
            sc.add_site(f"s{i}", kind)
        assert len(sc.sites) == len(SITE_KINDS)

    def test_nat_sites_get_private_addresses(self):
        sc = GridScenario()
        sc.add_site("n", "cone_nat")
        node = sc.add_node("n", "x")
        assert is_private(node.host.ip)

    def test_endpoint_info_matches_kind(self):
        sc = GridScenario()
        sc.add_site("f", "firewall")
        sc.add_site("s", "symmetric_nat")
        sc.add_site("v", "severe")
        nf = sc.add_node("f", "nf")
        ns = sc.add_node("s", "ns")
        nv = sc.add_node("v", "nv")
        assert nf.info.behind_firewall and not nf.info.behind_nat
        assert ns.info.behind_nat and ns.info.nat_predictable is False
        assert ns.info.socks_proxy is not None
        assert nv.info.outbound_blocked and nv.info.socks_proxy is not None

    def test_proxies_only_where_needed(self):
        sc = GridScenario()
        sc.add_site("o", "open")
        sc.add_site("b", "broken_nat")
        assert "o" not in sc.proxies
        assert "b" in sc.proxies

    def test_relay_bandwidth_configurable(self):
        sc = GridScenario(relay_bandwidth=1e6)
        iface = sc.relay_host.interfaces[0]
        assert iface.transmitter.bandwidth == 1e6


class TestMeasurement:
    def test_throughput_helper_end_to_end(self):
        sc = GridScenario(seed=71)
        sc.add_site("a", "open", access_bandwidth=4e6, access_delay=0.005)
        sc.add_site("b", "open", access_bandwidth=4e6, access_delay=0.005)
        sc.add_node("a", "src")
        sc.add_node("b", "dst")
        result = sc.measure_stack_throughput(
            "src", "dst", StackSpec.tcp(), b"p" * 65536, 2_000_000
        )
        # The sender rounds up to whole messages.
        assert 2_000_000 <= result["received"] < 2_000_000 + 65536 * 2
        assert 0.2 < result["throughput"] <= 4.2

    def test_establish_pair_reports_metadata(self):
        sc = GridScenario(seed=72)
        sc.add_site("a", "open")
        sc.add_site("b", "firewall")
        sc.add_node("a", "x")
        sc.add_node("b", "y")
        res = sc.establish_pair("x", "y")
        assert res["method"] == "splicing"
        assert res["native_tcp"] is True
        assert res["delay"] > 0
        assert res["initiator_log"] and res["responder_log"]

    def test_establish_pair_timeout_raises(self):
        sc = GridScenario(seed=73)
        sc.add_site("a", "open")
        sc.add_site("b", "open")
        sc.add_node("a", "x")
        # "y" never added/started: establishment cannot happen
        sc.add_node("b", "z")
        with pytest.raises((RuntimeError, KeyError)):
            sc.establish_pair("x", "y", until=5)
