"""Brokered connection factory: spec negotiation + stacked channels."""

import pytest

from repro.core.factory import BrokeredConnectionFactory, TlsConfig
from repro.core.scenarios import GridScenario
from repro.core.utilization.spec import StackSpec
from repro.security import CertificateAuthority, Identity


def _run_channel(kind_a, kind_b, spec, payload, tls=False, seed=11, until=300):
    # Parametrized specs stay strings (readable test IDs); the factory
    # itself gets the typed form.
    spec = StackSpec.parse(spec) if isinstance(spec, str) else spec
    sc = GridScenario(seed=seed)
    sc.add_site("A", kind_a)
    sc.add_site("B", kind_b)
    node_a = sc.add_node("A", "a")
    node_b = sc.add_node("B", "b")
    tls_a = tls_b = None
    if tls:
        ca = CertificateAuthority("grid-root")
        ka, cert_a = ca.issue_identity("a")
        kb, cert_b = ca.issue_identity("b")
        tls_a = TlsConfig([ca.certificate], Identity(ka, [cert_a]))
        tls_b = TlsConfig([ca.certificate], Identity(kb, [cert_b]))
    res = {}

    def run_a():
        yield from node_a.start()
        while not node_b.relay_client.connected:
            yield sc.sim.timeout(0.05)
        service = yield from node_a.open_service_link("b")
        factory = BrokeredConnectionFactory(node_a, tls_a)
        channel = yield from factory.connect(service, node_b.info, spec=spec)
        yield from channel.send_message(payload)
        res["echo"] = yield from channel.recv_message()
        res["channel"] = channel

    def run_b():
        yield from node_b.start()
        _peer, service = yield from node_b.accept_service_link()
        factory = BrokeredConnectionFactory(node_b, tls_b)
        channel = yield from factory.accept(service)
        msg = yield from channel.recv_message()
        res["received"] = msg
        yield from channel.send_message(msg)

    sc.sim.process(run_a())
    sc.sim.process(run_b())
    sc.run(until=until)
    return res


PAYLOAD = bytes(range(256)) * 64


class TestFactory:
    @pytest.mark.parametrize(
        "spec",
        ["tcp_block", "parallel:2", "parallel:4", "compress|tcp_block",
         "compress|parallel:4", "adaptive|tcp_block"],
    )
    def test_specs_between_firewalled_sites(self, spec):
        res = _run_channel("firewall", "firewall", spec, PAYLOAD)
        assert res["echo"] == PAYLOAD
        assert res["received"] == PAYLOAD

    def test_parallel_streams_each_brokered(self):
        res = _run_channel("firewall", "cone_nat", "parallel:3", PAYLOAD)
        assert res["echo"] == PAYLOAD

    def test_tls_stack_authenticates(self):
        res = _run_channel("firewall", "firewall", "tls|tcp_block", PAYLOAD, tls=True)
        assert res["echo"] == PAYLOAD
        from repro.core.utilization import TlsDriver, find_driver

        tls = find_driver(res["channel"].driver, TlsDriver)
        assert tls.peer_subject == "b"

    def test_tls_over_compression_over_striping(self):
        res = _run_channel(
            "open", "broken_nat", "compress|tls|parallel:2", PAYLOAD, tls=True
        )
        assert res["echo"] == PAYLOAD

    def test_tls_without_config_rejected(self):
        # The ValueError raised inside the initiator process propagates out
        # of the simulation run.
        with pytest.raises(ValueError, match="TlsConfig"):
            _run_channel("open", "open", "tls|tcp_block", PAYLOAD, tls=False)


class TestStandaloneSessionWindow:
    """Negotiated replay-window flow control for non-mux sessions (PR 8).

    The service-link agreement frame carries each side's budget share;
    both ends clamp the replay buffer to the min, so N concurrent
    standalone sessions split the node's buffer budget instead of each
    retaining the full static default.
    """

    @staticmethod
    def _open_channels(n, spec_str):
        from repro.core.factory import SESSION_BUFFER_BUDGET  # noqa: F401

        spec = StackSpec.parse(spec_str)
        sc = GridScenario(seed=23)
        sc.add_site("A", "open")
        sc.add_site("B", "firewall")
        node_a = sc.add_node("A", "a")
        node_b = sc.add_node("B", "b")
        windows = []

        def run_a():
            yield from node_a.start()
            while not node_b.relay_client.connected:
                yield sc.sim.timeout(0.05)
            factory = BrokeredConnectionFactory(node_a)
            for _ in range(n):
                service = yield from node_a.open_service_link("b")
                channel = yield from factory.connect(service, node_b.info, spec=spec)
                yield from channel.send_message(b"probe")
                session = channel.driver.link
                windows.append(session.config.max_buffer)

        def run_b():
            yield from node_b.start()
            factory = BrokeredConnectionFactory(node_b)
            for _ in range(n):
                _peer, service = yield from node_b.accept_service_link()
                channel = yield from factory.accept(service)
                yield from channel.recv_message()

        sc.sim.process(run_a())
        sc.sim.process(run_b())
        sc.run(until=300)
        return windows, node_a, node_b

    def test_single_session_capped_by_budget_share(self):
        from repro.core.factory import SESSION_BUFFER_BUDGET

        # spec asks for 8 MiB, but the whole-node budget is 4 MiB
        windows, node_a, node_b = self._open_channels(
            1, f"tcp_block|session:buf={8 << 20}"
        )
        assert windows == [SESSION_BUFFER_BUDGET]
        # both ends agreed on the same clamp
        assert {s.config.max_buffer for s in node_b.sessions} == {
            SESSION_BUFFER_BUDGET
        }

    def test_concurrent_sessions_split_the_budget(self):
        from repro.core.factory import SESSION_BUFFER_BUDGET

        windows, _, _ = self._open_channels(3, f"tcp_block|session:buf={8 << 20}")
        # each later session is offered a smaller share: budget / (live+1)
        assert windows == [
            SESSION_BUFFER_BUDGET // 1,
            SESSION_BUFFER_BUDGET // 2,
            SESSION_BUFFER_BUDGET // 3,
        ]

    def test_spec_cap_still_wins_when_smaller(self):
        windows, _, _ = self._open_channels(1, "tcp_block|session:buf=131072")
        assert windows == [131072]
