"""Stack specification parsing and assembly."""

import pytest

from repro.core.links import TcpLink
from repro.core.utilization import (
    AdaptiveCompressionDriver,
    CompressionDriver,
    ParallelStreamsDriver,
    StackSpecError,
    TcpBlockDriver,
    TlsDriver,
    build_stack,
    find_driver,
    iter_drivers,
    links_required,
    parse_stack,
)
from repro.simnet import connect, listen
from repro.simnet.testing import two_public_hosts


class TestParse:
    def test_single_networking_layer(self):
        assert parse_stack("tcp_block") == [("tcp_block", {})]

    def test_parallel_with_count(self):
        assert parse_stack("parallel:4") == [("parallel", {"streams": 4})]

    def test_full_stack(self):
        layers = parse_stack("tls|compress:1|parallel:8:fragment=8192")
        assert layers == [
            ("tls", {}),
            ("compress", {"level": 1}),
            ("parallel", {"streams": 8, "fragment": 8192}),
        ]

    def test_keyword_params(self):
        layers = parse_stack("adaptive:probe=4|tcp_block")
        assert layers[0] == ("adaptive", {"probe": 4})

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "nonsense",
            "compress",  # no networking layer at the bottom
            "tcp_block|compress",  # networking layer not last
            "tcp_block|tcp_block",
            "tls:9|tcp_block",  # tls takes no positional
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(StackSpecError):
            parse_stack(bad)


class TestLinksRequired:
    def test_tcp_block_needs_one(self):
        assert links_required("tcp_block") == 1
        assert links_required("compress|tcp_block") == 1

    def test_parallel_needs_n(self):
        assert links_required("parallel:4") == 4
        assert links_required("tls|compress|parallel:8") == 8


class TestBuild:
    def _links(self, n):
        inet, a, b = two_public_hosts()
        out = {}

        def srv():
            listener = listen(b, 5000, backlog=n)
            out["b"] = []
            for _ in range(n):
                s = yield from listener.accept()
                out["b"].append(TcpLink(s, "client_server"))

        def cli():
            out["a"] = []
            for _ in range(n):
                s = yield from connect(a, (b.ip, 5000))
                out["a"].append(TcpLink(s, "client_server"))

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=30)
        return inet, a, out["a"]

    def test_build_tcp_block(self):
        _inet, host, links = self._links(1)
        stack = build_stack("tcp_block", links, host=host)
        assert isinstance(stack, TcpBlockDriver)

    def test_build_layered(self):
        _inet, host, links = self._links(4)
        stack = build_stack("tls|compress|parallel:4", links, host=host)
        kinds = [type(d) for d in iter_drivers(stack)]
        assert kinds == [TlsDriver, CompressionDriver, ParallelStreamsDriver]

    def test_build_adaptive(self):
        _inet, host, links = self._links(1)
        stack = build_stack("adaptive|tcp_block", links, host=host)
        assert isinstance(stack, AdaptiveCompressionDriver)

    def test_find_driver(self):
        _inet, host, links = self._links(2)
        stack = build_stack("compress|parallel:2", links, host=host)
        assert find_driver(stack, ParallelStreamsDriver) is not None
        assert find_driver(stack, TlsDriver) is None

    def test_wrong_link_count_rejected(self):
        _inet, host, links = self._links(2)
        with pytest.raises(StackSpecError):
            build_stack("tcp_block", links, host=host)
        with pytest.raises(StackSpecError):
            build_stack("parallel:4", links, host=host)
