"""Stack specification parsing and assembly."""

import pytest

from repro.core.links import TcpLink
from repro.core.utilization import (
    AdaptiveCompressionDriver,
    CompressionDriver,
    ParallelStreamsDriver,
    StackSpecError,
    TcpBlockDriver,
    TlsDriver,
    build_stack,
    find_driver,
    iter_drivers,
    links_required,
    parse_stack,
)
from repro.core.utilization.spec import SESSION, LayerSpec, StackSpec
from repro.simnet import connect, listen
from repro.simnet.testing import two_public_hosts


def P(text):
    return StackSpec.parse(text)


class TestParse:
    def test_single_networking_layer(self):
        assert parse_stack(P("tcp_block")) == [("tcp_block", {})]

    def test_parallel_with_count(self):
        assert parse_stack(P("parallel:4")) == [("parallel", {"streams": 4})]

    def test_full_stack(self):
        layers = parse_stack(P("tls|compress:1|parallel:8:fragment=8192"))
        assert layers == [
            ("tls", {}),
            ("compress", {"level": 1}),
            ("parallel", {"streams": 8, "fragment": 8192}),
        ]

    def test_keyword_params(self):
        layers = parse_stack(P("adaptive:probe=4|tcp_block"))
        assert layers[0] == ("adaptive", {"probe": 4})

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "nonsense",
            "compress",  # no networking layer at the bottom
            "tcp_block|compress",  # networking layer not last
            "tcp_block|tcp_block",
            "tls:9|tcp_block",  # tls takes no positional
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(StackSpecError):
            parse_stack(P(bad))

    def test_string_form_is_wire_only(self):
        # The as_spec() coercion shim is gone: strings are rejected with a
        # pointer at StackSpec.parse.
        for fn in (parse_stack, links_required):
            with pytest.raises(TypeError, match="wire-only"):
                fn("tcp_block")
        with pytest.raises(TypeError, match="wire-only"):
            build_stack("tcp_block", [], host=None)


class TestSessionLayer:
    def test_with_session_round_trips(self):
        spec = StackSpec.tcp().with_session(ack_every=4096)
        assert str(spec) == "tcp_block|session:ack=4096"
        assert StackSpec.parse(str(spec)) == spec
        assert spec.session == LayerSpec("session", {"ack": 4096})
        assert spec.session.name in SESSION

    def test_session_sits_below_networking(self):
        with pytest.raises(StackSpecError):
            StackSpec.parse("session|tcp_block")
        with pytest.raises(StackSpecError):
            StackSpec.parse("tcp_block|session|session")
        spec = StackSpec.parse("compress|parallel:4|session")
        assert spec.links_required == 4
        assert [l.name for l in spec.filters] == ["compress"]
        assert spec.bottom.name == "parallel"

    def test_with_session_is_single_shot(self):
        spec = StackSpec.tcp().with_session()
        with pytest.raises(StackSpecError):
            spec.with_session()
        assert spec.without_session() == StackSpec.tcp()

    def test_label_rides_along_without_affecting_identity(self):
        spec = StackSpec.tcp().with_label("axis-a")
        assert spec == StackSpec.tcp()
        assert hash(spec) == hash(StackSpec.tcp())
        assert str(spec) == "tcp_block"
        assert spec.with_session().label == "axis-a"

    def test_build_stack_ignores_session_layer(self):
        # The factory wraps links before assembly; build_stack only sees
        # the session layer as part of the spec.
        assert parse_stack(P("tcp_block|session")) == [
            ("tcp_block", {}),
            ("session", {}),
        ]
        assert links_required(P("tcp_block|session")) == 1


class TestLinksRequired:
    def test_tcp_block_needs_one(self):
        assert links_required(P("tcp_block")) == 1
        assert links_required(P("compress|tcp_block")) == 1

    def test_parallel_needs_n(self):
        assert links_required(P("parallel:4")) == 4
        assert links_required(P("tls|compress|parallel:8")) == 8


class TestBuild:
    def _links(self, n):
        inet, a, b = two_public_hosts()
        out = {}

        def srv():
            listener = listen(b, 5000, backlog=n)
            out["b"] = []
            for _ in range(n):
                s = yield from listener.accept()
                out["b"].append(TcpLink(s, "client_server"))

        def cli():
            out["a"] = []
            for _ in range(n):
                s = yield from connect(a, (b.ip, 5000))
                out["a"].append(TcpLink(s, "client_server"))

        inet.sim.process(srv())
        inet.sim.process(cli())
        inet.sim.run(until=30)
        return inet, a, out["a"]

    def test_build_tcp_block(self):
        _inet, host, links = self._links(1)
        stack = build_stack(P("tcp_block"), links, host=host)
        assert isinstance(stack, TcpBlockDriver)

    def test_build_layered(self):
        _inet, host, links = self._links(4)
        stack = build_stack(P("tls|compress|parallel:4"), links, host=host)
        kinds = [type(d) for d in iter_drivers(stack)]
        assert kinds == [TlsDriver, CompressionDriver, ParallelStreamsDriver]

    def test_build_adaptive(self):
        _inet, host, links = self._links(1)
        stack = build_stack(P("adaptive|tcp_block"), links, host=host)
        assert isinstance(stack, AdaptiveCompressionDriver)

    def test_find_driver(self):
        _inet, host, links = self._links(2)
        stack = build_stack(P("compress|parallel:2"), links, host=host)
        assert find_driver(stack, ParallelStreamsDriver) is not None
        assert find_driver(stack, TlsDriver) is None

    def test_wrong_link_count_rejected(self):
        _inet, host, links = self._links(2)
        with pytest.raises(StackSpecError):
            build_stack(P("tcp_block"), links, host=host)
        with pytest.raises(StackSpecError):
            build_stack(P("parallel:4"), links, host=host)
