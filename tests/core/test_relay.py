"""Relay server, routed links, and the address reflector."""

import pytest

from repro.core.relay import (
    MAX_MSG,
    ReflectorServer,
    RelayClient,
    RelayError,
    RelayServer,
)
from repro.simnet import Internet
from repro.simnet.testing import drive


def _setup(n_clients=2, seed=1):
    inet = Internet(seed=seed)
    relay_host = inet.add_public_host("relay")
    relay = RelayServer(relay_host, 4000)
    relay.start()
    clients = []
    for i in range(n_clients):
        host = inet.add_public_host(f"c{i}")
        clients.append(RelayClient(host, f"node{i}", relay.addr))
    return inet, relay, clients


def test_register_and_open_link():
    inet, relay, (ca, cb) = _setup()
    result = {}

    def a():
        yield from ca.connect()
        while not cb.connected:
            yield inet.sim.timeout(0.01)
        link = yield from ca.open_link("node1")
        yield from link.send_all(b"over-the-relay")
        result["reply"] = yield from link.recv_exactly(2)

    def b():
        yield from cb.connect()
        link = yield from cb.accept_link()
        result["peer"] = link.peer
        data = yield from link.recv_exactly(14)
        result["data"] = data
        yield from link.send_all(b"ok")

    inet.sim.process(a())
    inet.sim.process(b())
    inet.sim.run(until=30)
    assert result == {"peer": "node0", "data": b"over-the-relay", "reply": b"ok"}


def test_large_transfer_is_chunked():
    inet, relay, (ca, cb) = _setup()
    payload = bytes(i % 251 for i in range(3 * MAX_MSG + 17))
    result = {}

    def a():
        yield from ca.connect()
        while not cb.connected:
            yield inet.sim.timeout(0.01)
        link = yield from ca.open_link("node1")
        yield from link.send_all(payload)

    def b():
        yield from cb.connect()
        link = yield from cb.accept_link()
        result["data"] = yield from link.recv_exactly(len(payload))

    inet.sim.process(a())
    inet.sim.process(b())
    inet.sim.run(until=60)
    assert result["data"] == payload


def test_unknown_destination_reported():
    inet, relay, (ca,) = _setup(n_clients=1)
    result = {}

    def a():
        yield from ca.connect()
        link = yield from ca.open_link("ghost")
        try:
            yield from link.recv(10)
        except RelayError as exc:
            result["error"] = str(exc)

    inet.sim.process(a())
    inet.sim.run(until=30)
    assert "unknown destination" in result["error"]


def test_duplicate_registration_rejected():
    inet, relay, (ca, cb) = _setup()
    cb.node_id = "node0"  # collide with ca
    result = {}

    def a():
        yield from ca.connect()
        result["a"] = "ok"

    def b():
        yield inet.sim.timeout(1.0)
        try:
            yield from cb.connect()
            result["b"] = "ok"
        except RelayError as exc:
            result["b"] = str(exc)

    inet.sim.process(a())
    inet.sim.process(b())
    inet.sim.run(until=30)
    assert result["a"] == "ok"
    assert "ok" != result["b"]


def test_multiple_channels_are_independent():
    inet, relay, (ca, cb) = _setup()
    result = {}

    def a():
        yield from ca.connect()
        while not cb.connected:
            yield inet.sim.timeout(0.01)
        l1 = yield from ca.open_link("node1")
        l2 = yield from ca.open_link("node1")
        yield from l2.send_all(b"second")
        yield from l1.send_all(b"first!")

    def b():
        yield from cb.connect()
        l1 = yield from cb.accept_link()
        l2 = yield from cb.accept_link()
        result["ch1"] = yield from l1.recv_exactly(6)
        result["ch2"] = yield from l2.recv_exactly(6)

    inet.sim.process(a())
    inet.sim.process(b())
    inet.sim.run(until=30)
    # Channels are accepted in open order; payloads stay on their channel
    # even though they were sent in the opposite order.
    assert result == {"ch1": b"first!", "ch2": b"second"}


def test_close_propagates_eof():
    inet, relay, (ca, cb) = _setup()
    result = {}

    def a():
        yield from ca.connect()
        while not cb.connected:
            yield inet.sim.timeout(0.01)
        link = yield from ca.open_link("node1")
        yield from link.send_all(b"bye")
        link.close()

    def b():
        yield from cb.connect()
        link = yield from cb.accept_link()
        result["data"] = yield from link.recv_exactly(3)
        result["eof"] = yield from link.recv(10)

    inet.sim.process(a())
    inet.sim.process(b())
    inet.sim.run(until=30)
    assert result == {"data": b"bye", "eof": b""}


def test_relay_counts_forwarded_traffic():
    inet, relay, (ca, cb) = _setup()

    def a():
        yield from ca.connect()
        while not cb.connected:
            yield inet.sim.timeout(0.01)
        link = yield from ca.open_link("node1")
        yield from link.send_all(b"x" * 1000)

    def b():
        yield from cb.connect()
        link = yield from cb.accept_link()
        yield from link.recv_exactly(1000)

    inet.sim.process(a())
    inet.sim.process(b())
    inet.sim.run(until=30)
    assert relay.forwarded_bytes >= 1000
    assert relay.forwarded_messages >= 1


def test_open_payload_tag_delivered():
    inet, relay, (ca, cb) = _setup()
    result = {}

    def a():
        yield from ca.connect()
        while not cb.connected:
            yield inet.sim.timeout(0.01)
        yield from ca.open_link("node1", payload=b"data:42")

    def b():
        yield from cb.connect()
        link = yield from cb.accept_link()
        result["tag"] = link.open_payload

    inet.sim.process(a())
    inet.sim.process(b())
    inet.sim.run(until=30)
    assert result["tag"] == b"data:42"


def test_reflector_reports_observed_address():
    inet = Internet(seed=3)
    public = inet.add_public_host("pub")
    reflector = ReflectorServer(public, 3478)
    reflector.start()
    client = inet.add_public_host("client")
    result = {}

    def proc():
        from repro.simnet.sockets import connect

        sock = yield from connect(client, reflector.addr, lport=7777)
        raw = yield from sock.recv_exactly(32)
        result["observed"] = raw.decode().strip()
        sock.close()

    drive(inet.sim, proc())
    assert result["observed"] == f"{client.ip}:7777"
    assert reflector.probes == 1
