"""Survivable sessions: SessionLink unit tests + ReplayBuffer properties.

These tests drive :class:`repro.core.session.SessionLink` over an
in-memory pipe link, so faults are injected with byte precision — no
network stack in the way.  The end-to-end recovery matrix (real
middleboxes, real faults) lives in ``tests/chaos/test_resume.py`` and
``tests/core/test_middlebox_matrix.py``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.links import Link
from repro.core.retry import RetryPolicy
from repro.core.session import (
    MAX_CHUNK,
    ReplayBuffer,
    SessionConfig,
    SessionError,
    SessionLink,
)
from repro.simnet.engine import Simulator
from repro.simnet.tcp import TcpError


class _PipeEnd(Link):
    """Half of an in-memory duplex pipe with injectable faults.

    ``break_both`` severs the pipe with a transport error (both ends see
    it); ``silent = True`` swallows outbound bytes without erroring —
    the shape of a middlebox eating packets.
    """

    method = "pipe"
    native_tcp = True

    def __init__(self, sim, delay: float = 0.05):
        self._simulator = sim
        self._delay = delay
        self.peer: "_PipeEnd" = None  # type: ignore[assignment]
        self._buf = bytearray()
        self._waiters: list = []
        self._broken = None
        self._eof = False
        self.silent = False

    @property
    def sim(self):
        return self._simulator

    def send_all(self, data: bytes):
        if self._broken is not None:
            raise self._broken
        yield self._simulator.timeout(self._delay)
        if self._broken is not None:
            raise self._broken
        if self.silent:
            return
        if self.peer._broken is not None or self.peer._eof:
            raise EOFError("pipe peer is gone")
        self.peer._buf.extend(data)
        self.peer._wake()

    def recv(self, maxbytes: int):
        while True:
            if self._buf:
                take = bytes(self._buf[:maxbytes])
                del self._buf[: len(take)]
                return take
            if self._broken is not None:
                raise self._broken
            if self._eof:
                return b""
            ev = self._simulator.event()
            self._waiters.append(ev)
            yield ev

    def _wake(self, exc=None) -> None:
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            if exc is not None:
                ev.fail(exc)
                ev.defused = True
            else:
                ev.succeed()

    def close(self) -> None:
        self._eof = True
        self._wake()
        if self.peer is not None and not self.peer._eof:
            self.peer._eof = True
            self.peer._wake()

    def abort(self) -> None:
        exc = EOFError("pipe aborted")
        self._broken = exc
        self._wake(exc)
        if self.peer is not None and self.peer._broken is None:
            self.peer._eof = True
            self.peer._wake()

    def break_both(self, exc=None) -> None:
        exc = exc or TcpError("pipe severed")
        for end in (self, self.peer):
            end._broken = exc
            end._wake(exc)


def _pipe_pair(sim) -> tuple[_PipeEnd, _PipeEnd]:
    a, b = _PipeEnd(sim), _PipeEnd(sim)
    a.peer, b.peer = b, a
    return a, b


_FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.05, multiplier=1.5, max_delay=0.2, jitter=0.0
)

_CONFIG = SessionConfig(ack_every=4096, max_buffer=1 << 16, heartbeat=0.5)


def _session_pair(sim, reconnect_works: bool = True):
    """An initiator/responder SessionLink pair over a fresh pipe.

    The initiator's reconnect callable builds a new pipe and hands the
    far end to the responder's ``_reattach`` — the same shape the
    factory layer provides over the real network.
    """
    a, b = _pipe_pair(sim)
    responder = SessionLink(b, sid=0xD0C, role=SessionLink.RESPONDER, config=_CONFIG)

    def reconnect(_session):
        if not reconnect_works:
            raise TcpError("no path to peer")
        na, nb = _pipe_pair(sim)
        sim.process(responder._reattach(nb), name="test-reattach")
        return na
        yield  # pragma: no cover - makes this a generator

    initiator = SessionLink(
        a,
        sid=0xD0C,
        role=SessionLink.INITIATOR,
        config=_CONFIG,
        reconnect=reconnect,
        retry_policy=_FAST_RETRY,
    )
    return initiator, responder


def _run_transfer(sim, tx, rx, payload: bytes, until: float = 120.0) -> dict:
    res: dict = {}

    def sender():
        yield from tx.send_all(payload)
        tx.close()

    def receiver():
        chunks = []
        while True:
            data = yield from rx.recv(65536)
            if not data:
                break
            chunks.append(data)
        res["got"] = b"".join(chunks)
        rx.close()

    sim.process(sender(), name="test-sender")
    sim.process(receiver(), name="test-receiver")
    sim.run(until=sim.now + until)
    return res


class TestSessionLink:
    def test_round_trip_and_graceful_close(self):
        sim = Simulator()
        ini, res = _session_pair(sim)
        payload = bytes(range(256)) * 300
        out = _run_transfer(sim, ini, res, payload)
        assert out["got"] == payload
        assert ini.state == "finished"
        assert res.state == "finished"
        assert ini.reconnects == 0

    def test_mid_stream_break_is_survived_and_replayed(self):
        sim = Simulator()
        ini, res = _session_pair(sim)
        payload = bytes(range(256)) * 2000  # ~512 KiB, many sim-seconds

        def breaker():
            yield sim.timeout(0.3)
            ini.raw.break_both()

        sim.process(breaker(), name="test-breaker")
        out = _run_transfer(sim, ini, res, payload)
        assert out["got"] == payload
        assert ini.state == "finished" and res.state == "finished"
        assert ini.reconnects == 1
        assert res.reconnects == 1
        assert ini.replayed_bytes > 0

    def test_repeated_breaks_each_resume(self):
        sim = Simulator()
        ini, res = _session_pair(sim)
        payload = bytes(range(256)) * 2000

        def breaker():
            for _ in range(3):
                yield sim.timeout(0.4)
                if ini.state == "active":
                    ini.raw.break_both()

        sim.process(breaker(), name="test-breaker")
        out = _run_transfer(sim, ini, res, payload)
        assert out["got"] == payload
        assert ini.reconnects >= 2

    def test_silent_stall_trips_the_watchdog(self):
        sim = Simulator()
        ini, res = _session_pair(sim)
        payload = bytes(range(256)) * 2000

        def stall():
            yield sim.timeout(0.3)
            raw = ini.raw
            raw.silent = True
            raw.peer.silent = True

        sim.process(stall(), name="test-staller")
        out = _run_transfer(sim, ini, res, payload)
        assert out["got"] == payload
        assert ini.reconnects >= 1  # the watchdog, not a transport error

    def test_break_during_close_still_finishes(self):
        # The FIN itself must survive recovery: sever the link after the
        # sender has closed but (possibly) before the FINACK round-trips.
        sim = Simulator()
        ini, res = _session_pair(sim)
        payload = b"tail" * 10_000

        def sender():
            yield from ini.send_all(payload)
            ini.close()
            ini.raw.break_both()

        got: dict = {}

        def receiver():
            chunks = []
            while True:
                data = yield from res.recv(65536)
                if not data:
                    break
                chunks.append(data)
            got["data"] = b"".join(chunks)
            res.close()

        sim.process(sender(), name="test-sender")
        sim.process(receiver(), name="test-receiver")
        sim.run(until=sim.now + 120)
        assert got["data"] == payload
        assert ini.state == "finished" and res.state == "finished"

    def test_resume_exhaustion_fails_the_session(self):
        sim = Simulator()
        ini, res = _session_pair(sim, reconnect_works=False)
        outcome: dict = {}

        def sender():
            try:
                yield from ini.send_all(b"x" * 200_000)
                outcome["sent"] = True
            except SessionError:
                outcome["send_error"] = True

        def receiver():
            try:
                while True:
                    data = yield from res.recv(65536)
                    if not data:
                        return
            except SessionError:
                outcome["recv_error"] = True

        def breaker():
            yield sim.timeout(0.1)
            ini.raw.break_both()

        sim.process(sender(), name="test-sender")
        sim.process(receiver(), name="test-receiver")
        sim.process(breaker(), name="test-breaker")
        sim.run(until=sim.now + 120)
        assert ini.state == "failed"
        assert outcome.get("send_error") or not outcome.get("sent")

    def test_send_after_close_raises(self):
        sim = Simulator()
        ini, res = _session_pair(sim)
        _run_transfer(sim, ini, res, b"done")
        with pytest.raises(SessionError):
            next(ini.send_all(b"more"))

    def test_backpressure_bounds_the_replay_buffer(self):
        sim = Simulator()
        ini, res = _session_pair(sim)
        payload = bytes(range(256)) * 2000
        high_water: list[int] = []

        def probe():
            while ini.state not in ("finished", "failed"):
                high_water.append(ini._replay.size)
                yield sim.timeout(0.05)

        sim.process(probe(), name="test-probe")
        out = _run_transfer(sim, ini, res, payload)
        assert out["got"] == payload
        assert max(high_water) <= _CONFIG.max_buffer + MAX_CHUNK


class TestReplayRetune:
    """Tuner-driven mid-stream resize of the replay-window bound."""

    def _quiet_pair(self, sim, max_buffer: int):
        config = SessionConfig(ack_every=2048, max_buffer=max_buffer,
                               heartbeat=30.0)
        a, b = _pipe_pair(sim)
        responder = SessionLink(
            b, sid=0xD0D, role=SessionLink.RESPONDER, config=config)
        def reconnect(_session):
            raise TcpError("no reconnect in this test")
            yield  # pragma: no cover - makes this a generator

        initiator = SessionLink(
            a, sid=0xD0D, role=SessionLink.INITIATOR, config=config,
            reconnect=reconnect, retry_policy=_FAST_RETRY)
        return initiator, responder, b

    def test_growth_wakes_a_blocked_sender(self):
        sim = Simulator()
        ini, res, res_pipe = self._quiet_pair(sim, max_buffer=8192)
        payload = bytes(range(256)) * 4096  # 1 MiB, >> the window

        def sender():
            yield from ini.send_all(payload)

        sim.process(sender(), name="test-sender")
        sim.run(until=0.3)
        # Silence the responder's acks: the window can only drain by
        # having its bound grown, never by acknowledgement.
        res_pipe.silent = True
        sim.run(until=1.0)
        stalled_at = ini._replay.end
        acked_at = ini._replay.start
        assert ini._replay.size >= 8192
        sim.run(until=2.0)
        assert ini._replay.end == stalled_at  # genuinely parked
        # Grow well past the stalled window (each admitted chunk may
        # overshoot the bound by up to MAX_CHUNK).
        ini.set_max_buffer(ini._replay.size + 4 * MAX_CHUNK)
        sim.run(until=3.0)
        # The grown bound released the sender without any ack arriving.
        assert ini._replay.start == acked_at
        assert ini._replay.end > stalled_at

    def test_shrink_keeps_buffered_bytes(self):
        sim = Simulator()
        ini, res, _ = self._quiet_pair(sim, max_buffer=1 << 16)
        payload = bytes(range(256)) * 1024

        def sender():
            yield from ini.send_all(payload)
            ini.close()

        sim.process(sender(), name="test-sender")
        sim.run(until=0.2)
        buffered = ini._replay.size
        ini.set_max_buffer(4096)
        assert ini.config.max_buffer == 4096
        assert ini._replay.size == buffered  # nothing dropped
        out: dict = {}

        def receiver():
            chunks = []
            while True:
                data = yield from res.recv(65536)
                if not data:
                    break
                chunks.append(data)
            out["got"] = b"".join(chunks)

        sim.process(receiver(), name="test-receiver")
        sim.run(until=60)
        assert out["got"] == payload

    def test_retune_is_advertised_to_the_peer(self):
        sim = Simulator()
        ini, res, _ = self._quiet_pair(sim, max_buffer=1 << 16)
        payload = bytes(range(256)) * 1024

        def sender():
            yield from ini.send_all(payload)
            # Retune mid-stream: the advisory RETUNE frame rides the
            # active session.
            ini.set_max_buffer(123456)
            yield from ini.send_all(payload)
            ini.close()

        def receiver():
            while True:
                data = yield from res.recv(65536)
                if not data:
                    return

        sim.process(sender(), name="test-sender")
        sim.process(receiver(), name="test-receiver")
        sim.run(until=60)
        assert res.peer_max_buffer == 123456

    def test_occupancy_signal_in_unit_range(self):
        sim = Simulator()
        ini, res, _ = self._quiet_pair(sim, max_buffer=8192)

        def sender():
            yield from ini.send_all(bytes(64 * 1024))

        sim.process(sender(), name="test-sender")
        sim.run(until=0.5)
        assert 0.0 <= ini.replay_occupancy <= 1.0

    def test_rejects_nonpositive(self):
        sim = Simulator()
        ini, _res, _ = self._quiet_pair(sim, max_buffer=8192)
        with pytest.raises(ValueError):
            ini.set_max_buffer(0)


class TestReplayBuffer:
    def test_basic_window(self):
        buf = ReplayBuffer()
        buf.append(b"hello")
        buf.append(b" world")
        assert (buf.start, buf.end, buf.size) == (0, 11, 11)
        assert buf.ack(5) == 5
        assert buf.unacked() == b" world"
        assert buf.ack(3) == 0  # stale ack: ignored
        assert buf.start == 5
        with pytest.raises(SessionError):
            buf.ack(12)

    @settings(max_examples=100, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.binary(min_size=0, max_size=64),
                st.floats(min_value=0.0, max_value=1.25),
            ),
            max_size=50,
        )
    )
    def test_bookkeeping_under_arbitrary_interleavings(self, ops):
        """The window is always the exact unacked suffix of the stream.

        Bytes are appended and acked in arbitrary interleavings (acks may
        be stale, current, or past the end); after every operation the
        buffer must equal ``stream[start:]``, ``end`` must equal the
        total bytes ever appended, and ``start`` must be monotone — the
        bookkeeping a resume relies on to replay exactly the gap.
        """
        buf = ReplayBuffer()
        stream = b""
        prev_start = 0
        for op in ops:
            if isinstance(op, bytes):
                buf.append(op)
                stream += op
            else:
                target = int(op * len(stream))
                if target > buf.end:
                    with pytest.raises(SessionError):
                        buf.ack(target)
                else:
                    before = buf.start
                    released = buf.ack(target)
                    assert released == max(0, target - before)
            assert buf.end == len(stream)
            assert buf.unacked() == stream[buf.start :]
            assert prev_start <= buf.start <= buf.end
            prev_start = buf.start
