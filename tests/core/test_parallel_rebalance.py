"""Rebalancing parallel streams: member death survivability.

ROADMAP session-layer item: when a member link of a parallel utilization
stack dies and cannot resume, its share is rebalanced over the surviving
members instead of failing the transfer.
"""

import pytest

from repro.core.links import TcpLink
from repro.core.utilization import (
    DriverError,
    RebalancingParallelDriver,
    StackSpec,
)
from repro.core.utilization.stack import build_stack
from repro.obs import MetricsRegistry
from repro import obs
from repro.simnet import connect, listen
from repro.simnet.testing import two_public_hosts


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = obs.set_registry(MetricsRegistry())
    yield
    obs.set_registry(previous)


def _linked_pair(inet, a, b, n, port=5000):
    sim = inet.sim
    out = {}

    def srv():
        listener = listen(b, port, backlog=n)
        links = []
        for _ in range(n):
            sock = yield from listener.accept()
            links.append(TcpLink(sock, "client_server"))
        out["b"] = links

    def cli():
        links = []
        for _ in range(n):
            sock = yield from connect(a, (b.ip, port))
            links.append(TcpLink(sock, "client_server"))
        out["a"] = links

    sim.process(srv())
    sim.process(cli())
    sim.run(until=sim.now + 30)
    return out["a"], out["b"]


def _exchange(inet, tx, rx, blocks, until=120, expect=None):
    sim = inet.sim
    received = []
    expect = len(blocks) if expect is None else expect

    def sender():
        for block in blocks:
            yield from tx.send_block(block)
        tx.close()

    def receiver():
        while True:
            try:
                block = yield from rx.recv_block()
            except EOFError:
                return
            received.append(block)
            if len(received) == expect:
                return

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=sim.now + until)
    return received


class TestRebalancingHealthy:
    @pytest.mark.parametrize("nstreams", [1, 2, 4])
    def test_blocks_round_trip_in_order(self, nstreams):
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, nstreams)
        blocks = [bytes([i]) * (100 * i + 1) for i in range(20)] + [b""]
        tx = RebalancingParallelDriver(la)
        rx = RebalancingParallelDriver(lb)
        assert _exchange(inet, tx, rx, blocks) == blocks
        assert tx.rebalanced_blocks == 0

    def test_large_blocks(self):
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, 3)
        blocks = [bytes(range(256)) * 400 for _ in range(8)]
        tx = RebalancingParallelDriver(la)
        rx = RebalancingParallelDriver(lb)
        assert _exchange(inet, tx, rx, blocks) == blocks

    def test_empty_links_rejected(self):
        with pytest.raises(DriverError):
            RebalancingParallelDriver([])


class TestMemberDeath:
    def test_dead_member_rebalanced_onto_survivors(self):
        """A member that dies before use never carries a block; the
        transfer completes entirely over the survivors."""
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, 3)
        la[1].abort()
        blocks = [bytes([i]) * 512 for i in range(12)]
        tx = RebalancingParallelDriver(la)
        rx = RebalancingParallelDriver(lb)
        assert _exchange(inet, tx, rx, blocks) == blocks
        assert tx.alive_members == 2

    def test_mid_transfer_death_retransmits_pending(self):
        """Kill one member mid-transfer: its unacknowledged blocks are
        retransmitted over survivors and arrive exactly once, in order."""
        inet, a, b = two_public_hosts()
        sim = inet.sim
        la, lb = _linked_pair(inet, a, b, 3)
        blocks = [bytes([i]) * 2048 for i in range(30)]
        tx = RebalancingParallelDriver(la)
        rx = RebalancingParallelDriver(lb)
        received = []

        def sender():
            for i, block in enumerate(blocks):
                if i == 10:
                    # abort both ends so in-flight member data is truly gone
                    la[2].abort()
                    lb[2].abort()
                yield from tx.send_block(block)
            tx.close()

        def receiver():
            while len(received) < len(blocks):
                received.append((yield from rx.recv_block()))

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=sim.now + 120)
        assert received == blocks
        assert tx.alive_members == 2

    def test_all_members_dead_fails_sender(self):
        inet, a, b = two_public_hosts()
        sim = inet.sim
        la, lb = _linked_pair(inet, a, b, 2)
        for link in la:
            link.abort()
        tx = RebalancingParallelDriver(la)
        outcome = {}

        def sender():
            try:
                for _ in range(5):
                    yield from tx.send_block(b"x" * 100)
                    # death is detected asynchronously by the writer
                    # processes; give them a turn
                    yield sim.timeout(0.01)
                outcome["result"] = "sent"
            except DriverError:
                outcome["result"] = "failed"

        sim.process(sender())
        sim.run(until=sim.now + 30)
        assert outcome["result"] == "failed"

    def test_death_metrics(self):
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, 2)
        la[0].abort()
        blocks = [b"m" * 256] * 6
        tx = RebalancingParallelDriver(la)
        rx = RebalancingParallelDriver(lb)
        assert _exchange(inet, tx, rx, blocks) == blocks
        deaths = obs.metrics().counter("parallel.member_deaths_total").value
        assert deaths == 1


class TestSpecIntegration:
    def test_rebalance_param_selects_driver(self):
        spec = StackSpec.parse("parallel:3:rebalance=1")
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, 3)
        tx = build_stack(spec, la)
        rx = build_stack(spec, lb)
        assert isinstance(tx, RebalancingParallelDriver)
        blocks = [b"spec" * 100] * 4
        assert _exchange(inet, tx, rx, blocks) == blocks

    def test_default_is_deterministic_striping(self):
        from repro.core.utilization import ParallelStreamsDriver

        spec = StackSpec.parse("parallel:2")
        inet, a, b = two_public_hosts()
        la, lb = _linked_pair(inet, a, b, 2)
        assert isinstance(build_stack(spec, la), ParallelStreamsDriver)


class TestSessionMemberDeath:
    def test_unresumable_session_member_rebalances(self):
        """End-to-end through the factory: parallel-over-sessions where one
        member session fails permanently mid-transfer."""
        from repro.core.factory import BrokeredConnectionFactory
        from repro.core.scenarios import GridScenario
        from repro.core.session import SessionLink

        sc = GridScenario(seed=23)
        sc.add_site("A", "firewall")
        sc.add_site("B", "firewall")
        node_a = sc.add_node("A", "a")
        node_b = sc.add_node("B", "b")
        sim = sc.sim
        spec = StackSpec.parse("parallel:2:rebalance=1|session")
        total = 40
        expected = b"".join(bytes([i % 256]) * 4096 for i in range(total))
        res = {}

        def run_a():
            yield from node_a.start()
            while not node_b.relay_client.connected:
                yield sim.timeout(0.05)
            service = yield from node_a.open_service_link("b")
            factory = BrokeredConnectionFactory(node_a)
            channel = yield from factory.connect(service, node_b.info, spec=spec)
            res["tx"] = channel
            for i in range(total):
                yield from channel.write(bytes([i % 256]) * 4096)
                yield from channel.flush()
                if i == 15:
                    # permanently fail one member session: abort() is the
                    # "cannot resume" terminal state, so the rebalance
                    # path (not session recovery) must save the transfer
                    member = channel.driver.links[1]
                    assert isinstance(member, SessionLink)
                    member.abort()
                yield sim.timeout(0.01)

        def run_b():
            yield from node_b.start()
            _peer, service = yield from node_b.accept_service_link()
            factory = BrokeredConnectionFactory(node_b)
            channel = yield from factory.accept(service)
            res["data"] = yield from channel.read_exactly(len(expected))

        sim.process(run_a())
        sim.process(run_b())
        sc.run(until=300)
        assert res.get("data") == expected
        assert res["tx"].driver.alive_members == 1
