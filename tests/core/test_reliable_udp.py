"""The rel driver: reliable FIFO blocks over UDP (go-back-N)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utilization import BlockChannel, DriverError, ReliableUdpDriver
from repro.simnet.testing import two_public_hosts, wan_pair


def _driver_pair(inet, a, b, **kwargs):
    sock_a = a.udp.bind(7000)
    sock_b = b.udp.bind(7001)
    da = ReliableUdpDriver(sock_a, (b.ip, 7001), **kwargs)
    db = ReliableUdpDriver(sock_b, (a.ip, 7000), **kwargs)
    return da, db


def _exchange(inet, tx, rx, blocks, until=300):
    received = []

    def sender():
        for block in blocks:
            yield from tx.send_block(block)

    def receiver():
        for _ in blocks:
            received.append((yield from rx.recv_block()))

    inet.sim.process(sender())
    inet.sim.process(receiver())
    inet.sim.run(until=inet.sim.now + until)
    return received


class TestLossless:
    def test_blocks_round_trip(self):
        inet, a, b = two_public_hosts(seed=1)
        tx, rx = _driver_pair(inet, a, b)
        blocks = [b"alpha", b"", b"gamma" * 2000]
        assert _exchange(inet, tx, rx, blocks) == blocks

    def test_full_duplex(self):
        inet, a, b = two_public_hosts(seed=2)
        da, db = _driver_pair(inet, a, b)
        res = {}

        def side_a():
            yield from da.send_block(b"from-a")
            res["a_got"] = yield from da.recv_block()

        def side_b():
            res["b_got"] = yield from db.recv_block()
            yield from db.send_block(b"from-b")

        inet.sim.process(side_a())
        inet.sim.process(side_b())
        inet.sim.run(until=inet.sim.now + 60)
        assert res == {"b_got": b"from-a", "a_got": b"from-b"}

    def test_block_larger_than_window(self):
        inet, a, b = two_public_hosts(seed=3)
        tx, rx = _driver_pair(inet, a, b, window=4)
        block = bytes(range(256)) * 1000  # ~175 datagrams >> window 4
        assert _exchange(inet, tx, rx, [block]) == [block]

    def test_eof_after_close(self):
        inet, a, b = two_public_hosts(seed=4)
        tx, rx = _driver_pair(inet, a, b)
        res = {}

        def sender():
            yield from tx.send_block(b"last")
            tx.close()

        def receiver():
            res["block"] = yield from rx.recv_block()
            try:
                yield from rx.recv_block()
            except EOFError:
                res["eof"] = True

        inet.sim.process(sender())
        inet.sim.process(receiver())
        inet.sim.run(until=inet.sim.now + 60)
        assert res == {"block": b"last", "eof": True}

    def test_block_channel_on_top(self):
        inet, a, b = two_public_hosts(seed=5)
        tx, rx = _driver_pair(inet, a, b)
        cha, chb = BlockChannel(tx, 8192), BlockChannel(rx, 8192)
        res = {}

        def sender():
            yield from cha.send_message(b"messages over rel_udp" * 100)

        def receiver():
            res["msg"] = yield from chb.recv_message()

        inet.sim.process(sender())
        inet.sim.process(receiver())
        inet.sim.run(until=inet.sim.now + 60)
        assert res["msg"] == b"messages over rel_udp" * 100


class TestUnderLoss:
    def test_delivery_with_heavy_loss(self):
        inet, a, b = wan_pair(capacity=5e6, one_way_delay=0.005, loss=0.1, seed=11)
        tx, rx = _driver_pair(inet, a, b, rto=0.05)
        blocks = [bytes([i]) * 5000 for i in range(20)]
        got = _exchange(inet, tx, rx, blocks, until=600)
        assert got == blocks
        assert tx.retransmissions > 0

    @settings(max_examples=8, deadline=None)
    @given(
        payload=st.binary(min_size=0, max_size=20_000),
        loss=st.sampled_from([0.0, 0.05, 0.2]),
        seed=st.integers(0, 500),
    )
    def test_stream_integrity_property(self, payload, loss, seed):
        inet, a, b = wan_pair(capacity=5e6, one_way_delay=0.003, loss=loss, seed=seed)
        tx, rx = _driver_pair(inet, a, b, rto=0.03)
        got = _exchange(inet, tx, rx, [payload], until=600)
        assert got == [payload]

    def test_eof_after_receiver_closed_is_dropped_not_fatal(self):
        # The receiver reads everything and closes its socket; the
        # sender's EOF marker then retransmits into the void.  Once only
        # the EOF is outstanding, retry exhaustion must count a drop and
        # finish the close — not mark a completed transfer as failed or
        # raise through the engine.
        inet, a, b = two_public_hosts(seed=7)
        tx, rx = _driver_pair(inet, a, b, rto=0.02, max_retries=5)
        res = {}

        def sender():
            yield from tx.send_block(b"payload")
            yield inet.sim.timeout(1.0)  # let the receiver read and vanish
            tx.close()

        def receiver():
            res["block"] = yield from rx.recv_block()
            rx.abort()  # gone before the sender's EOF arrives

        inet.sim.process(sender())
        inet.sim.process(receiver())
        inet.sim.run(until=inet.sim.now + 60)
        assert res["block"] == b"payload"
        assert tx.eof_drops == 1
        assert tx._error is None
        assert tx._closed and tx.sock.closed
        assert inet.sim.pending == 0  # shutdown lingers must all drain

    def test_eof_drop_requires_all_data_acked(self):
        # If data is still unacked alongside the EOF, exhaustion is a
        # real delivery failure and must stay one.
        inet, a, b = two_public_hosts(seed=8)
        sock_a = a.udp.bind(7000)
        tx = ReliableUdpDriver(sock_a, (b.ip, 7999), rto=0.02, max_retries=5)

        def sender():
            yield from tx.send_block(b"x")
            tx.close()

        inet.sim.process(sender())
        inet.sim.run(until=inet.sim.now + 60)
        assert tx.eof_drops == 0
        assert isinstance(tx._error, DriverError)
        assert tx._closed and tx.sock.closed

    def test_peer_unreachable_raises(self):
        inet, a, b = two_public_hosts(seed=6)
        sock_a = a.udp.bind(7000)
        # Peer port is not bound: every datagram vanishes.
        tx = ReliableUdpDriver(sock_a, (b.ip, 7999), rto=0.02, max_retries=5)
        res = {}

        def sender():
            try:
                yield from tx.send_block(b"x" * 200_000)
                # Window fills; retries exhaust while waiting.
            except Exception as exc:
                res["error"] = type(exc).__name__

        inet.sim.process(sender())
        inet.sim.run(until=inet.sim.now + 60)
        assert res["error"] == "DriverError"
