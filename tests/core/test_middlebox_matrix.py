"""Middlebox × establishment-method matrix (paper Table 1 / Figure 4).

Each cell forces a *single* method between an open-site initiator and a
responder behind one of the four middlebox kinds, end-to-end through the
real simulated network — firewalls dropping unsolicited SYNs, NATs
translating (or mistranslating) them, gateway SOCKS proxies.  The
expected outcomes are the paper's:

* client/server never reaches a middleboxed responder;
* TCP splicing traverses stateful firewalls and well-behaved cone NATs,
  but not the "broken" NAT (it resets crossing SYNs) nor a symmetric NAT
  (unpredictable mappings);
* the SOCKS fall-back works exactly where a gateway proxy exists;
* routed messages work everywhere — the universal fall-back.

The broken-NAT × splicing cell is the paper's motivating divergence: the
decision tree *predicts* splicing is feasible (the NAT looks
predictable), and only the actual attempt uncovers the failure — which
is why brokering retries down the method list instead of trusting the
prediction.
"""

import random

import pytest

from repro.core import EstablishmentError, choose_method, feasible_methods
from repro.core.factory import BrokeredConnectionFactory
from repro.core.scenarios import GridScenario
from repro.core.utilization.spec import StackSpec

KINDS = ["firewall", "cone_nat", "broken_nat", "symmetric_nat"]
METHODS = ["client_server", "splicing", "socks_proxy", "routed"]

#: responder kind -> methods that must succeed (everything else must fail)
EXPECTED_OK = {
    "firewall": {"splicing", "routed"},
    "cone_nat": {"splicing", "routed"},
    "broken_nat": {"socks_proxy", "routed"},
    "symmetric_nat": {"socks_proxy", "routed"},
}


def build(kind: str) -> GridScenario:
    scn = GridScenario(seed=11)
    scn.add_site("A", "open")
    scn.add_site("B", kind)
    scn.add_node("A", "ini")
    scn.add_node("B", "res")
    return scn


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("method", METHODS)
def test_matrix_cell(kind, method):
    scn = build(kind)
    if method in EXPECTED_OK[kind]:
        res = scn.establish_pair("ini", "res", methods=[method], until=120)
        assert res["method"] == method
        assert res["echo"] == b"ping"
    else:
        with pytest.raises((EstablishmentError, RuntimeError)):
            scn.establish_pair("ini", "res", methods=[method], until=120)


@pytest.mark.parametrize("kind", KINDS)
def test_unrestricted_negotiation_lands_on_a_working_method(kind):
    """With the full method list the broker always converges (Figure 4)."""
    scn = build(kind)
    res = scn.establish_pair("ini", "res", until=120)
    assert res["method"] in EXPECTED_OK[kind]
    assert res["echo"] == b"ping"


#: every cell where establishment works must also support mid-stream
#: session resumption: resume re-runs the *same* establishment method, so
#: the resumable matrix is exactly the establishable one.
RESUME_CELLS = [(k, m) for k in KINDS for m in sorted(EXPECTED_OK[k])]


@pytest.mark.parametrize("kind,method", RESUME_CELLS)
def test_session_resumes_exactly_where_establishment_works(kind, method):
    """Matrix extension: kill the physical link mid-transfer in each
    working cell; a sessioned channel must reconnect (with the same
    method) and deliver the stream byte-identically."""
    scn = build(kind)
    ini, res = scn.nodes["ini"], scn.nodes["res"]
    spec = StackSpec.tcp().with_session()
    payload = random.Random(f"resume:{kind}:{method}").randbytes(1 << 20)
    received = bytearray()
    state: dict = {}

    def run_initiator():
        yield from ini.start()
        yield from res.relay_client.wait_connected(timeout=60)
        factory = BrokeredConnectionFactory(ini)
        service = yield from ini.open_service_link("res")
        channel = yield from factory.connect(
            service, res.info, spec=spec, methods=[method]
        )
        service.close()
        for off in range(0, len(payload), 32768):
            yield from channel.write(payload[off : off + 32768])
        yield from channel.flush()
        channel.close()
        state["sent"] = True

    def run_responder():
        yield from res.start()
        factory = BrokeredConnectionFactory(res)
        _peer, service = yield from res.accept_service_link()
        channel = yield from factory.accept(service)
        service.close()
        while True:
            data = yield from channel.read(65536)
            if not data:
                break
            received.extend(data)
        channel.close()

    def killer():
        # Once a quarter of the stream has landed, sever the physical
        # link out from under the session.
        while len(received) < len(payload) // 4:
            yield scn.sim.timeout(0.05)
        session = next(iter(ini.sessions._sessions.values()), None)
        assert session is not None, "no live session to kill"
        state["session"] = session
        session.raw.abort()

    scn.sim.process(run_initiator(), name="resume-initiator")
    scn.sim.process(run_responder(), name="resume-responder")
    scn.sim.process(killer(), name="resume-killer")
    scn.sim.run(until=scn.sim.now + 600)
    assert state.get("sent"), "initiator never finished"
    assert bytes(received) == payload
    assert state["session"].reconnects >= 1
    assert state["session"].state == "finished"


#: every establishable cell must also carry a muxed stack: the mux layer
#: rides whatever carrier brokering lands on, so the muxed matrix is
#: exactly the establishable one.
MUX_CELLS = [(k, m) for k in KINDS for m in sorted(EXPECTED_OK[k])]


@pytest.mark.parametrize("kind,method", MUX_CELLS)
def test_mux_works_exactly_where_establishment_works(kind, method):
    """Matrix extension: each working cell, with the data channel built
    as ``tcp_block|mux`` through the factory.  The logical channel must
    mirror the carrier's Table-1 metadata and round-trip a payload."""
    scn = build(kind)
    ini, res = scn.nodes["ini"], scn.nodes["res"]
    spec = StackSpec.parse("tcp_block|mux")
    payload = random.Random(f"mux:{kind}:{method}").randbytes(128 * 1024)
    state: dict = {}

    def run_initiator():
        yield from ini.start()
        yield from res.relay_client.wait_connected(timeout=60)
        factory = BrokeredConnectionFactory(ini)
        service = yield from ini.open_service_link("res")
        channel = yield from factory.connect(
            service, res.info, spec=spec, methods=[method]
        )
        service.close()
        state["method"] = channel.driver.link.method
        yield from channel.send_message(payload)
        state["echo"] = yield from channel.recv_message()
        channel.close()

    def run_responder():
        yield from res.start()
        factory = BrokeredConnectionFactory(res)
        _peer, service = yield from res.accept_service_link()
        channel = yield from factory.accept(service)
        service.close()
        msg = yield from channel.recv_message()
        yield from channel.send_message(msg)
        channel.close()

    scn.sim.process(run_initiator(), name="mux-initiator")
    scn.sim.process(run_responder(), name="mux-responder")
    scn.sim.run(until=scn.sim.now + 300)
    assert state.get("echo") == payload
    assert state["method"] == method


@pytest.mark.parametrize("kind", KINDS)
def test_successful_methods_were_predicted_feasible(kind):
    """Working cells are a subset of the decision tree's predictions.

    The converse is deliberately untrue: broken_nat × splicing is
    predicted feasible yet fails behaviourally (the paper's case for
    attempt-and-fall-back over static selection).
    """
    scn = build(kind)
    ini, res = scn.nodes["ini"].info, scn.nodes["res"].info
    predicted = set(feasible_methods(ini, res))
    assert EXPECTED_OK[kind] <= predicted
    if kind == "broken_nat":
        assert "splicing" in predicted  # looks fine on paper...
        # ...but EXPECTED_OK says it is not: the attempt is the oracle.
        assert "splicing" not in EXPECTED_OK[kind]
    assert choose_method(ini, res) in predicted
