"""Figure 4 decision tree and Table 1 properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ALL_METHODS,
    CLIENT_SERVER,
    PRECEDENCE,
    ROUTED,
    SOCKS_PROXY,
    SPLICING,
    EndpointInfo,
    EstablishmentError,
    choose_method,
    feasible_methods,
    table1_matrix,
)


def info(**kwargs) -> EndpointInfo:
    base = dict(node_id="n", local_ip="203.0.1.10")
    base.update(kwargs)
    return EndpointInfo(**base)


OPEN = info()
FIREWALLED = info(behind_firewall=True)
CONE = info(behind_nat=True, nat_predictable=True)
SYMMETRIC = info(
    behind_nat=True, nat_predictable=False, socks_proxy=("198.51.1.2", 1080)
)
SEVERE = info(
    behind_firewall=True, outbound_blocked=True, socks_proxy=("198.51.1.2", 1080)
)


class TestFigure4:
    """The decision-tree outcomes the paper's Figure 4 prescribes."""

    @pytest.mark.parametrize(
        "initiator,responder,expected",
        [
            (OPEN, OPEN, CLIENT_SERVER),
            (FIREWALLED, OPEN, CLIENT_SERVER),  # responder accepts inbound
            (OPEN, FIREWALLED, SPLICING),
            (FIREWALLED, FIREWALLED, SPLICING),
            (OPEN, CONE, SPLICING),
            (CONE, CONE, SPLICING),
            (OPEN, SYMMETRIC, SOCKS_PROXY),
            (SYMMETRIC, FIREWALLED, SPLICING),  # symmetric NAT initiator can't splice
        ],
    )
    def test_choices(self, initiator, responder, expected):
        if (initiator, responder) == (SYMMETRIC, FIREWALLED):
            # can_splice is False for the symmetric side, so splicing is out;
            # responder firewalled w/o proxy -> initiator's proxy can't help
            # (responder unreachable) -> routed
            assert choose_method(initiator, responder) == ROUTED
        else:
            assert choose_method(initiator, responder) == expected

    def test_bootstrap_restricts_to_bootstrap_methods(self):
        # bootstrap + responder accepting: client/server is fine
        assert choose_method(OPEN, OPEN, bootstrap=True) == CLIENT_SERVER
        # bootstrap + firewalled responder: splicing needs brokering -> routed
        assert choose_method(OPEN, FIREWALLED, bootstrap=True) == ROUTED

    def test_severe_initiator(self):
        # outbound blocked: no splicing; client/server via proxy still works
        # toward an accepting responder
        assert choose_method(SEVERE, OPEN) == CLIENT_SERVER
        # toward a firewalled responder: only routed remains
        assert choose_method(SEVERE, FIREWALLED) == ROUTED

    def test_feasible_order_follows_precedence(self):
        methods = feasible_methods(OPEN, OPEN)
        assert methods == [m for m in PRECEDENCE if m in methods]

    def test_routed_always_feasible(self):
        for a in (OPEN, FIREWALLED, CONE, SYMMETRIC, SEVERE):
            for b in (OPEN, FIREWALLED, CONE, SYMMETRIC, SEVERE):
                assert ROUTED in feasible_methods(a, b)

    @given(
        st.booleans(), st.booleans(), st.sampled_from([None, True, False]),
        st.booleans(), st.booleans(), st.sampled_from([None, True, False]),
        st.booleans(), st.booleans(), st.booleans(),
    )
    def test_total_function(
        self, fw_a, nat_a, pred_a, fw_b, nat_b, pred_b, proxy_a, proxy_b, bootstrap
    ):
        """Every topology combination yields exactly one best method."""
        a = info(
            behind_firewall=fw_a,
            behind_nat=nat_a,
            nat_predictable=pred_a,
            socks_proxy=("1.2.3.4", 1080) if proxy_a else None,
        )
        b = info(
            behind_firewall=fw_b,
            behind_nat=nat_b,
            nat_predictable=pred_b,
            socks_proxy=("1.2.3.5", 1080) if proxy_b else None,
        )
        method = choose_method(a, b, bootstrap=bootstrap)
        assert method in PRECEDENCE
        if bootstrap:
            assert ALL_METHODS[method].for_bootstrap


class TestTable1:
    def test_matrix_matches_paper(self):
        matrix = table1_matrix()
        # Row order is the paper's column order.
        assert list(matrix) == [CLIENT_SERVER, SPLICING, SOCKS_PROXY, ROUTED]
        # Crosses firewalls: no yes yes yes
        assert [matrix[m]["crosses_firewalls"] for m in matrix] == [
            False, True, True, True,
        ]
        # NAT support: client partial yes yes
        assert [matrix[m]["nat_support"] for m in matrix] == [
            "client", "partial", "yes", "yes",
        ]
        # For bootstrap: yes no no yes
        assert [matrix[m]["for_bootstrap"] for m in matrix] == [
            True, False, False, True,
        ]
        # Native TCP: yes yes yes no
        assert [matrix[m]["native_tcp"] for m in matrix] == [True, True, True, False]
        # Relayed: no no yes yes
        assert [matrix[m]["relayed"] for m in matrix] == [False, False, True, True]
        # Needs brokering: no yes yes no
        assert [matrix[m]["needs_brokering"] for m in matrix] == [
            False, True, True, False,
        ]

    def test_no_feasible_method_raises(self):
        # Construct an impossible ask by restricting to an empty method list
        # via monkeypatched feasibility: simplest is bootstrap with nothing
        # available -- routed is always feasible, so force the error path
        # directly instead.
        with pytest.raises(EstablishmentError):
            from repro.core.establishment import decision

            original = decision._FEASIBILITY
            try:
                decision._FEASIBILITY = {
                    name: (lambda *a: False) for name in original
                }
                choose_method(OPEN, OPEN)
            finally:
                decision._FEASIBILITY = original


class TestEndpointInfoWire:
    @given(
        st.booleans(), st.booleans(), st.sampled_from([None, True, False]),
        st.booleans(), st.booleans(),
        st.lists(st.integers(1, 65535), max_size=4),
    )
    def test_encode_decode_round_trip(self, fw, nat, pred, proxy, blocked, ports):
        original = info(
            behind_firewall=fw,
            behind_nat=nat,
            nat_predictable=pred,
            socks_proxy=("9.9.9.9", 999) if proxy else None,
            outbound_blocked=blocked,
            open_ports=tuple(ports),
        )
        decoded = EndpointInfo.decode(original.encode())
        assert decoded == original
