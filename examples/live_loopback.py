#!/usr/bin/env python3
"""The live backend: the same protocol suite over real TCP sockets.

Runs on loopback: a live relay, routed links, and a full driver stack —
TLS over compression over 4 parallel real TCP connections — moving a
payload and reporting wall-clock throughput.

Run:  python examples/live_loopback.py
"""

import asyncio
import time

from repro.livenet import (
    AsyncBlockChannel,
    AsyncCompressionDriver,
    AsyncParallelStreamsDriver,
    AsyncTcpBlockDriver,
    AsyncTlsDriver,
    LiveRelayClient,
    LiveRelayServer,
    live_connect,
    live_listen,
)
from repro.security import CertificateAuthority, Identity
from repro.workloads import payload_with_ratio


async def demo_relay() -> None:
    print("== live relay (routed messages over real TCP) ==")
    relay = await LiveRelayServer().start()
    node_a = await LiveRelayClient("node-a", relay.addr).connect()
    node_b = await LiveRelayClient("node-b", relay.addr).connect()

    async def b_side():
        link = await node_b.accept_link()
        data = await link.recv_exactly(21)
        await link.send_all(b"ack")
        return data

    link = await node_a.open_link("node-b", payload=b"service")
    await link.send_all(b"routed through a real")
    data, ack = await asyncio.gather(b_side(), link.recv_exactly(3))
    print(f"   b received {data!r}, a got {ack!r}")
    node_a.close(); node_b.close(); relay.close()
    await asyncio.sleep(0.05)


async def demo_stack() -> None:
    print("== tls | compress | parallel:4 over loopback TCP ==")
    ca = CertificateAuthority("live-ca")
    key, cert = ca.issue_identity("live-server")

    listener = await live_listen()
    n = 4
    client_socks, server_socks = [], []
    for _ in range(n):
        c, s = await asyncio.gather(live_connect(listener.addr), listener.accept())
        client_socks.append(c)
        server_socks.append(s)
    listener.close()

    tx_tls = AsyncTlsDriver(
        AsyncCompressionDriver(AsyncParallelStreamsDriver(client_socks))
    )
    rx_tls = AsyncTlsDriver(
        AsyncCompressionDriver(AsyncParallelStreamsDriver(server_socks))
    )
    await asyncio.gather(
        tx_tls.handshake_client([ca.certificate]),
        rx_tls.handshake_server(Identity(key, [cert])),
    )
    print(f"   authenticated: {tx_tls.peer_subject}")

    tx = AsyncBlockChannel(tx_tls)
    rx = AsyncBlockChannel(rx_tls)
    payload = payload_with_ratio(4 << 20, 3.0, seed=2)

    async def sender():
        await tx.send_message(payload)

    async def receiver():
        return await rx.recv_message()

    t0 = time.perf_counter()
    _, got = await asyncio.gather(sender(), receiver())
    dt = time.perf_counter() - t0
    assert got == payload
    print(f"   {len(payload) / 1e6:.1f} MB moved intact in {dt:.2f}s "
          f"({len(payload) / dt / 1e6:.0f} MB/s wall-clock on loopback)")
    tx.close()


async def main() -> None:
    await demo_relay()
    await demo_stack()


if __name__ == "__main__":
    asyncio.run(main())
