#!/usr/bin/env python3
"""Multi-site connectivity: the paper's qualitative evaluation (§6).

"We deployed NetIbis on multiple sites ... Most of the sites are protected
by stateful firewalls, and some use NAT and private IP addresses.  In all
cases, we were able to establish a connection from every node to every
other node without opening ports in firewalls."

This example builds one site of every kind and prints the all-pairs matrix
of the establishment method the decision tree + fall-back actually used.

Run:  python examples/multisite_grid.py
"""

from repro.core.scenarios import GridScenario

SITES = [
    ("amsterdam", "open"),
    ("rennes", "firewall"),
    ("berlin", "cone_nat"),
    ("poznan", "broken_nat"),
    ("siegen", "symmetric_nat"),
]

ABBREV = {
    "client_server": "client/srv",
    "splicing": "splicing",
    "socks_proxy": "socks",
    "routed": "routed",
}


def main() -> None:
    names = [name for name, _kind in SITES]
    print("All-pairs data-link establishment (row = initiator):\n")
    header = f"{'':12s}" + "".join(f"{n:>12s}" for n in names)
    print(header)

    for a_name, a_kind in SITES:
        row = [f"{a_name:12s}"]
        for b_name, b_kind in SITES:
            if a_name == b_name:
                row.append(f"{'-':>12s}")
                continue
            scenario = GridScenario(seed=hash((a_name, b_name)) & 0xFFFF)
            scenario.add_site(a_name, a_kind)
            scenario.add_site(b_name, b_kind)
            scenario.add_node(a_name, "a")
            scenario.add_node(b_name, "b")
            result = scenario.establish_pair("a", "b", until=400)
            assert result["echo"] == b"ping"
            row.append(f"{ABBREV[result['method']]:>12s}")
        print("".join(row))

    print(
        "\nEvery pair connected without opening a single firewall port.\n"
        "Sites: open | firewall | predictable NAT | broken NAT (+socks) | "
        "symmetric NAT (+socks)"
    )


if __name__ == "__main__":
    main()
