#!/usr/bin/env python3
"""§8 realized: automated selection of communication methods.

"This combination will allow the automated selection of the proper
communication methods for given WAN settings.  Also, parameter adaptation,
like selection of the optimal number of parallel TCP streams or the
dynamic enabling or disabling of compression will then become possible."

For two very different WANs, a path monitor probes the link (NWS-style),
`select_spec` derives a driver stack, and the transfer runs with it —
compared against naive plain TCP.  The probe results are read back from
the observability registry (the monitor publishes them as ``path.*``
gauges) rather than recomputed here.

Run:  python examples/auto_selection.py [--trace out.jsonl]

With ``--trace``, metrics and trace events (establishment attempts,
driver byte counters, message-size histograms) are exported as JSON
lines; summarize them with ``python -m repro.obs.report out.jsonl``.
"""

import argparse

from repro import StackSpec, obs
from repro.core import PathMonitor, select_spec
from repro.core.scenarios import GridScenario
from repro.simnet.cpu import CpuModel
from repro.workloads import payload_with_ratio

WANS = [
    ("slow lossy WAN (1.6 MB/s, 30 ms)", 1.6e6, 0.015, 0.0025, 3.6e6),
    ("fat WAN (9 MB/s, 43 ms)", 9e6, 0.0215, 0.0005, 5.2e6),
]
TOTAL = 6_000_000


def run_wan(label, capacity, owd, loss, compress_rate):
    def build():
        sc = GridScenario(seed=37)
        queue = max(65536, int(capacity * 2 * owd))
        for i, name in enumerate(("left", "right")):
            sc.add_site(
                name, "firewall", access_delay=owd / 2,
                access_bandwidth=capacity,
                access_loss=loss if i == 0 else 0.0, queue_bytes=queue,
            )
        src = sc.add_node("left", "src")
        dst = sc.add_node("right", "dst")
        for node in (src, dst):
            CpuModel(
                sc.sim, rates={"compress": compress_rate, "decompress": 25e6}
            ).attach(node.host)
        return sc, src, dst

    # Phase 1: probe and select.
    sc, src, dst = build()
    chosen = {}

    def prober():
        yield from src.start()
        while not dst.relay_client.connected:
            yield sc.sim.timeout(0.05)
        service = yield from src.open_service_link("dst")
        monitor = PathMonitor(src)
        estimate = yield from monitor.estimate(service, dst.info)
        yield from monitor.finish(service)
        chosen["spec"] = select_spec(
            estimate, compress_rate=compress_rate, payload_ratio=3.5
        )

    def server():
        yield from dst.start()
        _p, service = yield from dst.accept_service_link()
        yield from PathMonitor(dst).serve(service)

    sc.sim.process(prober())
    sc.sim.process(server())
    sc.run(until=600)
    spec = chosen["spec"]

    # The monitor published its measurements as path.* gauges.
    reg = obs.get_registry()
    rtt = reg.gauge("path.rtt_seconds", peer="dst").value
    single = reg.gauge("path.single_stream_bps", peer="dst").value
    cap = reg.gauge("path.capacity_bps", peer="dst").value

    # Phase 2: transfer with the selected spec vs naive plain TCP.
    payload = payload_with_ratio(1 << 20, 3.5, seed=4)
    results = {}
    for name, use_spec in (
        ("naive plain TCP", StackSpec.tcp()),
        (f"selected  ({spec})", spec),
    ):
        sc2, _src, _dst = build()
        r = sc2.measure_stack_throughput(
            "src", "dst", use_spec, payload, TOTAL, message_size=65536
        )
        results[name] = r["throughput"]

    print(f"== {label} ==")
    print(
        f"   probe: rtt {rtt * 1000:.0f} ms, single stream "
        f"{single / 1e6:.2f} MB/s, capacity estimate "
        f"{cap / 1e6:.2f} MB/s"
    )
    for name, mbps in results.items():
        print(f"   {name:28s} {mbps:6.2f} MB/s")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="PATH",
        help="export metrics + trace events as JSON lines to PATH",
    )
    args = parser.parse_args()
    if args.trace:
        obs.enable_tracing()
    for wan in WANS:
        run_wan(*wan)
    if args.trace:
        obs.export_jsonl(args.trace)
        print(f"observability export written to {args.trace}")
        print(f"summarize with: python -m repro.obs.report {args.trace}")


if __name__ == "__main__":
    main()
