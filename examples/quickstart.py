#!/usr/bin/env python3
"""Quickstart: two grid nodes exchanging typed messages across firewalls.

Builds a tiny grid — two sites, both behind stateful firewalls, plus a
public relay — and runs two Ibis instances.  The library negotiates the
connection (TCP splicing, since both sites drop unsolicited inbound SYNs)
and delivers typed IPL messages over it.

Run:  python examples/quickstart.py
"""

import array

from repro.core.scenarios import GridScenario


def main() -> None:
    # 1. The world: two firewalled sites + the public relay/registry host.
    scenario = GridScenario(seed=42)
    scenario.add_site("amsterdam", "firewall")
    scenario.add_site("rennes", "firewall")

    # 2. Two Ibis instances (one process per site).
    alice = scenario.add_ibis("amsterdam", "alice")
    bob = scenario.add_ibis("rennes", "bob")

    def bob_proc():
        yield from bob.start()
        inbox = yield from bob.create_receive_port("bob-inbox")
        message = yield from inbox.receive()
        print(f"[bob]   from={message.origin}")
        print(f"[bob]   text={message.read_string()!r}")
        print(f"[bob]   ints={list(message.read_array())}")
        message.finish()

    def alice_proc():
        yield from alice.start()
        out = alice.create_send_port("alice-out")
        # Retry until bob has registered his port with the name service.
        while True:
            try:
                yield from out.connect("bob-inbox")
                break
            except Exception:
                yield scenario.sim.timeout(0.2)
        channel = out.channels["bob-inbox"]
        print(f"[alice] connected via {channel.driver.link.method}"
              if hasattr(channel.driver, "link") else "[alice] connected")
        msg = out.new_message()
        msg.write_string("hello across two firewalls")
        msg.write_array(array.array("i", [1, 2, 3]))
        yield from msg.finish()
        print("[alice] message sent")

    scenario.sim.process(bob_proc())
    scenario.sim.process(alice_proc())
    scenario.run(until=120)
    print(f"done at simulated t={scenario.sim.now:.3f}s")


if __name__ == "__main__":
    main()
