#!/usr/bin/env python3
"""A programming model on top of the IPL: RMI-style task farming.

The paper's Ibis stack (Figure 5) layers programming models — RMI, GMI,
Satin — over the IPL's message channels.  This example sketches the same
layering: a coordinator farms out function calls to workers on three
differently-restricted sites; request/reply is two unidirectional channels.

Run:  python examples/rmi_task_farm.py
"""

from repro.core.scenarios import GridScenario

WORK_ITEMS = [(n, n * 1000) for n in range(2, 8)]  # (task id, argument)


def integrate(argument: int) -> float:
    """The 'remote method': some CPU-bound numeric work."""
    total = 0.0
    for i in range(1, 200):
        total += 1.0 / (argument + i)
    return total


def main() -> None:
    scenario = GridScenario(seed=77)
    scenario.add_site("cluster", "open")
    scenario.add_site("campus", "firewall")
    scenario.add_site("lab", "cone_nat")
    coordinator = scenario.add_ibis("cluster", "coordinator")
    workers = [
        scenario.add_ibis("campus", "worker-0"),
        scenario.add_ibis("lab", "worker-1"),
    ]
    results = {}

    def worker_proc(ibis, index):
        yield from ibis.start()
        requests = yield from ibis.create_receive_port(f"requests-{index}")
        replies = ibis.create_send_port("replies-out")
        while True:
            try:
                yield from replies.connect("replies")
                break
            except Exception:
                yield scenario.sim.timeout(0.2)
        while True:
            message = yield from requests.receive()
            task_id = message.read_int()
            if task_id < 0:
                return  # poison pill
            argument = message.read_long()
            value = integrate(argument)
            reply = replies.new_message()
            reply.write_int(task_id).write_double(value).write_string(ibis.name)
            yield from reply.finish()

    def coordinator_proc():
        yield from coordinator.start()
        replies = yield from coordinator.create_receive_port("replies")
        request_ports = []
        for index in range(len(workers)):
            port = coordinator.create_send_port(f"req-{index}")
            while True:
                try:
                    yield from port.connect(f"requests-{index}")
                    break
                except Exception:
                    yield scenario.sim.timeout(0.2)
            request_ports.append(port)
        # Round-robin dispatch.
        for i, (task_id, argument) in enumerate(WORK_ITEMS):
            message = request_ports[i % len(request_ports)].new_message()
            message.write_int(task_id).write_long(argument)
            yield from message.finish()
        # Collect.
        for _ in WORK_ITEMS:
            reply = yield from replies.receive()
            task_id = reply.read_int()
            value = reply.read_double()
            who = reply.read_string()
            results[task_id] = (value, who)
        # Shut the workers down.
        for port in request_ports:
            message = port.new_message()
            message.write_int(-1).write_long(0)
            yield from message.finish()

    scenario.sim.process(coordinator_proc())
    for index, worker in enumerate(workers):
        scenario.sim.process(worker_proc(worker, index))
    scenario.run(until=300)

    print(f"{'task':>5s} {'result':>12s}  computed by")
    for task_id in sorted(results):
        value, who = results[task_id]
        expected = integrate(dict(WORK_ITEMS)[task_id])
        assert abs(value - expected) < 1e-12
        print(f"{task_id:5d} {value:12.6f}  {who}")
    print(f"\n{len(results)} remote invocations across firewalled/NATted "
          f"sites, t={scenario.sim.now:.2f}s simulated")


if __name__ == "__main__":
    main()
