#!/usr/bin/env python3
"""Bulk WAN transfer with the paper's link-utilization methods (§4, §6).

Rebuilds the Amsterdam–Rennes WAN (1.6 MB/s capacity, 30 ms latency, a
little loss) and moves the same compressible dataset with four driver
stacks, printing achieved bandwidth — a miniature of Figure 9.

Run:  python examples/wan_transfer.py
"""

from repro.core.scenarios import GridScenario
from repro.simnet.cpu import CpuModel
from repro.workloads import measured_ratio, payload_with_ratio

CAPACITY = 1.6e6          # bytes/s
ONE_WAY_DELAY = 0.015     # 30 ms RTT
LOSS = 0.004
TOTAL = 6_000_000
STACKS = [
    ("plain TCP", "tcp_block"),
    ("4 parallel streams", "parallel:4"),
    ("compression", "compress|tcp_block"),
    ("compression + 4 streams", "compress|parallel:4"),
]


def run_stack(spec: str, payload: bytes) -> float:
    scenario = GridScenario(seed=9)
    for name in ("amsterdam", "rennes"):
        scenario.add_site(
            name,
            "firewall",
            access_delay=ONE_WAY_DELAY / 2,
            access_bandwidth=CAPACITY,
            access_loss=LOSS if name == "amsterdam" else 0.0,
            queue_bytes=int(CAPACITY * 2 * ONE_WAY_DELAY),
        )
    sender = scenario.add_node("amsterdam", "src")
    receiver = scenario.add_node("rennes", "dst")
    # 2004-era CPUs: zlib-1 compression is a real cost.
    CpuModel(scenario.sim, rates={"compress": 3.6e6, "decompress": 20e6}).attach(
        sender.host
    )
    CpuModel(scenario.sim, rates={"compress": 3.6e6, "decompress": 20e6}).attach(
        receiver.host
    )
    result = scenario.measure_stack_throughput(
        "src", "dst", spec, payload, TOTAL, message_size=262144
    )
    return result["throughput"]


def main() -> None:
    payload = payload_with_ratio(1 << 20, 3.6, seed=5)
    print(
        f"WAN: capacity {CAPACITY / 1e6:.1f} MB/s, RTT "
        f"{2 * ONE_WAY_DELAY * 1000:.0f} ms, payload zlib-1 ratio "
        f"{measured_ratio(payload):.2f}\n"
    )
    print(f"{'method':28s} {'MB/s':>7s} {'% capacity':>11s}")
    for label, spec in STACKS:
        mbps = run_stack(spec, payload)
        print(f"{label:28s} {mbps:7.2f} {100 * mbps / (CAPACITY / 1e6):10.0f}%")
    print(
        "\nCompare paper Figure 9: plain 0.9 (56%), 4 streams 1.5 (93%), "
        "compression 3.25 (203%), compression+streams 3.4 peak."
    )


if __name__ == "__main__":
    main()
