#!/usr/bin/env python3
"""Security example: authenticated, encrypted channels over any path (§4.4).

A grid CA issues certificates to two nodes; the data link is brokered
through two firewalls (TCP splicing) and then secured by the TLS driver —
mutual authentication, ChaCha20 encryption, tamper detection.

Run:  python examples/secure_channel.py
"""

from repro.core.factory import BrokeredConnectionFactory, TlsConfig
from repro.core.scenarios import GridScenario
from repro.core.utilization import TlsDriver, find_driver
from repro.core.utilization.spec import StackSpec
from repro.security import CertificateAuthority, Identity, RecordError


def main() -> None:
    # The grid PKI.
    ca = CertificateAuthority("grid-root-ca")
    alice_key, alice_cert = ca.issue_identity("alice@amsterdam")
    bob_key, bob_cert = ca.issue_identity("bob@rennes")
    print(f"CA {ca.name!r} issued certificates for "
          f"{alice_cert.subject!r} and {bob_cert.subject!r}\n")

    scenario = GridScenario(seed=13)
    scenario.add_site("amsterdam", "firewall")
    scenario.add_site("rennes", "firewall")
    alice = scenario.add_node("amsterdam", "alice")
    bob = scenario.add_node("rennes", "bob")

    alice_tls = TlsConfig(
        [ca.certificate],
        Identity(alice_key, [alice_cert]),
        expected_peer="bob@rennes",
    )
    bob_tls = TlsConfig(
        [ca.certificate],
        Identity(bob_key, [bob_cert]),
        require_client_auth=True,
    )
    out = {}

    def alice_proc():
        yield from alice.start()
        while not bob.relay_client.connected:
            yield scenario.sim.timeout(0.05)
        service = yield from alice.open_service_link("bob")
        factory = BrokeredConnectionFactory(alice, alice_tls)
        channel = yield from factory.connect(
            service, bob.info, spec=StackSpec.tcp().with_compression().with_tls()
        )
        tls = find_driver(channel.driver, TlsDriver)
        print(f"[alice] authenticated peer: {tls.peer_subject}")
        yield from channel.send_message(b"the experiment parameters: seed=42")
        out["reply"] = yield from channel.recv_message()
        out["session"] = tls.session

    def bob_proc():
        yield from bob.start()
        _peer, service = yield from bob.accept_service_link()
        factory = BrokeredConnectionFactory(bob, bob_tls)
        channel = yield from factory.accept(service)
        tls = find_driver(channel.driver, TlsDriver)
        print(f"[bob]   authenticated peer: {tls.peer_subject}")
        msg = yield from channel.recv_message()
        print(f"[bob]   received: {msg.decode()!r}")
        yield from channel.send_message(b"ack: parameters received")

    scenario.sim.process(alice_proc())
    scenario.sim.process(bob_proc())
    scenario.run(until=120)
    print(f"[alice] reply: {out['reply'].decode()!r}\n")

    # Tampering demo: flip one ciphertext bit, watch the MAC catch it.
    session = out["session"]
    record = bytearray(session.seal(b"sensitive"))
    record[3] ^= 0x80
    try:
        session.open(bytes(record))  # wrong direction anyway; shows the API
    except RecordError as exc:
        print(f"tampered record rejected: {exc}")


if __name__ == "__main__":
    main()
