#!/usr/bin/env python3
"""LiveIbis: the complete runtime on real sockets (§8's second implementation).

A registry, a relay and three Ibis instances — all real asyncio TCP on
loopback.  Workers register receive ports; the coordinator is elected,
connects with a compressed striped stack, and farms out typed messages.

Run:  python examples/live_ibis.py
"""

import array
import asyncio

from repro.core.utilization.spec import StackSpec
from repro.livenet import LiveIbis, LiveRegistryServer, LiveRelayServer


async def worker(node: LiveIbis, index: int) -> None:
    inbox = await node.create_receive_port(f"tasks-{index}")
    message = await inbox.receive()
    values = message.read_array()
    total = sum(values)
    print(f"[{node.name}] received {len(values)} values from "
          f"{message.origin}, sum={total:.2f}")

    reply = node.create_send_port("reply")
    await reply.connect("results")
    answer = reply.new_message()
    answer.write_double(total)
    await answer.finish()


async def coordinator(node: LiveIbis, n_workers: int) -> None:
    winner = await node.elect("coordinator")
    print(f"[{node.name}] election winner: {winner}")
    results = await node.create_receive_port("results")

    for index in range(n_workers):
        port = node.create_send_port(f"to-{index}")
        for _attempt in range(50):
            try:
                await port.connect(f"tasks-{index}", spec=StackSpec.parallel(2).with_compression())
                break
            except Exception:
                await asyncio.sleep(0.05)
        message = port.new_message()
        message.write_array(array.array("d", [index + i * 0.5 for i in range(1000)]))
        await message.finish()

    grand_total = 0.0
    for _ in range(n_workers):
        reply = await results.receive()
        grand_total += reply.read_double()
    print(f"[{node.name}] grand total over {n_workers} workers: {grand_total:.2f}")


async def main() -> None:
    registry = await LiveRegistryServer().start()
    relay = await LiveRelayServer().start()

    nodes = [
        await LiveIbis(name, registry.addr, relay.addr).start()
        for name in ("coord", "w0", "w1")
    ]
    await asyncio.gather(
        coordinator(nodes[0], 2),
        worker(nodes[1], 0),
        worker(nodes[2], 1),
    )
    for node in nodes:
        await node.leave()
    registry.close()
    relay.close()
    print("all real-TCP, all typed IPL messages — same protocols as the simulator")


if __name__ == "__main__":
    asyncio.run(main())
