#!/usr/bin/env python3
"""GridFTP-style striped file transfer between two grid sites.

The paper motivates parallel streams by GridFTP ("probably the best-known
tool implementing this approach", §1).  This example moves a synthetic
dataset between firewalled sites on a Delft–Sophia-class WAN, comparing
stream counts and showing the auto-tuner picking the right one.

Run:  python examples/striped_file_transfer.py
"""

import hashlib

from repro.core.autotune import recommend_streams
from repro.core.factory import BrokeredConnectionFactory
from repro.core.scenarios import GridScenario
from repro.core.utilization.spec import StackSpec
from repro.workloads import scientific_mesh

CAPACITY = 9e6
ONE_WAY = 0.0215
FILE_SIZE = 12_000_000


def transfer(nstreams: int, dataset: bytes) -> tuple[float, str]:
    scenario = GridScenario(seed=31)
    for name in ("delft", "sophia"):
        scenario.add_site(
            name,
            "firewall",
            access_delay=ONE_WAY / 2,
            access_bandwidth=CAPACITY,
            queue_bytes=int(CAPACITY * 2 * ONE_WAY),
        )
    src = scenario.add_node("delft", "src")
    dst = scenario.add_node("sophia", "dst")
    out = {}

    def sender():
        yield from src.start()
        while not dst.relay_client.connected:
            yield scenario.sim.timeout(0.05)
        service = yield from src.open_service_link("dst")
        factory = BrokeredConnectionFactory(src)
        spec = StackSpec.parallel(nstreams) if nstreams > 1 else StackSpec.tcp()
        channel = yield from factory.connect(service, dst.info, spec=spec)
        t0 = scenario.sim.now
        yield from channel.write(dataset)
        yield from channel.flush()
        channel.close()
        out["t0"] = t0

    def receiver():
        yield from dst.start()
        _peer, service = yield from dst.accept_service_link()
        factory = BrokeredConnectionFactory(dst)
        channel = yield from factory.accept(service)
        received = bytearray()
        while len(received) < FILE_SIZE:
            data = yield from channel.read(1 << 20)
            if not data:
                break
            received.extend(data)
        out["seconds"] = scenario.sim.now - out["t0"]
        out["digest"] = hashlib.sha256(received).hexdigest()[:12]

    scenario.sim.process(sender())
    scenario.sim.process(receiver())
    scenario.run(until=600)
    return out["seconds"], out["digest"]


def main() -> None:
    dataset = scientific_mesh(FILE_SIZE, seed=9)
    want = hashlib.sha256(dataset).hexdigest()[:12]
    print(
        f"dataset: {FILE_SIZE / 1e6:.0f} MB mesh snapshot, sha256 {want}\n"
        f"WAN: {CAPACITY / 1e6:.0f} MB/s, {2 * ONE_WAY * 1000:.0f} ms RTT, "
        f"both sites firewalled (links spliced)\n"
    )
    print(f"{'streams':>8s} {'seconds':>9s} {'MB/s':>7s} {'integrity':>10s}")
    for nstreams in (1, 2, 4, 8):
        seconds, digest = transfer(nstreams, dataset)
        ok = "ok" if digest == want else "CORRUPT"
        print(
            f"{nstreams:8d} {seconds:9.2f} {FILE_SIZE / seconds / 1e6:7.2f} "
            f"{ok:>10s}"
        )
    recommended = recommend_streams(CAPACITY, 2 * ONE_WAY)
    print(f"\nauto-tuner recommendation for this path: {recommended} streams")


if __name__ == "__main__":
    main()
