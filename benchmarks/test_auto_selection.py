"""§8 realized, as a benchmark: probe → select → transfer.

"The following step in our work is to combine these mechanisms with grid
resource management and information systems.  This combination will allow
the automated selection of the proper communication methods for given WAN
settings."

For both of the paper's WAN classes, the path monitor probes the link,
``select_spec`` derives the driver stack, and the resulting throughput is
compared against naive plain TCP and against the best hand-tuned static
configuration from Figures 9/10.
"""

from conftest import once
from paperlinks import AMSTERDAM_RENNES, DELFT_SOPHIA, PAYLOAD_RATIO, build_paper_wan, measure
from repro.core import PathMonitor, select_spec
from repro.core.utilization.spec import StackSpec
from repro.workloads import payload_with_ratio

TOTAL = 8_000_000
MSG = 65536

#: the best static configuration per link, from the Figure 9/10 sweeps
HAND_TUNED = {
    "amsterdam-rennes": StackSpec.parallel(4).with_compression(),
    "delft-sophia": StackSpec.parallel(8),
}


def _probe_and_select(link: dict) -> "StackSpec":
    scenario = build_paper_wan(link, seed=41)
    src = scenario.nodes["src"]
    dst = scenario.nodes["dst"]
    out = {}

    def initiator():
        yield from src.start()
        while not dst.relay_client.connected:
            yield scenario.sim.timeout(0.05)
        service = yield from src.open_service_link("dst")
        monitor = PathMonitor(src)
        estimate = yield from monitor.estimate(service, dst.info)
        yield from monitor.finish(service)
        out["estimate"] = estimate
        out["spec"] = select_spec(
            estimate,
            compress_rate=link["cpu_rates"]["compress"],
            payload_ratio=PAYLOAD_RATIO,
        )

    def responder():
        yield from dst.start()
        _peer, service = yield from dst.accept_service_link()
        yield from PathMonitor(dst).serve(service)

    scenario.sim.process(initiator())
    scenario.sim.process(responder())
    scenario.run(until=600)
    return out["spec"]


def _run():
    rows = []
    for link in (AMSTERDAM_RENNES, DELFT_SOPHIA):
        spec = _probe_and_select(link)
        naive = measure(link, StackSpec.tcp(), MSG, TOTAL)
        selected = measure(link, spec, MSG, TOTAL)
        tuned = measure(link, HAND_TUNED[link["name"]], MSG, TOTAL)
        rows.append((link["name"], str(spec), naive, selected, tuned))
    return rows


def test_automated_selection(benchmark, report):
    rows = once(benchmark, _run)

    lines = ["§8 — automated selection of communication methods", ""]
    lines.append(
        f"{'link':>18s} {'selected spec':>24s} {'naive':>7s} "
        f"{'selected':>9s} {'hand-tuned':>11s}"
    )
    for name, spec, naive, selected, tuned in rows:
        lines.append(
            f"{name:>18s} {spec:>24s} {naive:>7.2f} {selected:>9.2f} {tuned:>11.2f}"
        )
    report("auto_selection", "\n".join(lines))

    for name, spec, naive, selected, tuned in rows:
        # The automated choice beats naive TCP decisively...
        assert selected > 1.8 * naive, name
        # ...and lands within 25% of the best hand-tuned configuration.
        assert selected > 0.75 * tuned, name
    # The choices adapt to the link class: compression on the slow CPU-rich
    # path; parallel streams on the fat path.
    slow_spec = rows[0][1]
    fast_spec = rows[1][1]
    assert "compress" in slow_spec
    assert "parallel" in fast_spec
