"""Streaming-telemetry overhead on the LAN bandwidth workload.

The telemetry plane is meant to run *during* production transfers — a
publisher per node ticking delta snapshots into an aggregator that
evaluates SLOs on every ingest — so its steady-state cost gets the same
acceptance bar the flight recorder got: <5% wall-clock overhead on the
lan_block bandwidth transfer versus no telemetry at all.  The publish
interval is cranked to 10 ms (50x the default rate) so the measured run
contains a meaningful number of ticks; production intervals cost
proportionally less.

Simulated throughput must be identical in both modes: publishers ride
the sim clock but never touch the transfer's links.
"""

import time

from conftest import once
from repro import obs
from repro.core.scenarios import GridScenario
from repro.core.utilization import StackSpec

LAN_CAPACITY = 12.5e6  # 100 Mbit/s
TOTAL = 6_000_000
REPEATS = 3
#: aggressive publish interval (simulated seconds) — the ~0.5 s transfer
#: gets ~50 ticks per publisher, a dense steady-state stream
INTERVAL = 0.01


def _transfer(mode: str) -> dict:
    sc = GridScenario(seed=6)
    for name in ("a", "b"):
        sc.add_site(
            name, "open", access_bandwidth=LAN_CAPACITY, access_delay=2.5e-5
        )
    sc.add_node("a", "src")
    sc.add_node("b", "dst")
    ticks = 0
    if mode == "telemetry":
        agg = sc.enable_telemetry(interval=INTERVAL, window=10 * INTERVAL)
        # a live SLO so every ingest pays the evaluation path too
        agg.add_slo(
            obs.SLO(
                "throughput",
                obs.sli_counter_rate("relay.forwarded_bytes_total"),
                threshold=0.0,
            )
        )
        # the transfer ends ~0.55 simulated seconds in; stop the
        # publishers shortly after, or they would tick until the
        # measurement's 3600 s sim deadline and the comparison would
        # time an hour of idle heartbeats, not the transfer
        sc.sim.call_at(
            1.0,
            lambda: [pub.stop(flush=False) for pub in sc.telemetry_publishers],
        )
    t0 = time.perf_counter()
    result = sc.measure_stack_throughput(
        "src", "dst", StackSpec.tcp(), b"m" * 65536, TOTAL
    )
    wall = time.perf_counter() - t0
    if mode == "telemetry":
        ticks = len(sc.telemetry_log)
    return {"wall": wall, "throughput": result["throughput"], "ticks": ticks}


def _run():
    out = {
        mode: {"wall": float("inf"), "throughput": 0.0, "ticks": 0}
        for mode in ("off", "telemetry")
    }
    # interleave the modes across repeats so drift hits them evenly
    for _ in range(REPEATS):
        for mode in out:
            sample = _transfer(mode)
            out[mode]["wall"] = min(out[mode]["wall"], sample["wall"])
            out[mode]["throughput"] = sample["throughput"]
            out[mode]["ticks"] = max(out[mode]["ticks"], sample["ticks"])
    return out


def test_telemetry_overhead_under_5_percent(benchmark, report, bench_json):
    modes = once(benchmark, _run)

    base = modes["off"]["wall"]
    telemetry_pct = 100.0 * (modes["telemetry"]["wall"] - base) / base

    lines = [
        "Streaming-telemetry overhead — lan_block transfer, wall-clock "
        f"(min of {REPEATS})",
        "",
        f"telemetry off       : {base * 1000:8.1f} ms  "
        f"({modes['off']['throughput']:.2f} MB/s simulated)",
        f"telemetry @ {INTERVAL * 1000:.0f} ms    : "
        f"{modes['telemetry']['wall'] * 1000:8.1f} ms  "
        f"({telemetry_pct:+.1f}%, {modes['telemetry']['ticks']} records)",
    ]
    report("telemetry_overhead", "\n".join(lines))
    bench_json(
        "telemetry_overhead",
        baseline_wall_ms=round(base * 1000, 2),
        telemetry_wall_ms=round(modes["telemetry"]["wall"] * 1000, 2),
        telemetry_overhead_pct=round(telemetry_pct, 2),
        publish_interval_s=INTERVAL,
        records=modes["telemetry"]["ticks"],
    )

    # the plane observes the experiment without perturbing it
    assert modes["telemetry"]["throughput"] == modes["off"]["throughput"]
    # the acceptance bar, same as the flight recorder's
    assert telemetry_pct < 5.0, f"telemetry costs {telemetry_pct:.1f}%"
