"""§2/§3.4: connection establishment delay per method.

"Methods without brokering are preferable over the ones requiring it,
since the latter are likely to exhibit a higher connection establishment
delay due to the negotiation phase."  Fall-back chains (the broken-NAT
case) cost the most.
"""

from conftest import once
from repro.core.scenarios import GridScenario

CASES = [
    ("client_server (no brokering beyond addresses)", "open", "open"),
    ("splicing (brokered rendezvous)", "firewall", "firewall"),
    ("splicing + NAT probe", "open", "cone_nat"),
    ("socks after failed splicing (fall-back)", "open", "broken_nat"),
    ("routed (no negotiation)", "severe", "firewall"),
]


def _run():
    rows = []
    for label, kind_a, kind_b in CASES:
        sc = GridScenario(seed=17)
        sc.add_site("A", kind_a)
        sc.add_site("B", kind_b)
        sc.add_node("A", "a")
        sc.add_node("B", "b")
        result = sc.establish_pair("a", "b", until=500)
        rows.append((label, result["method"], result["delay"]))
    return rows


def test_establishment_delay(benchmark, report):
    rows = once(benchmark, _run)

    lines = ["§2/§3.4 — data-link establishment delay by method", ""]
    lines.append(f"{'scenario':>45s} {'method':>14s} {'delay':>10s}")
    for label, method, delay in rows:
        lines.append(f"{label:>45s} {method:>14s} {delay * 1000:9.1f}ms")
    report("establishment_delay", "\n".join(lines))

    by_label = {label: delay for label, _m, delay in rows}
    cs = by_label["client_server (no brokering beyond addresses)"]
    splice = by_label["splicing (brokered rendezvous)"]
    nat_probe = by_label["splicing + NAT probe"]
    fallback = by_label["socks after failed splicing (fall-back)"]
    # NAT probing adds delay over plain splicing.
    assert nat_probe > splice
    # A failed attempt before fall-back dominates everything.
    assert fallback > 3 * cs
    assert fallback > nat_probe
