"""Extension ablation: WAN-aware collectives (the MagPIe idea, cited in §7).

"Our own MagPIe library optimizes the performance of MPI's collective
operations in grid systems."  The optimization: traverse each wide-area
link at most once — broadcast to one coordinator per remote cluster which
fans out on its LAN, instead of pushing one copy per remote member over
the WAN.

This ablation measures a 256 KiB broadcast over three clusters joined by
1.6 MB/s WAN links, flat vs. WAN-aware.
"""

from conftest import once
from repro.core.scenarios import GridScenario
from repro.ipl.collectives import CollectiveGroup

CLUSTERS = 3
PER_CLUSTER = 3
PAYLOAD = b"b" * (256 * 1024)


def _broadcast_time(wan_aware: bool) -> float:
    sc = GridScenario(seed=23)
    members, clusters, instances = [], {}, {}
    for c in range(CLUSTERS):
        site = f"site{c}"
        sc.add_site(
            site, "firewall", access_bandwidth=1.6e6, access_delay=0.0075
        )
        for i in range(PER_CLUSTER):
            name = f"n{c}-{i}"
            instances[name] = sc.add_ibis(site, name)
            members.append(name)
            clusters[name] = site
    done = {}

    def member(name):
        ibis = instances[name]
        yield from ibis.start()
        group = CollectiveGroup(
            ibis, "g", members, clusters, root=members[0], wan_aware=wan_aware
        )
        yield from group.setup()
        yield from group.barrier()  # align the start
        t0 = sc.sim.now
        yield from group.broadcast(PAYLOAD if name == members[0] else None)
        yield from group.barrier()  # everyone has it
        done[name] = sc.sim.now - t0

    for name in members:
        sc.sim.process(member(name))
    sc.run(until=1200)
    assert len(done) == len(members)
    return max(done.values())


def _run():
    flat = _broadcast_time(wan_aware=False)
    aware = _broadcast_time(wan_aware=True)
    return flat, aware


def test_wan_aware_collectives(benchmark, report):
    flat, aware = once(benchmark, _run)

    lines = [
        "Extension ablation — WAN-aware vs flat broadcast (MagPIe, §7)",
        "",
        f"{CLUSTERS} clusters x {PER_CLUSTER} members, 256 KiB payload, "
        "1.6 MB/s WAN links",
        "",
        f"flat broadcast (root -> every member over the WAN): {flat:7.2f} s",
        f"WAN-aware (one copy per remote cluster + LAN fanout): {aware:7.2f} s",
        f"speedup: {flat / aware:.2f}x",
    ]
    report("ablation_collectives", "\n".join(lines))

    # The root's WAN uplink carries (CLUSTERS*PER_CLUSTER - 1) copies flat
    # vs (CLUSTERS - 1) copies WAN-aware: a clear win.
    assert aware < 0.65 * flat
