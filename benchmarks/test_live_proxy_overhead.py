"""Live chaos gate apparatus cost: proxy pass-through latency.

The live test tier routes every byte through the in-process
:class:`~repro.livenet.proxy.ChaosTcpProxy`; its results are only
meaningful if the apparatus itself is invisible when no fault is armed.
This benchmark measures the client-perceived TLS handshake latency over
loopback — TCP connect through handshake completion — directly against
the server and again with the proxy on the path, min-of-N to cut
scheduler noise, and holds the pass-through tax under 10%.
"""

import asyncio
import time

import pytest

from conftest import once
from repro.livenet import (
    AsyncTcpBlockDriver,
    AsyncTlsDriver,
    ChaosTcpProxy,
    live_connect,
    live_listen,
)
from repro.security import CertificateAuthority, Identity

pytestmark = pytest.mark.livenet

ROUNDS = 9
OVERHEAD_BUDGET_PCT = 10.0


async def _handshakes(rounds: int, proxied: bool) -> list:
    ca = CertificateAuthority("bench-root")
    key, cert = ca.issue_identity("bench-server")
    identity = Identity(key, [cert])
    listener = await live_listen()
    proxy = None
    dial_addr = listener.addr
    if proxied:
        proxy = await ChaosTcpProxy(listener.addr, name="bench-gw").start()
        dial_addr = proxy.addr

    async def serve_one() -> None:
        sock = await listener.accept()
        try:
            drv = AsyncTlsDriver(AsyncTcpBlockDriver(sock))
            await drv.handshake_server(identity)
        finally:
            sock.close()

    samples = []
    try:
        for _ in range(rounds):
            server = asyncio.ensure_future(serve_one())
            t0 = time.perf_counter()
            sock = await live_connect(dial_addr)
            drv = AsyncTlsDriver(AsyncTcpBlockDriver(sock))
            await drv.handshake_client(
                [ca.certificate], expected_server="bench-server"
            )
            samples.append(time.perf_counter() - t0)
            sock.close()
            await server
    finally:
        if proxy is not None:
            proxy.close()
        listener.close()
    return samples


def _measure() -> dict:
    async def run() -> dict:
        # warm-up round absorbs import/alloc costs, then interleave-free
        # min-of-N for each path
        await _handshakes(1, proxied=False)
        direct = min(await _handshakes(ROUNDS, proxied=False))
        proxied = min(await _handshakes(ROUNDS, proxied=True))
        return {"direct_s": direct, "proxied_s": proxied}

    return asyncio.run(asyncio.wait_for(run(), timeout=60.0))


def test_proxy_pass_through_latency_under_10_percent(
    benchmark, report, bench_json
):
    res = once(benchmark, _measure)
    direct_ms = res["direct_s"] * 1e3
    proxied_ms = res["proxied_s"] * 1e3
    overhead_pct = (proxied_ms / direct_ms - 1.0) * 100.0

    report(
        "live_proxy_overhead",
        "Live chaos proxy pass-through (loopback TLS handshake, "
        f"min of {ROUNDS})\n"
        f"  direct   : {direct_ms:8.3f} ms\n"
        f"  proxied  : {proxied_ms:8.3f} ms\n"
        f"  overhead : {overhead_pct:+7.2f} %  (budget < "
        f"{OVERHEAD_BUDGET_PCT:.0f}%)\n",
    )
    bench_json(
        "live_proxy_overhead",
        direct_ms=round(direct_ms, 4),
        proxied_ms=round(proxied_ms, 4),
        overhead_pct=round(overhead_pct, 2),
    )
    assert overhead_pct < OVERHEAD_BUDGET_PCT, (
        f"proxy pass-through costs {overhead_pct:.1f}% "
        f"(budget {OVERHEAD_BUDGET_PCT:.0f}%)"
    )
