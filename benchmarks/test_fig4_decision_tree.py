"""Figure 4: choosing a connection establishment method.

The decision tree — bootstrap? firewall? NAT (and is it compatible)? — is
swept over every topology combination; the chosen method must equal the
paper's precedence answer, and a behavioural check confirms the chosen
method actually works in the simulator for a representative subset.
"""

from conftest import once
from repro.core import (
    CLIENT_SERVER,
    ROUTED,
    SOCKS_PROXY,
    SPLICING,
    EndpointInfo,
    choose_method,
)
from repro.core.scenarios import GridScenario


def _info(**kwargs):
    base = dict(node_id="n", local_ip="203.0.1.10")
    base.update(kwargs)
    return EndpointInfo(**base)


PROFILES = {
    "open": _info(),
    "firewall": _info(behind_firewall=True),
    "nat-ok": _info(behind_nat=True, nat_predictable=True),
    "nat-bad": _info(
        behind_nat=True, nat_predictable=False, socks_proxy=("198.51.1.2", 1080)
    ),
}

# The Figure 4 answers for (initiator, responder, bootstrap).
EXPECTED = {
    ("open", "open", False): CLIENT_SERVER,
    ("open", "open", True): CLIENT_SERVER,
    ("open", "firewall", False): SPLICING,
    ("open", "firewall", True): ROUTED,
    ("firewall", "open", False): CLIENT_SERVER,
    ("firewall", "firewall", False): SPLICING,
    ("firewall", "firewall", True): ROUTED,
    ("open", "nat-ok", False): SPLICING,
    ("nat-ok", "nat-ok", False): SPLICING,
    ("open", "nat-bad", False): SOCKS_PROXY,
    ("nat-bad", "firewall", False): ROUTED,
    ("open", "nat-bad", True): ROUTED,
}

# Behavioural spot-checks: these site-kind pairs must end up on the method
# Figure 4 predicts.
BEHAVIOUR = [
    ("open", "open", CLIENT_SERVER),
    ("firewall", "firewall", SPLICING),
    ("open", "cone_nat", SPLICING),
    ("open", "symmetric_nat", SOCKS_PROXY),
    ("severe", "firewall", ROUTED),
]


def _run():
    table = {}
    for (a, b, boot), expected in EXPECTED.items():
        chosen = choose_method(PROFILES[a], PROFILES[b], bootstrap=boot)
        table[(a, b, boot)] = (chosen, expected)
    behaviour = []
    for kind_a, kind_b, expected in BEHAVIOUR:
        sc = GridScenario(seed=8)
        sc.add_site("A", kind_a)
        sc.add_site("B", kind_b)
        sc.add_node("A", "a")
        sc.add_node("B", "b")
        result = sc.establish_pair("a", "b", until=400)
        behaviour.append((kind_a, kind_b, expected, result["method"]))
    return table, behaviour


def test_fig4_decision_tree(benchmark, report):
    table, behaviour = once(benchmark, _run)

    lines = ["Figure 4 — decision tree outcomes", ""]
    lines.append(f"{'initiator':>10s} {'responder':>10s} {'boot':>5s} {'chosen':>14s}")
    for (a, b, boot), (chosen, _expected) in sorted(table.items()):
        lines.append(f"{a:>10s} {b:>10s} {str(boot):>5s} {chosen:>14s}")
    lines.append("")
    lines.append("behavioural confirmation (actual method used end-to-end):")
    for kind_a, kind_b, expected, actual in behaviour:
        lines.append(f"  {kind_a:>14s} -> {kind_b:<14s} {actual}")
    report("fig4_decision_tree", "\n".join(lines))

    for key, (chosen, expected) in table.items():
        assert chosen == expected, key
    for kind_a, kind_b, expected, actual in behaviour:
        assert actual == expected, (kind_a, kind_b)
