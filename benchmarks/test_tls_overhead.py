"""§4.4/§5.2: TLS composes with any establishment method; its cost.

"SSL/TLS security may be added over a link built with any of the
establishment methods described in Section 3."  The paper left the
encryption driver as planned work; this benchmark runs it over spliced,
proxied and routed links and measures the throughput cost of
encryption at 2004-class CPU rates.
"""

from conftest import once
from paperlinks import AMSTERDAM_RENNES, build_paper_wan
from repro.core.factory import BrokeredConnectionFactory, TlsConfig
from repro.core.scenarios import GridScenario
from repro.core.utilization import TlsDriver, find_driver
from repro.core.utilization.spec import StackSpec
from repro.security import CertificateAuthority, Identity
from repro.simnet import mb_per_s
from repro.workloads import incompressible

TOTAL = 4_000_000


def _pki():
    ca = CertificateAuthority("bench-root")
    ka, cert_a = ca.issue_identity("src")
    kb, cert_b = ca.issue_identity("dst")
    return (
        TlsConfig([ca.certificate], Identity(ka, [cert_a]), expected_peer="dst"),
        TlsConfig([ca.certificate], Identity(kb, [cert_b]), require_client_auth=True),
    )


def _secure_transfer(kind_a, kind_b, spec, seed=19):
    spec = StackSpec.parse(spec) if isinstance(spec, str) else spec
    sc = GridScenario(seed=seed)
    sc.add_site("A", kind_a, access_bandwidth=4e6, access_delay=0.01)
    sc.add_site("B", kind_b, access_bandwidth=4e6, access_delay=0.01)
    src = sc.add_node("A", "src")
    dst = sc.add_node("B", "dst")
    from repro.simnet.cpu import CpuModel

    for node in (src, dst):
        CpuModel(sc.sim, rates={"encrypt": 20e6, "decrypt": 20e6}).attach(node.host)
    tls_a, tls_b = _pki()
    payload = incompressible(65536, seed=3)
    res = {}

    def sender():
        yield from src.start()
        while not dst.relay_client.connected:
            yield sc.sim.timeout(0.05)
        service = yield from src.open_service_link("dst")
        factory = BrokeredConnectionFactory(src, tls_a)
        channel = yield from factory.connect(service, dst.info, spec=spec)
        tls = find_driver(channel.driver, TlsDriver)
        res["peer"] = tls.peer_subject if tls else None
        res["method"] = None
        sent = 0
        while sent < TOTAL:
            yield from channel.write(payload)
            sent += len(payload)
        yield from channel.flush()
        channel.close()

    def receiver():
        yield from dst.start()
        _p, service = yield from dst.accept_service_link()
        factory = BrokeredConnectionFactory(dst, tls_b)
        channel = yield from factory.accept(service)
        got = 0
        t0 = None
        while True:
            data = yield from channel.read(1 << 20)
            if not data:
                break
            if t0 is None:
                t0 = sc.sim.now
            got += len(data)
        res["mbps"] = mb_per_s(got, sc.sim.now - t0)

    sc.sim.process(sender())
    sc.sim.process(receiver())
    sc.run(until=1200)
    return res


def _run():
    rows = []
    # TLS over every establishment path.
    for label, kinds, spec in [
        ("tls over spliced link", ("firewall", "firewall"), "tls|tcp_block"),
        ("tls over socks-proxied link", ("open", "symmetric_nat"), "tls|tcp_block"),
        ("tls over routed link", ("severe", "firewall"), "tls|tcp_block"),
        ("tls over 4 spliced streams", ("firewall", "firewall"), "tls|parallel:4"),
    ]:
        res = _secure_transfer(*kinds, spec)
        rows.append((label, res["mbps"], res["peer"]))
    # Cost: same path with and without TLS.
    plain = _secure_transfer("firewall", "firewall", "tcp_block")["mbps"]
    secured = [r for r in rows if r[0] == "tls over spliced link"][0][1]
    return rows, plain, secured


def test_tls_composes_and_costs(benchmark, report):
    rows, plain, secured = once(benchmark, _run)

    lines = ["§4.4 — TLS over every establishment method (4 MB/s WAN)", ""]
    for label, mbps, peer in rows:
        lines.append(f"{label:32s} {mbps:6.2f} MB/s   peer={peer}")
    lines.append("")
    lines.append(f"{'plain (no tls), same path':32s} {plain:6.2f} MB/s")
    overhead = 100 * (1 - secured / plain) if plain else 0.0
    lines.append(f"encryption overhead on this link: {overhead:.0f}%")
    report("tls_overhead", "\n".join(lines))

    # TLS worked over all four paths with mutual authentication.
    for label, mbps, peer in rows:
        assert mbps > 0.05, label
        assert peer == "dst", label
    # Security is not free, but not crippling at 20 MB/s crypto either.
    assert secured <= plain * 1.02
    assert secured > 0.5 * plain
