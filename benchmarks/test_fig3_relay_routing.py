"""Figure 3: routed messages through a relay on a gateway machine.

"All nodes are connected to a relay located on a gateway machine
accessible from the outside; the relay forwards messages to their final
recipient."  Every node — even one that can make no direct connection at
all — reaches every other node through the relay.
"""

from conftest import once
from repro.core.scenarios import GridScenario


def _run():
    sc = GridScenario(seed=4)
    # Three nodes on maximally restricted sites.
    sc.add_site("A", "severe")
    sc.add_site("B", "firewall")
    sc.add_site("C", "symmetric_nat")
    for site, node in (("A", "a"), ("B", "b"), ("C", "c")):
        sc.add_node(site, node)

    results = {}
    nodes = sc.nodes

    def proc(me, peers):
        node = nodes[me]
        yield from node.start()
        # Everyone opens a routed link to everyone after them.
        for peer in peers:
            while not nodes[peer].relay_client.connected:
                yield sc.sim.timeout(0.05)
            link = yield from node.relay_client.open_link(peer, payload=b"service")
            yield from link.send_all(f"hello {peer} from {me}".encode())

    def acceptor(me, expect):
        node = nodes[me]
        while not node.relay_client.connected:
            yield sc.sim.timeout(0.05)
        for _ in range(expect):
            link = yield from node.dispatcher.accept_service()
            data = yield from link.recv(100)
            results.setdefault(me, []).append(data.decode())

    order = ["a", "b", "c"]
    for i, me in enumerate(order):
        sc.sim.process(proc(me, order[i + 1 :]))
    # a receives 0, b receives 1 (from a), c receives 2 (from a, b)
    sc.sim.process(acceptor("b", 1))
    sc.sim.process(acceptor("c", 2))
    sc.run(until=120)
    return results, sc.relay.forwarded_messages


def test_fig3_relay_reaches_everyone(benchmark, report):
    results, forwarded = once(benchmark, _run)

    lines = ["Figure 3 — routed messages via the gateway relay", ""]
    for me in sorted(results):
        for msg in sorted(results[me]):
            lines.append(f"  {me} received: {msg!r}")
    lines.append(f"\nrelay forwarded {forwarded} messages")
    report("fig3_relay_routing", "\n".join(lines))

    assert sorted(results["b"]) == ["hello b from a"]
    assert sorted(results["c"]) == ["hello c from a", "hello c from b"]
    assert forwarded >= 3
