"""Shared benchmark infrastructure.

Every benchmark reproduces one table or figure of the paper (see
DESIGN.md's experiment index).  Besides the pytest-benchmark timing, each
writes its paper-comparison table to ``benchmarks/results/<name>.txt``;
those tables are echoed into the terminal summary so the full report
appears in captured bench output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_written: list[pathlib.Path] = []


@pytest.fixture
def report():
    """``report(name, text)`` — persist and register a results table."""

    def _write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        _written.append(path)
        print(f"\n{text}")

    return _write


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _written:
        return
    terminalreporter.section("paper reproduction tables")
    for path in _written:
        terminalreporter.write_line(f"--- {path.name} ---")
        for line in path.read_text().splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")


def once(benchmark, fn):
    """Run an (expensive, deterministic) experiment exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
