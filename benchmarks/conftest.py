"""Shared benchmark infrastructure.

Every benchmark reproduces one table or figure of the paper (see
DESIGN.md's experiment index).  Besides the pytest-benchmark timing, each
writes its paper-comparison table to ``benchmarks/results/<name>.txt``;
those tables are echoed into the terminal summary so the full report
appears in captured bench output.

Benchmarks that track the perf trajectory additionally record their
headline numbers through the ``bench_json`` fixture; the session merges
them into ``benchmarks/results/BENCH_obs.json`` (a flat machine-readable
file, uploaded as a CI artifact) so throughput and tracing-overhead
regressions are diffable across commits without parsing tables.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_obs.json"
#: the per-PR perf trajectory the ROADMAP tracks: the same aggregate,
#: refreshed at the repo root so it is versioned (results/ is scratch)
TOP_BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_obs.json"

_written: list[pathlib.Path] = []
_bench: dict[str, dict] = {}


@pytest.fixture
def report():
    """``report(name, text)`` — persist and register a results table."""

    def _write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        _written.append(path)
        print(f"\n{text}")

    return _write


@pytest.fixture
def bench_json():
    """``bench_json(name, **metrics)`` — record numbers for BENCH_obs.json.

    Metrics are plain scalars (floats/ints/strings); one flat dict per
    benchmark name.  Recording the same name twice in a session merges
    the dicts (later keys win).
    """

    def _record(name: str, **metrics) -> None:
        _bench.setdefault(name, {}).update(metrics)

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _bench:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    # Merge with an existing file so partial runs (CI shards, -k filters)
    # accumulate rather than clobber each other's sections.
    data = {"schema": 1, "benchmarks": {}}
    if BENCH_JSON.exists():
        try:
            previous = json.loads(BENCH_JSON.read_text())
            data["benchmarks"].update(previous.get("benchmarks", {}))
        except (ValueError, OSError):
            pass
    for name, metrics in _bench.items():
        data["benchmarks"].setdefault(name, {}).update(metrics)
    payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
    BENCH_JSON.write_text(payload)
    # refresh the committed top-level aggregate from the merged sections
    TOP_BENCH_JSON.write_text(payload)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _written and not _bench:
        return
    terminalreporter.section("paper reproduction tables")
    for path in _written:
        terminalreporter.write_line(f"--- {path.name} ---")
        for line in path.read_text().splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
    if _bench:
        terminalreporter.write_line(f"--- {BENCH_JSON.name} sections updated ---")
        for name in sorted(_bench):
            terminalreporter.write_line(f"  {name}")


def once(benchmark, fn):
    """Run an (expensive, deterministic) experiment exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
