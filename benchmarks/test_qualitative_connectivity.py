"""§6 qualitative results: full connectivity across mixed sites.

"We deployed NetIbis on multiple sites ... In all cases, we were able to
establish a connection from every node to every other node without
opening ports in firewalls. ... It turned out that several NAT
implementations were not fully standards-compliant ... In some cases
during our experiments, there was no choice but to revert to a standard
SOCKS proxy."
"""

from conftest import once
from repro.core.scenarios import GridScenario

KINDS = ["open", "firewall", "cone_nat", "broken_nat", "symmetric_nat"]


def _run():
    matrix = {}
    fallbacks = []
    for kind_a in KINDS:
        for kind_b in KINDS:
            if kind_a == kind_b and kind_a == "open":
                pass  # still run it: open->open is a case too
            sc = GridScenario(seed=(hash((kind_a, kind_b)) & 0x7FFF) or 1)
            sc.add_site("A", kind_a)
            sc.add_site("B", kind_b)
            sc.add_node("A", "a")
            sc.add_node("B", "b")
            result = sc.establish_pair("a", "b", until=500)
            assert result["echo"] == b"ping"
            matrix[(kind_a, kind_b)] = result["method"]
            if any(not ok for _m, ok in result["initiator_log"]):
                fallbacks.append(
                    (kind_a, kind_b, [m for m, ok in result["initiator_log"]])
                )
            # no firewall ports were opened anywhere
            for site in sc.sites.values():
                if site.firewall is not None:
                    assert not site.firewall.open_ports
    return matrix, fallbacks


def test_qualitative_all_pairs_connectivity(benchmark, report):
    matrix, fallbacks = once(benchmark, _run)

    abbrev = {
        "client_server": "c/s",
        "splicing": "splice",
        "socks_proxy": "socks",
        "routed": "routed",
    }
    lines = [
        "Qualitative evaluation — all-pairs establishment matrix",
        "(every pair connected; no firewall ports opened)",
        "",
        f"{'':14s}" + "".join(f"{k:>14s}" for k in KINDS),
    ]
    for kind_a in KINDS:
        row = f"{kind_a:14s}"
        for kind_b in KINDS:
            row += f"{abbrev[matrix[(kind_a, kind_b)]]:>14s}"
        lines.append(row)
    lines.append("")
    lines.append("fall-back sequences observed (the broken-NAT effect):")
    for kind_a, kind_b, seq in fallbacks:
        lines.append(f"  {kind_a} -> {kind_b}: {' -> '.join(seq)}")
    report("qualitative_connectivity", "\n".join(lines))

    # All 25 pairs connected (asserted during the run); check key cells.
    assert matrix[("open", "open")] == "client_server"
    assert matrix[("firewall", "firewall")] == "splicing"
    assert matrix[("open", "cone_nat")] == "splicing"
    # The paper's broken-NAT finding: splicing attempted, SOCKS used.
    assert matrix[("open", "broken_nat")] == "socks_proxy"
    assert any(
        kinds == ("open", "broken_nat") or (a == "open" and b == "broken_nat")
        for a, b, _seq in fallbacks
        for kinds in [(a, b)]
    )
    # Unpredictable NAT never even tries splicing; SOCKS directly.
    assert matrix[("open", "symmetric_nat")] == "socks_proxy"
