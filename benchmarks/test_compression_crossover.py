"""§6: the compression crossover.

"Additional measurements showed that compression could improve the
bandwidth for networks with a capacity up to 6 MB/s; beyond this
threshold, compression degrades the performance, with the CPUs used in
this particular case."

Sweeps link capacity with fixed (Delft/Sophia-class) CPUs and locates the
capacity where plain TCP with ample windows overtakes the compressed
stream.
"""

from conftest import once
from paperlinks import DELFT_SOPHIA, measure
from repro.core.utilization import StackSpec

CAPACITIES = [1e6, 2e6, 4e6, 6e6, 8e6, 10e6, 12e6]
TOTAL = 10_000_000


def _link(capacity: float) -> dict:
    link = dict(DELFT_SOPHIA)
    link["capacity"] = capacity
    link["loss"] = 0.0005
    return link


def _run():
    rows = []
    for capacity in CAPACITIES:
        link = _link(capacity)
        # "plain" uses 8 streams so the comparison isolates the compression
        # stage, not the per-stream window cap (the paper's additional
        # measurements had TCP tuned well).
        plain = measure(link, StackSpec.parallel(8), 65536, TOTAL)
        compressed = measure(
            link, StackSpec.parallel(8).with_compression(), 65536, TOTAL
        )
        rows.append((capacity, plain, compressed))
    return rows


def test_compression_crossover(benchmark, report):
    rows = once(benchmark, _run)

    lines = [
        "§6 — compression benefit vs link capacity "
        "(Delft/Sophia-class CPUs, zlib-1)",
        "",
        f"{'capacity MB/s':>14s} {'plain':>10s} {'compressed':>12s} {'winner':>12s}",
    ]
    crossover = None
    for capacity, plain, compressed in rows:
        winner = "compressed" if compressed > plain else "plain"
        if winner == "plain" and crossover is None:
            crossover = capacity
        lines.append(
            f"{capacity / 1e6:>14.0f} {plain:>10.2f} {compressed:>12.2f} {winner:>12s}"
        )
    lines.append(
        f"\ncrossover: compression stops helping at ~{(crossover or 0) / 1e6:.0f} MB/s "
        "(paper: ~6 MB/s)"
    )
    report("compression_crossover", "\n".join(lines))

    # Compression wins clearly on slow links...
    assert rows[0][2] > 1.3 * rows[0][1]
    # ...and loses on fast ones.
    assert rows[-1][2] < rows[-1][1]
    # The crossover falls in the paper's neighbourhood (4-12 MB/s).
    assert crossover is not None and 4e6 <= crossover <= 12e6
