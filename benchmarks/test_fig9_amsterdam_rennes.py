"""Figure 9: bandwidth vs message size, Amsterdam–Rennes WAN.

Paper: capacity 1.6 MB/s, latency 30 ms.  Plain TCP 0.9 MB/s (56%),
4 parallel streams 1.5 MB/s (93%), zlib-1 compression 3.25 MB/s (203% of
capacity), compression+streams peak 3.4 MB/s "with a better overall
performance than with compression only".

Shape assertions: the four series preserve the paper's ordering and the
compression series exceeds the physical link capacity (the 200% effect).
"""

from conftest import once
from paperlinks import AMSTERDAM_RENNES, format_series, measure
from repro.core.utilization import StackSpec

MESSAGE_SIZES = [16384, 65536, 262144, 1048576, 4194304]
SERIES = {
    "plain": StackSpec.tcp(),
    "4 streams": StackSpec.parallel(4),
    "compression": StackSpec.tcp().with_compression(),
    "compression+4 streams": StackSpec.parallel(4).with_compression(),
}
PAPER = {"plain": 0.9, "4 streams": 1.5, "compression": 3.25,
         "compression+4 streams": 3.4}
TOTAL = 8_000_000


def _run():
    rows = []
    for size in MESSAGE_SIZES:
        values = {
            label: measure(AMSTERDAM_RENNES, spec, size, TOTAL)
            for label, spec in SERIES.items()
        }
        rows.append((size, values))
    return rows


def test_fig9_bandwidth_series(benchmark, report, bench_json):
    rows = once(benchmark, _run)

    peak = {label: max(values[label] for _s, values in rows) for label in SERIES}
    capacity = AMSTERDAM_RENNES["capacity"] / 1e6
    bench_json(
        "fig9_amsterdam_rennes",
        unit="MB/s",
        **{
            f"peak_{label.replace(' ', '_').replace('+', '_')}": round(v, 3)
            for label, v in peak.items()
        },
    )

    table = format_series(
        "Figure 9 — Amsterdam-Rennes (1.6 MB/s, 30 ms RTT), MB/s",
        list(SERIES),
        rows,
    )
    table += "\n\npeak per series (paper): " + ", ".join(
        f"{label} {peak[label]:.2f} ({PAPER[label]})" for label in SERIES
    )
    report("fig9_amsterdam_rennes", table)
    benchmark.extra_info["peaks"] = {k: round(v, 2) for k, v in peak.items()}

    # -- the paper's shape -----------------------------------------------------
    # Plain TCP well below capacity (56% in the paper).
    assert 0.3 * capacity < peak["plain"] < 0.75 * capacity
    # Parallel streams recover most of the capacity.
    assert peak["4 streams"] > 1.25 * peak["plain"]
    assert peak["4 streams"] > 0.7 * capacity
    # Compression beats the physical capacity (the 203% effect).
    assert peak["compression"] > 1.2 * capacity
    # The combination performs best overall, as in the paper.
    assert peak["compression+4 streams"] >= 0.95 * peak["compression"]
    assert peak["compression+4 streams"] > peak["4 streams"]
    # Large messages reach higher bandwidth than tiny ones for plain TCP.
    first = rows[0][1]["plain"]
    best_plain = peak["plain"]
    assert best_plain >= first
