"""Table 1: properties of the four establishment methods.

Regenerated two ways: (a) from the method declarations, asserted cell by
cell against the paper's table; (b) behaviourally — for the connectivity
claims, the simulator is probed: does the method actually cross firewalls /
traverse NAT / work for bootstrap?
"""

from conftest import once
from repro.core import (
    CLIENT_SERVER,
    ROUTED,
    SOCKS_PROXY,
    SPLICING,
    table1_matrix,
)
from repro.core.scenarios import GridScenario


def _fmt(value):
    if value is True:
        return "yes"
    if value is False:
        return "no"
    return str(value)


def _probe_crosses_firewalls(method):
    """Behavioural probe: does the method connect between two firewalled
    sites (with gateway proxies available for the proxy method)?"""
    sc = GridScenario(seed=3)
    kind = "severe" if method == SOCKS_PROXY else "firewall"
    # For SOCKS the sites need proxies; 'severe' sites come with them but
    # block outbound, so use firewall + manual proxy instead.
    if method == SOCKS_PROXY:
        sc.add_site("A", "firewall")
        sc.add_site("B", "firewall")
        from repro.core.scenarios import SOCKS_PORT
        from repro.simnet.socks import SocksServer

        for name in ("A", "B"):
            proxy = SocksServer(sc.sites[name].gateway, SOCKS_PORT)
            proxy.start()
            sc.proxies[name] = proxy
    else:
        sc.add_site("A", kind)
        sc.add_site("B", kind)
    sc.add_node("A", "a")
    sc.add_node("B", "b")
    try:
        result = sc.establish_pair("a", "b", methods=[method], until=400)
        return result["echo"] == b"ping"
    except Exception:
        return False


def _run():
    matrix = table1_matrix()
    probes = {
        method: _probe_crosses_firewalls(method)
        for method in (CLIENT_SERVER, SPLICING, SOCKS_PROXY, ROUTED)
    }
    return matrix, probes


def test_table1(benchmark, report):
    matrix, probes = once(benchmark, _run)

    properties = [
        ("Crosses firewalls", "crosses_firewalls"),
        ("NAT support", "nat_support"),
        ("For bootstrap", "for_bootstrap"),
        ("Native TCP", "native_tcp"),
        ("Relayed", "relayed"),
        ("Needs brokering", "needs_brokering"),
    ]
    methods = list(matrix)
    lines = ["Table 1 — connection establishment methods summary", ""]
    header = f"{'':20s}" + "".join(f"{m:>15s}" for m in methods)
    lines.append(header)
    for label, key in properties:
        row = f"{label:20s}" + "".join(
            f"{_fmt(matrix[m][key]):>15s}" for m in methods
        )
        lines.append(row)
    lines.append("")
    lines.append(
        "behavioural probe (connects across firewalled sites): "
        + ", ".join(f"{m}={'yes' if ok else 'no'}" for m, ok in probes.items())
    )
    report("table1_properties", "\n".join(lines))

    # -- the paper's exact cells -------------------------------------------------
    paper = {
        CLIENT_SERVER: (False, "client", True, True, False, False),
        SPLICING: (True, "partial", False, True, False, True),
        SOCKS_PROXY: (True, "yes", False, True, True, True),
        ROUTED: (True, "yes", True, False, True, False),
    }
    keys = [k for _label, k in properties]
    for method, expected in paper.items():
        assert tuple(matrix[method][k] for k in keys) == expected

    # -- behaviour agrees with the declared "crosses firewalls" column ----------
    for method in paper:
        assert probes[method] == matrix[method]["crosses_firewalls"], method
