"""Figure 1: TCP connection establishment packet exchanges.

Left: regular client/server handshake — SYN, SYN|ACK, ACK.
Right: TCP splicing — both sides send SYN; both answer SYN|ACK.

The benchmark captures actual packet traces from the simulated TCP and
asserts the exchanged segment sequences.
"""

from conftest import once
from repro.simnet import Tracer, connect, connect_simultaneous, listen
from repro.simnet.testing import echo_server, two_public_hosts


def _handshake_arrows(tracer, until_payload=True):
    arrows = []
    for entry in tracer.entries:
        seg = entry.segment
        if entry.kind != "rx" or seg is None:
            continue
        if seg.payload and until_payload:
            break
        arrows.append(f"{seg.src[0]} -> {seg.dst[0]}  {seg.flags_str()}")
    return arrows


def _client_server_trace():
    inet, a, b = two_public_hosts(seed=1)
    tracer = Tracer(inet.net, only={"rx"}, hosts={"a", "b"})

    def proc():
        inet.sim.process(echo_server(b, 5000))
        sock = yield from connect(a, (b.ip, 5000))
        yield from sock.send_all(b"x")
        yield from sock.recv_exactly(1)

    inet.sim.process(proc())
    inet.sim.run(until=10)
    return a.ip, b.ip, _handshake_arrows(tracer)


def _splicing_trace():
    inet, a, b = two_public_hosts(seed=1)
    tracer = Tracer(inet.net, only={"rx"}, hosts={"a", "b"})

    def side(host, peer, lport, rport):
        sock = yield from connect_simultaneous(host, (peer.ip, rport), lport)
        yield from sock.send_all(b"x")
        yield from sock.recv_exactly(1)

    inet.sim.process(side(a, b, 7000, 7001))
    inet.sim.process(side(b, a, 7001, 7000))
    inet.sim.run(until=10)
    return a.ip, b.ip, _handshake_arrows(tracer)


def _run():
    return _client_server_trace(), _splicing_trace()


def test_fig1_packet_exchanges(benchmark, report):
    (a_ip, b_ip, cs_arrows), (_a, _b, sp_arrows) = once(benchmark, _run)

    lines = ["Figure 1 — TCP connection establishment", ""]
    lines.append("client/server handshake:")
    lines.extend(f"  {arrow}" for arrow in cs_arrows)
    lines.append("")
    lines.append("TCP splicing (simultaneous SYN):")
    lines.extend(f"  {arrow}" for arrow in sp_arrows)
    report("fig1_handshake_traces", "\n".join(lines))

    # Client/server: SYN -> SYN|ACK -> ACK, asymmetric.
    cs_flags = [arrow.split("  ")[-1] for arrow in cs_arrows]
    assert cs_flags[:3] == ["SYN", "SYN|ACK", "ACK"]
    # The SYN and the final ACK travel in the same direction.
    assert cs_arrows[0].split("  ")[0] == cs_arrows[2].split("  ")[0]

    # Splicing: two crossing SYNs, then two SYN|ACKs — symmetric.
    sp_flags = [arrow.split("  ")[-1] for arrow in sp_arrows]
    assert sp_flags.count("SYN") == 2
    assert sp_flags.count("SYN|ACK") == 2
    directions = {arrow.split("  ")[0] for arrow in sp_arrows if arrow.endswith(" SYN")}
    assert len(directions) == 2  # one bare SYN from each side
