"""Mux tentpole: N channels over one link vs N separately-brokered links.

The point of the mux subsystem is amortization — brokered establishment
(service-link negotiation, rendezvous, NAT probing, fall-back attempts)
is paid once per peer pair instead of once per conversation.  This
benchmark opens 8 logical conversations between an open site and a
broken-NAT site — the paper's most expensive cell: splicing is predicted
feasible, the attempt fails behaviourally, and brokering falls back to
the gateway SOCKS proxy — first as 8 independently-established
``tcp_block`` links, then as 8 channels over one shared
``tcp_block|mux`` carrier, and compares the setup-amortized aggregate
throughput (total payload bytes over the full wall time from the first
connect to the last delivered byte).

The ISSUE's acceptance bar: the muxed variant must be at least 2x.
"""

import random
from typing import Generator

from conftest import once
from repro.core.factory import BrokeredConnectionFactory
from repro.core.scenarios import GridScenario
from repro.core.utilization.spec import StackSpec

N_CHANNELS = 8
CHANNEL_BYTES = 128 * 1024
_CHUNK = 32 * 1024

PAYLOADS = [
    random.Random(f"mux-amortization:{i}").randbytes(CHANNEL_BYTES)
    for i in range(N_CHANNELS)
]


def _run_case(spec_str: str) -> dict:
    sc = GridScenario(seed=29)
    sc.add_site("A", "open", access_bandwidth=2_500_000.0, access_delay=0.01)
    sc.add_site(
        "B", "broken_nat", access_bandwidth=2_500_000.0, access_delay=0.01
    )
    node_a = sc.add_node("A", "a")
    node_b = sc.add_node("B", "b")
    sim = sc.sim
    spec = StackSpec.parse(spec_str)
    res: dict = {"received": 0, "done": 0}

    def send_one(channel, i) -> Generator:
        payload = PAYLOADS[i]
        yield from channel.write(i.to_bytes(4, "big"))
        for off in range(0, len(payload), _CHUNK):
            yield from channel.write(payload[off : off + _CHUNK])
        yield from channel.flush()
        channel.close()

    def read_one(channel) -> Generator:
        idx = int.from_bytes((yield from channel.read_exactly(4)), "big")
        got = yield from channel.read_exactly(len(PAYLOADS[idx]))
        assert got == PAYLOADS[idx]
        channel.close()
        res["received"] += len(got)
        res["done"] += 1
        if res["done"] == N_CHANNELS:
            res["t_end"] = sim.now

    def run_a() -> Generator:
        yield from node_a.start()
        yield from node_b.relay_client.wait_connected(timeout=60)
        factory = BrokeredConnectionFactory(node_a)
        res["t0"] = sim.now
        channels = []
        # one control conversation serves all 8 negotiations in BOTH
        # variants, so the comparison isolates data-link establishment
        service = yield from node_a.open_service_link("b")
        for _ in range(N_CHANNELS):
            channel = yield from factory.connect(service, node_b.info, spec=spec)
            channels.append(channel)
        service.close()
        res["setup"] = sim.now - res["t0"]
        for i, channel in enumerate(channels):
            sim.process(send_one(channel, i), name=f"bench-send-{i}")

    def run_b() -> Generator:
        yield from node_b.start()
        factory = BrokeredConnectionFactory(node_b)
        _peer, service = yield from node_b.accept_service_link()
        for i in range(N_CHANNELS):
            channel = yield from factory.accept(service)
            sim.process(read_one(channel), name=f"bench-read-{i}")
        service.close()

    sim.process(run_a(), name="bench-a")
    sim.process(run_b(), name="bench-b")
    sc.run(until=600)
    assert res["done"] == N_CHANNELS, f"only {res['done']}/{N_CHANNELS} done"
    total = res["t_end"] - res["t0"]
    return {
        "setup_s": res["setup"],
        "total_s": total,
        "bytes": res["received"],
        "mbps": res["received"] / total / 1e6,
    }


def _run() -> dict:
    return {
        "separate": _run_case("tcp_block"),
        "muxed": _run_case("tcp_block|mux"),
    }


def test_mux_setup_amortization(benchmark, report, bench_json):
    cases = once(benchmark, _run)
    sep, mux = cases["separate"], cases["muxed"]
    speedup = mux["mbps"] / sep["mbps"]

    lines = [
        "mux amortization — 8 conversations, open site -> broken-NAT site",
        "",
        f"{'variant':>28s} {'setup':>9s} {'total':>9s} {'aggregate':>12s}",
    ]
    for label, c in (("8 links (tcp_block)", sep),
                     ("1 link, 8 channels (mux)", mux)):
        lines.append(
            f"{label:>28s} {c['setup_s']*1000:8.1f}ms {c['total_s']*1000:8.1f}ms"
            f" {c['mbps']:9.2f}MB/s"
        )
    lines.append("")
    lines.append(f"setup-amortized speedup: {speedup:.2f}x (bar: >= 2.0x)")
    report("mux_amortization", "\n".join(lines))
    bench_json(
        "mux_amortization",
        channels=N_CHANNELS,
        channel_bytes=CHANNEL_BYTES,
        separate_setup_s=round(sep["setup_s"], 4),
        muxed_setup_s=round(mux["setup_s"], 4),
        separate_mbps=round(sep["mbps"], 3),
        muxed_mbps=round(mux["mbps"], 3),
        speedup=round(speedup, 3),
    )

    # establishment is paid once, not 8 times
    assert mux["setup_s"] < sep["setup_s"] / 2
    # the ISSUE's acceptance bar
    assert speedup >= 2.0, f"speedup {speedup:.2f}x below the 2x bar"
