"""Calibrated models of the paper's two measurement WANs (§6).

* **Amsterdam–Rennes** — "high-latency, low-bandwidth": capacity 1.6 MB/s,
  typical latency 30 ms, enough loss that plain TCP reaches ~56% of
  capacity.  Hosts' zlib-1 compression rate is calibrated so compression
  saturates near the paper's 3.25 MB/s.
* **Delft–Sophia** — "high-latency, high-bandwidth": capacity 9 MB/s,
  latency 43 ms; plain TCP is receive-window limited (~19% of capacity).
  Faster hosts: compression tops out near 5 MB/s.

Calibration constants are *hardware parameters* (2004-era CPUs differ per
site pair), documented in EXPERIMENTS.md.  The workload payload is
synthetic data whose measured zlib-1 ratio ≈ 3.5, matching the ratio
implied by the paper's slow-link compression numbers.
"""

from __future__ import annotations

from repro.core.scenarios import GridScenario
from repro.core.utilization.spec import StackSpec
from repro.simnet.cpu import CpuModel
from repro.workloads import payload_with_ratio

__all__ = [
    "AMSTERDAM_RENNES",
    "DELFT_SOPHIA",
    "build_paper_wan",
    "measure",
    "PAYLOAD_RATIO",
]

PAYLOAD_RATIO = 3.6

AMSTERDAM_RENNES = {
    "name": "amsterdam-rennes",
    "capacity": 1.6e6,
    "one_way_delay": 0.015,
    "loss": 0.0025,
    "cpu_rates": {"compress": 3.6e6, "decompress": 20e6, "serialize": 30e6},
}

DELFT_SOPHIA = {
    "name": "delft-sophia",
    "capacity": 9e6,
    "one_way_delay": 0.0215,
    "loss": 0.0005,
    "cpu_rates": {"compress": 5.2e6, "decompress": 30e6, "serialize": 11e6},
}


def build_paper_wan(link: dict, seed: int = 9) -> GridScenario:
    """Two firewalled sites joined by the given WAN; returns the scenario
    with nodes ``src`` and ``dst`` (CPU models attached)."""
    scenario = GridScenario(seed=seed)
    capacity = link["capacity"]
    owd = link["one_way_delay"]
    for index, site in enumerate(("left", "right")):
        scenario.add_site(
            site,
            "firewall",
            access_delay=owd / 2,
            access_bandwidth=capacity,
            access_loss=link["loss"] if index == 0 else 0.0,
            queue_bytes=int(capacity * 2 * owd),
        )
    src = scenario.add_node("left", "src")
    dst = scenario.add_node("right", "dst")
    for node in (src, dst):
        CpuModel(scenario.sim, rates=link["cpu_rates"]).attach(node.host)
    return scenario


def measure(
    link: dict,
    spec: StackSpec,
    message_size: int,
    total_bytes: int,
    seed: int = 9,
) -> float:
    """Throughput (MB/s) of one driver stack on one paper link."""
    scenario = build_paper_wan(link, seed=seed)
    payload = payload_with_ratio(1 << 20, PAYLOAD_RATIO, seed=5)
    result = scenario.measure_stack_throughput(
        "src", "dst", spec, payload, total_bytes, message_size=message_size
    )
    return result["throughput"]


def format_series(title: str, columns: list, rows: list) -> str:
    """Render a figure table: rows of (x, {series: value})."""
    out = [title, ""]
    header = f"{'msg size':>10s}" + "".join(f"{c:>22s}" for c in columns)
    out.append(header)
    for x, values in rows:
        line = f"{x:>10d}" + "".join(f"{values[c]:>22.2f}" for c in columns)
        out.append(line)
    return "\n".join(out)
