"""§8 future work, as an ablation: adaptive compression and stream tuning.

The paper names "the dynamic enabling or disabling of compression" and
"selection of the optimal number of parallel TCP streams" as the next
step.  Both are implemented; this ablation shows the adaptive driver
converging to the right static choice on each link class, and the
BDP-derived stream count matching the best static sweep.
"""

from conftest import once
from paperlinks import AMSTERDAM_RENNES, DELFT_SOPHIA, measure
from repro.core.autotune import recommend_streams
from repro.core.utilization import StackSpec

TOTAL = 8_000_000
MSG = 65536


def _run():
    # Adaptive compression vs the static choices, both link classes.
    # On the fast link the pipe is filled with 8 streams (the paper's best
    # plain configuration), which is where compression turns harmful.
    rows = {}
    for name, link, streams in (
        ("slow", AMSTERDAM_RENNES, 4),
        ("fast", DELFT_SOPHIA, 8),
    ):
        base = StackSpec.parallel(streams)
        rows[name] = {
            "raw": measure(link, base, MSG, TOTAL),
            "compress": measure(link, base.with_compression(), MSG, TOTAL),
            "adaptive": measure(link, base.with_adaptive(), MSG, TOTAL),
        }
    # Stream-count auto-tuning vs a sweep on the fast link.
    sweep = {
        n: measure(DELFT_SOPHIA, StackSpec.parallel(n), MSG, 20_000_000)
        for n in (1, 2, 4, 8, 12)
    }
    recommended = recommend_streams(
        capacity=DELFT_SOPHIA["capacity"],
        rtt=2 * DELFT_SOPHIA["one_way_delay"],
        rcvbuf=65536,
    )
    return rows, sweep, recommended


def test_adaptive_ablation(benchmark, report):
    rows, sweep, recommended = once(benchmark, _run)

    lines = ["§8 ablation — adaptive compression and stream auto-tuning", ""]
    lines.append(f"{'link':>6s} {'raw':>8s} {'compress':>10s} {'adaptive':>10s}")
    for name in ("slow", "fast"):
        r = rows[name]
        lines.append(
            f"{name:>6s} {r['raw']:8.2f} {r['compress']:10.2f} {r['adaptive']:10.2f}"
        )
    lines.append("")
    lines.append("stream-count sweep on the fast link (MB/s):")
    lines.append("  " + ", ".join(f"{n}:{v:.2f}" for n, v in sweep.items()))
    best = max(sweep, key=sweep.get)
    lines.append(
        f"best static count: {best}; BDP-derived recommendation: {recommended}"
    )
    report("ablation_adaptive", "\n".join(lines))

    slow, fast = rows["slow"], rows["fast"]
    # Static choices differ per link class...
    assert slow["compress"] > slow["raw"]
    assert fast["raw"] > fast["compress"]
    # ...and the adaptive driver lands near the winner on both.
    assert slow["adaptive"] > 0.7 * slow["compress"]
    assert fast["adaptive"] > 0.7 * fast["raw"]
    # The BDP rule recommends a near-optimal stream count.
    assert sweep[recommended] > 0.85 * sweep[best]
