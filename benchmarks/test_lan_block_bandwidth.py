"""§4.1: user-space aggregation on a 100 Mbit/s Ethernet LAN.

"Buffering in user space in combination with an explicit flush allows
disabling TCP_DELAY, and ensures a high bandwidth (around 11.8 MB/s on a
100 Mbit/s Ethernet LAN) in combination with a minimal latency."

Compared against the naive strategy the paper warns about: one driver
block per small application send.
"""

from conftest import once
from repro.core.links import TcpLink
from repro.core.utilization import BlockChannel, TcpBlockDriver
from repro.simnet import connect, listen, mb_per_s
from repro.simnet.testing import wan_pair

SMALL_SEND = 1024  # parallel applications send many small packets (§4.1)
TOTAL = 8_000_000
LAN_CAPACITY = 12.5e6  # 100 Mbit/s


def _lan_transfer(block_size: int, flush_each_send: bool):
    # A LAN: full capacity, 50 us one-way.
    inet, a, b = wan_pair(capacity=LAN_CAPACITY, one_way_delay=5e-5, seed=6)
    sim = inet.sim
    res = {}

    def server():
        listener = listen(b, 5000)
        sock = yield from listener.accept()
        channel = BlockChannel(TcpBlockDriver(TcpLink(sock, "client_server")), block_size)
        got = 0
        t0 = None
        while got < TOTAL:
            data = yield from channel.read(1 << 20)
            if not data:
                break
            if t0 is None:
                t0 = sim.now
            got += len(data)
        res["mbps"] = mb_per_s(got, sim.now - t0)

    def client():
        sock = yield from connect(a, (b.ip, 5000))
        channel = BlockChannel(TcpBlockDriver(TcpLink(sock, "client_server")), block_size)
        sent = 0
        chunk = b"m" * SMALL_SEND
        while sent < TOTAL:
            yield from channel.write(chunk)
            if flush_each_send:
                yield from channel.flush()
            sent += len(chunk)
        yield from channel.flush()

    sim.process(server())
    sim.process(client())
    sim.run(until=sim.now + 300)
    return res["mbps"]


def _latency():
    """One small message round trip on the LAN (the 'minimal latency')."""
    inet, a, b = wan_pair(capacity=LAN_CAPACITY, one_way_delay=5e-5, seed=6)
    sim = inet.sim
    res = {}

    def server():
        listener = listen(b, 5000)
        sock = yield from listener.accept()
        channel = BlockChannel(TcpBlockDriver(TcpLink(sock, "client_server")), 65536)
        msg = yield from channel.recv_message()
        yield from channel.send_message(msg)

    def client():
        sock = yield from connect(a, (b.ip, 5000))
        channel = BlockChannel(TcpBlockDriver(TcpLink(sock, "client_server")), 65536)
        t0 = sim.now
        yield from channel.send_message(b"ping-pong-64-bytes".ljust(64))
        yield from channel.recv_message()
        res["rtt"] = sim.now - t0

    sim.process(server())
    sim.process(client())
    sim.run(until=sim.now + 10)
    return res["rtt"]


def _nagle_latency(nodelay: bool) -> float:
    """Two-part small request latency — Nagle's write-write-read penalty
    ("TCP_DELAY ... adds significantly to the latency", §4.1)."""
    from repro.simnet import TcpConfig

    inet, a, b = wan_pair(capacity=LAN_CAPACITY, one_way_delay=5e-5, seed=6)
    sim = inet.sim
    cfg = TcpConfig(nodelay=nodelay, delayed_ack=0.0 if nodelay else 0.04)
    res = {}

    def server():
        b.tcp.config = cfg
        listener = listen(b, 5000)
        sock = yield from listener.accept()
        rtts = []
        for _ in range(5):
            yield from sock.recv_exactly(8)
            yield from sock.send_all(b"resp")

    def client():
        sock = yield from connect(a, (b.ip, 5000), config=cfg)
        samples = []
        for _ in range(5):
            t0 = sim.now
            yield from sock.send_all(b"head")
            yield from sock.send_all(b"body")
            yield from sock.recv_exactly(4)
            samples.append(sim.now - t0)
        res["latency"] = sum(samples) / len(samples)

    sim.process(server())
    sim.process(client())
    sim.run(until=sim.now + 30)
    return res["latency"]


def _run():
    aggregated = _lan_transfer(block_size=65536, flush_each_send=False)
    per_send = _lan_transfer(block_size=65536, flush_each_send=True)
    rtt = _latency()
    nodelay_lat = _nagle_latency(nodelay=True)
    nagle_lat = _nagle_latency(nodelay=False)
    return aggregated, per_send, rtt, nodelay_lat, nagle_lat


def test_lan_aggregation_bandwidth(benchmark, report, bench_json):
    aggregated, per_send, rtt, nodelay_lat, nagle_lat = once(benchmark, _run)
    bench_json(
        "lan_block",
        aggregated_mb_per_s=round(aggregated, 3),
        per_send_mb_per_s=round(per_send, 3),
        rtt_us=round(rtt * 1e6, 1),
        nodelay_latency_us=round(nodelay_lat * 1e6, 1),
        nagle_latency_us=round(nagle_lat * 1e6, 1),
    )

    lines = [
        "§4.1 — TCP_Block aggregation on a 100 Mbit/s LAN",
        "",
        f"aggregated blocks + explicit flush : {aggregated:6.2f} MB/s "
        f"(paper: ~11.8 MB/s)",
        f"one block per {SMALL_SEND}-byte send       : {per_send:6.2f} MB/s",
        f"small-message round-trip latency   : {rtt * 1e6:6.0f} us",
        "",
        "two-part request latency (write-write-read):",
        f"  TCP_NODELAY (library default)    : {nodelay_lat * 1e6:6.0f} us",
        f"  Nagle + delayed ACKs (TCP_DELAY) : {nagle_lat * 1e6:6.0f} us",
    ]
    report("lan_block_bandwidth", "\n".join(lines))

    # Near the paper's 11.8 MB/s (94% of the 12.5 MB/s raw rate).
    assert aggregated > 10.5
    # Aggregation beats per-send flushing (framing + per-packet overhead).
    assert aggregated > per_send
    # Minimal latency: well under a millisecond on the LAN.
    assert rtt < 0.002
    # §4.1: TCP's own aggregation "adds significantly to the latency".
    assert nagle_lat > 5 * nodelay_lat
