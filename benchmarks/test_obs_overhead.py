"""Tracing overhead on the LAN bandwidth workload (acceptance for PR 4).

The flight recorder is *always on* — every node keeps a bounded ring of
lifecycle notes whether or not anyone asked for a trace — so its cost
must be invisible: the acceptance bar is <5% wall-clock overhead on the
lan_block bandwidth transfer versus the recorder disabled outright.  The
opt-in full tracer is measured alongside for the trajectory record (it
may cost more; it is off by default).

Simulated throughput is identical in all modes by construction (the
instrumentation does not touch simulated time), so the comparison is
host wall-clock per mode, min-of-N to shed scheduler noise.
"""

import time

from conftest import once
from repro import obs
from repro.core.scenarios import GridScenario
from repro.core.utilization import StackSpec

LAN_CAPACITY = 12.5e6  # 100 Mbit/s
TOTAL = 6_000_000
REPEATS = 3


class _FlightOff:
    """Stand-in ring that swallows notes (the 'recorder disabled' mode)."""

    node = "off"
    dropped = 0

    def note(self, name, ctx=None, **attrs):
        pass

    def records(self):
        return []


def _transfer(mode: str) -> dict:
    sc = GridScenario(seed=6)
    for name in ("a", "b"):
        sc.add_site(
            name, "open", access_bandwidth=LAN_CAPACITY, access_delay=2.5e-5
        )
    sc.add_node("a", "src")
    sc.add_node("b", "dst")
    if mode == "off":
        for node in sc.nodes.values():
            node.flight = _FlightOff()
        sc.relay.flight = _FlightOff()
    if mode == "tracing":
        obs.enable_tracing()
    try:
        t0 = time.perf_counter()
        result = sc.measure_stack_throughput(
            "src", "dst", StackSpec.tcp(), b"m" * 65536, TOTAL
        )
        wall = time.perf_counter() - t0
    finally:
        if mode == "tracing":
            obs.disable_tracing()
    return {"wall": wall, "throughput": result["throughput"]}


def _run():
    out = {}
    # interleave the modes across repeats so drift hits them evenly
    for mode in ("off", "flight", "tracing"):
        out[mode] = {"wall": float("inf"), "throughput": 0.0}
    for _ in range(REPEATS):
        for mode in out:
            sample = _transfer(mode)
            out[mode]["wall"] = min(out[mode]["wall"], sample["wall"])
            out[mode]["throughput"] = sample["throughput"]
    return out


def test_flight_recorder_overhead_under_5_percent(benchmark, report, bench_json):
    modes = once(benchmark, _run)

    base = modes["off"]["wall"]
    flight_pct = 100.0 * (modes["flight"]["wall"] - base) / base
    tracing_pct = 100.0 * (modes["tracing"]["wall"] - base) / base

    lines = [
        "Tracing overhead — lan_block transfer, wall-clock (min of "
        f"{REPEATS})",
        "",
        f"recorder disabled   : {base * 1000:8.1f} ms  "
        f"({modes['off']['throughput']:.2f} MB/s simulated)",
        f"flight recorder on  : {modes['flight']['wall'] * 1000:8.1f} ms  "
        f"({flight_pct:+.1f}%)",
        f"full tracing on     : {modes['tracing']['wall'] * 1000:8.1f} ms  "
        f"({tracing_pct:+.1f}%)",
    ]
    report("obs_overhead", "\n".join(lines))
    bench_json(
        "tracing_overhead",
        baseline_wall_ms=round(base * 1000, 2),
        flight_wall_ms=round(modes["flight"]["wall"] * 1000, 2),
        tracing_wall_ms=round(modes["tracing"]["wall"] * 1000, 2),
        flight_overhead_pct=round(flight_pct, 2),
        tracing_overhead_pct=round(tracing_pct, 2),
        lan_throughput_mb_per_s=round(modes["flight"]["throughput"], 3),
    )

    # simulated results are mode-independent — the instrumentation must
    # never perturb the experiment it observes
    assert modes["flight"]["throughput"] == modes["off"]["throughput"]
    assert modes["tracing"]["throughput"] == modes["off"]["throughput"]
    # the acceptance bar: the always-on ring is free to first order
    assert flight_pct < 5.0, f"flight recorder costs {flight_pct:.1f}%"
