"""§3.4: the relay is a bottleneck and adds latency.

"Because the data of several nodes are routed through a unique relay, the
relay itself is likely to be a bottleneck, lowering the achievable
bandwidth.  Since the relay adds a receipt/send on the route between the
sender and the receiver, the use of a relay is also likely to raise the
communication latency."
"""

from conftest import once
from repro.core.scenarios import GridScenario
from repro.simnet import mb_per_s

PAIRS = 3
PER_PAIR = 2_000_000
#: the relay runs on a site gateway with a modest uplink (§3.3) — all
#: routed traffic crosses it twice (in and out)
RELAY_UPLINK = 6e6


def _scenario():
    sc = GridScenario(seed=12, relay_bandwidth=RELAY_UPLINK, relay_delay=0.004)
    for i in range(PAIRS):
        sc.add_site(f"L{i}", "open", access_bandwidth=8e6, access_delay=0.005)
        sc.add_site(f"R{i}", "open", access_bandwidth=8e6, access_delay=0.005)
        sc.add_node(f"L{i}", f"src{i}")
        sc.add_node(f"R{i}", f"dst{i}")
    return sc


def _throughputs(methods):
    sc = _scenario()
    res = {}

    def sender(i):
        node = sc.nodes[f"src{i}"]
        peer = sc.nodes[f"dst{i}"]
        yield from node.start()
        while not peer.relay_client.connected:
            yield sc.sim.timeout(0.05)
        service = yield from node.open_service_link(f"dst{i}")
        link = yield from node.connect_data(service, peer.info, methods)
        payload = b"r" * 32768
        sent = 0
        while sent < PER_PAIR:
            yield from link.send_all(payload)
            sent += len(payload)
        link.close()

    def receiver(i):
        node = sc.nodes[f"dst{i}"]
        yield from node.start()
        _peer, service = yield from node.accept_service_link()
        link = yield from node.accept_data(service)
        got = 0
        t0 = None
        while got < PER_PAIR:
            data = yield from link.recv(65536)
            if not data:
                break
            if t0 is None:
                t0 = sc.sim.now
            got += len(data)
        res[i] = mb_per_s(got, sc.sim.now - t0)

    for i in range(PAIRS):
        sc.sim.process(sender(i))
        sc.sim.process(receiver(i))
    sc.run(until=2000)
    return sum(res.values())


def _latency(methods):
    sc = _scenario()
    res = {}

    def sender():
        node = sc.nodes["src0"]
        peer = sc.nodes["dst0"]
        yield from node.start()
        while not peer.relay_client.connected:
            yield sc.sim.timeout(0.05)
        service = yield from node.open_service_link("dst0")
        link = yield from node.connect_data(service, peer.info, methods)
        # measure steady-state round trips
        rtts = []
        for _ in range(5):
            t0 = sc.sim.now
            yield from link.send_all(b"x" * 64)
            yield from link.recv_exactly(64)
            rtts.append(sc.sim.now - t0)
        res["rtt"] = min(rtts)

    def receiver():
        node = sc.nodes["dst0"]
        yield from node.start()
        _peer, service = yield from node.accept_service_link()
        link = yield from node.accept_data(service)
        for _ in range(5):
            data = yield from link.recv_exactly(64)
            yield from link.send_all(data)

    sc.sim.process(sender())
    sc.sim.process(receiver())
    sc.run(until=120)
    return res["rtt"]


def _run():
    direct_bw = _throughputs(["client_server"])
    routed_bw = _throughputs(["routed"])
    direct_rtt = _latency(["client_server"])
    routed_rtt = _latency(["routed"])
    return direct_bw, routed_bw, direct_rtt, routed_rtt


def test_relay_is_a_bottleneck(benchmark, report):
    direct_bw, routed_bw, direct_rtt, routed_rtt = once(benchmark, _run)

    lines = [
        "§3.4 — relay bottleneck "
        f"({PAIRS} concurrent pairs, 8 MB/s site links, "
        f"{RELAY_UPLINK / 1e6:.0f} MB/s relay uplink)",
        "",
        f"aggregate bandwidth, direct links : {direct_bw:7.2f} MB/s",
        f"aggregate bandwidth, via relay    : {routed_bw:7.2f} MB/s",
        f"message round-trip, direct        : {direct_rtt * 1000:7.2f} ms",
        f"message round-trip, via relay     : {routed_rtt * 1000:7.2f} ms",
    ]
    report("relay_bottleneck", "\n".join(lines))

    # Bandwidth collapses through the single relay.
    assert routed_bw < 0.6 * direct_bw
    # Latency rises: the relay adds a receipt/send on the path.
    assert routed_rtt > 1.3 * direct_rtt
