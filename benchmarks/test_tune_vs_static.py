"""Auto-tuned vs best static configuration (the repro.tune acceptance).

The ISSUE-10 criterion for the closed-loop tuner's *planner*: probe the
path (no hand-set knobs anywhere), let :class:`~repro.tune.TunePlanner`
derive the stack — stream count from the BDP rule with loss headroom,
compression from the CPU/wire crossover — and the resulting throughput
must reach at least 95% of the best configuration found by exhaustively
sweeping the static grid (plain TCP and 2/4/8 parallel streams, each
with and without compression) on both of the paper's WANs.

This is the one-shot half of the loop (the converged state); the
*dynamics* — tracking a path that changes mid-transfer — are covered by
the ``tune_*`` chaos scenarios.
"""

from conftest import once
from paperlinks import (
    AMSTERDAM_RENNES,
    DELFT_SOPHIA,
    PAYLOAD_RATIO,
    build_paper_wan,
    measure,
)
from repro.core import PathMonitor
from repro.core.utilization.spec import StackSpec
from repro.tune import LinkSignals, TunePlanner

TOTAL = 8_000_000
MSG = 65536

#: the static sweep the auto-tuned plan competes against
STATIC_GRID = [StackSpec.tcp(), StackSpec.tcp().with_compression()] + [
    spec
    for n in (2, 4, 8)
    for spec in (StackSpec.parallel(n), StackSpec.parallel(n).with_compression())
]


def _probe(link: dict) -> "PathEstimate":
    """Measure the path the way a deployment would: the PathMonitor."""
    scenario = build_paper_wan(link, seed=41)
    src = scenario.nodes["src"]
    dst = scenario.nodes["dst"]
    out = {}

    def initiator():
        yield from src.start()
        while not dst.relay_client.connected:
            yield scenario.sim.timeout(0.05)
        service = yield from src.open_service_link("dst")
        monitor = PathMonitor(src)
        out["estimate"] = yield from monitor.estimate(service, dst.info)
        yield from monitor.finish(service)

    def responder():
        yield from dst.start()
        _peer, service = yield from dst.accept_service_link()
        yield from PathMonitor(dst).serve(service)

    scenario.sim.process(initiator())
    scenario.sim.process(responder())
    scenario.run(until=600)
    return out["estimate"]


def _plan_spec(link: dict) -> StackSpec:
    """Probe → TunePlanner → stack: no hand-set knobs anywhere."""
    estimate = _probe(link)
    signals = LinkSignals(
        rtt=estimate.rtt,
        capacity=estimate.capacity,
        loss_rate=link["loss"],
        streams_active=1,
        compress_rate=link["cpu_rates"]["compress"],
        payload_ratio=PAYLOAD_RATIO,
    )
    plan = TunePlanner().plan(signals)
    spec = (
        StackSpec.parallel(plan.streams) if plan.streams > 1
        else StackSpec.tcp()
    )
    if plan.compress == "on":
        spec = spec.with_compression()
    return spec


def _run():
    rows = []
    for link in (AMSTERDAM_RENNES, DELFT_SOPHIA):
        spec = _plan_spec(link)
        auto = measure(link, spec, MSG, TOTAL)
        grid = {
            str(static): measure(link, static, MSG, TOTAL)
            for static in STATIC_GRID
        }
        best_name, best = max(grid.items(), key=lambda kv: kv[1])
        rows.append((link["name"], str(spec), auto, best_name, best, grid))
    return rows


def test_auto_tuned_matches_best_static(benchmark, report, bench_json):
    rows = once(benchmark, _run)

    lines = ["auto-tuned (repro.tune planner) vs the static grid", ""]
    lines.append(
        f"{'link':>18s} {'auto spec':>26s} {'auto':>7s} "
        f"{'best static':>26s} {'best':>7s} {'ratio':>6s}"
    )
    metrics = {}
    for name, spec, auto, best_name, best, _grid in rows:
        ratio = auto / best
        lines.append(
            f"{name:>18s} {spec:>26s} {auto:>7.2f} "
            f"{best_name:>26s} {best:>7.2f} {ratio:>6.3f}"
        )
        key = name.replace("-", "_")
        metrics[f"{key}_auto_mbps"] = round(auto, 3)
        metrics[f"{key}_best_static_mbps"] = round(best, 3)
        metrics[f"{key}_ratio"] = round(ratio, 4)
        metrics[f"{key}_auto_spec"] = spec
        metrics[f"{key}_best_static_spec"] = best_name
    report("tune_vs_static", "\n".join(lines))
    bench_json("tune_vs_static", **metrics)

    for name, _spec, auto, _best_name, best, _grid in rows:
        # The acceptance bar: >= 95% of the best static configuration,
        # found without any hand-set knob.
        assert auto >= 0.95 * best, (name, auto, best)
