"""Figure 2: establishment with stateful firewalls on both sites.

Left: the client/server handshake fails — the responder's firewall drops
the inbound SYN.  Right: TCP splicing succeeds — each firewall records the
outgoing SYN and therefore admits the peer's crossing SYN.
"""

import pytest

from conftest import once
from repro.core.scenarios import GridScenario
from repro.simnet import ConnectTimeout, Tracer, connect, connect_simultaneous, listen


def _build():
    sc = GridScenario(seed=2)
    sc.add_site("A", "firewall")
    sc.add_site("B", "firewall")
    a = sc.sites["A"].add_node("a-node")
    b = sc.sites["B"].add_node("b-node")
    return sc, a, b


def _client_server_attempt():
    sc, a, b = _build()
    tracer = Tracer(sc.inet.net)
    outcome = {}

    def server():
        listener = listen(b, 5000)
        sock = yield from listener.accept()
        outcome["accepted"] = True

    def client():
        try:
            yield from connect(a, (b.ip, 5000))
            outcome["connected"] = True
        except ConnectTimeout:
            outcome["connected"] = False

    sc.sim.process(server())
    sc.sim.process(client())
    sc.run(until=120)
    drops = [
        e for e in tracer.drops()
        if e.segment is not None and e.segment.syn and "Firewall" in e.reason
    ]
    return outcome, len(drops)


def _splicing_attempt():
    sc, a, b = _build()
    outcome = {}

    def side(host, peer_ip, lport, rport, key):
        try:
            sock = yield from connect_simultaneous(host, (peer_ip, rport), lport)
            yield from sock.send_all(b"!")
            yield from sock.recv_exactly(1)
            outcome[key] = True
        except Exception:
            outcome[key] = False

    sc.sim.process(side(a, b.ip, 7000, 7001, "a"))
    sc.sim.process(side(b, a.ip, 7001, 7000, "b"))
    sc.run(until=120)
    return outcome


def _run():
    return _client_server_attempt(), _splicing_attempt()


def test_fig2_firewalled_establishment(benchmark, report):
    (cs_outcome, syn_drops), sp_outcome = once(benchmark, _run)

    lines = [
        "Figure 2 — establishment through stateful firewalls",
        "",
        f"client/server handshake: connected={cs_outcome.get('connected')} "
        f"(inbound SYNs dropped by firewall: {syn_drops})",
        f"TCP splicing:            side A={sp_outcome.get('a')}, "
        f"side B={sp_outcome.get('b')}",
    ]
    report("fig2_firewall_traces", "\n".join(lines))

    # Left half of the figure: the handshake fails, SYNs die at the firewall.
    assert cs_outcome["connected"] is False
    assert "accepted" not in cs_outcome
    assert syn_drops >= 1
    # Right half: splicing establishes in both directions.
    assert sp_outcome == {"a": True, "b": True}
