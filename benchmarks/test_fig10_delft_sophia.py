"""Figure 10: bandwidth vs message size, Delft–Sophia WAN.

Paper: capacity 9 MB/s, latency 43 ms.  Plain TCP 1.7 MB/s (19% — the
receive-window cap), 4 streams 4.6 MB/s (51%), 8 streams 7.95 MB/s (88%).
"On this fast link, compression degraded performance": compression reaches
5 MB/s and compression+streams 3.5 MB/s — both below 8 plain streams.

Shape assertions: window-capped plain TCP, monotone stream scaling, and
every compression variant below the best plain-streams series.

Known deviation (documented in EXPERIMENTS.md): our compression+streams
lands near compression-alone instead of clearly below it; the governing
claim — compression loses to plain striping on a fast link — holds.
"""

from conftest import once
from paperlinks import DELFT_SOPHIA, format_series, measure
from repro.core.utilization import StackSpec

MESSAGE_SIZES = [46656, 279936, 1679616]  # the paper's x-axis values
SERIES = {
    "plain": StackSpec.tcp(),
    "4 streams": StackSpec.parallel(4),
    "8 streams": StackSpec.parallel(8),
    "compression": StackSpec.tcp().with_compression(),
    "compression+4 streams": StackSpec.parallel(4).with_compression(),
}
PAPER = {"plain": 1.7, "4 streams": 4.6, "8 streams": 7.95,
         "compression": 5.0, "compression+4 streams": 3.5}
TOTAL = 25_000_000


def _run():
    rows = []
    for size in MESSAGE_SIZES:
        values = {
            label: measure(DELFT_SOPHIA, spec, size, TOTAL)
            for label, spec in SERIES.items()
        }
        rows.append((size, values))
    return rows


def test_fig10_bandwidth_series(benchmark, report, bench_json):
    rows = once(benchmark, _run)
    peak = {label: max(values[label] for _s, values in rows) for label in SERIES}
    capacity = DELFT_SOPHIA["capacity"] / 1e6
    bench_json(
        "fig10_delft_sophia",
        unit="MB/s",
        **{
            f"peak_{label.replace(' ', '_').replace('+', '_')}": round(v, 3)
            for label, v in peak.items()
        },
    )

    table = format_series(
        "Figure 10 — Delft-Sophia (9 MB/s, 43 ms RTT), MB/s",
        list(SERIES),
        rows,
    )
    table += "\n\npeak per series (paper): " + ", ".join(
        f"{label} {peak[label]:.2f} ({PAPER[label]})" for label in SERIES
    )
    report("fig10_delft_sophia", table)
    benchmark.extra_info["peaks"] = {k: round(v, 2) for k, v in peak.items()}

    # -- the paper's shape -----------------------------------------------------
    # Plain TCP is receive-window limited far below capacity (19%).
    assert peak["plain"] < 0.3 * capacity
    # Streams scale: 1 < 4 < 8, with 8 streams near capacity (88%).
    assert peak["plain"] < peak["4 streams"] < peak["8 streams"]
    assert peak["8 streams"] > 0.7 * capacity
    assert peak["4 streams"] > 2.2 * peak["plain"]
    # Compression helps over plain single-stream but cannot match striping:
    # "on this fast link, compression degraded performance".
    assert peak["compression"] > peak["plain"]
    assert peak["compression"] < peak["8 streams"]
    assert peak["compression+4 streams"] < peak["8 streams"]
