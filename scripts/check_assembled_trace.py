#!/usr/bin/env python
"""CI gate for `make smoke-assemble`: verify the assembled hop structure.

Reads the JSON form of ``python -m repro.obs.assemble`` from stdin (or a
file argument) and asserts that the routed-transfer smoke scenario
produced what the tentpole promises: at least one causal trace spanning
the initiator, the relay and the target, with cross-node hops attributed
from the initiator and a non-empty critical path.  Exits non-zero with a
reason otherwise.
"""

from __future__ import annotations

import json
import sys

REQUIRED_NODES = {"alice", "bob", "relay"}


def check(result: dict) -> str | None:
    """Returns an error string, or None if the structure is as expected."""
    if not result.get("traces"):
        return "no traces assembled"
    spanning = [
        t for t in result["traces"] if REQUIRED_NODES <= set(t["nodes"])
    ]
    if not spanning:
        return (
            f"no trace spans {sorted(REQUIRED_NODES)}; saw "
            f"{[t['nodes'] for t in result['traces']]}"
        )
    trace = spanning[0]
    hop_edges = {(h["from"]["node"], h["to"]["node"]) for h in trace["hops"]}
    for edge in (("alice", "relay"), ("alice", "bob")):
        if edge not in hop_edges:
            return f"missing hop {edge[0]} -> {edge[1]}; have {sorted(hop_edges)}"
    if any(h["latency"] < 0 for h in trace["hops"]):
        return "negative hop latency survived skew correction"
    if not trace["critical_path"]:
        return "empty critical path"
    if trace["critical_path"][0]["node"] != "alice":
        return (
            "critical path does not start at the initiator: "
            f"{trace['critical_path'][0]}"
        )
    return None


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as handle:
            result = json.load(handle)
    else:
        result = json.load(sys.stdin)
    error = check(result)
    if error:
        print(f"smoke-assemble: FAIL: {error}", file=sys.stderr)
        return 1
    trace = [
        t for t in result["traces"] if REQUIRED_NODES <= set(t["nodes"])
    ][0]
    print(
        f"smoke-assemble: OK: trace {trace['trace_id']} spans "
        f"{','.join(trace['nodes'])} with {len(trace['hops'])} hops, "
        f"critical path of {len(trace['critical_path'])} spans"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
