#!/usr/bin/env python
"""CI gate for `make smoke-assemble` / `make smoke-mux`.

Reads the JSON form of ``python -m repro.obs.assemble`` from stdin (or a
file argument) and asserts that the routed smoke scenario produced what
the tentpole promises: at least one causal trace spanning the initiator,
the relay and the target, with cross-node hops attributed from the
initiator and a non-empty critical path.  With ``--mux`` it additionally
verifies the muxed fan-in shape: many conversations whose channel-open
spans cross from the initiator to the responder over one shared carrier.
Exits non-zero with a reason otherwise.
"""

from __future__ import annotations

import json
import sys

REQUIRED_NODES = {"alice", "bob", "relay"}

#: --mux: at least this many conversations must assemble cross-node
MIN_MUX_CONVERSATIONS = 16


def _span_names(span: dict, out: set) -> set:
    out.add(span.get("name"))
    for child in span.get("children", []):
        _span_names(child, out)
    return out


def _trace_span_names(trace: dict) -> set:
    names: set = set()
    for root in trace.get("roots", []):
        _span_names(root, names)
    return names


def check(result: dict) -> str | None:
    """Returns an error string, or None if the structure is as expected."""
    if not result.get("traces"):
        return "no traces assembled"
    spanning = [
        t for t in result["traces"] if REQUIRED_NODES <= set(t["nodes"])
    ]
    if not spanning:
        return (
            f"no trace spans {sorted(REQUIRED_NODES)}; saw "
            f"{[t['nodes'] for t in result['traces']]}"
        )
    trace = spanning[0]
    hop_edges = {(h["from"]["node"], h["to"]["node"]) for h in trace["hops"]}
    for edge in (("alice", "relay"), ("alice", "bob")):
        if edge not in hop_edges:
            return f"missing hop {edge[0]} -> {edge[1]}; have {sorted(hop_edges)}"
    if any(h["latency"] < 0 for h in trace["hops"]):
        return "negative hop latency survived skew correction"
    if not trace["critical_path"]:
        return "empty critical path"
    if trace["critical_path"][0]["node"] != "alice":
        return (
            "critical path does not start at the initiator: "
            f"{trace['critical_path'][0]}"
        )
    return None


def check_mux(result: dict) -> str | None:
    """Muxed fan-in: conversations join the causal trace across nodes.

    Only the first conversation runs establishment; every later one just
    opens a channel over the shared carrier — its OPEN frame carries the
    trace context, so its (tiny) trace must still span both endpoints.
    """
    established = [
        t for t in result["traces"]
        if "mux.establish" in _trace_span_names(t)
    ]
    if not established:
        return "no trace contains a mux.establish span"
    conversations = [
        t for t in result["traces"]
        if "mux.channel_open" in _trace_span_names(t)
        and {"alice", "bob"} <= set(t["nodes"])
    ]
    if len(conversations) < MIN_MUX_CONVERSATIONS:
        return (
            f"only {len(conversations)} cross-node muxed conversations "
            f"assembled (need >= {MIN_MUX_CONVERSATIONS})"
        )
    return None


def main(argv: list[str]) -> int:
    mux = "--mux" in argv
    argv = [a for a in argv if a != "--mux"]
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as handle:
            result = json.load(handle)
    else:
        result = json.load(sys.stdin)
    gate = "smoke-mux" if mux else "smoke-assemble"
    error = check(result)
    if error is None and mux:
        error = check_mux(result)
    if error:
        print(f"{gate}: FAIL: {error}", file=sys.stderr)
        return 1
    trace = [
        t for t in result["traces"] if REQUIRED_NODES <= set(t["nodes"])
    ][0]
    extra = ""
    if mux:
        n = sum(
            1
            for t in result["traces"]
            if "mux.channel_open" in _trace_span_names(t)
            and {"alice", "bob"} <= set(t["nodes"])
        )
        extra = f", {n} cross-node muxed conversations"
    print(
        f"{gate}: OK: trace {trace['trace_id']} spans "
        f"{','.join(trace['nodes'])} with {len(trace['hops'])} hops, "
        f"critical path of {len(trace['critical_path'])} spans{extra}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
