#!/usr/bin/env python
"""Fleet-scale flow-tier smoke: 100k endpoints, partition, <60s wall.

Runs the ``fleet_fanin`` chaos scenario at 100k endpoints on the
flow-level fidelity tier, with a mid-run fleet partition and the session
layer on, and asserts:

* every invariant passed (delivery, resources, mux credit conservation,
  session resume accounting, relay byte accounting);
* every flow completed and the session layer resumed a non-trivial
  number of stalled transfers across the partition heal;
* wall-clock stayed under the budget (default 60 s) — the whole point
  of the flow tier.

Usage::

    python scripts/smoke_flow.py [--endpoints N] [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--endpoints", type=int, default=100_000)
    parser.add_argument("--waves", type=int, default=10)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--budget", type=float, default=60.0, help="wall-clock limit (s)"
    )
    args = parser.parse_args(argv)

    os.environ["REPRO_FLEET_ENDPOINTS"] = str(args.endpoints)
    os.environ["REPRO_FLEET_WAVES"] = str(args.waves)
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.chaos import run_chaos

    t0 = time.monotonic()
    report = run_chaos(
        scenario="fleet_fanin",
        seed=args.seed,
        plan="link_down@12:site=hub,for=5",
        sessions=True,
        until=600.0,
    )
    wall = time.monotonic() - t0

    print(report.summary())
    stats = report.stats
    print(
        f"  endpoints={stats['endpoints']} "
        f"flows_completed={stats['flows_completed']} "
        f"bytes={stats['relay_forwarded_bytes']} "
        f"resumes={stats['reconnects']} "
        f"rate_resolves={stats['rate_resolves']} "
        f"sim={stats['sim_seconds']:.0f}s wall={wall:.1f}s"
    )

    failures = []
    if not report.ok:
        failures.append(f"invariants violated: {report.violations[:5]}")
    if stats["flows_completed"] != args.endpoints:
        failures.append(
            f"{stats['flows_completed']}/{args.endpoints} flows completed"
        )
    if stats["reconnects"] <= 0:
        failures.append("partition exercised no session resumes")
    if wall > args.budget:
        failures.append(f"wall-clock {wall:.1f}s exceeds {args.budget}s budget")

    for failure in failures:
        print(f"SMOKE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"smoke-flow OK: {args.endpoints} endpoints in {wall:.1f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
