#!/usr/bin/env python
"""Closed-loop tuner smoke: convergence polarity on the sim backend.

Runs the three ``tune_*`` chaos scenarios (simulated backend, one seed)
and asserts the control story end to end:

* **tune_degrade** — a mid-transfer path degradation sheds parallel
  streams while the pipe is thin and regrows them after the heal;
* **tune_loss_burst** — a loss burst earns recovery streams (the
  loss-headroom term) and relaxes after it clears;
* **tune_bandwidth_step** — a bandwidth step at transfer start is
  tracked down, then back up on restore;
* every run holds the provable no-oscillation bound (at most one change
  per knob per hysteresis window — enforced as a chaos invariant) and
  delivers every payload byte intact.

Usage::

    python scripts/smoke_tune.py [--seed N] [--bundle DIR]
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--bundle", default=None,
        help="directory for postmortem bundles on invariant failure",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.chaos import run_chaos
    from repro.chaos.tune import TUNE_PLANS

    failures = []
    t0 = time.monotonic()
    for name, plan in sorted(TUNE_PLANS.items()):
        report = run_chaos(
            scenario=name,
            seed=args.seed,
            plan=plan,
            bundle_dir=args.bundle,
        )
        tune = report.stats.get("tune", {})
        decisions = tune.get("decisions", [])
        trace = " ".join(
            f"{d['knob']}:{d['old']}->{d['new']}@{d['at']:.1f}"
            for d in decisions
        )
        status = "ok" if report.ok else "FAIL"
        print(f"[smoke-tune] {name:<20s} seed={args.seed} {status} "
              f"samples={tune.get('samples', 0)} "
              f"changes={tune.get('changes', 0)} "
              f"suppressed={tune.get('suppressed', 0)}")
        print(f"[smoke-tune]   {trace}")
        if not report.ok:
            failures.append((name, report.violations))
            for violation in report.violations:
                print(f"[smoke-tune]   VIOLATION: {violation}")
        elif not decisions:
            failures.append((name, ["tuner made no decisions"]))
            print("[smoke-tune]   VIOLATION: tuner made no decisions")

    elapsed = time.monotonic() - t0
    if failures:
        print(f"[smoke-tune] FAILED ({len(failures)} scenario(s), "
              f"{elapsed:.1f}s)")
        return 1
    print(f"[smoke-tune] all {len(TUNE_PLANS)} scenarios converged "
          f"({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
