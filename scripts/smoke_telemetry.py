#!/usr/bin/env python
"""Telemetry-plane + canary-gate smoke: both polarities, with capture.

Runs the ``canary_rollout`` chaos scenario (simulated backend) in both
polarities and asserts the full gate story end to end:

* **bad policy** — a canary throughput SLO breaches inside the bake
  window, the gate rolls the canaries back, the trigger names a canary
  source, and the controls never breach;
* **healthy policy** — a clean bake promotes the change to the fleet
  with zero breaches;
* both runs finish the transfer byte-identically (every chaos
  invariant, including telemetry stream monotonicity, holds);
* the streaming-telemetry capture written alongside each run validates
  against the JSONL schema and feeds the ``repro.obs.watch`` health
  renderer.

The captures are left at ``--out`` for artifact upload, so a CI failure
ships the delta stream that fed the gate's decision.

Usage::

    python scripts/smoke_telemetry.py [--seed N] [--out DIR]
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out", default="/tmp/repro-telemetry-smoke",
        help="directory for the telemetry JSONL captures",
    )
    parser.add_argument("--until", type=float, default=60.0)
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.chaos import run_chaos
    from repro.obs import validate_jsonl
    from repro.obs.telemetry import TelemetryAggregator
    from repro.obs.watch import ingest_lines, render_health

    os.makedirs(args.out, exist_ok=True)
    failures = []
    t0 = time.monotonic()
    for polarity, scenario, want_state in (
        ("bad", "canary_rollout", "rolled_back"),
        ("good", "canary_rollout_good", "promoted"),
    ):
        capture = os.path.join(args.out, f"telemetry_{polarity}.jsonl")
        report = run_chaos(
            scenario=scenario,
            seed=args.seed,
            until=args.until,
            telemetry_path=capture,
        )
        print(report.summary())
        rollout = report.stats["rollout"]
        breaches = report.stats["slo_breaches"]
        print(
            f"  [{polarity}] state={rollout['state']} "
            f"applied_at={rollout['applied_at']} "
            f"decided_at={rollout['decided_at']} "
            f"breaches={breaches} "
            f"records={report.stats['telemetry_records']}"
        )
        if not report.ok:
            failures.append(
                f"[{polarity}] invariants violated: {report.violations[:5]}"
            )
        if rollout["state"] != want_state:
            failures.append(
                f"[{polarity}] gate decided {rollout['state']!r}, "
                f"wanted {want_state!r}"
            )
        if polarity == "bad":
            decided = rollout["decided_at"] - rollout["applied_at"]
            if decided > rollout["bake_seconds"]:
                failures.append(
                    f"[bad] rollback took {decided:.1f}s, past the "
                    f"{rollout['bake_seconds']}s bake window"
                )
            trigger = rollout["trigger"] or {}
            if trigger.get("source") not in ("c1", "c2"):
                failures.append(f"[bad] trigger was not a canary: {trigger}")
        elif breaches != 0:
            failures.append(f"[good] clean bake still breached {breaches}x")
        counts = validate_jsonl(capture)
        if counts.get("telemetry", 0) != report.stats["telemetry_records"]:
            failures.append(
                f"[{polarity}] capture {capture} holds "
                f"{counts.get('telemetry', 0)} records, run produced "
                f"{report.stats['telemetry_records']}"
            )
        # the capture drives the health view (what CI readers will open)
        agg = TelemetryAggregator()
        with open(capture, encoding="utf-8") as handle:
            ingest_lines(handle, agg)
        print("\n".join(
            f"  {line}" for line in render_health(agg).splitlines()
        ))

    wall = time.monotonic() - t0
    for failure in failures:
        print(f"SMOKE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"smoke-telemetry OK: both polarities in {wall:.1f}s "
              f"(captures in {args.out})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
