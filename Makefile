PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-obs smoke-obs smoke-assemble smoke-mux smoke-flow smoke-telemetry smoke-tune chaos chaos-sweep chaos-resume chaos-mux chaos-mesh chaos-tune live-chaos golden-gate golden-capture golden-soak

test:
	$(PYTHON) -m pytest -x -q

test-obs:
	$(PYTHON) -m pytest -q tests/obs tests/test_obs_smoke.py

# Run a traced simnet scenario end to end, validate the exported JSON
# lines against the observability schema, and render the report.
smoke-obs:
	$(PYTHON) -m pytest -q tests/test_obs_smoke.py
	$(PYTHON) examples/auto_selection.py --trace /tmp/repro-obs-smoke.jsonl
	$(PYTHON) -m repro.obs.report /tmp/repro-obs-smoke.jsonl

# Routed 3-node chaos transfer -> per-node JSONL exports -> assembled
# causal trace; the checker asserts the initiator/relay/target hop
# structure (the PR-4 tentpole, end to end).
ASSEMBLE_DIR := /tmp/repro-assemble-smoke

smoke-assemble:
	rm -rf $(ASSEMBLE_DIR)
	$(PYTHON) -m repro.chaos --scenario wan_transfer_routed --sessions \
		--seed 3 --plan "relay_crash@2:for=4" --export-dir $(ASSEMBLE_DIR)
	$(PYTHON) -m repro.obs.assemble $(ASSEMBLE_DIR)/*.jsonl
	$(PYTHON) -m repro.obs.assemble $(ASSEMBLE_DIR)/*.jsonl --json \
		| $(PYTHON) scripts/check_assembled_trace.py

# Routed 3-node muxed fan-in: 32 channels over ONE carrier through the
# relay -> per-node JSONL exports -> assembled causal trace; the checker
# additionally asserts the cross-node muxed-conversation shape.
MUX_SMOKE_DIR := /tmp/repro-mux-smoke

smoke-mux:
	rm -rf $(MUX_SMOKE_DIR)
	$(PYTHON) -m repro.chaos --scenario mux_fanin --seed 3 \
		--export-dir $(MUX_SMOKE_DIR)
	$(PYTHON) -m repro.obs.assemble $(MUX_SMOKE_DIR)/*.jsonl
	$(PYTHON) -m repro.obs.assemble $(MUX_SMOKE_DIR)/*.jsonl --json \
		| $(PYTHON) scripts/check_assembled_trace.py --mux

# Fleet-scale flow-tier smoke: 100k endpoints fan into one hub across
# a mid-run partition, full invariant suite, <60s wall-clock budget
# (docs/SIMNET.md).
smoke-flow:
	$(PYTHON) scripts/smoke_flow.py

# Telemetry plane + canary gate smoke (docs/ROLLOUT.md): canary_rollout
# in both polarities — the bad policy must roll back inside the bake
# window on a canary SLO breach, the healthy one must promote — with
# the streaming-telemetry captures validated and left under
# $(TELEMETRY_SMOKE_DIR) for CI artifact upload.
TELEMETRY_SMOKE_DIR := /tmp/repro-telemetry-smoke

smoke-telemetry:
	$(PYTHON) scripts/smoke_telemetry.py --out $(TELEMETRY_SMOKE_DIR)

# Closed-loop tuner smoke (docs/TUNING.md): the three tune_* chaos
# scenarios on the sim backend — shed/regrow polarity, loss headroom,
# step tracking, and the no-oscillation invariant — in a few seconds.
smoke-tune:
	$(PYTHON) scripts/smoke_tune.py --bundle $(TUNE_BUNDLE_DIR)

# Skip tests that bind real loopback sockets (useful in sandboxes).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not livenet"

# The demo fault plan from the chaos harness: relay crash mid-transfer
# plus two link flaps.  Recovery is visible in the exported trace.
CHAOS_PLAN := relay_crash@2:for=8;link_down@12:site=A,for=0.4;link_down@13.5:site=B,for=0.4

chaos:
	$(PYTHON) -m repro.chaos --seed 1 --plan "$(CHAOS_PLAN)" \
		--trace /tmp/repro-chaos.jsonl
	$(PYTHON) -m repro.obs.report /tmp/repro-chaos.jsonl

chaos-sweep:
	$(PYTHON) -m repro.chaos --seeds 1-20 --plan "$(CHAOS_PLAN)"

# Live-socket chaos tier (docs/TESTING.md §4): the marked suite runs
# real loopback transfers through the fault-injecting proxy, then the
# golden-trace gate diffs assembled-trace structure against goldens/.
live-chaos:
	$(PYTHON) -m pytest -q -m live_chaos
	$(PYTHON) -m repro.chaos.live validate

golden-gate:
	$(PYTHON) -m repro.chaos.live validate

golden-capture:
	$(PYTHON) -m repro.chaos.live capture

golden-soak:
	$(PYTHON) -m repro.chaos.live soak --seeds 1,2,3

# Mid-stream fault matrix for the session layer (docs/SESSIONS.md):
# each fault kills an in-flight stream; --sessions must carry it.
# Mux chaos seed sweep: fan-in fairness/credit-conservation plus the
# bulk-vs-interactive starvation bound (docs/MUX.md).
chaos-mux:
	$(PYTHON) -m repro.chaos --seeds 1-5 --scenario mux_fanin
	$(PYTHON) -m repro.chaos --seeds 1-5 --scenario mux_starvation

# Mesh failover smoke (docs/MESH.md): kill the carrying relay (and a
# second one) mid-transfer over the 3-relay mesh on BOTH backends.
# Sessions must resume on a surviving relay with zero byte loss inside
# the gossip detection bound; invariant failures dump postmortem
# bundles under $(MESH_BUNDLE_DIR) for CI artifact upload.
MESH_BUNDLE_DIR := /tmp/repro-mesh-bundles
MESH_PLAN_SIM := relay_kill@2:relay=r1;relay_kill@2.2:relay=r2
MESH_PLAN_LIVE := relay_kill@0.45:relay=r1;relay_kill@0.6:relay=r2

chaos-mesh:
	$(PYTHON) -m repro.chaos --sessions --seeds 1-3 \
		--scenario mesh_failover --plan "$(MESH_PLAN_SIM)" \
		--bundle $(MESH_BUNDLE_DIR)
	$(PYTHON) -m repro.chaos --sessions --seeds 1-3 \
		--scenario relay_chain \
		--plan "relay_partition@2:relay=r2,peers=r3,for=2" \
		--bundle $(MESH_BUNDLE_DIR)
	$(PYTHON) -m repro.chaos --sessions --seeds 1-3 \
		--scenario nat_to_nat --plan "$(MESH_PLAN_SIM)" \
		--bundle $(MESH_BUNDLE_DIR)
	$(PYTHON) -m repro.chaos --backend live --sessions --seeds 1-3 \
		--scenario mesh_failover --plan "$(MESH_PLAN_LIVE)" \
		--bundle $(MESH_BUNDLE_DIR)

# Closed-loop tuner sweep (docs/TUNING.md): 3-seed sim sweep over the
# three convergence scenarios, then the live twin — a latency fault
# through the chaos proxy that the tuner must answer with a mux
# CREDIT-window renegotiation on the wire.  Invariant failures dump
# postmortem bundles under $(TUNE_BUNDLE_DIR) for CI artifact upload.
TUNE_BUNDLE_DIR := /tmp/repro-tune-bundles
TUNE_PLAN_DEGRADE := wan_degrade@5:site=S,scale=5,for=5
TUNE_PLAN_LOSS := wan_degrade@5:site=S,scale=1,loss=0.01,for=5
TUNE_PLAN_STEP := wan_degrade@0.5:site=S,scale=5,for=8
TUNE_PLAN_LIVE := latency@1.2:site=HUB,delay=0.08,for=2.5

chaos-tune:
	$(PYTHON) -m repro.chaos --seeds 1-3 --scenario tune_degrade \
		--plan "$(TUNE_PLAN_DEGRADE)" --bundle $(TUNE_BUNDLE_DIR)
	$(PYTHON) -m repro.chaos --seeds 1-3 --scenario tune_loss_burst \
		--plan "$(TUNE_PLAN_LOSS)" --bundle $(TUNE_BUNDLE_DIR)
	$(PYTHON) -m repro.chaos --seeds 1-3 --scenario tune_bandwidth_step \
		--plan "$(TUNE_PLAN_STEP)" --bundle $(TUNE_BUNDLE_DIR)
	$(PYTHON) -m repro.chaos --backend live --seeds 1-3 \
		--scenario tune_degrade --plan "$(TUNE_PLAN_LIVE)" \
		--bundle $(TUNE_BUNDLE_DIR)

chaos-resume:
	$(PYTHON) -m repro.chaos --sessions --seeds 1-5 \
		--scenario wan_transfer --plan "conntrack_flush@3:site=B"
	$(PYTHON) -m repro.chaos --sessions --seeds 1-5 \
		--scenario wan_transfer --plan "nat_expiry@3:site=B"
	$(PYTHON) -m repro.chaos --sessions --seeds 1-5 \
		--scenario wan_transfer_routed --plan "relay_crash@2:for=4"
	$(PYTHON) -m repro.chaos --sessions --seeds 1-5 \
		--scenario wan_transfer_routed --plan "peer_drop@2:node=bob"
	$(PYTHON) -m repro.chaos --sessions --seeds 1-5 \
		--scenario socks_transfer --plan "proxy_restart@2:site=B,for=2"
	$(PYTHON) -m repro.chaos --sessions --seeds 1-5 \
		--scenario ipl_fanin \
		--plan "conntrack_flush@2.5:site=HUB;link_down@3.5:site=W2,for=0.5"
