PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-obs smoke-obs

test:
	$(PYTHON) -m pytest -x -q

test-obs:
	$(PYTHON) -m pytest -q tests/obs tests/test_obs_smoke.py

# Run a traced simnet scenario end to end, validate the exported JSON
# lines against the observability schema, and render the report.
smoke-obs:
	$(PYTHON) -m pytest -q tests/test_obs_smoke.py
	$(PYTHON) examples/auto_selection.py --trace /tmp/repro-obs-smoke.jsonl
	$(PYTHON) -m repro.obs.report /tmp/repro-obs-smoke.jsonl
