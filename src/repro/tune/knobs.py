"""Knob surfaces: how a plan's target values reach a running stack.

The loop is knob-agnostic: anything with ``supports``/``get``/``set``
works.  :class:`StackKnobs` binds the names the planner emits to the
live objects a negotiated stack is made of:

* ``streams``        — :meth:`RebalancingParallelDriver.set_active_streams`
* ``compress``       — :attr:`AdaptiveCompressionDriver.force_mode`
* ``replay_buffer``  — :meth:`SessionLink.set_max_buffer`
* ``mux_window``     — :meth:`MuxChannel.retune_window` (sim or live)
* ``rcvbuf``         — recorded for the next establishment (existing
  simulated TCP connections model a fixed OS buffer; the value feeds
  re-planning and new links)

:class:`StaticKnobs` is a dict: the test/bench double, and the natural
target when the knob is an application-level policy (a
:class:`~repro.tune.planner.TunerPolicy` pace, a live sender's window).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["KnobError", "StaticKnobs", "StackKnobs"]

_MODES = {"on": "compress", "off": "raw", "auto": None}


class KnobError(Exception):
    """Unknown knob or an unbindable target."""


class StaticKnobs:
    """Dict-backed knob surface (tests, policies, benchmarks)."""

    def __init__(self, **values):
        self._values = dict(values)

    def supports(self, name: str) -> bool:
        return name in self._values

    def get(self, name: str):
        try:
            return self._values[name]
        except KeyError:
            raise KnobError(f"unknown knob {name!r}") from None

    def set(self, name: str, value) -> None:
        if name not in self._values:
            raise KnobError(f"unknown knob {name!r}")
        self._values[name] = value

    def as_dict(self) -> dict:
        return dict(self._values)


class StackKnobs:
    """Bind planner knob names onto the drivers of a built stack.

    Pass whichever handles exist; unsupported knobs are simply skipped
    by the loop.  ``stack`` is the top driver of a
    :func:`~repro.core.utilization.stack.build_stack` result — the
    parallel and adaptive drivers are located inside it.
    """

    def __init__(self, stack=None, *, session=None, mux_channel=None,
                 rcvbuf: Optional[int] = None):
        from ..core.utilization.adaptive import AdaptiveCompressionDriver
        from ..core.utilization.parallel import RebalancingParallelDriver
        from ..core.utilization.stack import find_driver

        self.parallel = None
        self.adaptive = None
        if stack is not None:
            self.parallel = find_driver(stack, RebalancingParallelDriver)
            self.adaptive = find_driver(stack, AdaptiveCompressionDriver)
        self.session = session
        self.mux_channel = mux_channel
        self._rcvbuf = rcvbuf

    def supports(self, name: str) -> bool:
        return {
            "streams": self.parallel is not None,
            "compress": self.adaptive is not None,
            "replay_buffer": self.session is not None,
            "mux_window": self.mux_channel is not None,
            "rcvbuf": self._rcvbuf is not None,
        }.get(name, False)

    def get(self, name: str):
        if not self.supports(name):
            raise KnobError(f"knob {name!r} is not bound")
        if name == "streams":
            return self.parallel.active_streams
        if name == "compress":
            mode = self.adaptive.force_mode
            return {"compress": "on", "raw": "off", None: "auto"}[mode]
        if name == "replay_buffer":
            return self.session.config.max_buffer
        if name == "mux_window":
            return self.mux_channel._rx_window
        return self._rcvbuf

    def set(self, name: str, value) -> None:
        if not self.supports(name):
            raise KnobError(f"knob {name!r} is not bound")
        if name == "streams":
            self.parallel.set_active_streams(int(value))
        elif name == "compress":
            if value not in _MODES:
                raise KnobError(f"bad compress mode {value!r}")
            self.adaptive.force_mode = _MODES[value]
        elif name == "replay_buffer":
            self.session.set_max_buffer(int(value))
        elif name == "mux_window":
            self.mux_channel.retune_window(int(value))
        else:
            self._rcvbuf = int(value)
