"""repro.tune — the closed-loop autotuning control plane.

The paper picks its establishment method once (Figure 4) and leaves
"parameter adaptation, like selection of the optimal number of parallel
TCP streams or the dynamic enabling or disabling of compression" as
future work (§8).  This package is that loop:

* :mod:`~repro.tune.signals` — what the tuner observes
  (:class:`LinkSignals`, :class:`GaugeSignalSource`);
* :mod:`~repro.tune.planner` — pure planning
  (:class:`TunePlanner`, :func:`recommend_streams`, the absorbed
  :mod:`repro.core.autotune` formulas);
* :mod:`~repro.tune.knobs` — how targets reach a running stack
  (:class:`StackKnobs`, :class:`StaticKnobs`);
* :mod:`~repro.tune.loop` — the controller with its hysteresis-backed
  no-oscillation bound (:class:`LinkTuner`, :func:`gated_apply`).

See ``docs/TUNING.md``.
"""

from .knobs import KnobError, StackKnobs, StaticKnobs
from .loop import LinkTuner, TunerDecision, gated_apply
from .planner import (
    HEADROOM,
    TunePlan,
    TunePlanner,
    TunerPolicy,
    estimate_bdp,
    loss_headroom,
    recommend_streams,
)
from .signals import Ewma, GaugeSignalSource, LinkSignals, WindowedMax, WindowedMin

__all__ = [
    "HEADROOM",
    "estimate_bdp",
    "loss_headroom",
    "recommend_streams",
    "TunerPolicy",
    "TunePlan",
    "TunePlanner",
    "LinkSignals",
    "GaugeSignalSource",
    "WindowedMin",
    "WindowedMax",
    "Ewma",
    "KnobError",
    "StaticKnobs",
    "StackKnobs",
    "LinkTuner",
    "TunerDecision",
    "gated_apply",
]
