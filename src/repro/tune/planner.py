"""TunePlanner: signals in, a knob plan out (paper §8 future work).

"Also, parameter adaptation, like selection of the optimal number of
parallel TCP streams or the dynamic enabling or disabling of compression
will then become possible."  This module is the *pure* half of the
closed-loop tuner: given one :class:`~repro.tune.signals.LinkSignals`
sample it derives target values for every knob the stack exposes —
parallel-stream count, compression mode, socket/replay buffer sizes and
the mux credit window.  The :class:`~repro.tune.loop.LinkTuner` loop
adds time: hysteresis, deadbands and reversible application.

It absorbs the one-shot formulas that previously lived in
:mod:`repro.core.autotune` (kept as a deprecation shim):

* a single stream's throughput is capped at ``rcvbuf / RTT`` (§4.2), so
  filling a pipe of a given bandwidth-delay product needs
  ``ceil(BDP / rcvbuf)`` streams;
* :data:`HEADROOM` covers the congestion-avoidance sawtooth (the
  long-run average window sits around 3/4 of its peak);
* **new here**: a per-path *loss-derived* headroom
  (:func:`loss_headroom`) — on lossy paths each stream spends part of
  its life recovering, so extra streams keep the pipe full through
  recovery episodes.  The loss factor is applied *before* the
  ``max_streams`` clamp (the old formula clamped first, so a lossy
  near-capacity path could never earn its recovery streams).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .signals import LinkSignals

__all__ = [
    "HEADROOM",
    "estimate_bdp",
    "loss_headroom",
    "recommend_streams",
    "TunerPolicy",
    "TunePlan",
    "TunePlanner",
]

#: sawtooth/recovery headroom: the long-run average congestion window sits
#: around 3/4 of its peak, so over-provision by the inverse
HEADROOM = 4.0 / 3.0

#: gain of the loss-derived headroom: extra provisioning grows with
#: sqrt(loss) (Mathis: per-stream throughput shrinks ~ 1/sqrt(loss))
LOSS_GAIN = 8.0

#: cap on the loss multiplier — beyond this, loss is a path problem more
#: streams cannot buy back
LOSS_HEADROOM_MAX = 2.0


def estimate_bdp(capacity: float, rtt: float) -> float:
    """Bandwidth-delay product in bytes."""
    if capacity <= 0 or rtt <= 0:
        raise ValueError("capacity and rtt must be positive")
    return capacity * rtt


def loss_headroom(loss_rate: float) -> float:
    """Extra stream provisioning for a lossy path, as a multiplier >= 1.

    ``1 + LOSS_GAIN * sqrt(loss)``, capped at :data:`LOSS_HEADROOM_MAX`:
    at the paper's Amsterdam–Rennes loss (0.25%) this is ~1.4x — the
    "only loss resilience argues for more streams" case — while a clean
    path pays nothing.
    """
    if loss_rate < 0 or loss_rate >= 1:
        raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
    if loss_rate == 0:
        return 1.0
    return min(1.0 + LOSS_GAIN * math.sqrt(loss_rate), LOSS_HEADROOM_MAX)


def recommend_streams(
    capacity: float,
    rtt: float,
    rcvbuf: int = 65536,
    max_streams: int = 16,
    loss_rate: float = 0.0,
) -> int:
    """Number of parallel TCP streams to fill the given path.

    ``capacity`` in bytes/s, ``rtt`` in seconds, ``rcvbuf`` the per-stream
    OS socket buffer limit.  The loss-derived headroom is applied before
    the ``max_streams`` clamp, so a lossy path saturating the clamp is
    clamped once, at the end — not pre-clamped and then denied its
    recovery streams.
    """
    if rcvbuf <= 0:
        raise ValueError("rcvbuf must be positive")
    bdp = estimate_bdp(capacity, rtt)
    streams = math.ceil(bdp * HEADROOM * loss_headroom(loss_rate) / rcvbuf)
    return max(1, min(streams, max_streams))


@dataclass
class TunerPolicy:
    """A sender pacing policy: the classic rollout-gated config knob.

    Historically lived in :mod:`repro.chaos.rollout`; it is the shape of
    "a config the gate pushes" and the tuner plans against the same
    stack, so it lives with the planner now (the old import path still
    works).
    """

    name: str
    pace: float   # seconds between chunks
    chunk: int    # bytes per chunk

    @property
    def rate(self) -> float:
        return self.chunk / self.pace


def _clamp(value: float, lo: int, hi: int) -> int:
    return max(lo, min(int(value), hi))


@dataclass
class TunePlan:
    """Target knob values derived from one signal sample.

    ``knobs()`` yields ``(name, value)`` for every knob with a target;
    ``None`` means "no opinion" (the loop leaves that knob alone).
    """

    streams: Optional[int] = None
    compress: Optional[str] = None        # "on" | "off" | "auto"
    rcvbuf: Optional[int] = None
    replay_buffer: Optional[int] = None
    mux_window: Optional[int] = None
    #: why (capacity estimate used, window-limited escalation, ...)
    attrs: dict = field(default_factory=dict)

    def knobs(self):
        for name in ("streams", "compress", "rcvbuf", "replay_buffer",
                     "mux_window"):
            value = getattr(self, name)
            if value is not None:
                yield name, value

    def as_dict(self) -> dict:
        return {name: value for name, value in self.knobs()}


class TunePlanner:
    """Derive a :class:`TunePlan` from measured link signals.

    * **streams** — the BDP rule over the capacity estimate, with loss
      headroom.  When the achieved goodput sits near the aggregate
      window bound (``streams * rcvbuf / rtt``) the path is
      *window-limited*: the true capacity is above what we can see, so
      the estimate is escalated (the closed-loop version of
      :class:`~repro.core.monitor.PathMonitor`'s multi-stream probe).
    * **compress** — follows the adaptive driver's measured preference
      when one exists, or the CPU-rate/payload-ratio crossover when
      those are known; otherwise stays ``auto`` (ε-greedy probing).
    * **rcvbuf** — grows only when the stream clamp saturates and the
      path is still capacity-starved (more streams cannot be added, so
      each must carry a bigger window).
    * **replay_buffer** — ~2 BDPs so a session can keep sending through
      one full unacknowledged round trip, bounded to sane sizes.
    * **mux_window** — ~1 BDP of credit per channel (with sawtooth
      headroom) so flow control never throttles below the path; grown
      further while credit stalls are observed.
    """

    def __init__(
        self,
        rcvbuf: int = 65536,
        max_streams: int = 16,
        max_rcvbuf: int = 1 << 22,
        window_limited_threshold: float = 0.75,
        escalation: float = 1.5,
        replay_factor: float = 2.0,
        min_replay: int = 1 << 16,
        max_replay: int = 1 << 22,
        min_mux_window: int = 1 << 14,
        max_mux_window: int = 1 << 20,
        compress_margin: float = 1.1,
    ):
        self.rcvbuf = rcvbuf
        self.max_streams = max_streams
        self.max_rcvbuf = max_rcvbuf
        self.window_limited_threshold = window_limited_threshold
        self.escalation = escalation
        self.replay_factor = replay_factor
        self.min_replay = min_replay
        self.max_replay = max_replay
        self.min_mux_window = min_mux_window
        self.max_mux_window = max_mux_window
        self.compress_margin = compress_margin

    # -- capacity ----------------------------------------------------------
    def capacity_estimate(self, signals: "LinkSignals") -> tuple[float, bool]:
        """Best capacity guess plus whether it was window-escalated."""
        capacity = max(signals.capacity or 0.0, signals.goodput or 0.0)
        if capacity <= 0 or signals.rtt <= 0:
            return capacity, False
        streams = max(signals.streams_active or 1, 1)
        window_bound = streams * self.rcvbuf / signals.rtt
        goodput = signals.goodput or 0.0
        if goodput >= self.window_limited_threshold * window_bound:
            # The windows, not the pipe, are the visible limit: the real
            # capacity is somewhere above — escalate so the stream count
            # grows and the next sample can see further.
            return max(capacity, goodput * self.escalation), True
        return capacity, False

    # -- the plan ----------------------------------------------------------
    def plan(self, signals: "LinkSignals") -> TunePlan:
        plan = TunePlan()
        if signals.rtt <= 0:
            return plan
        capacity, escalated = self.capacity_estimate(signals)
        if capacity <= 0:
            return plan
        loss = min(max(signals.loss_rate or 0.0, 0.0), 0.5)
        bdp = capacity * signals.rtt
        plan.streams = recommend_streams(
            capacity, signals.rtt, self.rcvbuf,
            max_streams=self.max_streams, loss_rate=loss,
        )
        # rcvbuf: only interesting once the stream clamp saturates and
        # the unclamped demand still exceeds what max_streams can carry.
        demand = bdp * HEADROOM * loss_headroom(loss)
        if plan.streams >= self.max_streams and demand > self.max_streams * self.rcvbuf:
            plan.rcvbuf = _clamp(
                1 << math.ceil(math.log2(demand / self.max_streams)),
                self.rcvbuf, self.max_rcvbuf,
            )
        else:
            plan.rcvbuf = self.rcvbuf
        plan.replay_buffer = _clamp(
            self.replay_factor * bdp, self.min_replay, self.max_replay
        )
        window = bdp * HEADROOM
        if (signals.credit_stall_rate or 0.0) > 0:
            window *= self.escalation
        plan.mux_window = _clamp(window, self.min_mux_window,
                                 self.max_mux_window)
        plan.compress = self._plan_compress(signals, capacity, plan.streams)
        plan.attrs = {
            "capacity_bps": capacity,
            "bdp_bytes": bdp,
            "loss_headroom": loss_headroom(loss),
            "window_escalated": escalated,
        }
        return plan

    def _plan_compress(
        self, signals: "LinkSignals", capacity: float, streams: int
    ) -> str:
        if signals.compress_preference in ("raw", "compress"):
            # The adaptive driver has measured both modes under
            # saturation: trust it.
            return "on" if signals.compress_preference == "compress" else "off"
        if signals.compress_rate is not None and signals.payload_ratio:
            wire = min(capacity, streams * (self.rcvbuf / signals.rtt))
            compressed = min(signals.compress_rate,
                             signals.payload_ratio * wire)
            return "on" if compressed > self.compress_margin * wire else "off"
        return "auto"
