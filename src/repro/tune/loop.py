"""LinkTuner: the per-link closed-loop controller.

Every ``interval`` the loop reads one :class:`LinkSignals` sample from
its source, asks the :class:`~repro.tune.planner.TunePlanner` for target
knob values, and applies the deltas — through reversible
:class:`~repro.ops.rollout.ConfigChange` objects, so a tuner action can
be applied directly *or* ride the PR-9 SLO-gated canary machinery
(:func:`gated_apply`).

**Stability.**  Two mechanisms, both per knob:

* a relative *deadband*: a proposed value within ``deadband`` of the
  current one is ignored (integers also need an absolute change of at
  least 1), so planner jitter cannot generate work;
* a *hysteresis window*: after a knob changes, further changes to that
  knob are suppressed until ``hysteresis`` seconds have passed.

The no-oscillation bound follows by construction: for any knob ``k``
and any half-open interval ``[t, t + hysteresis)``, the tuner performs
**at most one** change to ``k`` — the guard compares the current clock
against the last applied change's timestamp before any apply, and the
timestamp is updated on every apply.  The bound is *provable* (it does
not depend on what the signals do) and is enforced as a chaos invariant
by :meth:`LinkTuner.check_no_oscillation`.

The loop is backend-symmetric the way the telemetry plane is:
:meth:`LinkTuner.run_sim` is a simulated-clock generator process and
:meth:`LinkTuner.run_async` an awaitable wall-clock loop, both over the
synchronous :meth:`LinkTuner.step`.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from .. import obs
from .planner import TunePlanner

__all__ = ["LinkTuner", "TunerDecision", "gated_apply"]

#: default control interval, seconds
DEFAULT_INTERVAL = 1.0

#: default hysteresis window, seconds (>= a few intervals)
DEFAULT_HYSTERESIS = 3.0

#: default relative deadband
DEFAULT_DEADBAND = 0.2


class TunerDecision:
    """One applied knob change (the oscillation invariant's evidence)."""

    __slots__ = ("at", "knob", "old", "new", "gated")

    def __init__(self, at: float, knob: str, old, new, gated: bool = False):
        self.at = at
        self.knob = knob
        self.old = old
        self.new = new
        self.gated = gated

    def as_dict(self) -> dict:
        return {"at": self.at, "knob": self.knob, "old": self.old,
                "new": self.new, "gated": self.gated}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TunerDecision {self.knob} {self.old}->{self.new} "
                f"@{self.at:.2f}>")


class LinkTuner:
    """Continuously adapt one link's knobs from its measured signals."""

    def __init__(
        self,
        source: Callable[[], object],
        knobs,
        planner: Optional[TunePlanner] = None,
        *,
        clock: Callable[[], float],
        interval: float = DEFAULT_INTERVAL,
        hysteresis: float = DEFAULT_HYSTERESIS,
        deadband: float = DEFAULT_DEADBAND,
        apply_via: Optional[Callable] = None,
        route_table=None,
        relay_id: Optional[str] = None,
        name: str = "link",
    ):
        if interval <= 0 or hysteresis <= 0:
            raise ValueError("interval and hysteresis must be positive")
        if not 0 <= deadband < 1:
            raise ValueError(f"deadband must be in [0, 1): {deadband}")
        self.source = source
        self.knobs = knobs
        self.planner = planner or TunePlanner()
        self.clock = clock
        self.interval = interval
        self.hysteresis = hysteresis
        self.deadband = deadband
        #: callable(change, tuner) responsible for applying a ConfigChange;
        #: default applies immediately (see :func:`gated_apply` for the
        #: SLO-gated alternative)
        self.apply_via = apply_via
        self.route_table = route_table
        self.relay_id = relay_id
        self.name = name
        self.decisions: list[TunerDecision] = []
        self.suppressed = 0
        self.samples = 0
        self.last_signals = None
        self.last_plan = None
        self._last_change: dict[str, float] = {}
        self._stopped = False
        reg = obs.metrics()
        self._m_steps = reg.counter("tune.steps_total", link=name)
        self._m_changes = reg.counter("tune.changes_total", link=name)
        self._m_suppressed = reg.counter("tune.suppressed_total", link=name)

    # -- one control step --------------------------------------------------
    def step(self) -> list[TunerDecision]:
        """Observe, plan, apply.  Returns the changes applied this step."""
        self._m_steps.inc()
        signals = self.source()
        if signals is None:
            return []
        self.samples += 1
        self.last_signals = signals
        if self.route_table is not None and self.relay_id is not None:
            # Mesh-aware closed-loop routing: the tuner's path telemetry
            # feeds the route table continuously, not just at selection.
            self.route_table.update_path(
                self.relay_id, signals.rtt, loss=signals.loss_rate
            )
        plan = self.planner.plan(signals)
        self.last_plan = plan
        reg = obs.metrics()
        reg.gauge("tune.capacity_bps", link=self.name).set(
            plan.attrs.get("capacity_bps", 0.0))
        reg.gauge("tune.rtt_seconds", link=self.name).set(signals.rtt)
        applied = []
        for knob, target in plan.knobs():
            decision = self._propose(knob, target)
            if decision is not None:
                applied.append(decision)
        return applied

    def _within_deadband(self, old, new) -> bool:
        if isinstance(old, str) or isinstance(new, str):
            return old == new
        if old == new:
            return True
        if isinstance(old, int) and isinstance(new, int):
            if abs(new - old) < 1:
                return True
        base = max(abs(old), 1e-9)
        return abs(new - old) / base < self.deadband

    def _propose(self, knob: str, target) -> Optional[TunerDecision]:
        if not self.knobs.supports(knob):
            return None
        current = self.knobs.get(knob)
        if self._within_deadband(current, target):
            return None
        now = self.clock()
        last = self._last_change.get(knob)
        if last is not None and now - last < self.hysteresis:
            self.suppressed += 1
            self._m_suppressed.inc()
            return None
        change = self._make_change(knob, current, target)
        gated = self.apply_via is not None
        if gated:
            self.apply_via(change, self)
        else:
            change.apply(self.knobs)
        self._last_change[knob] = now
        decision = TunerDecision(now, knob, current, target, gated=gated)
        self.decisions.append(decision)
        self._m_changes.inc()
        obs.metrics().counter(
            "tune.knob_changes_total", link=self.name, knob=knob).inc()
        if isinstance(target, (int, float)):
            obs.metrics().gauge(
                f"tune.{knob}", link=self.name).set(float(target))
        obs.event("tune.change", link=self.name, knob=knob,
                  old=str(current), new=str(target), gated=gated)
        return decision

    def _make_change(self, knob: str, current, target):
        from ..ops.rollout import ConfigChange

        return ConfigChange(
            name=f"tune:{self.name}:{knob}={target}",
            apply=lambda knobs, k=knob, v=target: knobs.set(k, v),
            revert=lambda knobs, k=knob, v=current: knobs.set(k, v),
            attrs={"knob": knob, "old": current, "new": target},
        )

    # -- drivers -----------------------------------------------------------
    def run_sim(self, sim, until: Optional[float] = None):
        """Simulated-clock driver: ``sim.process(tuner.run_sim(sim))``."""
        while not self._stopped:
            yield sim.timeout(self.interval)
            if until is not None and sim.now >= until:
                return
            self.step()

    async def run_async(self) -> None:
        """Wall-clock driver (live backend)."""
        while not self._stopped:
            await asyncio.sleep(self.interval)
            if self._stopped:
                return
            self.step()

    def stop(self) -> None:
        self._stopped = True

    # -- reporting / invariants --------------------------------------------
    def stats(self) -> dict:
        """JSON-able tuner outcome (chaos reports embed this)."""
        return {
            "link": self.name,
            "samples": self.samples,
            "changes": len(self.decisions),
            "suppressed": self.suppressed,
            "hysteresis": self.hysteresis,
            "decisions": [d.as_dict() for d in self.decisions],
        }

    def check_no_oscillation(self) -> list:
        """Violations of the per-knob one-change-per-window bound.

        Empty by construction; wired as a chaos post-check so a
        regression in the guard (or a second writer to the same knob)
        surfaces as an invariant failure, not silent flapping.
        """
        out = []
        by_knob: dict[str, list[TunerDecision]] = {}
        for decision in self.decisions:
            by_knob.setdefault(decision.knob, []).append(decision)
        for knob, changes in by_knob.items():
            changes.sort(key=lambda d: d.at)
            for previous, current in zip(changes, changes[1:]):
                gap = current.at - previous.at
                if gap < self.hysteresis - 1e-9:
                    out.append(
                        f"tune: knob {knob!r} changed twice within one "
                        f"hysteresis window ({gap:.3f}s < "
                        f"{self.hysteresis:.3f}s) on link {self.name!r}"
                    )
        return out


def gated_apply(
    aggregator,
    *,
    canary: str,
    bake_seconds: float,
    poll_seconds: float = 0.5,
    sim=None,
    clock: Optional[Callable[[], float]] = None,
) -> Callable:
    """An ``apply_via`` that rides every change through a canary gate.

    The tuned link *is* the canary: the change is applied to it
    immediately via :meth:`~repro.ops.rollout.CanaryRollout.start`, then
    the gate watches ``aggregator``'s SLOs over the bake window and
    reverts the knob if the change itself breaches them — self-defence
    for a controller acting on a mismeasured path.  With ``sim`` the
    gate runs as a simulated process; otherwise as an asyncio task.
    Completed gates are collected on ``tuner.rollouts``.
    """
    from ..ops.rollout import CanaryRollout

    def apply(change, tuner) -> None:
        rollout = CanaryRollout(
            change,
            aggregator,
            targets={canary: tuner.knobs},
            canaries=[canary],
            bake_seconds=bake_seconds,
            poll_seconds=poll_seconds,
            clock=clock or tuner.clock,
        )
        if not hasattr(tuner, "rollouts"):
            tuner.rollouts = []
        tuner.rollouts.append(rollout)
        if sim is not None:
            sim.process(rollout.run_sim(sim), name=f"tune-gate:{change.name}")
        else:
            asyncio.ensure_future(rollout.run_async())

    return apply
