"""Link signals: what the tuner observes, and how it is smoothed.

A :class:`LinkSignals` sample is the planner's whole world view: RTT,
capacity/goodput, loss, the adaptive driver's compression verdict, mux
credit stall pressure and session replay-window occupancy.  Samples come
from a *source* — any callable returning ``LinkSignals | None`` — and
:class:`GaugeSignalSource` is the standard one: it reads the ``path.*``
gauges a :class:`~repro.core.monitor.PathMonitor` publishes plus the
mux/session meters, and applies BBR-flavoured smoothing — windowed-min
RTT (the propagation floor survives queueing episodes) and
*windowed-average* goodput (the byte counter's growth over the whole
smoothing window, so reassembly bursts and drain bubbles cancel instead
of whipsawing the plan the way a max- or instant-rate would).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from .. import obs

__all__ = [
    "LinkSignals",
    "WindowedMin",
    "WindowedMax",
    "Ewma",
    "GaugeSignalSource",
]


@dataclass
class LinkSignals:
    """One smoothed observation of a link (the planner's input)."""

    #: round-trip time, seconds (windowed min — the propagation floor)
    rtt: float = 0.0
    #: believed path capacity, bytes/s (0 = unknown)
    capacity: float = 0.0
    #: achieved application goodput, bytes/s (windowed max)
    goodput: float = 0.0
    #: per-packet loss probability estimate
    loss_rate: float = 0.0
    #: parallel members currently carrying traffic
    streams_active: int = 0
    #: the adaptive driver's verdict: "raw" | "compress" | "undecided" | None
    compress_preference: Optional[str] = None
    #: CPU compression rate (bytes/s) when calibrated, else None
    compress_rate: Optional[float] = None
    #: workload compressibility (raw/compressed ratio) when known
    payload_ratio: Optional[float] = None
    #: mux credit stalls per second (backpressure_waits rate)
    credit_stall_rate: float = 0.0
    #: session replay-buffer occupancy in [0, 1] (None = no session)
    replay_occupancy: Optional[float] = None
    #: sample timestamp (source clock)
    at: float = 0.0
    attrs: dict = field(default_factory=dict)


class WindowedMin:
    """Minimum over a sliding time window (RTT floor tracking)."""

    def __init__(self, window: float):
        self.window = window
        self._samples: list[tuple[float, float]] = []

    def update(self, now: float, value: float) -> float:
        self._samples.append((now, value))
        self._samples = [
            (t, v) for t, v in self._samples if now - t <= self.window
        ]
        return min(v for _t, v in self._samples)


class WindowedMax:
    """Maximum over a sliding time window (delivery-rate tracking)."""

    def __init__(self, window: float):
        self.window = window
        self._samples: list[tuple[float, float]] = []

    def update(self, now: float, value: float) -> float:
        self._samples.append((now, value))
        self._samples = [
            (t, v) for t, v in self._samples if now - t <= self.window
        ]
        return max(v for _t, v in self._samples)


class Ewma:
    """Exponentially weighted moving average (loss-rate smoothing)."""

    def __init__(self, alpha: float = 0.3):
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value


class GaugeSignalSource:
    """Read link signals from the metrics registry, with smoothing.

    ``peer`` selects the ``path.*`` gauge label set (what
    :class:`~repro.core.monitor.PathMonitor` publishes).  ``providers``
    overrides any :class:`LinkSignals` field with a live callable — the
    natural way to wire driver-internal state (e.g. a session's replay
    occupancy or the adaptive driver's preference) without minting a
    metric for it.  Counter-derived rates (goodput from a bytes counter,
    credit stalls) are computed between consecutive ``read()`` calls.
    """

    def __init__(
        self,
        peer: str,
        clock: Callable[[], float],
        *,
        goodput_counter: Optional[tuple[str, dict]] = None,
        stall_counter: Optional[tuple[str, dict]] = None,
        providers: Optional[dict[str, Callable[[], object]]] = None,
        smoothing_window: float = 6.0,
    ):
        self.peer = peer
        self.clock = clock
        self.goodput_counter = goodput_counter
        self.stall_counter = stall_counter
        self.providers = dict(providers or {})
        self.smoothing_window = smoothing_window
        self._rtt_min = WindowedMin(smoothing_window)
        self._loss = Ewma()
        self._last_at: Optional[float] = None
        self._last_stall_total = 0
        #: (t, counter_total) history for the windowed-average rate
        self._good_hist: deque = deque()

    def _counter_value(self, spec: Optional[tuple[str, dict]]) -> int:
        if spec is None:
            return 0
        name, labels = spec
        return obs.metrics().counter(name, **labels).value

    def read(self) -> Optional[LinkSignals]:
        now = self.clock()
        reg = obs.metrics()
        sig = LinkSignals(at=now)
        rtt = reg.gauge("path.rtt_seconds", peer=self.peer).value
        sig.capacity = reg.gauge("path.capacity_bps", peer=self.peer).value
        loss = reg.gauge("path.loss_rate", peer=self.peer).value

        # Goodput: counter growth averaged over the whole smoothing
        # window.  An instant delta (or a windowed max of deltas) reads
        # reassembly bursts as capacity; the window average cancels them.
        goodput_total = self._counter_value(self.goodput_counter)
        self._good_hist.append((now, goodput_total))
        while (
            len(self._good_hist) > 1
            and now - self._good_hist[0][0] > self.smoothing_window
        ):
            self._good_hist.popleft()
        first_at, first_total = self._good_hist[0]
        if now > first_at:
            sig.goodput = max(
                0.0, (goodput_total - first_total) / (now - first_at)
            )
        # Credit stalls: a plain between-reads rate (any stall at all is
        # the signal; magnitude smoothing buys nothing).
        stall_total = self._counter_value(self.stall_counter)
        if self._last_at is not None and now > self._last_at:
            sig.credit_stall_rate = max(
                0.0, (stall_total - self._last_stall_total) / (now - self._last_at)
            )
        self._last_at = now
        self._last_stall_total = stall_total

        for name, provider in self.providers.items():
            setattr(sig, name, provider())

        if sig.rtt <= 0 and rtt > 0:
            sig.rtt = rtt
        if sig.rtt <= 0:
            return None  # nothing measured yet: no opinion
        sig.rtt = self._rtt_min.update(now, sig.rtt)
        if "loss_rate" not in self.providers:
            sig.loss_rate = self._loss.update(loss)
        return sig
