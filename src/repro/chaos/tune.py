"""Closed-loop tuner chaos: does the controller adapt, and does it settle?

Three simulated scenarios put a running :class:`~repro.tune.loop.LinkTuner`
through the canonical control-theory stimuli — a mid-transfer path
degradation, a loss burst at constant capacity, and a bandwidth
step-change — and one live twin replays the degradation against real
asyncio sockets through a :class:`~repro.livenet.proxy.ChaosTcpProxy`.
Each scenario asserts *polarity* (the knobs move the right way: a slower
path earns fewer bytes in flight, a recovered one re-expands), *loss
response* (a lossy path earns recovery streams while capacity holds) and
*stability* (:meth:`~repro.tune.loop.LinkTuner.check_no_oscillation`
enforces the ≤ 1 change per knob per hysteresis window bound as a chaos
invariant, plus a total-activity cap so the controller provably settles).

The scenarios are built around the fault plans in :data:`TUNE_PLANS`; any
plan works, but the polarity checks only bite when a plan shaped like the
canonical one runs (no faults → no decisions → the activity checks still
pass vacuously, the convergence ones trivially)::

    from repro.chaos import run_chaos
    from repro.chaos.tune import TUNE_PLANS

    report = run_chaos("tune_degrade", seed=3,
                       plan=TUNE_PLANS["tune_degrade"])
    assert report.ok, report.violations

The sim workload: one ``adaptive|parallel:6:rebalance=1`` stack
between two open sites on a 1.25 MB/s WAN, a sender streaming
continuously, and a tuner whose signal source mixes a goodput meter fed
by the receiver, the link's ground-truth loss rate, and the live stack
state (active streams, the adaptive driver's verdict).  The live
workload: a mux bulk+ping channel pair through the chaos gateway, the
tuner renegotiating the *receiver's* credit window (the PR's new
mid-stream ``T_WINDOW``/CREDIT path) as a latency fault moves the BDP.
"""

from __future__ import annotations

import asyncio
import random
from typing import Generator

from .. import obs
from ..core.factory import BrokeredConnectionFactory
from ..core.scenarios import GridScenario
from ..core.utilization.spec import StackSpec
from ..obs import TraceContext
from ..tune import GaugeSignalSource, LinkTuner, StackKnobs, TunePlanner
from .registry import live_scenario, scenario
from .runner import Workload

__all__ = ["TUNE_PLANS", "LIVE_TUNE_PLAN"]

#: the canonical fault plans the tune_* polarity checks are designed
#: around (``make chaos-tune`` and the goldens run exactly these)
TUNE_PLANS = {
    "tune_degrade": "wan_degrade@5:site=S,scale=5,for=5",
    "tune_loss_burst": "wan_degrade@5:site=S,scale=1,loss=0.01,for=5",
    "tune_bandwidth_step": "wan_degrade@0.5:site=S,scale=5,for=8",
}

#: the live twin's plan: a latency spike at the gateway moves the BDP two
#: orders of magnitude and back
LIVE_TUNE_PLAN = "latency@1.2:site=HUB,delay=0.08,for=2.5"

# -- shared sim geometry -------------------------------------------------------

#: parallel links in the negotiated stack (= the planner's max_streams,
#: so clamping never masks the planner's real target)
_LINKS = 6
#: the planner's believed per-stream window — *half* the simulated TCP
#: rcvbuf, so a single real stream outruns the planner's single-stream
#: bound and the window-limited escalation ladder genuinely re-expands
_RCVBUF = 32 * 1024
#: declared path RTT (two 15 ms access links; queues stay near empty
#: because wan_degrade scales them with the bandwidth)
_RTT = 0.06
_SITE_BW = 1_250_000.0
_ACCESS_DELAY = 0.015
_CHUNK = 32 * 1024
_READ_CHUNK = 64 * 1024

_INTERVAL = 0.5
_HYSTERESIS = 1.5
_SMOOTH = 2.0
#: after the first payload byte arrives, let slow-start settle before
#: the first control step, so the opening trim is one clean decision
#: instead of a ramp-chasing staircase
_WARMUP = 1.5
#: stricter window-limited threshold than the planner default: the
#: receiver-side goodput meter is bursty at 0.5 s granularity, and a
#: spurious escalation is a spurious stream-count flap
_ESCALATE_AT = 0.85

#: per-scenario timeline: (fault_at, heal_at, send_end) matching the
#: TUNE_PLANS entries above
_TIMELINE = {
    "tune_degrade": (5.0, 10.0, 16.0),
    "tune_loss_burst": (5.0, 10.0, 14.0),
    "tune_bandwidth_step": (0.5, 8.5, 14.0),
}

#: total-decision cap per run — the "it settles" half of convergence
#: (polarity needs ~5 moves; a healthy controller never needs more)
_MAX_DECISIONS = 8


class _RecordingPlanner(TunePlanner):
    """A TunePlanner that keeps ``(at, signals, plan)`` for post-checks."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.history: list = []

    def plan(self, signals):
        plan = super().plan(signals)
        self.history.append((signals.at, signals, plan))
        return plan


class _LateKnobs:
    """Knob surface bound after establishment (the stack does not exist
    when the tuner is built; until it does, every knob is unsupported and
    the loop proposes nothing)."""

    def __init__(self):
        self.target = None

    def bind(self, knobs) -> None:
        self.target = knobs

    def supports(self, name: str) -> bool:
        return self.target is not None and self.target.supports(name)

    def get(self, name: str):
        return self.target.get(name)

    def set(self, name: str, value) -> None:
        self.target.set(name, value)


def _tune_spec(sessions: bool) -> StackSpec:
    spec = StackSpec.parse(f"adaptive|parallel:{_LINKS}:rebalance=1")
    return spec.with_session() if sessions else spec


def _streams_decisions(tuner: LinkTuner) -> list:
    return [d for d in tuner.decisions if d.knob == "streams"]


def _stability_checks(wl: Workload, tuner: LinkTuner) -> None:
    """The invariants every tune_* scenario shares."""

    def check() -> list:
        out = list(tuner.check_no_oscillation())
        if len(tuner.decisions) > _MAX_DECISIONS:
            out.append(
                f"tune: controller did not settle: {len(tuner.decisions)} "
                f"knob changes (cap {_MAX_DECISIONS})"
            )
        if tuner.samples == 0:
            out.append("tune: the tuner never observed a signal sample")
        return out

    def record() -> list:
        wl.stats["tune"] = tuner.stats()
        return []

    wl.post_checks.append(check)
    wl.post_checks.append(record)


def _build_tune_workload(
    seed: int, retries: bool, sessions: bool, name: str
) -> tuple:
    """The shared sim workload: one tuned stack, one continuous stream."""
    scn = GridScenario(seed=seed)
    scn.add_site("S", "open", access_bandwidth=_SITE_BW,
                 access_delay=_ACCESS_DELAY)
    scn.add_site("R", "open", access_bandwidth=_SITE_BW,
                 access_delay=_ACCESS_DELAY)
    sender = scn.add_node("S", "alice", auto_reconnect=retries)
    receiver = scn.add_node("R", "bob", auto_reconnect=retries)

    wl = Workload(scn)
    _fault_at, _heal_at, send_end = _TIMELINE[name]
    # stop deciding when the traffic stops: post-transfer drain produces
    # ghost goodput samples no knob should act on
    tune_until = send_end
    spec = _tune_spec(sessions)
    audit = wl.audit("bulk")
    chunk = random.Random(f"{seed}:chaos:{name}").randbytes(_CHUNK)
    late = _LateKnobs()

    def _loss() -> float:
        link = scn.site_wan_link("S")
        return max(link.a_to_b.loss, link.b_to_a.loss)

    def _streams_active() -> int:
        if not late.supports("streams"):
            return 0
        return late.get("streams")

    source = GaugeSignalSource(
        "wan",
        lambda: scn.sim.now,
        goodput_counter=("tune.rx_bytes_total", {"link": "wan"}),
        providers={
            "rtt": lambda: _RTT,
            "loss_rate": _loss,
            "streams_active": _streams_active,
        },
        smoothing_window=_SMOOTH,
    )
    planner = _RecordingPlanner(
        rcvbuf=_RCVBUF,
        max_streams=_LINKS,
        window_limited_threshold=_ESCALATE_AT,
    )
    tuner = LinkTuner(
        source.read,
        late,
        planner,
        clock=lambda: scn.sim.now,
        interval=_INTERVAL,
        hysteresis=_HYSTERESIS,
        # one-step dithers around the ceil boundary (5<->6) are noise,
        # not signal; 0.25 suppresses them at every base above 4
        deadband=0.25,
        name="wan",
    )

    def run_tuner() -> Generator:
        # No opinion before the first payload byte: establishment takes a
        # variable slice of the run, and tuning a zero-goodput link would
        # just chase the ramp.
        meter = obs.metrics().counter("tune.rx_bytes_total", link="wan")
        while meter.value <= 0 and scn.sim.now < send_end:
            yield scn.sim.timeout(_INTERVAL)
        yield scn.sim.timeout(_WARMUP)
        yield from tuner.run_sim(scn.sim, until=tune_until)

    def run_sender() -> Generator:
        try:
            yield from sender.start()
            factory = BrokeredConnectionFactory(sender)
            ctx = TraceContext.new()
            if retries:
                channel = yield from factory.connect_retrying(
                    receiver.info.node_id, receiver.info, spec=spec, ctx=ctx,
                )
            else:
                yield from receiver.relay_client.wait_connected(timeout=30.0)
                service = yield from sender.open_service_link(
                    receiver.info.node_id
                )
                channel = yield from factory.connect(
                    service, receiver.info, spec=spec, ctx=ctx,
                )
                service.close()
            # rcvbuf deliberately unbound: the planner's believed window
            # (32 KiB) differs from the simulated OS buffer on purpose —
            # binding it would let the tuner "fix" the disagreement that
            # powers the escalation ladder
            late.bind(StackKnobs(stack=channel.driver))
            while scn.sim.now < send_end:
                yield from channel.write(chunk)
                audit.record_sent(chunk)
            yield from channel.flush()
            channel.close()
            audit.finish_sender()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("tune-sender", exc)

    def run_receiver() -> Generator:
        try:
            yield from receiver.start()
            factory = BrokeredConnectionFactory(receiver)
            if retries:
                channel = yield from factory.accept_retrying()
            else:
                _peer, service = yield from receiver.accept_service_link()
                channel = yield from factory.accept(service)
                service.close()
            meter = obs.metrics().counter("tune.rx_bytes_total", link="wan")
            while True:
                data = yield from channel.read(_READ_CHUNK)
                if not data:
                    break
                meter.inc(len(data))
                audit.record_received(data)
            channel.close()
            audit.finish_receiver()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("tune-receiver", exc)

    scn.sim.process(run_sender(), name="chaos-tune-sender")
    scn.sim.process(run_receiver(), name="chaos-tune-receiver")
    scn.sim.process(run_tuner(), name="chaos-tuner")
    _stability_checks(wl, tuner)
    return wl, tuner, planner


@scenario("tune_degrade")
def _build_tune_degrade(seed: int, retries: bool, sessions: bool) -> Workload:
    """Path degradation mid-transfer: shed streams, then re-expand.

    ``wan_degrade`` divides the WAN capacity by 5 for five seconds.  The
    polarity invariant: during the episode the tuner *shrinks* the
    parallel membership toward one stream (fewer bytes in flight on a
    slower path), and after the heal it climbs back via the
    window-limited escalation ladder — a single real stream outruns the
    planner's believed single-stream bound, which is the signal that the
    path has more to give.
    """
    wl, tuner, _planner = _build_tune_workload(
        seed, retries, sessions, "tune_degrade"
    )
    fault_at, heal_at, send_end = _TIMELINE["tune_degrade"]

    def check_polarity() -> list:
        decisions = _streams_decisions(tuner)
        if not decisions:
            return []  # no fault ran (or a plan without one): nothing to say
        out = []
        shed = [
            d for d in decisions
            if fault_at <= d.at <= heal_at + 2.0 and d.new < d.old and d.new <= 2
        ]
        if not shed:
            out.append(
                "tune: no stream shed during the degradation window "
                f"(decisions: {[d.as_dict() for d in decisions]})"
            )
        regrew = [d for d in decisions if d.at > heal_at and d.new > d.old]
        if not regrew:
            out.append("tune: no re-expansion after the path healed")
        if decisions[-1].new < 2:
            out.append(
                f"tune: streams ended at {decisions[-1].new}; the healed "
                "path should have earned re-expansion"
            )
        return out

    wl.post_checks.append(check_polarity)
    return wl


@scenario("tune_loss_burst")
def _build_tune_loss_burst(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """Loss burst at constant capacity: buy recovery streams, then stop.

    ``wan_degrade`` with ``scale=1`` leaves the bandwidth alone and
    floors the loss at 1% for five seconds.  Polarity: while capacity
    holds, loss argues for *more* streams (the paper's only-loss
    resilience case, via the planner's loss headroom applied before the
    clamp); once the burst ends the extra streams are returned.
    """
    wl, tuner, planner = _build_tune_workload(
        seed, retries, sessions, "tune_loss_burst"
    )
    fault_at, heal_at, _send_end = _TIMELINE["tune_loss_burst"]

    def check_polarity() -> list:
        decisions = _streams_decisions(tuner)
        if not decisions:
            return []
        out = []
        observed = max(
            (sig.loss_rate for at, sig, _p in planner.history
             if fault_at <= at <= heal_at),
            default=0.0,
        )
        if observed < 0.005:
            out.append(
                f"tune: loss burst never reached the signals (saw "
                f"{observed:.4f})"
            )
        grew = [
            d for d in decisions
            if fault_at <= d.at <= fault_at + 3.0
            and d.new > d.old and d.new >= 4
        ]
        if not grew:
            out.append(
                "tune: loss at constant capacity should have bought "
                "recovery streams "
                f"(decisions: {[d.as_dict() for d in decisions]})"
            )
        if decisions[-1].new > 4:
            out.append(
                f"tune: streams ended at {decisions[-1].new}; the loss "
                "headroom should have been returned after the burst"
            )
        return out

    wl.post_checks.append(check_polarity)
    return wl


@scenario("tune_bandwidth_step")
def _build_tune_bandwidth_step(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """Bandwidth step-change: converge low, then discover the step up.

    The path is degraded from (almost) the start, so the controller's
    first fix point is a single stream on a 250 KB/s link; when the
    capacity steps up 5x mid-transfer, the escalation ladder has to
    *discover* the new ceiling from goodput alone and re-expand.
    """
    wl, tuner, _planner = _build_tune_workload(
        seed, retries, sessions, "tune_bandwidth_step"
    )
    _fault_at, heal_at, _send_end = _TIMELINE["tune_bandwidth_step"]

    def check_polarity() -> list:
        decisions = _streams_decisions(tuner)
        if not decisions:
            return []
        out = []
        low = [d for d in decisions if d.at <= heal_at and d.new <= 2]
        if not low:
            out.append(
                "tune: never converged to a small membership on the "
                "degraded path "
                f"(decisions: {[d.as_dict() for d in decisions]})"
            )
        grew = [d for d in decisions if d.at > heal_at and d.new > d.old]
        if not grew:
            out.append("tune: no expansion after the bandwidth step-up")
        if decisions[-1].new < 2:
            out.append(
                f"tune: streams ended at {decisions[-1].new} after the "
                "step-up; the discovered capacity was never used"
            )
        return out

    wl.post_checks.append(check_polarity)
    return wl


# -- the live twin -------------------------------------------------------------

_LIVE_WINDOW = 16 * 1024
_LIVE_CHUNK = 4096
_LIVE_PACE = 0.005
_LIVE_PING_EVERY = 0.05
_LIVE_SEND_END = 5.0
_LIVE_FAULT_AT = 1.2
_LIVE_HEAL_AT = 3.7
_LIVE_INTERVAL = 0.1
_LIVE_HYSTERESIS = 0.4
_LIVE_SMOOTH = 0.6


@live_scenario("tune_degrade")
async def _build_live_tune_degrade(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """The live twin: credit-window renegotiation over real sockets.

    A mux bulk channel (plus a ping channel supplying RTT) runs through
    the chaos gateway; the tuner owns the *receiver's* bulk window.  When
    the latency fault inflates the RTT two orders of magnitude the BDP
    explodes past the 16 KiB starting window, the sender's credit stalls
    feed ``mux.backpressure_waits``, and the tuner must grow the window
    mid-stream — the new ``T_WINDOW``/CREDIT renegotiation path crossing
    a real TCP connection — then hand the credit back after the heal.
    """
    from ..livenet.mux import AsyncMuxEndpoint
    from ..livenet.transport import live_connect, live_listen
    from .live import LiveChaosScenario

    scn = LiveChaosScenario(seed)
    wl = Workload(scn)

    listener = await live_listen()
    scn.add_closer(listener.close)
    proxy = await scn.add_proxy("HUB", listener.addr)

    audit = wl.audit("bulk")
    chunk = random.Random(f"{seed}:chaos:livetune").randbytes(_LIVE_CHUNK)
    holder: dict = {}
    late = _LateKnobs()

    source = GaugeSignalSource(
        "live",
        lambda: scn.sim.now,
        goodput_counter=("tune.rx_bytes_total", {"link": "live"}),
        stall_counter=(
            "mux.backpressure_waits", {"node": "alice", "backend": "live"}
        ),
        providers={"rtt": lambda: holder.get("rtt", 0.0)},
        smoothing_window=_LIVE_SMOOTH,
    )
    planner = TunePlanner(
        min_mux_window=_LIVE_WINDOW, max_mux_window=1 << 20, escalation=2.0,
    )
    tuner = LinkTuner(
        source.read,
        late,
        planner,
        clock=lambda: scn.sim.now,
        interval=_LIVE_INTERVAL,
        hysteresis=_LIVE_HYSTERESIS,
        name="live",
    )

    async def run_server() -> None:
        try:
            sock = await listener.accept()
            server = await AsyncMuxEndpoint.establish(
                sock, AsyncMuxEndpoint.RESPONDER,
                window=_LIVE_WINDOW, node="bob",
            )
            scn.add_closer(server.close)
            scn.nodes["bob"] = server
            bulk = await server.accept_channel(tag=b"bulk")
            ping = await server.accept_channel(tag=b"ping")
            late.bind(StackKnobs(mux_channel=bulk))
            holder["bulk_srv"] = bulk

            async def pinger() -> None:
                seq = 0
                while scn.sim.now < _LIVE_SEND_END:
                    t0 = scn.sim.now
                    await ping.send_all(seq.to_bytes(8, "big"))
                    echo = await ping.recv_exactly(8)
                    if echo != seq.to_bytes(8, "big"):
                        raise AssertionError("ping echo mismatch")
                    holder["rtt"] = max(scn.sim.now - t0, 1e-4)
                    seq += 1
                    await asyncio.sleep(_LIVE_PING_EVERY)
                ping.close()

            ping_task = asyncio.ensure_future(pinger())
            meter = obs.metrics().counter("tune.rx_bytes_total", link="live")
            while True:
                data = await bulk.recv(_READ_CHUNK)
                if not data:
                    break
                meter.inc(len(data))
                audit.record_received(data)
            audit.finish_receiver()
            bulk.close()
            await ping_task
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("tune-server", exc)

    async def run_client() -> None:
        try:
            sock = await live_connect(proxy.addr)
            client = await AsyncMuxEndpoint.establish(
                sock, AsyncMuxEndpoint.INITIATOR,
                window=_LIVE_WINDOW, node="alice",
            )
            scn.add_closer(client.close)
            scn.nodes["alice"] = client
            bulk = await client.open_channel(b"bulk")
            ping = await client.open_channel(b"ping")
            holder["bulk_cli"] = bulk

            async def echo() -> None:
                while True:
                    data = await ping.recv(64)
                    if not data:
                        break
                    await ping.send_all(data)
                ping.close()

            echo_task = asyncio.ensure_future(echo())
            while scn.sim.now < _LIVE_SEND_END:
                await bulk.send_all(chunk)
                audit.record_sent(chunk)
                await asyncio.sleep(_LIVE_PACE)
            audit.finish_sender()
            bulk.close()
            await echo_task
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("tune-client", exc)

    async def run_tuner() -> None:
        try:
            while scn.sim.now < _LIVE_SEND_END + 0.3:
                await asyncio.sleep(_LIVE_INTERVAL)
                tuner.step()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("tune-tuner", exc)

    def check_polarity() -> list:
        decisions = [d for d in tuner.decisions if d.knob == "mux_window"]
        if not decisions:
            return []  # no fault → BDP never moved → nothing to renegotiate
        out = []
        grew = [
            d for d in decisions
            if _LIVE_FAULT_AT <= d.at <= _LIVE_HEAL_AT + 0.7
            and d.new > d.old and d.new >= 2 * _LIVE_WINDOW
        ]
        if not grew:
            out.append(
                "tune: the latency spike should have grown the credit "
                "window mid-stream "
                f"(decisions: {[d.as_dict() for d in decisions]})"
            )
        shrank = [
            d for d in decisions if d.at >= _LIVE_HEAL_AT and d.new < d.old
        ]
        if not shrank:
            out.append(
                "tune: the credit granted for the spike was never handed "
                "back after the heal"
            )
        if decisions[-1].new > 4 * _LIVE_WINDOW:
            out.append(
                f"tune: window ended at {decisions[-1].new} B on a "
                "sub-millisecond path"
            )
        retunes = obs.metrics().counter(
            "mux.window_retunes_total", node="bob"
        ).value
        if retunes < 2:
            out.append(
                f"tune: expected >=2 live window renegotiations, saw "
                f"{retunes}"
            )
        announced = {d.new for d in decisions}
        peer_view = getattr(holder.get("bulk_cli"), "peer_rx_window", 0)
        if peer_view not in announced:
            out.append(
                f"tune: the sender's view of the window ({peer_view} B) "
                f"matches no announced retune {sorted(announced)} — "
                "T_WINDOW never crossed the wire"
            )
        return out

    wl.post_checks.append(check_polarity)
    _stability_checks(wl, tuner)
    scn.spawn(run_server(), "chaos-tune-server")
    scn.spawn(run_client(), "chaos-tune-client")
    scn.spawn(run_tuner(), "chaos-tuner")
    return wl
