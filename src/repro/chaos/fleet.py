"""Fleet-scale fan-in workload on the flow-level fidelity tier.

The packet-tier chaos scenarios top out around tens of endpoints — every
byte crosses a simulated TCP state machine.  This module exercises the
other end of the design space: **100k+ endpoints** streaming results into
one collection hub, built on :class:`~repro.simnet.flow.FlowNetwork`
fluid flows instead of sockets.  The point of the exercise is that the
*harness* does not change: :func:`~repro.chaos.runner.run_chaos` drives
the same fault plans, teardown, drain and invariant suite against
:class:`FleetScenario` that it drives against
:class:`~repro.core.scenarios.GridScenario`, because both expose the
same duck-typed scenario surface (``sim``, ``backend``, ``relay``,
``site_wan_link(...)``, ``shutdown()``, ``chaos_stats()``).

Workload shape
--------------
Endpoints fan in over a two-level tree (endpoint uplinks -> core ->
hub) in arrival *waves*; each wave's flows draw from a small set of
quantized size classes.  Waves and size classes are not just flavour:
they bound the number of distinct completion instants, which bounds the
number of rate re-solves, which is what keeps a 100k-flow run inside a
tens-of-resolves budget (see ``FlowNetwork.stats()["resolves"]``).

Invariant accounting
--------------------
The generic invariant suite reads obs counters, so the fleet emits the
same instruments the real stack emits, with the same conservation
semantics:

* ``relay.forwarded_bytes_total`` — incremented at each flow completion
  in lock-step with ``hub.forwarded_bytes``.
* ``mux.tx_bytes`` / ``mux.rx_bytes`` / ``mux.credit_granted`` — each
  endpoint's transfer is one logical mux channel into the hub; tx == rx
  per channel (conservation) and tx never exceeds the initial window
  plus hub grants (credit).
* ``session.reconnects_total{role=initiator}`` + ``session.resume``
  spans with ``outcome="ok"`` — when a ``link_down`` fault on the hub
  partitions the fleet and then heals, every flow that stalled
  mid-stream records exactly one reconnect + one successful resume span
  (only with ``sessions=True``; without the session layer nothing
  resumes and both sides of the invariant stay zero).

Scale knobs (the registry's builder signature is fixed) come from the
environment: ``REPRO_FLEET_ENDPOINTS`` (default 2000) and
``REPRO_FLEET_WAVES`` (default 10).  ``make smoke-flow`` runs the
100k-endpoint configuration and asserts wall-clock.
"""

from __future__ import annotations

import os
import random
from typing import Optional

from .. import obs
from ..mux import DEFAULT_WINDOW
from ..obs import TraceContext
from ..obs.flight import FlightRecorder
from ..simnet.flow import FlowBackend, FluidFlow
from .registry import scenario
from .runner import Workload

__all__ = ["FleetHub", "FleetScenario"]

#: hub uplink: 10 Gbit/s collection-side capacity
HUB_BANDWIDTH = 1_250_000_000.0
HUB_DELAY = 0.002
#: endpoint uplinks: 16 Mbit/s access, 10 ms one-way
ENDPOINT_BANDWIDTH = 2_000_000.0
ENDPOINT_DELAY = 0.010
#: quantized result sizes — few distinct classes keep re-solves bounded
SIZE_CLASSES = (128 * 1024, 256 * 1024, 384 * 1024, 512 * 1024)
#: seconds between arrival waves
WAVE_GAP = 5.0

DEFAULT_ENDPOINTS = 2000
DEFAULT_WAVES = 10


def _env_int(name: str, default: int) -> int:
    try:
        return max(1, int(os.environ.get(name, "")))
    except ValueError:
        return default


class FleetHub:
    """Relay-shaped accounting object for the collection hub.

    Quacks like :class:`~repro.core.relay.RelayServer` where the chaos
    harness touches it: byte/message accounting for the obs invariant,
    a flight recorder for exports/postmortems, ``stop``/``start`` for
    teardown and the ``relay_crash`` fault, and an (always empty)
    ``sessions`` table.
    """

    def __init__(self, clock):
        self.forwarded_bytes = 0
        self.forwarded_messages = 0
        self.sessions: dict = {}
        self.running = True
        self.flight = FlightRecorder("relay", clock=clock)

    def stop(self) -> None:
        self.running = False

    def start(self) -> None:
        self.running = True


class FleetScenario:
    """N endpoints fanning into one hub on the flow tier.

    Exposes the chaos scenario protocol, so ``run_chaos`` and
    ``check_invariants`` treat it exactly like a ``GridScenario``:
    ``link_down@t:site=hub,for=d`` cuts the hub's WAN uplink (a fleet
    partition), ``site=<endpoint>`` cuts a single endpoint's access
    link.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        endpoints: Optional[int] = None,
        waves: Optional[int] = None,
        sessions: bool = False,
    ):
        self.seed = seed
        self.endpoints = (
            _env_int("REPRO_FLEET_ENDPOINTS", DEFAULT_ENDPOINTS)
            if endpoints is None
            else endpoints
        )
        self.waves = (
            _env_int("REPRO_FLEET_WAVES", DEFAULT_WAVES)
            if waves is None
            else waves
        )
        self.waves = min(self.waves, self.endpoints)
        self.sessions = sessions

        self.backend = FlowBackend(seed=seed)
        self.net = self.backend.net
        self.sim = self.backend.sim
        obs.use_sim_clock(self.sim)

        self.relay = FleetHub(clock=lambda: self.sim.now)
        self.nodes: dict = {}
        self.proxies: dict = {}

        # two-level tree: endpoints and the hub both hang off the core
        self.net.add_host("core")
        self.net.add_host(
            "hub", "core", bandwidth=HUB_BANDWIDTH, delay=HUB_DELAY
        )
        for i in range(self.endpoints):
            self.net.add_host(
                f"ep{i:06d}",
                "core",
                bandwidth=ENDPOINT_BANDWIDTH,
                delay=ENDPOINT_DELAY,
            )

        # arrival schedule: wave k fires at exactly 1 + k*WAVE_GAP so a
        # fault plan can target a wave's activity window deterministically;
        # seed variety comes from rotating each wave's size-class offset
        rng = random.Random(f"{seed}:fleet")
        self._class_offset = [rng.randrange(len(SIZE_CLASSES))
                              for _ in range(self.waves)]
        base, extra = divmod(self.endpoints, self.waves)
        self._wave_sizes = [
            base + (1 if k < extra else 0) for k in range(self.waves)
        ]
        self._wave_start = 0
        for k in range(self.waves):
            self.sim.call_at(1.0 + k * WAVE_GAP, self._start_wave, k)

        self.expected_flows = self.endpoints
        self.expected_bytes = 0
        idx = 0
        for k, n in enumerate(self._wave_sizes):
            off = self._class_offset[k]
            for j in range(n):
                self.expected_bytes += SIZE_CLASSES[(off + idx + j)
                                                    % len(SIZE_CLASSES)]
            idx += n

        # partition bookkeeping for session-resume accounting
        self.session_resumes = 0
        self._partitioned = False
        self._partition_at = 0.0
        self._hub_link = self.net.hosts["hub"].uplink
        self.net.on_link_change.append(self._on_link_change)

    # -- workload ------------------------------------------------------------
    def _start_wave(self, k: int) -> None:
        n = self._wave_sizes[k]
        first = self._wave_start
        self._wave_start += n
        off = self._class_offset[k]
        reg = obs.metrics()
        for j in range(n):
            i = first + j
            size = SIZE_CLASSES[(off + i) % len(SIZE_CLASSES)]
            src = f"ep{i:06d}"
            flow = self.net.start_flow(
                src, "hub", size,
                name=f"f{i}", channel=str(i),
                on_complete=self._flow_done,
            )
            # the endpoint's side of the mux ledger, written up front so
            # an unfinished flow shows up as a conservation violation
            reg.counter("mux.tx_bytes", node=src, channel=flow.channel).inc(
                size
            )
        self.relay.flight.note("fleet.wave", wave=k, flows=n)
        obs.event("fleet.wave", wave=k, flows=n, t=round(self.sim.now, 6))

    def _flow_done(self, flow: FluidFlow) -> None:
        size = int(flow.size)
        self.relay.forwarded_bytes += size
        self.relay.forwarded_messages += 1
        reg = obs.metrics()
        reg.counter("relay.forwarded_bytes_total", backend="flow").inc(size)
        # hub side of the ledger: bytes delivered, credit granted back
        # beyond the initial window (sent <= window + granted must hold)
        reg.counter("mux.rx_bytes", node="relay", channel=flow.channel).inc(
            size
        )
        grant = max(0, size - DEFAULT_WINDOW)
        if grant:
            reg.counter(
                "mux.credit_granted", node="relay", channel=flow.channel
            ).inc(grant)

    # -- partition / resume accounting ---------------------------------------
    def _on_link_change(self, link, down: bool) -> None:
        if link is not self._hub_link:
            return
        if down:
            self._partitioned = True
            self._partition_at = self.sim.now
            obs.event("fleet.partition", t=round(self.sim.now, 6))
            return
        if not self._partitioned:
            return
        self._partitioned = False
        if not self.sessions:
            # no session layer: the fluid flows simply pick their rates
            # back up, and nothing claims to have "resumed"
            return
        # Everything active with a zero rate right now stalled against the
        # dead hub uplink — whether it was mid-stream when the partition
        # hit or came out of handshake during it.  Each one is a session
        # the heal just resumed: one reconnect increment, one ok span.
        now = self.sim.now
        for f in self.net.active_flows():
            if f.state != "active" or f.rate != 0.0:
                continue
            obs.metrics().counter(
                "session.reconnects_total", role="initiator", node=f.src
            ).inc()
            obs.record_span(
                "session.resume", self._partition_at, now,
                ctx=TraceContext.new(), node=f.src,
                sid=f.name, outcome="ok",
            )
            self.session_resumes += 1

    # -- chaos scenario protocol ---------------------------------------------
    def site_wan_link(self, site: str):
        """``hub`` -> the hub's uplink; an endpoint name -> its uplink."""
        if site == "hub":
            return self._hub_link
        host = self.net.hosts.get(site)
        if host is None or host.uplink is None:
            raise KeyError(f"no WAN link for site {site!r}")
        return host.uplink

    def shutdown(self) -> None:
        self.relay.stop()

    def chaos_stats(self) -> dict:
        net = self.net.stats()
        return {
            "endpoints": self.endpoints,
            "waves": self.waves,
            "flows_completed": net["flows_completed"],
            "rate_resolves": net["resolves"],
            "relay_forwarded_bytes": self.relay.forwarded_bytes,
            "relay_forwarded_messages": self.relay.forwarded_messages,
            "reconnects": self.session_resumes,
        }

    # -- scenario-specific invariants ----------------------------------------
    def completion_violations(self) -> list:
        out = []
        done = self.net.flows_completed
        if done != self.expected_flows:
            out.append(
                f"fleet: only {done}/{self.expected_flows} flows completed"
            )
        if self.relay.forwarded_bytes != self.expected_bytes:
            out.append(
                f"fleet: hub received {self.relay.forwarded_bytes} bytes, "
                f"expected {self.expected_bytes}"
            )
        return out


@scenario("fleet_fanin", fidelities=("flow",))
def _build_fleet_fanin(
    seed: int, retries: bool, sessions: bool, fidelity: str = "flow"
) -> Workload:
    """Fleet-scale fan-in: waves of endpoints stream into one hub.

    Flow-tier only.  ``retries`` has no effect here — the fluid model
    abstracts establishment retries away; ``sessions`` toggles whether a
    healed fleet partition is accounted as session resumes (and thereby
    whether the session obs invariant has anything to check).
    """
    scn = FleetScenario(seed=seed, sessions=sessions)
    wl = Workload(scn)
    wl.post_checks.append(scn.completion_violations)
    return wl
