"""Canary-rollout chaos scenarios: the telemetry plane gating a config push.

The end-to-end demonstration the staged-rollout ROADMAP item asks for,
on BOTH backends: a fleet of senders streams into one hub while every
node publishes delta-snapshot telemetry; a
:class:`~repro.ops.rollout.CanaryRollout` pushes a tuner-policy change
to a canary subset and watches the aggregator's throughput SLO over a
bake window.

* ``canary_rollout`` — the pushed policy is deliberately **bad** (a
  trickle pace).  The canaries' windowed throughput collapses, the SLO
  breaches, and the gate must revert the canaries *within the bake
  window* — the control senders never see the bad config.  Post-checks
  pin all of that plus the usual delivery audits and byte conservation.
* ``canary_rollout_good`` — the polarity twin: the pushed policy is an
  **improvement**.  No canary breach may start during the bake, and the
  gate must promote the change to the whole fleet.

Both run unchanged on the sim backend (deterministic clocks, publishers
as sim processes) and the live backend (real sockets through the chaos
gateway, publishers as asyncio tasks) — only the geometry constants
differ, because wall-clock runs have to finish in seconds.
"""

from __future__ import annotations

import asyncio
import random
from typing import Generator

from .. import obs
from ..core.factory import BrokeredConnectionFactory
from ..core.scenarios import GridScenario
from ..livenet.transport import live_connect, live_listen
from ..ops.rollout import CanaryRollout, ConfigChange
from ..tune.planner import TunerPolicy
from .live import LiveChaosScenario
from .registry import live_scenario, scenario
from .runner import Workload, _spec

# TunerPolicy moved to repro.tune.planner; re-exported for old importers.
__all__ = ["TunerPolicy"]


#: sender fleet: two canaries, two controls, one hub
_CANARIES = ("c1", "c2")
_CONTROLS = ("s1", "s2")
_SENDERS = _CANARIES + _CONTROLS

# -- sim geometry (simulated seconds) -----------------------------------------
_SIM_HEALTHY = TunerPolicy("healthy", pace=0.05, chunk=8192)      # ~160 KB/s
_SIM_BAD = TunerPolicy("trickle", pace=0.5, chunk=512)            # ~1 KB/s
_SIM_IMPROVED = TunerPolicy("improved", pace=0.04, chunk=8192)    # ~205 KB/s
_SIM_INTERVAL = 0.5
_SIM_WINDOW = 3.0
_SIM_THRESHOLD = 40_000.0      # B/s; healthy 4x above, trickle 40x below
_SIM_SUSTAIN = 1.0
_SIM_ROLLOUT_AT = 4.0
_SIM_BAKE = 10.0
_SIM_POLL = 0.5
_SIM_SEND_END = 20.0

# -- live geometry (wall-clock seconds; must finish in a few seconds) ---------
_LIVE_HEALTHY = TunerPolicy("healthy", pace=0.02, chunk=16 * 1024)  # ~800 KB/s
_LIVE_BAD = TunerPolicy("trickle", pace=0.2, chunk=1024)            # ~5 KB/s
_LIVE_IMPROVED = TunerPolicy("improved", pace=0.015, chunk=16 * 1024)
_LIVE_INTERVAL = 0.1
_LIVE_WINDOW = 1.0
_LIVE_THRESHOLD = 100_000.0
_LIVE_SUSTAIN = 0.3
_LIVE_ROLLOUT_AT = 0.8
_LIVE_BAKE = 3.0
_LIVE_POLL = 0.1
_LIVE_SEND_END = 5.0
#: allowed windowed proxy conservation drift: bytes legitimately in
#: flight inside the gateway (one forwarding chunk per pump direction)
_LIVE_DRIFT_SLACK = 256 * 1024


def _policies(healthy: TunerPolicy) -> dict:
    return {node: healthy for node in _SENDERS}


def _rollout_change(
    policies: dict, pushed: TunerPolicy, healthy: TunerPolicy
) -> ConfigChange:
    def apply(node: str) -> None:
        policies[node] = pushed

    def revert(node: str) -> None:
        policies[node] = healthy

    return ConfigChange(f"tuner:{pushed.name}", apply, revert)


def _polarity_checks(wl: Workload, rollout: CanaryRollout, good: bool) -> None:
    """The acceptance criteria, as post-run invariants."""
    scn = wl.scenario

    def check() -> list:
        out = []
        agg = scn.telemetry
        if good:
            if rollout.state != "promoted":
                out.append(
                    f"rollout: healthy config ended {rollout.state!r}, "
                    "expected promoted"
                )
            else:
                baked = [
                    b
                    for b in agg.breaches_since(
                        rollout.applied_at, sources=rollout.canary_sources
                    )
                    if b.started <= rollout.decided_at
                ]
                if baked:
                    out.append(
                        "rollout: healthy config breached during bake: "
                        f"{baked[0].slo} on {baked[0].source}"
                    )
            return out
        if rollout.state != "rolled_back":
            out.append(
                f"rollout: bad config ended {rollout.state!r}, "
                "expected rolled_back"
            )
            return out
        decided = rollout.decided_at - rollout.applied_at
        if decided > rollout.bake_seconds:
            out.append(
                f"rollout: rollback took {decided:.2f}s, outside the "
                f"{rollout.bake_seconds:.1f}s bake window"
            )
        if rollout.trigger is None or (
            rollout.trigger["source"] not in rollout.canary_sources
        ):
            out.append(
                f"rollout: rollback trigger {rollout.trigger!r} is not a "
                "canary breach"
            )
        control = agg.breaches_since(rollout.applied_at, sources=_CONTROLS)
        if control:
            out.append(
                "rollout: control sender breached — the bad config leaked "
                f"past the canaries: {control[0].slo} on {control[0].source}"
            )
        return out

    wl.post_checks.append(check)


# ---------------------------------------------------------------------------
# sim backend
# ---------------------------------------------------------------------------


def _build_rollout_sim(
    seed: int, retries: bool, sessions: bool, good: bool
) -> Workload:
    scn = GridScenario(seed=seed)
    scn.add_site(
        "HUB", "nat_firewall", access_bandwidth=12_500_000.0, access_delay=0.01
    )
    for name in _SENDERS:
        scn.add_site(
            name.upper(), "open", access_bandwidth=2_500_000.0, access_delay=0.01
        )
    hub = scn.add_node("HUB", "hub", auto_reconnect=retries)
    nodes = {
        name: scn.add_node(name.upper(), name, auto_reconnect=retries)
        for name in _SENDERS
    }

    agg = scn.enable_telemetry(interval=_SIM_INTERVAL, window=_SIM_WINDOW)
    agg.add_slo(
        obs.SLO(
            "throughput",
            obs.sli_counter_rate("rollout.sent_bytes_total"),
            threshold=_SIM_THRESHOLD,
            op=">=",
            for_seconds=_SIM_SUSTAIN,
        )
    )

    policies = _policies(_SIM_HEALTHY)
    pushed = _SIM_IMPROVED if good else _SIM_BAD
    rollout = CanaryRollout(
        _rollout_change(policies, pushed, _SIM_HEALTHY),
        agg,
        targets={name: name for name in _SENDERS},
        canaries=_CANARIES,
        bake_seconds=_SIM_BAKE,
        poll_seconds=_SIM_POLL,
        clock=lambda: scn.sim.now,
    )

    wl = Workload(scn)
    spec = _spec(sessions)
    audits = {name: wl.audit(f"rollout-{name}") for name in _SENDERS}

    def run_sender(name: str) -> Generator:
        node = nodes[name]
        audit = audits[name]
        meter = obs.metrics().counter("rollout.sent_bytes_total", node=name)
        rng = random.Random(f"{seed}:rollout:{name}")
        try:
            yield from node.start()
            factory = BrokeredConnectionFactory(node)
            if retries:
                channel = yield from factory.connect_retrying(
                    hub.info.node_id, hub.info, spec=spec
                )
            else:
                yield from hub.relay_client.wait_connected(timeout=30.0)
                service = yield from node.open_service_link(hub.info.node_id)
                channel = yield from factory.connect(service, hub.info, spec=spec)
                service.close()
            yield from channel.write(name.encode())
            while scn.sim.now < _SIM_SEND_END:
                policy = policies[name]
                chunk = rng.randbytes(policy.chunk)
                yield from channel.write(chunk)
                audit.record_sent(chunk)
                meter.inc(len(chunk))
                yield scn.sim.timeout(policy.pace)
            yield from channel.flush()
            channel.close()
            audit.finish_sender()
            agg.retire(name)
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail(f"sender:{name}", exc)

    def read_one(channel) -> Generator:
        try:
            name = (yield from channel.read_exactly(2)).decode()
            while True:
                data = yield from channel.read(64 * 1024)
                if not data:
                    break
                audits[name].record_received(data)
            channel.close()
            audits[name].finish_receiver()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("hub-reader", exc)

    def run_hub() -> Generator:
        try:
            yield from hub.start()
            factory = BrokeredConnectionFactory(hub)
            for i in range(len(_SENDERS)):
                if retries:
                    channel = yield from factory.accept_retrying()
                else:
                    _peer, service = yield from hub.accept_service_link()
                    channel = yield from factory.accept(service)
                    service.close()
                scn.sim.process(read_one(channel), name=f"rollout-read-{i}")
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("hub", exc)

    scn.sim.process(run_hub(), name="rollout-hub")
    for name in _SENDERS:
        scn.sim.process(run_sender(name), name=f"rollout-{name}")
    scn.sim.process(
        rollout.run_sim(scn.sim, start_at=_SIM_ROLLOUT_AT), name="rollout-gate"
    )

    _polarity_checks(wl, rollout, good)

    def record_stats() -> list:
        wl.stats["rollout"] = rollout.stats()
        wl.stats["slo_breaches"] = len(agg.breaches)
        return []

    wl.post_checks.append(record_stats)
    return wl


@scenario("canary_rollout")
def _build_canary_rollout(seed: int, retries: bool, sessions: bool) -> Workload:
    """Push a BAD tuner policy to two canaries; the gate must roll back.

    Four senders stream into one hub at a healthy pace while their
    telemetry publishers feed a windowed throughput SLO.  At t=4s the
    rollout gate applies a trickle policy to the canary pair; their
    windowed rate collapses ~40x below the objective, the sustained
    breach fires, and the gate reverts the canaries well inside the 10s
    bake window.  The controls must stay breach-free and every stream
    must still deliver byte-exactly — detection AND containment.
    """
    return _build_rollout_sim(seed, retries, sessions, good=False)


@scenario("canary_rollout_good")
def _build_canary_rollout_good(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """Push a healthy tuner policy; the gate must bake through and promote.

    The polarity twin of ``canary_rollout``: the pushed policy slightly
    *improves* throughput, no canary breach may start during the bake,
    and after the window elapses the gate applies the change to the
    control senders too.  Together the pair pins that the gate reacts to
    telemetry, not to the act of pushing.
    """
    return _build_rollout_sim(seed, retries, sessions, good=True)


# ---------------------------------------------------------------------------
# live backend
# ---------------------------------------------------------------------------


async def _build_rollout_live(
    seed: int, retries: bool, sessions: bool, good: bool
) -> Workload:
    scn = LiveChaosScenario(seed)
    wl = Workload(scn)

    listener = await live_listen()
    scn.add_closer(listener.close)
    proxy = await scn.add_proxy("HUB", listener.addr)
    scn.nodes["hub"] = None
    for name in _SENDERS:
        scn.nodes[name] = None

    selections = {
        name: (lambda n, labels, _id=name: labels.get("node") == _id)
        for name in _SENDERS
    }
    selections["proxies"] = lambda n, labels: n.startswith("proxy.")
    agg = scn.enable_telemetry(
        interval=_LIVE_INTERVAL, window=_LIVE_WINDOW, sources=selections
    )
    agg.add_slo(
        obs.SLO(
            "throughput",
            obs.sli_counter_rate("rollout.sent_bytes_total"),
            threshold=_LIVE_THRESHOLD,
            op=">=",
            for_seconds=_LIVE_SUSTAIN,
        )
    )
    agg.add_slo(
        obs.SLO(
            "proxy-conservation",
            obs.sli_proxy_drift(),
            threshold=_LIVE_DRIFT_SLACK,
            op="<=",
        )
    )

    policies = _policies(_LIVE_HEALTHY)
    pushed = _LIVE_IMPROVED if good else _LIVE_BAD
    rollout = CanaryRollout(
        _rollout_change(policies, pushed, _LIVE_HEALTHY),
        agg,
        targets={name: name for name in _SENDERS},
        canaries=_CANARIES,
        bake_seconds=_LIVE_BAKE,
        poll_seconds=_LIVE_POLL,
        clock=lambda: scn.sim.now,
    )

    audits = {name: wl.audit(f"rollout-{name}") for name in _SENDERS}

    async def run_sender(name: str) -> None:
        audit = audits[name]
        meter = obs.metrics().counter("rollout.sent_bytes_total", node=name)
        rng = random.Random(f"{seed}:rollout:{name}")
        try:
            sock = await live_connect(proxy.addr)
            await sock.send_all(name.encode())
            while scn.sim.now < _LIVE_SEND_END:
                policy = policies[name]
                chunk = rng.randbytes(policy.chunk)
                await sock.send_all(chunk)
                audit.record_sent(chunk)
                meter.inc(len(chunk))
                await asyncio.sleep(policy.pace)
            sock.write_eof()
            # barrier: the hub closes once it has read our EOF, so the
            # peer close stands in for an application-level ack
            await asyncio.wait_for(sock.recv(1), timeout=10.0)
            sock.close()
            audit.finish_sender()
            agg.retire(name)
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail(f"sender:{name}", exc)

    async def read_one(sock) -> None:
        try:
            name = b""
            while len(name) < 2:
                part = await sock.recv(2 - len(name))
                if not part:
                    raise EOFError("stream ended before the sender tag")
                name += part
            audit = audits[name.decode()]
            while True:
                data = await sock.recv(64 * 1024)
                if not data:
                    break
                audit.record_received(data)
            sock.close()
            audit.finish_receiver()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("hub-reader", exc)

    async def run_hub() -> None:
        try:
            readers = []
            for _ in range(len(_SENDERS)):
                sock = await listener.accept()
                readers.append(asyncio.ensure_future(read_one(sock)))
            await asyncio.gather(*readers)
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("hub", exc)

    scn.spawn(run_hub(), "rollout-hub")
    for name in _SENDERS:
        scn.spawn(run_sender(name), f"rollout-{name}")
    scn.spawn(rollout.run_async(start_after=_LIVE_ROLLOUT_AT), "rollout-gate")

    _polarity_checks(wl, rollout, good)

    def record_stats() -> list:
        wl.stats["rollout"] = rollout.stats()
        wl.stats["slo_breaches"] = len(agg.breaches)
        return []

    wl.post_checks.append(record_stats)
    return wl


@live_scenario("canary_rollout")
async def _build_live_canary_rollout(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """Live twin of ``canary_rollout``: real sockets through the gateway.

    Four asyncio senders stream through one :class:`ChaosTcpProxy` into
    a hub listener; telemetry publishers tick on wall time at 10 Hz.
    The gate pushes the trickle policy at t≈0.8s and must revert the
    canaries inside a 3s bake — with the proxy's byte ledger streamed as
    a conservation-drift SLO the whole way.
    """
    return await _build_rollout_live(seed, retries, sessions, good=False)


@live_scenario("canary_rollout_good")
async def _build_live_canary_rollout_good(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """Live twin of ``canary_rollout_good``: healthy push bakes through."""
    return await _build_rollout_live(seed, retries, sessions, good=True)
