"""Scenario runner: workloads under a fault plan, with invariant checks.

:func:`run_chaos` executes a named workload inside a fresh simulated
grid while a :class:`~repro.chaos.faults.FaultScheduler` injects the
plan's faults, then tears everything down, drains the clock past the
last TIME_WAIT / retransmit deadline and runs the invariant suite.  The
result is a :class:`ChaosReport` whose JSON form is **byte-identical**
for the same ``(scenario, seed, plan)`` triple — a failing run is fully
described (and replayed) by those three values::

    from repro.chaos import run_chaos

    report = run_chaos(
        scenario="wan_transfer",
        seed=7,
        plan="relay_crash@2:for=8;link_down@12:site=A,for=0.4",
    )
    assert report.ok, report.violations

Each run installs its own metrics registry and trace recorder (restoring
the previous ones afterwards), so fault events (``chaos.*``), retry
recoveries (``broker.*``, ``relay.client.*``) and establishment spans
from one run never bleed into another.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Union

from .. import obs
from ..core.factory import BrokeredConnectionFactory
from ..core.scenarios import GridScenario
from ..core.utilization.spec import StackSpec
from ..obs import MetricsRegistry, TraceRecorder
from .faults import FaultPlan, FaultScheduler
from .invariants import ChannelAudit, check_invariants

__all__ = ["ChaosReport", "Workload", "run_chaos", "SCENARIOS"]

#: drain window after teardown: covers TIME_WAIT (2 s), the longest
#: retransmit backoff (60 s) and any cancelled-timer heap residue.
DRAIN_SECONDS = 150.0

#: chunk sizes for the staged-transfer workload
_WRITE_CHUNK = 32 * 1024
_READ_CHUNK = 64 * 1024


@dataclass
class ChaosReport:
    """Everything a chaos run produced, in deterministic JSON-able form."""

    scenario: str
    seed: int
    plan: str
    retries: bool
    ok: bool
    violations: list = field(default_factory=list)
    injected: list = field(default_factory=list)
    healed: list = field(default_factory=list)
    channels: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def triple(self) -> tuple:
        """The replayable ``(scenario, seed, plan)`` identity of this run."""
        return (self.scenario, self.seed, self.plan)

    def to_json(self) -> str:
        """Canonical JSON: byte-identical across reruns of the same triple."""
        return json.dumps(
            {
                "scenario": self.scenario,
                "seed": self.seed,
                "plan": self.plan,
                "retries": self.retries,
                "ok": self.ok,
                "violations": self.violations,
                "injected": self.injected,
                "healed": self.healed,
                "channels": self.channels,
                "errors": self.errors,
                "stats": self.stats,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"FAILED ({len(self.violations)})"
        return (
            f"chaos {self.scenario} seed={self.seed} "
            f"plan={self.plan or '<none>'} retries={self.retries}: {verdict}"
        )


class Workload:
    """A built scenario plus the audit state its processes feed."""

    def __init__(self, scenario: GridScenario):
        self.scenario = scenario
        self.audits: list[ChannelAudit] = []
        self.errors: list[str] = []

    def audit(self, name: str) -> ChannelAudit:
        a = ChannelAudit(name)
        self.audits.append(a)
        return a

    def fail(self, where: str, exc: BaseException) -> None:
        self.errors.append(f"{where}: {type(exc).__name__}: {exc}")


def _build_wan_transfer(seed: int, retries: bool) -> Workload:
    """Two staged bulk transfers, open site -> firewalled site.

    Stage 1's data link is spliced/direct, so a mid-transfer relay crash
    must not disturb it; stage 2 starts afterwards and needs a *fresh*
    brokered establishment, which only survives relay downtime or WAN
    flaps through the retry layer (``retries=True``).  With retries off
    the same plan reproducibly strands stage 2.
    """
    scn = GridScenario(seed=seed)
    # Slow WAN access (1.25 MB/s) so a multi-MiB stage spans several
    # simulated seconds — faults land *mid-transfer*, not between stages.
    scn.add_site("A", "open", access_bandwidth=1_250_000.0, access_delay=0.01)
    scn.add_site("B", "firewall", access_bandwidth=1_250_000.0, access_delay=0.01)
    sender = scn.add_node("A", "alice", auto_reconnect=retries)
    receiver = scn.add_node("B", "bob", auto_reconnect=retries)

    wl = Workload(scn)
    stage_bytes = 4 * (1 << 20)
    payloads = [
        random.Random(f"{seed}:chaos:stage{i}").randbytes(stage_bytes)
        for i in range(2)
    ]
    audits = [wl.audit(f"stage{i}") for i in range(2)]

    def run_sender() -> Generator:
        try:
            yield from sender.start()
            factory = BrokeredConnectionFactory(sender)
            for stage, (payload, audit) in enumerate(zip(payloads, audits)):
                if retries:
                    channel = yield from factory.connect_retrying(
                        "bob", receiver.info, spec=StackSpec.tcp()
                    )
                else:
                    yield from receiver.relay_client.wait_connected(timeout=30.0)
                    service = yield from sender.open_service_link("bob")
                    channel = yield from factory.connect(
                        service, receiver.info, spec=StackSpec.tcp()
                    )
                    service.close()
                for off in range(0, len(payload), _WRITE_CHUNK):
                    chunk = payload[off : off + _WRITE_CHUNK]
                    yield from channel.write(chunk)
                    audit.record_sent(chunk)
                yield from channel.flush()
                channel.close()
                audit.finish_sender()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("sender", exc)

    def run_receiver() -> Generator:
        try:
            yield from receiver.start()
            factory = BrokeredConnectionFactory(receiver)
            for stage, audit in enumerate(audits):
                if retries:
                    channel = yield from factory.accept_retrying()
                else:
                    _peer, service = yield from receiver.accept_service_link()
                    channel = yield from factory.accept(service)
                    service.close()
                while True:
                    data = yield from channel.read(_READ_CHUNK)
                    if not data:
                        break
                    audit.record_received(data)
                channel.close()
                audit.finish_receiver()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("receiver", exc)

    scn.sim.process(run_sender(), name="chaos-sender")
    scn.sim.process(run_receiver(), name="chaos-receiver")
    return wl


#: name -> builder(seed, retries) -> Workload
SCENARIOS: dict[str, Callable[[int, bool], Workload]] = {
    "wan_transfer": _build_wan_transfer,
}


def run_chaos(
    scenario: str = "wan_transfer",
    seed: int = 1,
    plan: Union[str, FaultPlan] = "",
    retries: bool = True,
    until: float = 900.0,
    trace_path: Optional[str] = None,
) -> ChaosReport:
    """Run ``scenario`` under ``plan``; returns the invariant report.

    ``plan`` accepts either a :class:`FaultPlan` or its canonical string
    form.  ``trace_path`` optionally exports the run's metrics + trace as
    JSON lines (the :mod:`repro.obs.export` schema).
    """
    try:
        build = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {scenario!r}; have {sorted(SCENARIOS)}"
        ) from None
    parsed = plan if isinstance(plan, FaultPlan) else FaultPlan.parse(plan)

    # Scoped observability: a fresh registry + recorder per run, installed
    # *before* the scenario is built so use_sim_clock binds them both.
    registry = MetricsRegistry()
    recorder = TraceRecorder()
    prev_registry = obs.set_registry(registry)
    prev_recorder = obs.set_tracer(recorder)
    try:
        wl = build(seed, retries)
        scn = wl.scenario
        scheduler = FaultScheduler(scn, parsed)
        scheduler.arm()
        scn.sim.run(until=until)

        # Teardown, then drain: anything still alive afterwards is a leak.
        for node in scn.nodes.values():
            node.stop()
        scn.relay.stop()
        scn.sim.run(until=scn.sim.now + DRAIN_SECONDS)

        violations = check_invariants(
            scn, wl.audits, wl.errors, registry=registry, recorder=recorder
        )
        if len(scheduler.injected) != len(parsed):
            violations.append(
                f"chaos: only {len(scheduler.injected)}/{len(parsed)} "
                "faults fired before the deadline"
            )
        report = ChaosReport(
            scenario=scenario,
            seed=seed,
            plan=parsed.spec(),
            retries=retries,
            ok=not violations,
            violations=sorted(violations),
            injected=list(scheduler.injected),
            healed=list(scheduler.healed),
            channels=[a.summary() for a in wl.audits],
            errors=list(wl.errors),
            stats={
                "sim_seconds": scn.sim.now,
                "relay_forwarded_bytes": scn.relay.forwarded_bytes,
                "relay_forwarded_messages": scn.relay.forwarded_messages,
                "reconnects": sum(
                    n.relay_client.reconnects for n in scn.nodes.values()
                ),
                "trace_records": len(recorder.records),
            },
        )
        if trace_path is not None:
            obs.export_jsonl(trace_path, registry=registry, recorder=recorder)
        return report
    finally:
        obs.set_registry(prev_registry)
        obs.set_tracer(prev_recorder)
