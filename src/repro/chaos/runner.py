"""Scenario runner: workloads under a fault plan, with invariant checks.

:func:`run_chaos` executes a named workload inside a fresh simulated
grid while a :class:`~repro.chaos.faults.FaultScheduler` injects the
plan's faults, then tears everything down, drains the clock past the
last TIME_WAIT / retransmit deadline and runs the invariant suite.  The
result is a :class:`ChaosReport` whose JSON form is **byte-identical**
for the same ``(scenario, seed, plan)`` triple — a failing run is fully
described (and replayed) by those three values::

    from repro.chaos import run_chaos

    report = run_chaos(
        scenario="wan_transfer",
        seed=7,
        plan="relay_crash@2:for=8;link_down@12:site=A,for=0.4",
    )
    assert report.ok, report.violations

Two independent robustness layers can be toggled per run:

* ``retries`` — the establishment-time decision-tree retry/backoff layer
  (``connect_retrying`` / ``auto_reconnect``).  It survives faults that
  strike *between* transfers but cannot help a stream already in flight.
* ``sessions`` — the :class:`~repro.core.session.SessionLink` layer
  (``StackSpec...with_session()``).  It survives faults that strike
  *mid-stream*: the transport error (or heartbeat watchdog) triggers a
  transparent reconnect + offset negotiation + replay, and the
  application-visible byte stream continues exactly where it stopped.

The acceptance matrix for the session layer is the polarity of the two:
a mid-stream ``conntrack_flush`` / ``nat_expiry`` / ``peer_drop`` /
``relay_crash`` completes byte-identically with ``sessions=True`` and
reproducibly fails with ``sessions=False``.

Each run installs its own metrics registry and trace recorder (restoring
the previous ones afterwards), so fault events (``chaos.*``), retry
recoveries (``broker.*``, ``relay.client.*``, ``session.*``) and
establishment spans from one run never bleed into another.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Union

from .. import obs
from ..core.factory import BrokeredConnectionFactory
from ..core.scenarios import GridScenario
from ..core.utilization.spec import StackSpec
from ..obs import MetricsRegistry, TraceContext, TraceRecorder, seed_ids
from ..obs.assemble import assemble, render_text
from .faults import FaultPlan, FaultScheduler, require_backend
from .invariants import ChannelAudit, check_invariants
from .registry import SCENARIOS, get_scenario, scenario

__all__ = ["ChaosReport", "Workload", "run_chaos", "SCENARIOS", "scenario"]

#: drain window after teardown: covers TIME_WAIT (2 s), the longest
#: retransmit backoff (60 s) and any cancelled-timer heap residue.
DRAIN_SECONDS = 150.0

#: chunk sizes for the staged-transfer workload
_WRITE_CHUNK = 32 * 1024
_READ_CHUNK = 64 * 1024


@dataclass
class ChaosReport:
    """Everything a chaos run produced, in deterministic JSON-able form."""

    scenario: str
    seed: int
    plan: str
    retries: bool
    sessions: bool
    ok: bool
    fidelity: str = "packet"
    backend: str = "sim"
    violations: list = field(default_factory=list)
    injected: list = field(default_factory=list)
    healed: list = field(default_factory=list)
    channels: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def triple(self) -> tuple:
        """The replayable ``(scenario, seed, plan)`` identity of this run."""
        return (self.scenario, self.seed, self.plan)

    def to_json(self) -> str:
        """Canonical JSON: byte-identical across reruns of the same triple."""
        return json.dumps(
            {
                "scenario": self.scenario,
                "seed": self.seed,
                "plan": self.plan,
                "retries": self.retries,
                "sessions": self.sessions,
                "fidelity": self.fidelity,
                "backend": self.backend,
                "ok": self.ok,
                "violations": self.violations,
                "injected": self.injected,
                "healed": self.healed,
                "channels": self.channels,
                "errors": self.errors,
                "stats": self.stats,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"FAILED ({len(self.violations)})"
        tier = self.fidelity if self.backend == "sim" else self.backend
        return (
            f"chaos {self.scenario} seed={self.seed} "
            f"plan={self.plan or '<none>'} retries={self.retries} "
            f"sessions={self.sessions} fidelity={tier}: {verdict}"
        )


class Workload:
    """A built scenario plus the audit state its processes feed.

    ``scenario`` is any object with the chaos scenario surface:
    ``sim``, ``backend``, ``nodes``, ``relay``, ``proxies``,
    ``site_wan_link(...)`` (plus the other fault attach points it
    supports), ``shutdown()`` and ``chaos_stats()`` —
    :class:`~repro.core.scenarios.GridScenario` on the packet tier,
    :class:`~repro.chaos.fleet.FleetScenario` on the flow tier.
    """

    def __init__(self, scenario):
        self.scenario = scenario
        self.audits: list[ChannelAudit] = []
        self.errors: list[str] = []
        #: scenario-specific invariants, run after the generic suite; each
        #: callable returns a list of violation strings
        self.post_checks: list[Callable[[], list]] = []
        #: scenario-specific result facts (rollout outcome, SLO breach
        #: counts, ...) merged into the report's ``stats``
        self.stats: dict = {}

    def audit(self, name: str) -> ChannelAudit:
        a = ChannelAudit(name)
        self.audits.append(a)
        return a

    def fail(self, where: str, exc: BaseException) -> None:
        self.errors.append(f"{where}: {type(exc).__name__}: {exc}")


def _spec(sessions: bool) -> StackSpec:
    """The data-channel stack for a run: plain TCP, optionally survivable."""
    return StackSpec.tcp().with_session() if sessions else StackSpec.tcp()


def _staged_transfer(
    wl: Workload,
    sender,
    receiver,
    *,
    seed: int,
    retries: bool,
    sessions: bool,
    stages: int = 2,
    stage_bytes: int = 4 * (1 << 20),
    methods: Optional[list] = None,
    label: str = "stage",
) -> None:
    """Spawn sender/receiver processes moving ``stages`` seeded payloads.

    Each stage is a fresh brokered establishment followed by a bulk
    write/read; both ends feed a :class:`ChannelAudit` so loss,
    duplication and reordering all surface as violations.  ``methods``
    optionally pins the establishment decision tree (e.g. ``["routed"]``
    to force every byte through the relay).
    """
    scn = wl.scenario
    spec = _spec(sessions)
    payloads = [
        random.Random(f"{seed}:chaos:{label}{i}").randbytes(stage_bytes)
        for i in range(stages)
    ]
    audits = [wl.audit(f"{label}{i}") for i in range(stages)]

    def send_stage(factory, ctx, payload, audit) -> Generator:
        if retries:
            channel = yield from factory.connect_retrying(
                receiver.info.node_id, receiver.info, spec=spec,
                methods=methods, ctx=ctx,
            )
        else:
            yield from receiver.relay_client.wait_connected(timeout=30.0)
            service = yield from sender.open_service_link(receiver.info.node_id)
            channel = yield from factory.connect(
                service, receiver.info, spec=spec, methods=methods, ctx=ctx
            )
            service.close()
        for off in range(0, len(payload), _WRITE_CHUNK):
            chunk = payload[off : off + _WRITE_CHUNK]
            yield from channel.write(chunk)
            audit.record_sent(chunk)
        yield from channel.flush()
        channel.close()
        audit.finish_sender()

    def run_sender() -> Generator:
        try:
            yield from sender.start()
            factory = BrokeredConnectionFactory(sender)
            for i, (payload, audit) in enumerate(zip(payloads, audits)):
                # One root trace per stage: establishment, relay routing,
                # the responder's records and any session resumes all hang
                # off this context in the assembled cross-node tree.
                ctx = TraceContext.new()
                t0 = scn.sim.now
                try:
                    yield from send_stage(factory, ctx, payload, audit)
                except GeneratorExit:
                    # Finalization of a parked process (possibly long after
                    # the run ended) — never record into a later run.
                    raise
                except BaseException:
                    obs.record_span(
                        "chaos.stage", t0, scn.sim.now, ctx=ctx,
                        node=sender.info.node_id,
                        stage=f"{label}{i}", outcome="error",
                    )
                    raise
                obs.record_span(
                    "chaos.stage", t0, scn.sim.now, ctx=ctx,
                    node=sender.info.node_id,
                    stage=f"{label}{i}", bytes=len(payload),
                )
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("sender", exc)

    def run_receiver() -> Generator:
        try:
            yield from receiver.start()
            factory = BrokeredConnectionFactory(receiver)
            for audit in audits:
                if retries:
                    channel = yield from factory.accept_retrying()
                else:
                    _peer, service = yield from receiver.accept_service_link()
                    channel = yield from factory.accept(service)
                    service.close()
                while True:
                    data = yield from channel.read(_READ_CHUNK)
                    if not data:
                        break
                    audit.record_received(data)
                channel.close()
                audit.finish_receiver()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("receiver", exc)

    scn.sim.process(run_sender(), name="chaos-sender")
    scn.sim.process(run_receiver(), name="chaos-receiver")


@scenario("wan_transfer")
def _build_wan_transfer(seed: int, retries: bool, sessions: bool) -> Workload:
    """Two staged bulk transfers, open site -> NATted+firewalled site.

    Site B sits behind the common campus gateway: a stateful firewall
    *and* a cone NAT, so both mid-stream middlebox faults apply
    (``conntrack_flush`` silently stalls the inbound stream;
    ``nat_expiry`` remaps B's external ports out from under it).  Stage
    1's data link is native (spliced or reverse), so a mid-transfer relay
    crash must not disturb it; stage 2 starts afterwards and needs a
    *fresh* brokered establishment, which only survives relay downtime or
    WAN flaps through the retry layer (``retries=True``).  Mid-stream
    middlebox faults are survived only by the session layer
    (``sessions=True``).
    """
    scn = GridScenario(seed=seed)
    # Slow WAN access (1.25 MB/s) so a multi-MiB stage spans several
    # simulated seconds — faults land *mid-transfer*, not between stages.
    scn.add_site("A", "open", access_bandwidth=1_250_000.0, access_delay=0.01)
    scn.add_site(
        "B", "nat_firewall", access_bandwidth=1_250_000.0, access_delay=0.01
    )
    sender = scn.add_node("A", "alice", auto_reconnect=retries)
    receiver = scn.add_node("B", "bob", auto_reconnect=retries)

    wl = Workload(scn)
    _staged_transfer(
        wl, sender, receiver, seed=seed, retries=retries, sessions=sessions
    )
    return wl


@scenario("wan_transfer_routed")
def _build_wan_transfer_routed(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """One bulk transfer with the data channel pinned to relay routing.

    Every payload byte crosses the relay (``methods=["routed"]``), so a
    mid-stream ``relay_crash`` or ``peer_drop`` kills the data channel
    outright — the faults that a native (spliced/reverse) link shrugs
    off.  Only the session layer can carry the stream across: the routed
    link EOFs, the initiator re-brokers a fresh one once the relay (and
    the dropped peer's registration) come back, and the replay window
    fills the gap.
    """
    scn = GridScenario(seed=seed)
    scn.add_site("A", "open", access_bandwidth=1_250_000.0, access_delay=0.01)
    scn.add_site(
        "B", "nat_firewall", access_bandwidth=1_250_000.0, access_delay=0.01
    )
    sender = scn.add_node("A", "alice", auto_reconnect=retries)
    receiver = scn.add_node("B", "bob", auto_reconnect=retries)

    wl = Workload(scn)
    _staged_transfer(
        wl,
        sender,
        receiver,
        seed=seed,
        retries=retries,
        sessions=sessions,
        stages=1,
        methods=["routed"],
        label="routed",
    )
    return wl


def _mesh_convergence_checks(wl: Workload) -> None:
    """Attach the mesh invariants: bounded detection + survivor agreement.

    * every death record on every observer stays within the configured
      detection bound (``deadline + one jittered gossip interval``);
    * every relay a fault killed (and no heal restarted) is declared dead
      in every surviving relay's final view.
    """
    scn = wl.scenario

    def check() -> list:
        from ..mesh.config import DEFAULT_MESH_CONFIG

        out = []
        cfg = scn.mesh_config or DEFAULT_MESH_CONFIG
        bound = cfg.detect_bound
        for observer, dead_id, last_heard, detected in scn.mesh_deaths():
            lag = detected - last_heard
            if lag > bound + 1e-9:
                out.append(
                    f"mesh: {observer} declared {dead_id} dead {lag:.3f}s "
                    f"after its last heartbeat (bound {bound:.3f}s)"
                )
        killed = set(getattr(scn, "down_at_shutdown", ()))
        for rid in sorted(scn.relays):
            server = scn.relays[rid]
            if rid in killed or server.mesh is None:
                continue
            for dead_rid in sorted(killed):
                if dead_rid != rid and dead_rid not in server.mesh.dead:
                    out.append(
                        f"mesh: survivor {rid} never declared killed "
                        f"relay {dead_rid} dead"
                    )
        return out

    wl.post_checks.append(check)


def _mesh_scenario(seed: int, topology=None) -> GridScenario:
    """Three public relays; full mesh unless a ``topology`` seeds gossip."""
    scn = GridScenario(seed=seed)
    scn.add_relay("r2")
    scn.add_relay("r3")
    scn.enable_mesh(topology=topology)
    return scn


@scenario("mesh_failover")
def _build_mesh_failover(seed: int, retries: bool, sessions: bool) -> Workload:
    """Relay-routed transfer over a 3-relay mesh, built to be killed.

    Both nodes register with every relay; the data channel is pinned to
    routed messages, so every byte crosses whichever relay the route
    table picked.  A ``relay_kill`` on the carrying relay EOFs the
    stream mid-transfer: the mesh detects the death within the gossip
    deadline, the sender's next establishment lands on a surviving
    relay, and (with ``sessions=True``) the replay window resumes the
    payload with zero loss.  Without the mesh (``wan_transfer_routed``
    plus an unhealed relay kill) the same fault is fatal — the polarity
    the failover test suite pins.
    """
    scn = _mesh_scenario(seed)
    scn.add_site("A", "open", access_bandwidth=1_250_000.0, access_delay=0.01)
    scn.add_site(
        "B", "nat_firewall", access_bandwidth=1_250_000.0, access_delay=0.01
    )
    sender = scn.add_node("A", "alice", relays="all")
    receiver = scn.add_node("B", "bob", relays="all")

    wl = Workload(scn)
    _staged_transfer(
        wl,
        sender,
        receiver,
        seed=seed,
        retries=retries,
        sessions=sessions,
        stages=1,
        methods=["routed"],
        label="mesh",
    )
    _mesh_convergence_checks(wl)
    return wl


@scenario("relay_chain")
def _build_relay_chain(seed: int, retries: bool, sessions: bool) -> Workload:
    """Endpoints pinned to the two ends of a gossip chain (r1 - r2 - r3).

    The sender only registers with r1, the receiver only with r3, and
    gossip is seeded as a chain — so reaching the receiver requires the
    ownership map to propagate down the chain and the frames to cross an
    inter-relay trunk.  A mid-stream ``relay_partition`` between the
    trunk's ends forces the unknown-destination path until the heal;
    sessions carry the stream across.
    """
    scn = _mesh_scenario(
        seed, topology={"r1": ["r2"], "r2": ["r1", "r3"], "r3": ["r2"]}
    )
    scn.add_site("A", "open", access_bandwidth=1_250_000.0, access_delay=0.01)
    scn.add_site(
        "B", "nat_firewall", access_bandwidth=1_250_000.0, access_delay=0.01
    )
    sender = scn.add_node("A", "alice", relays=["r1"])
    receiver = scn.add_node("B", "bob", relays=["r3"])

    wl = Workload(scn)
    _staged_transfer(
        wl,
        sender,
        receiver,
        seed=seed,
        retries=retries,
        sessions=sessions,
        stages=1,
        methods=["routed"],
        label="chain",
    )
    _mesh_convergence_checks(wl)
    return wl


@scenario("nat_to_nat")
def _build_nat_to_nat(seed: int, retries: bool, sessions: bool) -> Workload:
    """Two NATted+firewalled sites, all traffic mesh-routed.

    Neither site can accept unsolicited inbound, so the relay overlay is
    the only viable path (the paper's extreme case, made survivable):
    both endpoints hold registrations with every relay and the transfer
    is pinned to routed messages.  Relay kills and restarts reshuffle
    the route table mid-stream.
    """
    scn = _mesh_scenario(seed)
    scn.add_site(
        "A", "nat_firewall", access_bandwidth=1_250_000.0, access_delay=0.01
    )
    scn.add_site(
        "B", "nat_firewall", access_bandwidth=1_250_000.0, access_delay=0.01
    )
    sender = scn.add_node("A", "alice", relays="all")
    receiver = scn.add_node("B", "bob", relays="all")

    wl = Workload(scn)
    _staged_transfer(
        wl,
        sender,
        receiver,
        seed=seed,
        retries=retries,
        sessions=sessions,
        stages=1,
        methods=["routed"],
        label="natnat",
    )
    _mesh_convergence_checks(wl)
    return wl


@scenario("socks_transfer")
def _build_socks_transfer(seed: int, retries: bool, sessions: bool) -> Workload:
    """One bulk transfer into a severe site: everything through SOCKS.

    Site B blocks all direct traffic; its nodes reach the world (the
    relay included) only via the gateway's SOCKS proxy, so the data
    channel is a stream spliced through the proxy process.  The matching
    fault is ``proxy_restart``: a gateway reboot resets every proxied
    stream at once even though neither endpoint's network blinked.  The
    session layer re-brokers through the recovered proxy and replays.
    """
    scn = GridScenario(seed=seed)
    scn.add_site("A", "open", access_bandwidth=1_250_000.0, access_delay=0.01)
    scn.add_site("B", "severe", access_bandwidth=1_250_000.0, access_delay=0.01)
    sender = scn.add_node("A", "alice", auto_reconnect=retries)
    receiver = scn.add_node("B", "bob", auto_reconnect=retries)

    wl = Workload(scn)
    _staged_transfer(
        wl,
        sender,
        receiver,
        seed=seed,
        retries=retries,
        sessions=sessions,
        stages=1,
        label="socks",
    )
    return wl


#: ipl_fanin geometry: (site name, site kind, worker name)
_FANIN_WORKERS = (
    ("W1", "open", "w1"),
    ("W2", "firewall", "w2"),
    ("W3", "cone_nat", "w3"),
)
_FANIN_MESSAGES = 16
_FANIN_MESSAGE_BYTES = 256 * 1024


@scenario("ipl_fanin")
def _build_ipl_fanin(seed: int, retries: bool, sessions: bool) -> Workload:
    """Many-node IPL port fan-in: three workers stream into one collector.

    Workers on heterogeneous sites (open / firewalled / NATted) each
    connect a send port to the collector's ``gather`` receive port — the
    collector sits behind the campus NAT+firewall gateway, so a
    ``conntrack_flush`` there stalls *all three* inbound streams at once.
    Per-worker audits check that every message arrives intact and
    FIFO-ordered per origin; the fan-in queue itself may interleave
    origins freely.
    """
    scn = GridScenario(seed=seed)
    scn.add_site(
        "HUB", "nat_firewall", access_bandwidth=12_500_000.0, access_delay=0.01
    )
    for site, kind, _name in _FANIN_WORKERS:
        scn.add_site(site, kind, access_bandwidth=2_500_000.0, access_delay=0.01)

    spec = _spec(sessions)
    sink = scn.add_ibis("HUB", "sink", default_spec=spec, auto_reconnect=retries)
    workers = [
        scn.add_ibis(site, name, default_spec=spec, auto_reconnect=retries)
        for site, _kind, name in _FANIN_WORKERS
    ]

    wl = Workload(scn)
    audits = {w.name: wl.audit(f"fanin-{w.name}") for w in workers}
    payloads = {
        w.name: [
            random.Random(f"{seed}:chaos:fanin:{w.name}:{i}").randbytes(
                _FANIN_MESSAGE_BYTES
            )
            for i in range(_FANIN_MESSAGES)
        ]
        for w in workers
    }

    def run_worker(ibis, audit, messages) -> Generator:
        try:
            yield from ibis.start()
            sp = ibis.create_send_port("out")
            # The collector registers "gather" concurrently with our
            # startup; retry the name-service lookup until it appears.
            for attempt in range(40):
                try:
                    yield from sp.connect("gather")
                    break
                except Exception:
                    if attempt == 39:
                        raise
                    yield scn.sim.timeout(0.25)
            for payload in messages:
                m = sp.new_message()
                m.write_bytes(payload)
                yield from m.finish()
                audit.record_sent(payload)
            audit.finish_sender()
            yield from ibis.leave()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail(f"worker:{ibis.name}", exc)

    def run_collector() -> Generator:
        try:
            yield from sink.start()
            port = yield from sink.create_receive_port("gather")
            expected = len(workers) * _FANIN_MESSAGES
            for _ in range(expected):
                msg = yield from port.receive()
                audits[msg.origin].record_received(msg.read_bytes())
            for audit in audits.values():
                audit.finish_receiver()
            yield from sink.leave()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("collector", exc)

    scn.sim.process(run_collector(), name="chaos-collector")
    for w in workers:
        scn.sim.process(
            run_worker(w, audits[w.name], payloads[w.name]),
            name=f"chaos-{w.name}",
        )
    return wl


#: mux_fanin geometry
_MUX_CHANNELS = 32
_MUX_CHANNEL_BYTES = 128 * 1024


def _mux_spec(sessions: bool) -> StackSpec:
    spec = StackSpec.tcp().with_mux()
    return spec.with_session() if sessions else spec


@scenario("mux_fanin")
def _build_mux_fanin(seed: int, retries: bool, sessions: bool) -> Workload:
    """32 logical channels share ONE routed WAN link (the tentpole claim).

    Every conversation between the pair runs ``tcp_block|mux`` pinned to
    relay routing, so the factory's per-peer endpoint sharing puts all 32
    channels on a single carrier link through the relay — establishment
    happens once, conversations 2..32 only exchange agreement frames.
    All channels then transfer concurrently; the post-checks assert the
    round-robin scheduler kept them fair (completion times cluster) on
    top of the generic per-channel delivery audits and the registry-wide
    mux credit-conservation invariant.
    """
    scn = GridScenario(seed=seed)
    scn.add_site("A", "open", access_bandwidth=2_500_000.0, access_delay=0.01)
    scn.add_site(
        "B", "nat_firewall", access_bandwidth=2_500_000.0, access_delay=0.01
    )
    sender = scn.add_node("A", "alice", auto_reconnect=retries)
    receiver = scn.add_node("B", "bob", auto_reconnect=retries)

    wl = Workload(scn)
    spec = _mux_spec(sessions)
    payloads = [
        random.Random(f"{seed}:chaos:muxfanin:{i}").randbytes(_MUX_CHANNEL_BYTES)
        for i in range(_MUX_CHANNELS)
    ]
    audits = [wl.audit(f"mux{i:02d}") for i in range(_MUX_CHANNELS)]
    completions: dict[int, float] = {}
    started: dict[str, float] = {}

    def send_one(channel, idx) -> Generator:
        try:
            payload = payloads[idx]
            yield from channel.write(idx.to_bytes(4, "big"))
            for off in range(0, len(payload), _WRITE_CHUNK):
                chunk = payload[off : off + _WRITE_CHUNK]
                yield from channel.write(chunk)
                audits[idx].record_sent(chunk)
            yield from channel.flush()
            channel.close()
            audits[idx].finish_sender()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail(f"mux-sender:{idx}", exc)

    def run_sender() -> Generator:
        try:
            yield from sender.start()
            factory = BrokeredConnectionFactory(sender)
            channels = []
            for i in range(_MUX_CHANNELS):
                ctx = TraceContext.new()
                if retries:
                    channel = yield from factory.connect_retrying(
                        receiver.info.node_id, receiver.info, spec=spec,
                        methods=["routed"], ctx=ctx,
                    )
                else:
                    yield from receiver.relay_client.wait_connected(timeout=30.0)
                    service = yield from sender.open_service_link(
                        receiver.info.node_id
                    )
                    channel = yield from factory.connect(
                        service, receiver.info, spec=spec,
                        methods=["routed"], ctx=ctx,
                    )
                    service.close()
                channels.append(channel)
            # all channels are up before any payload moves, so the fair
            # scheduler sees 32 simultaneously-ready channels
            started["t0"] = scn.sim.now
            for i, channel in enumerate(channels):
                scn.sim.process(send_one(channel, i), name=f"mux-send-{i}")
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("mux-sender", exc)

    def read_one(channel) -> Generator:
        try:
            idx = int.from_bytes((yield from channel.read_exactly(4)), "big")
            while True:
                data = yield from channel.read(_READ_CHUNK)
                if not data:
                    break
                audits[idx].record_received(data)
            channel.close()
            audits[idx].finish_receiver()
            completions[idx] = scn.sim.now
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("mux-reader", exc)

    def run_receiver() -> Generator:
        try:
            yield from receiver.start()
            factory = BrokeredConnectionFactory(receiver)
            for i in range(_MUX_CHANNELS):
                if retries:
                    channel = yield from factory.accept_retrying()
                else:
                    _peer, service = yield from receiver.accept_service_link()
                    channel = yield from factory.accept(service)
                    service.close()
                scn.sim.process(read_one(channel), name=f"mux-read-{i}")
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("mux-receiver", exc)

    def check_fairness() -> list:
        if len(completions) != _MUX_CHANNELS or "t0" not in started:
            return []  # delivery audits already report the missing channels
        finish = sorted(completions.values())
        spread = finish[-1] - finish[0]
        elapsed = finish[-1] - started["t0"]
        if elapsed > 0 and spread > 0.35 * elapsed:
            return [
                "mux: unfair scheduling: completion spread "
                f"{spread:.3f}s over a {elapsed:.3f}s transfer"
            ]
        return []

    wl.post_checks.append(check_fairness)
    scn.sim.process(run_sender(), name="chaos-mux-sender")
    scn.sim.process(run_receiver(), name="chaos-mux-receiver")
    return wl


#: mux_starvation geometry
_STARVE_BULK_BYTES = 4 * (1 << 20)
_STARVE_PINGS = 24
_STARVE_LATENCY_BOUND = 2.0


@scenario("mux_starvation")
def _build_mux_starvation(seed: int, retries: bool, sessions: bool) -> Workload:
    """Bulk + interactive channels on one carrier: no starvation allowed.

    A 4 MiB bulk stream and a tiny request/echo conversation share one
    routed link through the shared mux endpoint.  Without fair
    scheduling the interactive channel's first echo would arrive only
    after the bulk transfer drains (seconds); the post-check bounds
    every round trip, so a scheduler that lets bulk monopolise the
    carrier fails the run.
    """
    scn = GridScenario(seed=seed)
    scn.add_site("A", "open", access_bandwidth=1_250_000.0, access_delay=0.01)
    scn.add_site(
        "B", "nat_firewall", access_bandwidth=1_250_000.0, access_delay=0.01
    )
    alice = scn.add_node("A", "alice", auto_reconnect=retries)
    bob = scn.add_node("B", "bob", auto_reconnect=retries)

    wl = Workload(scn)
    spec = _mux_spec(sessions)
    bulk_payload = random.Random(f"{seed}:chaos:muxbulk").randbytes(
        _STARVE_BULK_BYTES
    )
    bulk_audit = wl.audit("bulk")
    ping_audit = wl.audit("interactive")
    latencies: list[float] = []

    def connect_one(factory, ctx) -> Generator:
        if retries:
            channel = yield from factory.connect_retrying(
                bob.info.node_id, bob.info, spec=spec,
                methods=["routed"], ctx=ctx,
            )
        else:
            yield from bob.relay_client.wait_connected(timeout=30.0)
            service = yield from alice.open_service_link(bob.info.node_id)
            channel = yield from factory.connect(
                service, bob.info, spec=spec, methods=["routed"], ctx=ctx
            )
            service.close()
        return channel

    def send_bulk(channel) -> Generator:
        try:
            yield from channel.write(b"B")
            for off in range(0, len(bulk_payload), _WRITE_CHUNK):
                chunk = bulk_payload[off : off + _WRITE_CHUNK]
                yield from channel.write(chunk)
                bulk_audit.record_sent(chunk)
            yield from channel.flush()
            channel.close()
            bulk_audit.finish_sender()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("bulk-sender", exc)

    def ping_pong(channel) -> Generator:
        try:
            yield from channel.write(b"I")
            yield from channel.flush()
            for i in range(_STARVE_PINGS):
                msg = bytes([i]) * 64
                t0 = scn.sim.now
                yield from channel.write(msg)
                yield from channel.flush()
                ping_audit.record_sent(msg)
                echo = yield from channel.read_exactly(len(msg))
                latencies.append(scn.sim.now - t0)
                if echo != msg:
                    raise ValueError(f"interactive echo {i} corrupted")
            channel.close()
            ping_audit.finish_sender()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("interactive-sender", exc)

    def run_alice() -> Generator:
        try:
            yield from alice.start()
            factory = BrokeredConnectionFactory(alice)
            bulk = yield from connect_one(factory, TraceContext.new())
            ping = yield from connect_one(factory, TraceContext.new())
            scn.sim.process(send_bulk(bulk), name="mux-bulk")
            scn.sim.process(ping_pong(ping), name="mux-interactive")
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("alice", exc)

    def serve_one(channel) -> Generator:
        kind = yield from channel.read_exactly(1)
        if kind == b"B":
            while True:
                data = yield from channel.read(_READ_CHUNK)
                if not data:
                    break
                bulk_audit.record_received(data)
            channel.close()
            bulk_audit.finish_receiver()
        else:
            for _ in range(_STARVE_PINGS):
                msg = yield from channel.read_exactly(64)
                ping_audit.record_received(msg)
                yield from channel.write(msg)
                yield from channel.flush()
            channel.close()
            ping_audit.finish_receiver()

    def run_bob() -> Generator:
        try:
            yield from bob.start()
            factory = BrokeredConnectionFactory(bob)
            for i in range(2):
                if retries:
                    channel = yield from factory.accept_retrying()
                else:
                    _peer, service = yield from bob.accept_service_link()
                    channel = yield from factory.accept(service)
                    service.close()
                scn.sim.process(serve_one(channel), name=f"mux-serve-{i}")
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("bob", exc)

    def check_latency() -> list:
        out = []
        if len(latencies) != _STARVE_PINGS:
            out.append(
                f"mux: only {len(latencies)}/{_STARVE_PINGS} interactive "
                "round trips completed"
            )
        worst = max(latencies, default=0.0)
        if worst > _STARVE_LATENCY_BOUND:
            out.append(
                "mux: interactive channel starved: worst round trip "
                f"{worst:.3f}s > {_STARVE_LATENCY_BOUND}s bound"
            )
        return out

    wl.post_checks.append(check_latency)
    scn.sim.process(run_alice(), name="chaos-mux-alice")
    scn.sim.process(run_bob(), name="chaos-mux-bob")
    return wl


def run_chaos(
    scenario: str = "wan_transfer",
    seed: int = 1,
    plan: Union[str, FaultPlan] = "",
    retries: bool = True,
    sessions: bool = False,
    until: float = 900.0,
    fidelity: Optional[str] = None,
    backend: str = "sim",
    trace_path: Optional[str] = None,
    export_dir: Optional[str] = None,
    bundle_dir: Optional[str] = None,
    telemetry_path: Optional[str] = None,
) -> ChaosReport:
    """Run ``scenario`` under ``plan``; returns the invariant report.

    ``plan`` accepts either a :class:`FaultPlan` or its canonical string
    form.  ``sessions`` wraps every data channel in a survivable
    :class:`~repro.core.session.SessionLink`.  ``fidelity`` picks the
    simulation tier (default: the scenario's first registered tier —
    ``packet`` for the classic workloads, ``flow`` for fleet-scale
    ones); the teardown, drain, invariant suite and report are identical
    either way.  ``backend`` selects where the scenario runs: ``"sim"``
    (this function's own deterministic engine) or ``"live"``, which
    delegates to :func:`repro.chaos.live.run_live_chaos` — real sockets,
    the same ``(scenario, seed, plan)`` triple, wall-clock fault
    scheduling through the in-process chaos proxy.  ``trace_path``
    optionally exports the run's metrics + trace as JSON lines (the
    :mod:`repro.obs.export` schema).

    ``export_dir`` writes *per-node* JSONL exports (one file per grid
    node, the relay, and every SOCKS proxy — each carrying that node's
    trace records plus its flight-recorder ring) alongside a combined
    ``run.jsonl``; feed them to ``python -m repro.obs.assemble``.

    ``bundle_dir`` arms the postmortem trigger: when the run violates an
    invariant, a bundle is dumped there — fault plan and seed
    (``manifest.json``), the full report, metrics, every node's flight
    recorder, and the assembled causal trace — enough to diagnose the
    failure without re-running it.

    ``telemetry_path`` writes the run's streaming-telemetry capture (the
    delta-snapshot JSONL from :mod:`repro.obs.telemetry`) for scenarios
    that enable the telemetry plane; ``python -m repro.obs.watch`` can
    replay it.
    """
    if backend == "live":
        from .live import run_live_chaos

        return run_live_chaos(
            scenario=scenario,
            seed=seed,
            plan=plan,
            retries=retries,
            sessions=sessions,
            until=until,
            trace_path=trace_path,
            export_dir=export_dir,
            bundle_dir=bundle_dir,
            telemetry_path=telemetry_path,
        )
    if backend != "sim":
        raise ValueError(f"unknown chaos backend {backend!r} (sim|live)")

    sdef = get_scenario(scenario)
    if fidelity is None:
        fidelity = sdef.default_fidelity
    parsed = plan if isinstance(plan, FaultPlan) else FaultPlan.parse(plan)
    require_backend(parsed, "sim")

    # Scoped observability: a fresh registry + recorder per run, installed
    # *before* the scenario is built so use_sim_clock binds them both.
    # Trace ids are reseeded from the run seed so the assembled causal
    # tree (ids included) is as replayable as the report itself.
    registry = MetricsRegistry()
    recorder = TraceRecorder()
    prev_registry = obs.set_registry(registry)
    prev_recorder = obs.set_tracer(recorder)
    seed_ids(seed)
    try:
        wl = sdef.build(seed, retries, sessions, fidelity)
        scn = wl.scenario
        scheduler = FaultScheduler(scn, parsed)
        scheduler.arm()
        scn.sim.run(until=until)

        # Teardown, then drain: anything still alive afterwards is a leak.
        scn.shutdown()
        scn.sim.run(until=scn.sim.now + DRAIN_SECONDS)

        violations = check_invariants(
            scn, wl.audits, wl.errors, registry=registry, recorder=recorder
        )
        for check in wl.post_checks:
            violations.extend(check())
        if len(scheduler.injected) != len(parsed):
            violations.append(
                f"chaos: only {len(scheduler.injected)}/{len(parsed)} "
                "faults fired before the deadline"
            )
        telemetry_log = getattr(scn, "telemetry_log", None)
        if telemetry_log is not None:
            violations.extend(obs.telemetry_violations(telemetry_log.records))
            if telemetry_path is not None:
                telemetry_log.write_jsonl(telemetry_path)
        elif telemetry_path is not None:
            obs.write_telemetry_jsonl(telemetry_path, [])
        stats = dict(scn.chaos_stats())
        stats.update(wl.stats)
        stats.update(
            {
                "sim_seconds": scn.sim.now,
                "session_reconnects": sum(
                    c.value
                    for c in registry.instruments("session.reconnects_total")
                ),
                "session_replayed_bytes": sum(
                    c.value
                    for c in registry.instruments("session.replayed_bytes_total")
                ),
                "trace_records": len(recorder.records),
            }
        )
        report = ChaosReport(
            scenario=scenario,
            seed=seed,
            plan=parsed.spec(),
            retries=retries,
            sessions=sessions,
            fidelity=fidelity,
            ok=not violations,
            violations=sorted(violations),
            injected=list(scheduler.injected),
            healed=list(scheduler.healed),
            channels=[a.summary() for a in wl.audits],
            errors=list(wl.errors),
            stats=stats,
        )
        if trace_path is not None:
            obs.export_jsonl(trace_path, registry=registry, recorder=recorder)
        if export_dir is not None:
            _export_per_node(export_dir, scn, registry, recorder)
        if bundle_dir is not None and not report.ok:
            _write_bundle(bundle_dir, report, scn, registry, recorder)
        return report
    finally:
        obs.set_registry(prev_registry)
        obs.set_tracer(prev_recorder)


# -- per-node exports & postmortem bundles -------------------------------------


def _node_flights(scn: GridScenario) -> dict:
    """Every flight recorder in the scenario, keyed by its node tag."""
    flights = {node_id: node.flight for node_id, node in scn.nodes.items()}
    for server in getattr(scn, "relays", {}).values() or [scn.relay]:
        flights[server.flight.node] = server.flight
    for proxy in scn.proxies.values():
        flights[proxy.flight.node] = proxy.flight
    return flights


def _safe_name(node: str) -> str:
    return node.replace(":", "_").replace("/", "_")


def _export_per_node(
    out_dir: str,
    scn: GridScenario,
    registry: MetricsRegistry,
    recorder: TraceRecorder,
) -> list:
    """One JSONL file per node (traces + flight ring) plus ``run.jsonl``."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for node, flight in sorted(_node_flights(scn).items()):
        path = os.path.join(out_dir, f"{_safe_name(node)}.jsonl")
        obs.export_jsonl(path, recorder=recorder, node=node, flight=flight)
        paths.append(path)
    combined = os.path.join(out_dir, "run.jsonl")
    obs.export_jsonl(combined, registry=registry, recorder=recorder)
    paths.append(combined)
    return paths


def _write_bundle(
    bundle_dir: str,
    report: ChaosReport,
    scn: GridScenario,
    registry: MetricsRegistry,
    recorder: TraceRecorder,
) -> str:
    """Dump a postmortem bundle for a failed run; returns its directory."""
    root = os.path.join(
        bundle_dir, f"{report.scenario}-seed{report.seed}"
    )
    nodes_dir = os.path.join(root, "nodes")
    os.makedirs(nodes_dir, exist_ok=True)

    flights = _node_flights(scn)
    with open(os.path.join(root, "report.json"), "w", encoding="utf-8") as out:
        out.write(report.to_json() + "\n")
    for node, flight in sorted(flights.items()):
        obs.export_jsonl(
            os.path.join(nodes_dir, f"{_safe_name(node)}.jsonl"),
            recorder=recorder, node=node, flight=flight,
        )
    obs.export_jsonl(
        os.path.join(root, "metrics.jsonl"), registry=registry, recorder=recorder
    )

    # Assembled causal trace: stitch the recorder's records and every
    # node's flight ring exactly the way the CLI would stitch the files.
    records = list(recorder.records)
    for flight in flights.values():
        records.extend(flight.records())
    assembled = assemble(records)
    with open(os.path.join(root, "trace.json"), "w", encoding="utf-8") as out:
        json.dump(assembled, out, indent=2, sort_keys=True)
        out.write("\n")
    with open(os.path.join(root, "trace.txt"), "w", encoding="utf-8") as out:
        out.write(render_text(assembled) + "\n")

    manifest = {
        "scenario": report.scenario,
        "seed": report.seed,
        "plan": report.plan,
        "retries": report.retries,
        "sessions": report.sessions,
        "violations": report.violations,
        "injected": report.injected,
        "healed": report.healed,
        "nodes": sorted(flights),
        "traces": [t["trace_id"] for t in assembled["traces"]],
        "files": ["report.json", "metrics.jsonl", "trace.json", "trace.txt"]
        + [f"nodes/{_safe_name(n)}.jsonl" for n in sorted(flights)],
    }
    with open(os.path.join(root, "manifest.json"), "w", encoding="utf-8") as out:
        json.dump(manifest, out, indent=2, sort_keys=True)
        out.write("\n")
    return root
