"""Seeded, time-stamped fault plans for simulated grid scenarios.

A :class:`FaultPlan` is an ordered set of :class:`Fault` objects, each
carrying an absolute injection time on the simulation clock.  Plans have a
canonical one-line string form::

    relay_crash@2:for=8;link_down@12:site=A,for=0.4;conntrack_flush@5:site=B

which round-trips through :meth:`FaultPlan.parse` — that string, together
with a scenario name and a seed, is the complete *replayable triple* a
failing chaos run is reported as.

The :class:`FaultScheduler` arms a plan against a running
:class:`~repro.core.scenarios.GridScenario`: every fault fires at its
timestamp via the injection hooks the simnet/core layers expose
(``Link.set_down``, ``Transmitter.loss``, ``RelayServer.stop/start``,
``RelayClient.drop``, ``StatefulFirewall.flush``,
``NatBox.expire_mappings``, ``SocksServer.stop/start``) and is traced as
a ``chaos.inject`` / ``chaos.heal`` event pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .. import obs

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultScheduler",
    "FaultPlanError",
    "require_backend",
    "LinkDown",
    "LossBurst",
    "WanDegrade",
    "RelayCrash",
    "RelayKill",
    "RelayPartition",
    "PeerDrop",
    "ConntrackFlush",
    "NatExpiry",
    "ProxyRestart",
    "ConnKill",
    "Stall",
    "Blackhole",
    "LatencySpike",
    "Truncate",
]


class FaultPlanError(ValueError):
    """Malformed fault-plan specification."""


def _fmt(value: float) -> str:
    """Canonical float rendering: no trailing zeros, no scientific noise."""
    text = f"{value:.6f}".rstrip("0").rstrip(".")
    return text if text else "0"


@dataclass(frozen=True)
class Fault:
    """A single scheduled fault.  ``at`` is absolute simulated time."""

    at: float

    #: canonical kind tag used in the plan string (set per subclass)
    kind = ""

    #: which chaos backends can express this fault.  The classic kinds
    #: drive simulated middleboxes and links ("sim"); the proxy-based
    #: kinds drive the live :class:`~repro.livenet.proxy.ChaosTcpProxy`
    #: ("live").  A plan is validated against the chosen backend before
    #: the run starts (:func:`require_backend`).
    backends = ("sim",)

    def inject(self, ctx: "FaultContext") -> dict:
        """Apply the fault; returns attrs for the ``chaos.inject`` event."""
        raise NotImplementedError

    def _args(self) -> dict:
        """Arguments in canonical order for :meth:`describe`."""
        return {}

    def describe(self) -> str:
        args = self._args()
        head = f"{self.kind}@{_fmt(self.at)}"
        if not args:
            return head
        body = ",".join(
            f"{k}={_fmt(v) if isinstance(v, float) else v}"
            for k, v in args.items()
        )
        return f"{head}:{body}"


@dataclass(frozen=True)
class LinkDown(Fault):
    """Cut a site's WAN access link for ``duration`` seconds (a flap)."""

    site: str = ""
    duration: float = 1.0

    kind = "link_down"

    def _args(self) -> dict:
        return {"site": self.site, "for": self.duration}

    def inject(self, ctx: "FaultContext") -> dict:
        link = ctx.scenario.site_wan_link(self.site)
        link.set_down(True)
        ctx.heal_later(
            self.duration, lambda: link.set_down(False), self, site=self.site
        )
        return {"site": self.site, "for": self.duration}


@dataclass(frozen=True)
class LossBurst(Fault):
    """Raise a site's WAN-link loss rate to ``loss`` for ``duration`` s."""

    site: str = ""
    loss: float = 0.5
    duration: float = 1.0

    kind = "loss_burst"

    def _args(self) -> dict:
        return {"site": self.site, "loss": self.loss, "for": self.duration}

    def inject(self, ctx: "FaultContext") -> dict:
        link = ctx.scenario.site_wan_link(self.site)
        previous = (link.a_to_b.loss, link.b_to_a.loss)
        link.a_to_b.loss = self.loss
        link.b_to_a.loss = self.loss

        def heal():
            link.a_to_b.loss, link.b_to_a.loss = previous

        ctx.heal_later(self.duration, heal, self, site=self.site)
        return {"site": self.site, "loss": self.loss, "for": self.duration}


@dataclass(frozen=True)
class WanDegrade(Fault):
    """Scale a site's WAN-link capacity down by ``scale`` for ``duration`` s.

    Bandwidth *and* queue depth shrink together (routers are sized to
    their BDP, so a degraded path also queues less — and RTT stays near
    the propagation floor instead of inflating with a now-oversized
    queue); ``loss`` optionally adds a loss floor for the episode.  The
    canonical tuner stimulus: the path gets slower, not dead.
    """

    site: str = ""
    scale: float = 4.0
    loss: float = 0.0
    duration: float = 5.0

    kind = "wan_degrade"

    def _args(self) -> dict:
        return {
            "site": self.site,
            "scale": self.scale,
            "loss": self.loss,
            "for": self.duration,
        }

    def inject(self, ctx: "FaultContext") -> dict:
        if self.scale <= 0:
            raise FaultPlanError(f"bad wan_degrade scale {self.scale}")
        link = ctx.scenario.site_wan_link(self.site)
        previous = []
        for tx in (link.a_to_b, link.b_to_a):
            previous.append((tx.bandwidth, tx.queue_bytes, tx.loss))
            tx.bandwidth = tx.bandwidth / self.scale
            tx.queue_bytes = max(4096, int(tx.queue_bytes / self.scale))
            if self.loss:
                tx.loss = max(tx.loss, self.loss)

        def heal():
            for tx, (bw, qb, lo) in zip((link.a_to_b, link.b_to_a), previous):
                tx.bandwidth, tx.queue_bytes, tx.loss = bw, qb, lo

        ctx.heal_later(self.duration, heal, self, site=self.site)
        return {
            "site": self.site,
            "scale": self.scale,
            "loss": self.loss,
            "for": self.duration,
        }


@dataclass(frozen=True)
class RelayCrash(Fault):
    """Crash the relay server, restarting it ``duration`` seconds later.

    Every registered node loses its session (and every routed link EOFs);
    clients with ``auto_reconnect`` re-register once the relay is back.
    """

    duration: float = 5.0

    kind = "relay_crash"

    def _args(self) -> dict:
        return {"for": self.duration}

    def inject(self, ctx: "FaultContext") -> dict:
        relay = ctx.scenario.relay
        sessions = len(relay.sessions)
        relay.stop()
        ctx.heal_later(self.duration, relay.start, self)
        return {"for": self.duration, "sessions": sessions}


@dataclass(frozen=True)
class RelayKill(Fault):
    """Kill one relay of a mesh (optionally restarting it later).

    Unlike :class:`RelayCrash` (which always targets the primary relay)
    this addresses a relay by mesh id, works on both backends, and by
    default leaves the relay dead — the failover case: surviving relays
    must detect the death and absorb the traffic.
    """

    relay: str = "r1"
    duration: float = 0.0

    kind = "relay_kill"
    backends = ("sim", "live")

    def _args(self) -> dict:
        args: dict = {"relay": self.relay}
        if self.duration:
            args["for"] = self.duration
        return args

    def inject(self, ctx: "FaultContext") -> dict:
        server = ctx.scenario.relays[self.relay]
        sessions = len(server.sessions)
        server.stop()
        if self.duration:

            def restart():
                # The sim relay restarts synchronously; the live relay's
                # start() is a coroutine that must be scheduled.
                result = server.start()
                if hasattr(result, "__await__"):
                    import asyncio

                    asyncio.ensure_future(result)

            ctx.heal_later(self.duration, restart, self, relay=self.relay)
        attrs = {"relay": self.relay, "sessions": sessions}
        if self.duration:
            attrs["for"] = self.duration
        return attrs


@dataclass(frozen=True)
class RelayPartition(Fault):
    """Symmetrically cut gossip + trunks between a relay and some peers.

    ``peers`` is a ``+``-separated list of relay ids.  Both sides refuse
    each other's gossip exchanges and trunk connections until the heal
    ``duration`` seconds later; client registrations are untouched, so
    this exercises routing-around rather than failover.
    """

    relay: str = "r1"
    peers: str = ""
    duration: float = 5.0

    kind = "relay_partition"

    def _args(self) -> dict:
        return {"relay": self.relay, "peers": self.peers, "for": self.duration}

    def inject(self, ctx: "FaultContext") -> dict:
        server = ctx.scenario.relays[self.relay]
        ids = [p for p in self.peers.split("+") if p]
        others = [ctx.scenario.relays[p] for p in ids]
        server.partition(ids)
        for other in others:
            other.partition([self.relay])

        def heal():
            server.heal_partition(ids)
            for other in others:
                other.heal_partition([self.relay])

        ctx.heal_later(self.duration, heal, self, relay=self.relay)
        return {"relay": self.relay, "peers": self.peers, "for": self.duration}


@dataclass(frozen=True)
class PeerDrop(Fault):
    """Sever one node's relay session mid-whatever-it-was-doing.

    From every peer's point of view the node disappears (its service and
    routed links EOF) — the "broker peer disappearing mid-negotiation"
    case.  The node itself reconnects only with ``auto_reconnect``.
    """

    node: str = ""

    kind = "peer_drop"

    def _args(self) -> dict:
        return {"node": self.node}

    def inject(self, ctx: "FaultContext") -> dict:
        ctx.scenario.nodes[self.node].relay_client.drop()
        return {"node": self.node}


@dataclass(frozen=True)
class ConntrackFlush(Fault):
    """Flush a site firewall's connection-tracking table (FW reboot)."""

    site: str = ""

    kind = "conntrack_flush"

    def _args(self) -> dict:
        return {"site": self.site}

    def inject(self, ctx: "FaultContext") -> dict:
        flows = ctx.scenario.site_firewall(self.site).flush()
        return {"site": self.site, "flows": flows}


@dataclass(frozen=True)
class NatExpiry(Fault):
    """Expire every mapping in a site's NAT translation table."""

    site: str = ""

    kind = "nat_expiry"

    def _args(self) -> dict:
        return {"site": self.site}

    def inject(self, ctx: "FaultContext") -> dict:
        mappings = ctx.scenario.site_nat(self.site).expire_mappings()
        return {"site": self.site, "mappings": mappings}


@dataclass(frozen=True)
class ProxyRestart(Fault):
    """Reboot a site's gateway SOCKS proxy for ``duration`` seconds.

    Every stream spliced through the proxy is reset, and new SOCKS
    connections are refused until the restart completes — the only fault
    that touches SOCKS-proxied paths, since those bypass the site's own
    firewall state (the gateway is exempt).
    """

    site: str = ""
    duration: float = 2.0

    kind = "proxy_restart"

    def _args(self) -> dict:
        return {"site": self.site, "for": self.duration}

    def inject(self, ctx: "FaultContext") -> dict:
        proxy = ctx.scenario.site_proxy(self.site)
        streams = len(proxy._active)
        proxy.stop()
        ctx.heal_later(self.duration, proxy.start, self, site=self.site)
        return {"site": self.site, "for": self.duration, "streams": streams}


# -- live-backend faults -------------------------------------------------------
#
# These drive the in-process chaos proxy a live scenario interposes as a
# site's gateway (``scenario.chaos_proxy(site)``), mirroring the sim
# vocabulary on real sockets: conn_kill ~ conntrack_flush (the stream
# dies with a hard reset), stall ~ a silent middlebox black-holing ACKs
# (backpressure, no error), blackhole ~ link_down for payload bytes,
# latency ~ a WAN path flap, truncate ~ a mid-datagram cut.


@dataclass(frozen=True)
class ConnKill(Fault):
    """RST every connection currently flowing through a site's gateway."""

    site: str = "B"

    kind = "conn_kill"
    backends = ("live",)

    def _args(self) -> dict:
        return {"site": self.site}

    def inject(self, ctx: "FaultContext") -> dict:
        killed = ctx.scenario.chaos_proxy(self.site).kill_all()
        return {"site": self.site, "connections": killed}


@dataclass(frozen=True)
class Stall(Fault):
    """Gateway stops reading for ``duration`` s: silent backpressure."""

    site: str = "B"
    duration: float = 1.0

    kind = "stall"
    backends = ("live",)

    def _args(self) -> dict:
        return {"site": self.site, "for": self.duration}

    def inject(self, ctx: "FaultContext") -> dict:
        proxy = ctx.scenario.chaos_proxy(self.site)
        proxy.set_stall(True)
        ctx.heal_later(
            self.duration, lambda: proxy.set_stall(False), self, site=self.site
        )
        return {"site": self.site, "for": self.duration}


@dataclass(frozen=True)
class Blackhole(Fault):
    """Gateway reads and silently discards for ``duration`` seconds."""

    site: str = "B"
    duration: float = 1.0

    kind = "blackhole"
    backends = ("live",)

    def _args(self) -> dict:
        return {"site": self.site, "for": self.duration}

    def inject(self, ctx: "FaultContext") -> dict:
        proxy = ctx.scenario.chaos_proxy(self.site)
        proxy.set_blackhole(True)
        ctx.heal_later(
            self.duration,
            lambda: proxy.set_blackhole(False),
            self,
            site=self.site,
        )
        return {"site": self.site, "for": self.duration}


@dataclass(frozen=True)
class LatencySpike(Fault):
    """Add ``delay`` (+ seeded jitter up to ``jitter``) per forwarded chunk."""

    site: str = "B"
    delay: float = 0.05
    jitter: float = 0.0
    duration: float = 1.0

    kind = "latency"
    backends = ("live",)

    def _args(self) -> dict:
        return {
            "site": self.site,
            "delay": self.delay,
            "jitter": self.jitter,
            "for": self.duration,
        }

    def inject(self, ctx: "FaultContext") -> dict:
        proxy = ctx.scenario.chaos_proxy(self.site)
        proxy.set_latency(self.delay, self.jitter)
        ctx.heal_later(
            self.duration,
            lambda: proxy.set_latency(0.0, 0.0),
            self,
            site=self.site,
        )
        return {
            "site": self.site,
            "delay": self.delay,
            "jitter": self.jitter,
            "for": self.duration,
        }


@dataclass(frozen=True)
class Truncate(Fault):
    """Forward exactly ``nbytes`` more payload bytes, then RST the stream."""

    site: str = "B"
    nbytes: int = 65536

    kind = "truncate"
    backends = ("live",)

    def _args(self) -> dict:
        return {"site": self.site, "bytes": self.nbytes}

    def inject(self, ctx: "FaultContext") -> dict:
        ctx.scenario.chaos_proxy(self.site).truncate_after(self.nbytes)
        return {"site": self.site, "bytes": self.nbytes}


_KINDS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        LinkDown,
        LossBurst,
        WanDegrade,
        RelayCrash,
        RelayKill,
        RelayPartition,
        PeerDrop,
        ConntrackFlush,
        NatExpiry,
        ProxyRestart,
        ConnKill,
        Stall,
        Blackhole,
        LatencySpike,
        Truncate,
    )
}

#: plan-string argument name -> dataclass field name
_ARG_FIELDS = {"for": "duration", "bytes": "nbytes"}
_FLOAT_ARGS = {"for", "loss", "delay", "jitter", "scale"}
_INT_ARGS = {"bytes"}


def require_backend(plan: "FaultPlan", backend: str) -> None:
    """Reject a plan containing faults the chosen backend cannot express."""
    bad = sorted({f.kind for f in plan if backend not in f.backends})
    if bad:
        raise FaultPlanError(
            f"fault kinds {bad} are not available on the {backend!r} backend"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, canonically-ordered set of faults."""

    faults: tuple = ()

    def __post_init__(self):
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.at, f.kind, f.describe()))
        )
        object.__setattr__(self, "faults", ordered)

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        return cls(tuple(faults))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the canonical ``kind@t:k=v,...;kind@t:...`` form."""
        faults = []
        for part in filter(None, (p.strip() for p in text.split(";"))):
            head, _, body = part.partition(":")
            kind, at_sep, at_text = head.partition("@")
            fault_cls = _KINDS.get(kind.strip())
            if fault_cls is None or not at_sep:
                raise FaultPlanError(f"bad fault {part!r}")
            try:
                at = float(at_text)
            except ValueError:
                raise FaultPlanError(f"bad time in {part!r}") from None
            kwargs = {}
            for pair in filter(None, (p.strip() for p in body.split(","))):
                key, eq, value = pair.partition("=")
                if not eq:
                    raise FaultPlanError(f"bad argument {pair!r} in {part!r}")
                field = _ARG_FIELDS.get(key, key)
                if key in _FLOAT_ARGS:
                    kwargs[field] = float(value)
                elif key in _INT_ARGS:
                    kwargs[field] = int(value)
                else:
                    kwargs[field] = value
            try:
                faults.append(fault_cls(at=at, **kwargs))
            except TypeError as exc:
                raise FaultPlanError(f"bad arguments in {part!r}: {exc}") from None
        return cls(tuple(faults))

    def spec(self) -> str:
        """The canonical string form (round-trips through :meth:`parse`)."""
        return ";".join(f.describe() for f in self.faults)

    def __str__(self) -> str:
        return self.spec()

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)


class FaultContext:
    """What a firing fault may touch: the scenario plus heal scheduling."""

    def __init__(self, scenario, scheduler: "FaultScheduler"):
        self.scenario = scenario
        self.scheduler = scheduler

    @property
    def sim(self):
        return self.scenario.sim

    def heal_later(
        self, delay: float, fn: Callable[[], None], fault: Fault, **attrs
    ) -> None:
        """Schedule the fault's recovery and its ``chaos.heal`` event."""

        def run():
            fn()
            obs.event("chaos.heal", kind=fault.kind, **attrs)
            self.scheduler.healed.append(
                {"kind": fault.kind, "t": self.sim.now, **attrs}
            )

        self.sim.call_later(delay, run)


class FaultScheduler:
    """Arms a :class:`FaultPlan` against a scenario's simulation clock."""

    def __init__(self, scenario, plan: FaultPlan):
        self.scenario = scenario
        self.plan = plan
        self.ctx = FaultContext(scenario, self)
        #: chronological record of fired injections (report material)
        self.injected: list[dict] = []
        self.healed: list[dict] = []

    def arm(self) -> None:
        """Schedule every fault.  Call once, before running the scenario."""
        for fault in self.plan:
            self.scenario.sim.call_at(fault.at, self._fire, fault)

    def _fire(self, fault: Fault) -> None:
        with obs.span("chaos.inject", kind=fault.kind, at=fault.at) as sp:
            attrs = fault.inject(self.ctx) or {}
            sp.set(**attrs)
        self.injected.append({"kind": fault.kind, "at": fault.at, **attrs})
        obs.event("chaos.injected", kind=fault.kind, at=fault.at, **attrs)
