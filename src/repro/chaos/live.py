"""Live-socket chaos: the same seeded fault plans against real endpoints.

The sim runner proves the architecture's robustness claims on a
deterministic network; this module re-runs the same *scenario source* —
one ``(scenario, seed, plan)`` triple, the same :class:`FaultPlan`
grammar, the same :class:`~repro.chaos.runner.Workload` audit machinery,
the same invariant families — against genuine asyncio TCP endpoints::

    from repro.chaos import run_chaos

    report = run_chaos(
        "wan_transfer", seed=7, plan="conn_kill@0.3:site=B",
        sessions=True, backend="live",
    )
    assert report.ok, report.violations

Three pieces make that line work:

* :class:`LiveClock` — the minimal ``sim``-shaped clock surface
  (``now`` / ``call_at`` / ``call_later``) over the asyncio event loop,
  so the unmodified :class:`~repro.chaos.faults.FaultScheduler` arms a
  plan against wall time exactly the way it arms one against simulated
  time.
* :class:`LiveChaosScenario` — the live stand-in for ``GridScenario``:
  it owns the :class:`~repro.livenet.proxy.ChaosTcpProxy` gateways
  (``chaos_proxy(site)`` is the attach point the live fault kinds use),
  the workload tasks and the teardown list.
* :func:`run_live_chaos` — scoped obs registry/recorder, workload
  deadline, drain, the live invariant suite (delivery audits, proxy
  byte conservation, leaked-task probe, obs counter/span agreement) and
  the familiar :class:`~repro.chaos.runner.ChaosReport`.

Determinism caveat: payloads, ids and fault schedules are seeded, but
wall-clock timing is not simulated time — live reports are *replayable*
(same triple, same polarity) without being byte-identical.
"""

from __future__ import annotations

if __name__ == "__main__":  # pragma: no cover - CLI entry
    # ``python -m repro.chaos.live`` executes this file as a *second*
    # copy of the module named ``__main__``.  Dispatch to the CLI before
    # this copy's ``@live_scenario`` registration runs, or it would
    # collide with the canonical import's registration when the goldens
    # module imports ``repro.chaos.live`` properly.
    import sys

    from repro.chaos.goldens import main as _cli_main

    sys.exit(_cli_main(None))

import asyncio
import json
import os
import random
import time
from typing import Callable, Optional, Union

from .. import obs
from ..livenet.proxy import ChaosTcpProxy
from ..livenet.relay import LiveMeshRelayClient, LiveRelayServer
from ..livenet.session import AsyncSessionLink, AsyncSessionListener
from ..livenet.transport import live_connect, live_listen
from ..mesh.config import MeshConfig
from ..obs import MetricsRegistry, TraceContext, TraceRecorder, seed_ids
from ..obs.assemble import assemble, render_text
from .faults import FaultPlan, FaultScheduler, require_backend
from .invariants import _mux_violations, obs_consistency_violations
from .registry import get_scenario, live_scenario
from .runner import ChaosReport, Workload

__all__ = [
    "LiveClock",
    "LiveChaosScenario",
    "run_live_chaos",
]

#: hard cap on a live run's wall-clock deadline — ``run_chaos`` defaults
#: ``until`` to 900 *simulated* seconds, which would be an absurd hang
#: allowance on real sockets
LIVE_DEADLINE_CAP = 120.0

#: settle window after the workload finishes / is cancelled, before the
#: leaked-task probe runs (cancellation needs event-loop cycles)
SETTLE_SECONDS = 0.1

_WRITE_CHUNK = 32 * 1024
_READ_CHUNK = 64 * 1024

#: live wan_transfer geometry: small enough to finish in ~1.5 s on
#: loopback, paced so a fault at t≈0.3 s lands mid-stream
_LIVE_STAGES = 2
_LIVE_STAGE_BYTES = 512 * 1024
_LIVE_PACE = 0.04

#: live mesh geometry: one ~768 KiB stage (~1 s paced), relay kills a few
#: hundred milliseconds in land mid-stream
_LIVE_MESH_BYTES = 768 * 1024
_LIVE_MESH_RELAYS = ("r1", "r2", "r3")

#: wall-clock allowance on top of the configured detection bound — the
#: live gossip loop competes with the event loop's scheduling jitter,
#: which simulated time does not model
_LIVE_DETECT_SLACK = 1.0


def _live_mesh_config() -> MeshConfig:
    """Gossip cadence fast enough to converge within a short live run."""
    return MeshConfig(gossip_interval=0.15, gossip_jitter=0.2, deadline=0.9)


class LiveClock:
    """The ``sim`` surface the fault scheduler needs, on the event loop.

    ``now`` is seconds since the clock was created, so plan timestamps
    (``conn_kill@0.3``) mean "0.3 s into the run" on both backends.
    """

    def __init__(self):
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._handles: list = []

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    def call_at(self, when: float, fn: Callable, *args) -> None:
        self._handles.append(
            self._loop.call_later(max(0.0, when - self.now), fn, *args)
        )

    def call_later(self, delay: float, fn: Callable, *args) -> None:
        self._handles.append(
            self._loop.call_later(max(0.0, delay), fn, *args)
        )

    def cancel_all(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()


class LiveChaosScenario:
    """A built live workload: proxies, workload tasks, teardown hooks."""

    def __init__(self, seed: int):
        self.seed = seed
        self.sim = LiveClock()
        #: site name -> the gateway proxy the live fault kinds drive
        self.proxies: dict[str, ChaosTcpProxy] = {}
        #: relay id -> LiveRelayServer (mesh scenarios; relay_kill target)
        self.relays: dict[str, object] = {}
        #: relay ids already down when the workload ended (vs. stopped by
        #: shutdown itself) — the survivor-agreement check reads this
        self.down_at_shutdown: list[str] = []
        #: node tag -> arbitrary endpoint object (report/debug material)
        self.nodes: dict[str, object] = {}
        #: streaming telemetry (populated by :meth:`enable_telemetry`)
        self.telemetry = None
        self.telemetry_log = None
        self.telemetry_publishers: list = []
        self._tasks: list[asyncio.Task] = []
        self._closers: list[Callable[[], None]] = []

    # -- builder surface ---------------------------------------------------
    async def add_proxy(self, site: str, target) -> ChaosTcpProxy:
        """Interpose a chaos gateway in front of ``target`` for ``site``."""
        proxy = ChaosTcpProxy(
            target, name=f"gw-{site}", seed=self.seed
        )
        await proxy.start()
        self.proxies[site] = proxy
        return proxy

    def spawn(self, coro, name: str) -> asyncio.Task:
        """Track a top-level workload task (awaited against the deadline)."""
        task = asyncio.ensure_future(coro)
        try:
            task.set_name(name)
        except AttributeError:  # pragma: no cover - very old asyncio
            pass
        self._tasks.append(task)
        return task

    def add_closer(self, fn: Callable[[], None]) -> None:
        """Register teardown (listeners, links) run by :meth:`shutdown`."""
        self._closers.append(fn)

    def enable_telemetry(
        self, interval: float = 0.1, window: float = 1.0, sources=None
    ):
        """Start telemetry publishers for named metric selections.

        ``sources`` maps source name -> ``select(name, labels)``
        predicate over the scoped registry (default: one ``proxies``
        source streaming the ``proxy.*`` byte ledger).  Publishers run
        as their own asyncio tasks — *not* workload tasks, so
        :meth:`wait` never blocks on them — ticking on wall time with
        record timestamps in :class:`LiveClock` seconds, and are stopped
        (with a final flush) first thing in :meth:`shutdown`.
        """
        registry = obs.get_registry()
        self.telemetry = obs.TelemetryAggregator(window=window)
        self.telemetry_log = obs.TelemetryLog()
        if sources is None:
            sources = {
                "proxies": lambda name, labels: name.startswith("proxy.")
            }
        for source, select in sorted(sources.items()):
            pub = obs.TelemetryPublisher(
                registry,
                source,
                interval=interval,
                clock=lambda: self.sim.now,
                select=select,
            )
            pub.add_sink(self.telemetry_log)
            pub.add_sink(self.telemetry.ingest)
            pub.start_async()
            self.telemetry_publishers.append(pub)
        return self.telemetry

    # -- fault attach point ------------------------------------------------
    def chaos_proxy(self, site: str) -> ChaosTcpProxy:
        try:
            return self.proxies[site]
        except KeyError:
            raise ValueError(
                f"scenario has no chaos proxy for site {site!r}; "
                f"have {sorted(self.proxies)}"
            ) from None

    # -- runner surface ----------------------------------------------------
    async def wait(self, deadline: float) -> list[str]:
        """Await every workload task; returns deadline violations."""
        if not self._tasks:
            return []
        done, pending = await asyncio.wait(self._tasks, timeout=deadline)
        out = []
        for task in pending:
            task.cancel()
            out.append(
                f"deadline: task {task.get_name()} still running after "
                f"{deadline:.1f}s"
            )
        return out

    def shutdown(self) -> None:
        # Publishers first (cancelling their tasks, flushing one final
        # delta) so the capture ends on the workload's true final state.
        for pub in self.telemetry_publishers:
            pub.stop(flush=True)
        self.sim.cancel_all()
        # Which relays the *faults* killed (and never restarted), recorded
        # before teardown stops the rest.
        self.down_at_shutdown = sorted(
            rid for rid, server in self.relays.items() if not server.running
        )
        for task in self._tasks:
            task.cancel()
        for fn in self._closers:
            try:
                fn()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        for server in self.relays.values():
            server.stop()
        for proxy in self.proxies.values():
            proxy.close()

    def chaos_stats(self) -> dict:
        stats: dict = {}
        for site, proxy in sorted(self.proxies.items()):
            for key, value in proxy.stats.as_dict().items():
                stats[f"proxy.{site}.{key}"] = value
        for rid, server in sorted(self.relays.items()):
            stats[f"relay.{rid}.forwarded"] = server.forwarded_messages
            stats[f"relay.{rid}.trunk_tx"] = server.trunk_tx
            stats[f"relay.{rid}.trunk_rx"] = server.trunk_rx
        if self.relays:
            stats["mesh_deaths"] = sum(
                len(server.mesh.deaths)
                for server in self.relays.values()
                if server.mesh is not None
            )
        if self.telemetry_log is not None:
            stats["telemetry_records"] = len(self.telemetry_log)
            stats["telemetry_breaches"] = len(self.telemetry.breaches)
        return stats


# -- the live wan_transfer workload --------------------------------------------


@live_scenario("wan_transfer")
async def _build_live_wan_transfer(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """Two paced staged transfers through a chaos gateway, on real sockets.

    The live twin of the sim ``wan_transfer``: alice streams two seeded
    payload stages to bob, every byte crossing the site-B gateway — here
    the in-process :class:`ChaosTcpProxy` standing where the sim puts
    B's NAT+firewall campus gateway.  The sender paces its writes so a
    fault scheduled a few hundred milliseconds in lands *mid-stream*.
    With ``sessions`` each stage runs over an :class:`AsyncSessionLink`
    (replay buffer + cumulative acks + reconnect-through-the-gateway),
    so a ``conn_kill`` mid-transfer is survived; without it the RST
    kills the stage and the delivery audit reports the loss.
    """
    scn = LiveChaosScenario(seed)
    wl = Workload(scn)

    listener = await live_listen()
    scn.add_closer(listener.close)
    proxy = await scn.add_proxy("B", listener.addr)

    slistener = None
    if sessions:
        slistener = AsyncSessionListener(listener, node="bob")
        scn.add_closer(slistener.close)

    payloads = [
        random.Random(f"{seed}:chaos:stage{i}").randbytes(_LIVE_STAGE_BYTES)
        for i in range(_LIVE_STAGES)
    ]
    audits = [wl.audit(f"stage{i}") for i in range(_LIVE_STAGES)]
    scn.nodes["alice"] = scn.nodes["bob"] = None

    async def dial():
        return await live_connect(proxy.addr)

    async def send_stage(i: int, payload: bytes, audit) -> None:
        ctx = TraceContext.new()
        t0 = time.time()
        try:
            if sessions:
                link = await AsyncSessionLink.connect(dial, node="alice", ctx=ctx)
                for off in range(0, len(payload), _WRITE_CHUNK):
                    chunk = payload[off : off + _WRITE_CHUNK]
                    await link.send_all(chunk)
                    audit.record_sent(chunk)
                    await asyncio.sleep(_LIVE_PACE)
                await link.aclose()
            else:
                sock = await dial()
                for off in range(0, len(payload), _WRITE_CHUNK):
                    chunk = payload[off : off + _WRITE_CHUNK]
                    await sock.send_all(chunk)
                    audit.record_sent(chunk)
                    await asyncio.sleep(_LIVE_PACE)
                sock.write_eof()
                # barrier: the receiver closes once it has read EOF, so a
                # clean peer close is the closest thing to an app-level ack
                await asyncio.wait_for(sock.recv(1), timeout=10.0)
                sock.close()
            audit.finish_sender()
        except BaseException:
            obs.record_span(
                "chaos.stage", t0, time.time(), ctx=ctx, node="alice",
                stage=f"stage{i}", outcome="error", backend="live",
            )
            raise
        obs.record_span(
            "chaos.stage", t0, time.time(), ctx=ctx, node="alice",
            stage=f"stage{i}", bytes=len(payload), backend="live",
        )

    async def run_sender() -> None:
        try:
            for i, (payload, audit) in enumerate(zip(payloads, audits)):
                await send_stage(i, payload, audit)
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("sender", exc)

    async def receive_stage(audit) -> None:
        if sessions:
            link = await slistener.accept()
            while True:
                data = await link.recv(_READ_CHUNK)
                if not data:
                    break
                audit.record_received(data)
            audit.finish_receiver()
            await link.aclose()
        else:
            sock = await listener.accept()
            while True:
                data = await sock.recv(_READ_CHUNK)
                if not data:
                    break
                audit.record_received(data)
            audit.finish_receiver()
            sock.close()

    async def run_receiver() -> None:
        try:
            for audit in audits:
                await receive_stage(audit)
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("receiver", exc)

    scn.spawn(run_sender(), "chaos-sender")
    scn.spawn(run_receiver(), "chaos-receiver")
    return wl


# -- the live mesh_failover workload -------------------------------------------


def _live_mesh_checks(wl: Workload, cfg: MeshConfig) -> None:
    """Live twins of the sim mesh invariants, with wall-clock slack.

    * every death record on every surviving relay stays within the
      configured detection bound plus :data:`_LIVE_DETECT_SLACK`;
    * every relay a fault killed (and no heal restarted) is declared
      dead in every surviving relay's final view.
    """
    scn = wl.scenario

    def check() -> list:
        out = []
        bound = cfg.detect_bound + _LIVE_DETECT_SLACK
        killed = set(scn.down_at_shutdown)
        for rid in sorted(scn.relays):
            server = scn.relays[rid]
            if server.mesh is None:
                continue
            for dead_id, last_heard, detected in server.mesh.deaths:
                lag = detected - last_heard
                if lag > bound:
                    out.append(
                        f"mesh: {rid} declared {dead_id} dead {lag:.3f}s "
                        f"after its last heartbeat (bound {bound:.3f}s "
                        f"incl. {_LIVE_DETECT_SLACK:.1f}s wall slack)"
                    )
            if rid in killed:
                continue
            for dead_rid in sorted(killed):
                if dead_rid != rid and dead_rid not in server.mesh.dead:
                    out.append(
                        f"mesh: survivor {rid} never declared killed "
                        f"relay {dead_rid} dead"
                    )
        return out

    wl.post_checks.append(check)


@live_scenario("mesh_failover")
async def _build_live_mesh_failover(
    seed: int, retries: bool, sessions: bool
) -> Workload:
    """One mesh-routed transfer across three real relay processes.

    The live twin of the sim ``mesh_failover``: three
    :class:`LiveRelayServer` mesh members gossiping over real sockets,
    both endpoints holding registrations with all of them, and one paced
    seeded payload pinned to relay-routed links.  A ``relay_kill`` on
    the carrying relay EOFs the routed stream mid-transfer; with
    ``sessions`` the replay window re-dials through the
    :class:`LiveMeshRelayClient` route table, lands on a survivor, and
    RESUMEs with zero loss — without sessions the same kill is fatal and
    the delivery audit reports the hole.  A converge task holds the run
    open until the survivors have declared the killed relays dead, so
    the bounded-detection and survivor-agreement post-checks measure the
    real gossip, not the teardown.
    """
    scn = LiveChaosScenario(seed)
    wl = Workload(scn)
    cfg = _live_mesh_config()

    addrs: dict[str, tuple] = {}
    for rid in _LIVE_MESH_RELAYS:
        server = LiveRelayServer(name=rid)
        await server.start()
        scn.relays[rid] = server
        addrs[rid] = ("127.0.0.1", server.port)
    for rid, server in scn.relays.items():
        peers = {pid: addr for pid, addr in addrs.items() if pid != rid}
        server.enable_mesh(
            rid, peers, seed=seed, config=cfg, clock=lambda: scn.sim.now
        )

    alice = LiveMeshRelayClient("alice", addrs, seed=seed, config=cfg)
    bob = LiveMeshRelayClient("bob", addrs, seed=seed, config=cfg)
    await alice.connect()
    await bob.connect()
    scn.add_closer(alice.close)
    scn.add_closer(bob.close)
    scn.nodes["alice"] = alice
    scn.nodes["bob"] = bob

    slistener = None
    if sessions:
        slistener = AsyncSessionListener(bob.link_listener(), node="bob")
        scn.add_closer(slistener.close)

    payload = random.Random(f"{seed}:chaos:mesh").randbytes(_LIVE_MESH_BYTES)
    audit = wl.audit("mesh")

    async def dial():
        return await alice.open_link("bob", payload=b"session")

    async def run_sender() -> None:
        ctx = TraceContext.new()
        t0 = time.time()
        try:
            if sessions:
                link = await AsyncSessionLink.connect(
                    dial, node="alice", ctx=ctx
                )
                for off in range(0, len(payload), _WRITE_CHUNK):
                    chunk = payload[off : off + _WRITE_CHUNK]
                    await link.send_all(chunk)
                    audit.record_sent(chunk)
                    await asyncio.sleep(_LIVE_PACE)
                await link.aclose()
            else:
                link = await alice.open_link("bob")
                for off in range(0, len(payload), _WRITE_CHUNK):
                    chunk = payload[off : off + _WRITE_CHUNK]
                    await link.send_all(chunk)
                    audit.record_sent(chunk)
                    await asyncio.sleep(_LIVE_PACE)
                link.close()
            audit.finish_sender()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            obs.record_span(
                "chaos.stage", t0, time.time(), ctx=ctx, node="alice",
                stage="mesh", outcome="error", backend="live",
            )
            wl.fail("sender", exc)
            return
        obs.record_span(
            "chaos.stage", t0, time.time(), ctx=ctx, node="alice",
            stage="mesh", bytes=len(payload), backend="live",
        )

    async def run_receiver() -> None:
        try:
            if sessions:
                link = await slistener.accept()
                while True:
                    data = await link.recv(_READ_CHUNK)
                    if not data:
                        break
                    audit.record_received(data)
                audit.finish_receiver()
                await link.aclose()
            else:
                link = await bob.accept_link()
                while True:
                    data = await link.recv(_READ_CHUNK)
                    if not data:
                        break
                    audit.record_received(data)
                audit.finish_receiver()
                link.close()
        except BaseException as exc:  # noqa: BLE001 - reported as a violation
            wl.fail("receiver", exc)

    data_tasks = [
        scn.spawn(run_sender(), "mesh-sender"),
        scn.spawn(run_receiver(), "mesh-receiver"),
    ]

    async def run_converge() -> None:
        # Hold the run open (bounded) until every survivor has declared
        # every killed relay dead; the post-check then judges the result.
        await asyncio.gather(*data_tasks, return_exceptions=True)
        give_up = scn.sim.now + cfg.detect_bound + _LIVE_DETECT_SLACK + 1.0
        while scn.sim.now < give_up:
            down = {r for r, s in scn.relays.items() if not s.running}
            if all(
                down - {rid} <= set(server.mesh.dead)
                for rid, server in scn.relays.items()
                if server.running and server.mesh is not None
            ):
                return
            await asyncio.sleep(0.05)

    scn.spawn(run_converge(), "mesh-converge")
    _live_mesh_checks(wl, cfg)
    return wl


# -- the runner ----------------------------------------------------------------


def _live_invariants(
    scn: LiveChaosScenario,
    wl: Workload,
    registry: MetricsRegistry,
    recorder: TraceRecorder,
    leaked: int,
) -> list[str]:
    violations = [f"process: {e}" for e in wl.errors]
    for audit in wl.audits:
        violations.extend(audit.violations())
    for site, proxy in sorted(scn.proxies.items()):
        if not proxy.stats.conserved():
            s = proxy.stats
            violations.append(
                f"resources: proxy {site} byte accounting broken: "
                f"{s.bytes_in} in != {s.bytes_forwarded} forwarded + "
                f"{s.bytes_dropped} dropped + {s.bytes_lost} lost"
            )
    if leaked:
        violations.append(
            f"resources: {leaked} tasks still running after teardown"
        )
    violations.extend(_mux_violations(registry))
    violations.extend(obs_consistency_violations(registry, recorder))
    return violations


async def _run_live(
    sdef, seed: int, parsed: FaultPlan, retries: bool, sessions: bool,
    deadline: float,
) -> tuple:
    wl = await sdef.build_live(seed, retries, sessions)
    scn = wl.scenario
    scheduler = FaultScheduler(scn, parsed)
    scheduler.arm()
    deadline_errors = await scn.wait(deadline)
    wl.errors.extend(deadline_errors)
    await asyncio.sleep(SETTLE_SECONDS)
    scn.shutdown()
    await asyncio.sleep(SETTLE_SECONDS)
    me = asyncio.current_task()
    leaked = sum(
        1 for t in asyncio.all_tasks() if t is not me and not t.done()
    )
    return wl, scn, scheduler, leaked


def run_live_chaos(
    scenario: str = "wan_transfer",
    seed: int = 1,
    plan: Union[str, FaultPlan] = "",
    retries: bool = True,
    sessions: bool = False,
    until: float = 30.0,
    trace_path: Optional[str] = None,
    export_dir: Optional[str] = None,
    bundle_dir: Optional[str] = None,
    telemetry_path: Optional[str] = None,
) -> ChaosReport:
    """Run a live chaos scenario; returns the usual :class:`ChaosReport`.

    Semantics mirror :func:`~repro.chaos.runner.run_chaos` with
    ``backend="sim"`` — scoped obs, seeded ids, audits, invariants,
    optional trace export and failure bundles — except that the workload
    runs on real sockets under wall-clock fault scheduling, and ``until``
    is a wall-clock deadline (capped at ``LIVE_DEADLINE_CAP``).
    """
    sdef = get_scenario(scenario)
    parsed = plan if isinstance(plan, FaultPlan) else FaultPlan.parse(plan)
    require_backend(parsed, "live")
    deadline = min(float(until), LIVE_DEADLINE_CAP)

    registry = MetricsRegistry()
    recorder = TraceRecorder()
    prev_registry = obs.set_registry(registry)
    prev_recorder = obs.set_tracer(recorder)
    seed_ids(seed)
    try:
        t0 = time.monotonic()
        wl, scn, scheduler, leaked = asyncio.run(
            _run_live(sdef, seed, parsed, retries, sessions, deadline)
        )
        wall = time.monotonic() - t0

        violations = _live_invariants(scn, wl, registry, recorder, leaked)
        for check in wl.post_checks:
            violations.extend(check())
        if len(scheduler.injected) != len(parsed):
            violations.append(
                f"chaos: only {len(scheduler.injected)}/{len(parsed)} "
                "faults fired before the deadline"
            )
        if scn.telemetry_log is not None:
            violations.extend(
                obs.telemetry_violations(scn.telemetry_log.records)
            )
            if telemetry_path is not None:
                scn.telemetry_log.write_jsonl(telemetry_path)
        elif telemetry_path is not None:
            obs.write_telemetry_jsonl(telemetry_path, [])
        stats = dict(scn.chaos_stats())
        stats.update(wl.stats)
        stats.update(
            {
                "wall_seconds": round(wall, 3),
                "session_reconnects": sum(
                    c.value
                    for c in registry.instruments("session.reconnects_total")
                ),
                "session_replayed_bytes": sum(
                    c.value
                    for c in registry.instruments("session.replayed_bytes_total")
                ),
                "trace_records": len(recorder.records),
            }
        )
        report = ChaosReport(
            scenario=scenario,
            seed=seed,
            plan=parsed.spec(),
            retries=retries,
            sessions=sessions,
            fidelity="live",
            backend="live",
            ok=not violations,
            violations=sorted(violations),
            injected=list(scheduler.injected),
            healed=list(scheduler.healed),
            channels=[a.summary() for a in wl.audits],
            errors=list(wl.errors),
            stats=stats,
        )
        if trace_path is not None:
            obs.export_jsonl(trace_path, registry=registry, recorder=recorder)
        if export_dir is not None:
            os.makedirs(export_dir, exist_ok=True)
            obs.export_jsonl(
                os.path.join(export_dir, "run.jsonl"),
                registry=registry,
                recorder=recorder,
            )
        if bundle_dir is not None and not report.ok:
            _write_live_bundle(bundle_dir, report, registry, recorder)
        return report
    finally:
        obs.set_registry(prev_registry)
        obs.set_tracer(prev_recorder)


def _write_live_bundle(
    bundle_dir: str,
    report: ChaosReport,
    registry: MetricsRegistry,
    recorder: TraceRecorder,
) -> str:
    """Postmortem bundle for a failed live run; returns its directory."""
    root = os.path.join(
        bundle_dir, f"{report.scenario}-live-seed{report.seed}"
    )
    os.makedirs(root, exist_ok=True)
    with open(os.path.join(root, "report.json"), "w", encoding="utf-8") as out:
        out.write(report.to_json() + "\n")
    obs.export_jsonl(
        os.path.join(root, "metrics.jsonl"), registry=registry, recorder=recorder
    )
    assembled = assemble(list(recorder.records))
    with open(os.path.join(root, "trace.json"), "w", encoding="utf-8") as out:
        json.dump(assembled, out, indent=2, sort_keys=True)
        out.write("\n")
    with open(os.path.join(root, "trace.txt"), "w", encoding="utf-8") as out:
        out.write(render_text(assembled) + "\n")
    manifest = {
        "scenario": report.scenario,
        "backend": "live",
        "seed": report.seed,
        "plan": report.plan,
        "retries": report.retries,
        "sessions": report.sessions,
        "violations": report.violations,
        "injected": report.injected,
        "healed": report.healed,
        "traces": [t["trace_id"] for t in assembled["traces"]],
        "files": ["report.json", "metrics.jsonl", "trace.json", "trace.txt"],
    }
    with open(os.path.join(root, "manifest.json"), "w", encoding="utf-8") as out:
        json.dump(manifest, out, indent=2, sort_keys=True)
        out.write("\n")
    return root


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim
    from .goldens import main as goldens_main

    return goldens_main(argv)
