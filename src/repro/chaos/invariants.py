"""End-to-end invariants checked after a chaos run.

Three families, mirroring the tentpole spec:

* **delivery** — every payload byte reaches the receiver exactly once and
  in order, per channel.  Each logical channel gets a
  :class:`ChannelAudit`: both endpoints feed the bytes they wrote/read
  into running SHA-256 digests, so reordering, duplication and loss all
  surface as a count or digest mismatch without buffering the payload.
* **resources** — after teardown plus a drain window, the engine holds no
  live TCP connections on any host and no pending events in the heap
  (leaked sockets and timers keep the heap busy or the connection tables
  populated).
* **observability** — obs counters agree with what actually moved: the
  relay's forwarded-byte counter matches the server's own accounting,
  every ``establish.attempt`` span has exactly one attempts counter
  increment, and every successful ``session.resume`` span has exactly
  one initiator-side reconnect counter increment.

Violations are plain sorted strings so a report is byte-identical across
reruns of the same ``(scenario, seed, plan)`` triple.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

from ..mux import DEFAULT_WINDOW
from ..obs import MetricsRegistry, TraceRecorder

__all__ = ["ChannelAudit", "check_invariants", "obs_consistency_violations"]


class ChannelAudit:
    """Both endpoints' view of one logical channel's payload stream."""

    def __init__(self, name: str):
        self.name = name
        self.sent_bytes = 0
        self.received_bytes = 0
        self._sent_sha = hashlib.sha256()
        self._received_sha = hashlib.sha256()
        self.sender_done = False
        self.receiver_done = False

    # -- endpoint feeds ----------------------------------------------------
    def record_sent(self, data: bytes) -> None:
        self.sent_bytes += len(data)
        self._sent_sha.update(data)

    def record_received(self, data: bytes) -> None:
        self.received_bytes += len(data)
        self._received_sha.update(data)

    def finish_sender(self) -> None:
        self.sender_done = True

    def finish_receiver(self) -> None:
        self.receiver_done = True

    # -- verdicts ----------------------------------------------------------
    @property
    def sent_digest(self) -> str:
        return self._sent_sha.hexdigest()

    @property
    def received_digest(self) -> str:
        return self._received_sha.hexdigest()

    def violations(self) -> list[str]:
        out = []
        if not self.sender_done:
            out.append(f"delivery[{self.name}]: sender did not complete")
        if not self.receiver_done:
            out.append(f"delivery[{self.name}]: receiver did not complete")
        if self.sender_done and self.receiver_done:
            if self.received_bytes != self.sent_bytes:
                out.append(
                    f"delivery[{self.name}]: {self.received_bytes} bytes "
                    f"received, {self.sent_bytes} sent"
                )
            elif self.received_digest != self.sent_digest:
                out.append(
                    f"delivery[{self.name}]: stream digest mismatch "
                    f"(bytes reordered or duplicated)"
                )
        return out

    def summary(self) -> dict:
        return {
            "name": self.name,
            "sent_bytes": self.sent_bytes,
            "received_bytes": self.received_bytes,
            "sent_digest": self.sent_digest,
            "received_digest": self.received_digest,
            "complete": self.sender_done and self.receiver_done,
        }


def _mux_violations(registry: MetricsRegistry) -> list[str]:
    """Credit-conservation and no-leakage checks over mux counters.

    Conservation: every DATA byte a sender put on the wire for a channel
    was delivered to exactly one receiver (summed per channel id across
    the run's nodes, tx == rx — a muxed grid pair shares the channel id
    on both sides).  Credit: no endpoint ever transmitted more than the
    peer's initial window plus everything the peer granted back, so the
    flow-control contract held for the entire run.  A run without mux
    counters checks nothing.
    """
    tx: dict = {}          # channel -> total DATA bytes sent
    rx: dict = {}          # channel -> total DATA bytes delivered
    tx_by_node: dict = {}  # (node, channel) -> DATA bytes sent
    granted: dict = {}     # (node, channel) -> credit bytes granted
    for counter in registry.instruments("mux.tx_bytes"):
        ch = counter.labels.get("channel", "?")
        node = counter.labels.get("node", "?")
        tx[ch] = tx.get(ch, 0) + counter.value
        tx_by_node[(node, ch)] = tx_by_node.get((node, ch), 0) + counter.value
    for counter in registry.instruments("mux.rx_bytes"):
        ch = counter.labels.get("channel", "?")
        rx[ch] = rx.get(ch, 0) + counter.value
    for counter in registry.instruments("mux.credit_granted"):
        ch = counter.labels.get("channel", "?")
        node = counter.labels.get("node", "?")
        granted[(node, ch)] = granted.get((node, ch), 0) + counter.value

    # per-channel grant totals up front: fleet-scale runs carry one
    # channel per endpoint, so the credit check must stay linear
    granted_by_ch: dict = {}
    for (node, ch), value in granted.items():
        granted_by_ch[ch] = granted_by_ch.get(ch, 0) + value

    out = []
    for ch in sorted(set(tx) | set(rx), key=lambda c: int(c) if c.isdigit() else 0):
        sent, got = tx.get(ch, 0), rx.get(ch, 0)
        if sent != got:
            out.append(
                f"mux: channel {ch} conservation broken: "
                f"{sent} bytes sent, {got} delivered"
            )
    for (node, ch), sent in sorted(tx_by_node.items()):
        peer_grants = granted_by_ch.get(ch, 0) - granted.get((node, ch), 0)
        allowed = DEFAULT_WINDOW + peer_grants
        if sent > allowed:
            out.append(
                f"mux: channel {ch} credit overrun on {node}: "
                f"{sent} bytes sent, {allowed} allowed "
                f"(window {DEFAULT_WINDOW} + {peer_grants} granted)"
            )
    return out


def _backend(scenario):
    """The scenario's :class:`~repro.simnet.backend.SimBackend`.

    Scenarios expose one directly (``scenario.backend``); for any
    legacy scenario object that predates the protocol, a packet-tier
    adapter is built around its network so the probes still work.
    """
    backend = getattr(scenario, "backend", None)
    if backend is not None:
        return backend
    from ..simnet.backend import PacketBackend

    return PacketBackend(net=scenario.inet.net)


def check_invariants(
    scenario,
    audits: Iterable[ChannelAudit],
    errors: Iterable[str],
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[TraceRecorder] = None,
) -> list[str]:
    """Run every invariant; returns a sorted list of violation strings.

    Call after the scenario has been torn down (nodes stopped, relay
    stopped) and the simulation drained past the last TIME_WAIT/timer
    deadline — live connections at that point are leaks, not residue.
    """
    violations = [f"process: {e}" for e in errors]

    for audit in audits:
        violations.extend(audit.violations())

    # Resource probes go through the SimBackend protocol, so packet-tier
    # TCP leaks and flow-tier stuck transfers surface identically.
    backend = _backend(scenario)
    for leak in backend.live_connections():
        violations.append(f"resources: leaked connection {leak}")
    pending = backend.pending_events
    if pending:
        violations.append(
            f"resources: {pending} events still pending in the engine heap"
        )

    if registry is not None:
        violations.extend(_mux_violations(registry))
        forwarded = sum(
            c.value for c in registry.instruments("relay.forwarded_bytes_total")
        )
        relays = getattr(scenario, "relays", None)
        accounted = (
            sum(r.forwarded_bytes for r in relays.values())
            if relays
            else scenario.relay.forwarded_bytes
        )
        if forwarded != accounted:
            violations.append(
                "obs: relay.forwarded_bytes_total counter "
                f"({forwarded}) != relay accounting "
                f"({accounted})"
            )
    if registry is not None and recorder is not None:
        violations.extend(obs_consistency_violations(registry, recorder))

    return sorted(violations)


def obs_consistency_violations(
    registry: MetricsRegistry, recorder: TraceRecorder
) -> list[str]:
    """Counter/span/identity agreement checks shared by both backends.

    The live chaos runner has no simulated network to probe, but these
    observability invariants are backend-agnostic: counters must agree
    with the spans that narrate them, and every stamped causal identity
    must be well-formed.
    """
    violations: list[str] = []
    counted = sum(
        c.value for c in registry.instruments("establish.attempts_total")
    )
    spans = len(recorder.spans("establish.attempt"))
    if counted != spans:
        violations.append(
            f"obs: establish.attempts_total ({counted}) != "
            f"establish.attempt spans ({spans})"
        )
    # Every successful session resume is driven by the initiator and
    # increments its reconnect counter exactly once — a mismatch means
    # a recovery path bumped the counter without completing (or vice
    # versa).
    reconnects = sum(
        c.value
        for c in registry.instruments("session.reconnects_total")
        if c.labels.get("role") == "initiator"
    )
    resumed = sum(
        1
        for s in recorder.spans("session.resume")
        if s.get("attrs", {}).get("outcome") == "ok"
    )
    if reconnects != resumed:
        violations.append(
            f"obs: initiator session.reconnects_total ({reconnects}) != "
            f"successful session.resume spans ({resumed})"
        )
    # Causal identity must be well-formed on every stamped record:
    # ids are 16 hex digits, a parent implies a span, a span implies
    # a trace.  A malformed context means some wire carrier decoded
    # garbage (or an instrumentation site stamped a partial triple).
    malformed = 0
    for record in recorder.records:
        for field in ("trace_id", "span_id", "parent_id"):
            value = record.get(field)
            if value is None:
                continue
            try:
                ok = isinstance(value, str) and len(value) == 16
                ok = ok and int(value, 16) >= 0
            except ValueError:
                ok = False
            if not ok:
                malformed += 1
                break
        else:
            if ("parent_id" in record and "span_id" not in record) or (
                "span_id" in record and "trace_id" not in record
            ):
                malformed += 1
    if malformed:
        violations.append(
            f"obs: {malformed} trace records carry a malformed "
            "causal identity"
        )
    return violations
