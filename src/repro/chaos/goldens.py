"""Golden-trace capture and the live validation gate.

Three canonical live flows — a proxied TLS **handshake** with a framed
echo, a session **resume** across a mid-transfer connection kill, and a
**mux_open** establishing a multiplexed endpoint and opening channels —
are each run under scoped observability, assembled into a causal trace
forest, and boiled down to a structural signature
(:mod:`repro.obs.tracediff`).  ``capture`` freezes those signatures as
goldens under ``goldens/live/``; ``validate`` re-runs the flows and
fails (non-zero exit) on any structural divergence; ``soak`` validates
across several seeds to shake out schedule-dependent flakiness.

The point of the gate: a refactor of the session, mux or TLS layers that
silently drops a resume span, loses event polarity, or orphans trace
records changes the signature even though the bytes still arrive — and
the diff names the exact path that moved.

Refreshing goldens after an *intentional* behaviour change::

    python -m repro.chaos.live capture
    git diff goldens/live/   # review what moved, then commit
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from .. import obs
from ..obs import (
    MetricsRegistry,
    TraceContext,
    TraceRecorder,
    seed_ids,
)
from ..obs.assemble import assemble
from ..obs.tracediff import SIGNATURE_VERSION, diff, signature
from ..security import CertificateAuthority, Identity

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_SEED",
    "GoldenError",
    "RESUME_PLAN",
    "capture",
    "capture_flow",
    "flow_names",
    "golden_path",
    "main",
    "soak",
    "validate",
]

#: checked-in goldens live next to the source tree, not inside it
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "goldens" / "live"

#: default seed for captures; validation may use any seed — the whole
#: point of the signature is seed- and schedule-independence
GOLDEN_SEED = 7

#: the canonical resume stimulus: kill the gateway's connections while
#: stage0 is mid-flight, forcing exactly one initiator-side resume
RESUME_PLAN = "conn_kill@0.3:site=B"


class GoldenError(Exception):
    """A golden flow failed to run (distinct from a signature mismatch)."""


# -- flow: handshake -------------------------------------------------------

async def _handshake_flow(seed: int) -> None:
    """TLS handshake + framed echo through the chaos proxy (no faults)."""
    from ..livenet import (
        AsyncBlockChannel,
        AsyncTcpBlockDriver,
        AsyncTlsDriver,
        ChaosTcpProxy,
        live_connect,
        live_listen,
    )

    ca = CertificateAuthority("golden-root")
    key, cert = ca.issue_identity("golden-server")
    identity = Identity(key, [cert])
    listener = await live_listen()
    proxy = await ChaosTcpProxy(
        listener.addr, name="golden-gw", seed=seed
    ).start()
    ctx = TraceContext.new()
    done = asyncio.Event()

    async def server() -> None:
        sock = await listener.accept()
        try:
            drv = AsyncTlsDriver(AsyncTcpBlockDriver(sock))
            await drv.handshake_server(identity)
            channel = AsyncBlockChannel(drv)
            message = await channel.recv_message()
            await channel.send_message(message, ctx=channel.last_ctx)
            await done.wait()
        finally:
            sock.close()

    async def client() -> None:
        sock = await live_connect(proxy.addr)
        try:
            drv = AsyncTlsDriver(AsyncTcpBlockDriver(sock))
            t0 = time.time()
            await drv.handshake_client(
                [ca.certificate], expected_server="golden-server"
            )
            channel = AsyncBlockChannel(drv)
            await channel.send_message(b"golden handshake probe", ctx=ctx)
            echo = await channel.recv_message()
            if echo != b"golden handshake probe":
                raise GoldenError("handshake flow: echo mismatch")
            obs.record_span(
                "golden.handshake", t0, time.time(), ctx=ctx,
                node="client", backend="live", outcome="ok",
                peer=drv.peer_subject,
            )
        finally:
            done.set()
            sock.close()

    server_task = asyncio.ensure_future(server())
    try:
        await asyncio.wait_for(client(), timeout=15.0)
        await asyncio.wait_for(server_task, timeout=5.0)
    finally:
        server_task.cancel()
        proxy.close()
        listener.close()


# -- flow: mux_open --------------------------------------------------------

async def _mux_open_flow(seed: int) -> None:
    """Mux establish + two channel opens with echoes, through the proxy."""
    from ..livenet import ChaosTcpProxy, live_connect, live_listen
    from ..livenet.mux import AsyncMuxEndpoint

    listener = await live_listen()
    proxy = await ChaosTcpProxy(
        listener.addr, name="golden-gw", seed=seed
    ).start()
    ctx = TraceContext.new()
    endpoints = []

    async def server() -> None:
        sock = await listener.accept()
        endpoint = await AsyncMuxEndpoint.establish(
            sock, AsyncMuxEndpoint.RESPONDER, node="responder"
        )
        endpoints.append(endpoint)
        for _ in range(2):
            channel = await endpoint.accept_channel()
            data = await channel.recv_exactly(12)
            await channel.send_all(data)

    async def client() -> None:
        sock = await live_connect(proxy.addr)
        t0 = time.time()
        endpoint = await AsyncMuxEndpoint.establish(
            sock, AsyncMuxEndpoint.INITIATOR, node="initiator", ctx=ctx
        )
        endpoints.append(endpoint)
        for i in range(2):
            channel = await endpoint.open_channel(
                tag=f"golden-{i}".encode(), ctx=ctx
            )
            await channel.send_all(b"golden probe")
            echo = await channel.recv_exactly(12)
            if echo != b"golden probe":
                raise GoldenError("mux_open flow: echo mismatch")
        obs.record_span(
            "golden.mux_open", t0, time.time(), ctx=ctx,
            node="initiator", backend="live", outcome="ok",
        )

    server_task = asyncio.ensure_future(server())
    try:
        await asyncio.wait_for(client(), timeout=15.0)
        await asyncio.wait_for(server_task, timeout=5.0)
    finally:
        server_task.cancel()
        for endpoint in endpoints:
            endpoint.close()
        proxy.close()
        listener.close()


def _capture_scoped(flow, seed: int) -> dict:
    """Run an async flow under scoped obs; return its assembled forest."""
    registry = MetricsRegistry()
    recorder = TraceRecorder()
    prev_registry = obs.set_registry(registry)
    prev_recorder = obs.set_tracer(recorder)
    seed_ids(seed)
    try:
        asyncio.run(flow(seed))
    finally:
        obs.set_registry(prev_registry)
        obs.set_tracer(prev_recorder)
    return assemble(list(recorder.records))


# -- flow: resume ----------------------------------------------------------

def _capture_resume(seed: int, plan: Optional[str] = None) -> dict:
    """Session transfer through a connection kill, via the chaos runner.

    ``plan`` overrides the fault plan — the gate's own self-test runs
    the flow with an empty plan (no kill, so no resume span) and checks
    that the signature diff catches the missing ``session.resume``.
    """
    from .live import run_live_chaos

    with tempfile.TemporaryDirectory(prefix="golden-resume-") as tmp:
        trace_path = os.path.join(tmp, "trace.jsonl")
        report = run_live_chaos(
            scenario="wan_transfer",
            seed=seed,
            plan=RESUME_PLAN if plan is None else plan,
            sessions=True,
            until=30.0,
            trace_path=trace_path,
        )
        if not report.ok:
            raise GoldenError(
                f"resume flow run failed: {report.violations}"
            )
        with open(trace_path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
    return assemble(records)


_FLOWS = {
    "handshake": lambda seed, plan=None: _capture_scoped(
        _handshake_flow, seed
    ),
    "resume": _capture_resume,
    "mux_open": lambda seed, plan=None: _capture_scoped(
        _mux_open_flow, seed
    ),
}


def flow_names() -> list:
    return sorted(_FLOWS)


def capture_flow(name: str, seed: int = GOLDEN_SEED,
                 plan: Optional[str] = None) -> dict:
    """Run one golden flow and return its structural signature."""
    if name not in _FLOWS:
        raise GoldenError(
            f"unknown golden flow {name!r} (have: {', '.join(flow_names())})"
        )
    return signature(_FLOWS[name](seed, plan=plan))


def golden_path(name: str, root: Optional[Path] = None) -> Path:
    return (root or GOLDEN_DIR) / f"{name}.json"


# -- capture / validate / soak --------------------------------------------

def capture(names=None, seed: int = GOLDEN_SEED,
            root: Optional[Path] = None) -> list:
    """Capture goldens for the given flows; returns the paths written."""
    root = root or GOLDEN_DIR
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names or flow_names():
        sig = capture_flow(name, seed)
        path = golden_path(name, root)
        payload = {
            "flow": name,
            "seed": seed,
            "version": SIGNATURE_VERSION,
            "signature": sig,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def validate(names=None, seed: int = GOLDEN_SEED,
             root: Optional[Path] = None,
             plan: Optional[str] = None) -> dict:
    """Re-run flows and diff against goldens.

    Returns ``{flow: [divergence lines]}`` — every value empty means the
    gate passes.  A missing golden file is itself a failure (the gate
    must never silently pass because nothing was checked).
    """
    root = root or GOLDEN_DIR
    results: dict = {}
    for name in names or flow_names():
        path = golden_path(name, root)
        if not path.exists():
            results[name] = [
                f"golden missing: {path} (run `python -m repro.chaos.live "
                f"capture` and commit the result)"
            ]
            continue
        golden = json.loads(path.read_text(encoding="utf-8"))["signature"]
        try:
            observed = capture_flow(name, seed, plan=plan)
        except GoldenError as exc:
            results[name] = [f"flow failed to run: {exc}"]
            continue
        results[name] = diff(golden, observed)
    return results


def soak(seeds, names=None, root: Optional[Path] = None) -> dict:
    """Validate every flow across several seeds; returns failures only."""
    failures: dict = {}
    for seed in seeds:
        results = validate(names, seed=seed, root=root)
        for name, lines in results.items():
            if lines:
                failures[f"{name}@seed={seed}"] = lines
    return failures


# -- CLI -------------------------------------------------------------------

def _report(results: dict) -> int:
    status = 0
    for name in sorted(results):
        lines = results[name]
        if lines:
            status = 1
            print(f"FAIL {name}: {len(lines)} divergence(s)")
            for line in lines:
                print(f"  {line}")
        else:
            print(f"ok   {name}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.live",
        description="Golden-trace gate for the live chaos backend.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p):
        p.add_argument(
            "--flow", action="append", choices=flow_names(), default=None,
            help="restrict to one flow (repeatable; default: all)",
        )
        p.add_argument(
            "--dir", type=Path, default=None,
            help=f"golden directory (default: {GOLDEN_DIR})",
        )

    p_cap = sub.add_parser("capture", help="(re)record golden signatures")
    _common(p_cap)
    p_cap.add_argument("--seed", type=int, default=GOLDEN_SEED)

    p_val = sub.add_parser("validate", help="diff live runs against goldens")
    _common(p_val)
    p_val.add_argument("--seed", type=int, default=GOLDEN_SEED)
    p_val.add_argument(
        "--plan", default=None,
        help="override the resume flow's fault plan (self-test knob: "
        "an empty plan drops the resume and must trip the gate)",
    )

    p_soak = sub.add_parser(
        "soak", help="validate across several seeds"
    )
    _common(p_soak)
    p_soak.add_argument(
        "--seeds", default="1,2,3",
        help="comma-separated seed list (default: 1,2,3)",
    )

    args = parser.parse_args(argv)
    if args.command == "capture":
        for path in capture(args.flow, seed=args.seed, root=args.dir):
            print(f"wrote {path}")
        return 0
    if args.command == "validate":
        return _report(
            validate(args.flow, seed=args.seed, root=args.dir,
                     plan=args.plan)
        )
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    failures = soak(seeds, args.flow, root=args.dir)
    if not failures:
        print(f"soak ok: {len(seeds)} seed(s), "
              f"{len(args.flow or flow_names())} flow(s)")
        return 0
    return _report(failures)
