"""Deterministic chaos harness for the simulated grid stack.

The paper's establishment machinery exists because wide-area links,
middleboxes and relays *fail*; this package makes those failures a
first-class, reproducible test input.  A :class:`FaultPlan` (parsed from
a one-line spec such as ``relay_crash@2:for=8;link_down@12:site=A,for=0.4``)
is armed against a :class:`~repro.core.scenarios.GridScenario` by the
:class:`FaultScheduler`; :func:`run_chaos` drives a workload under the
plan and checks end-to-end invariants — exactly-once in-order delivery,
no leaked sockets or timers, obs counters consistent with the bytes
moved.  A failure is reported as the replayable ``(scenario, seed,
plan)`` triple, and the report JSON is byte-identical across reruns.
"""

from .faults import (
    Blackhole,
    ConnKill,
    ConntrackFlush,
    Fault,
    FaultPlan,
    FaultPlanError,
    FaultScheduler,
    LatencySpike,
    LinkDown,
    LossBurst,
    NatExpiry,
    PeerDrop,
    ProxyRestart,
    RelayCrash,
    Stall,
    Truncate,
    require_backend,
)
from .invariants import ChannelAudit, check_invariants, obs_consistency_violations
from .registry import (
    SCENARIOS,
    ScenarioDef,
    get_scenario,
    live_scenario,
    scenario,
    scenario_names,
)
from .runner import ChaosReport, Workload, run_chaos

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultPlanError",
    "FaultScheduler",
    "require_backend",
    "LinkDown",
    "LossBurst",
    "RelayCrash",
    "PeerDrop",
    "ConntrackFlush",
    "NatExpiry",
    "ProxyRestart",
    "ConnKill",
    "Stall",
    "Blackhole",
    "LatencySpike",
    "Truncate",
    "ChannelAudit",
    "check_invariants",
    "obs_consistency_violations",
    "ChaosReport",
    "Workload",
    "run_chaos",
    "run_live_chaos",
    "scenario",
    "live_scenario",
    "ScenarioDef",
    "get_scenario",
    "scenario_names",
    "SCENARIOS",
]


def run_live_chaos(*args, **kwargs):
    """Lazy alias for :func:`repro.chaos.live.run_live_chaos`.

    Imported on first call so ``repro.chaos`` stays importable without
    pulling the asyncio livenet stack in (the sim harness has no need
    for it).
    """
    from .live import run_live_chaos as _run

    return _run(*args, **kwargs)
