"""Run chaos scenarios from the command line.

Examples::

    python -m repro.chaos --seed 1 \
        --plan "relay_crash@2:for=8;link_down@12:site=A,for=0.4"
    python -m repro.chaos --seeds 1-20 --plan "relay_crash@2:for=8"

Exits non-zero if any run violates an invariant, printing the
``(scenario, seed, plan)`` triple needed to replay it.
"""

from __future__ import annotations

import argparse
import sys

from .registry import scenario_names
from .runner import run_chaos


def _parse_seeds(text: str) -> list[int]:
    seeds: list[int] = []
    for part in text.split(","):
        part = part.strip()
        if "-" in part:
            lo, hi = part.split("-", 1)
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scenario", default="wan_transfer", choices=scenario_names(),
    )
    parser.add_argument(
        "--fidelity", choices=("packet", "flow"), default=None,
        help="simulation tier (default: the scenario's native tier)",
    )
    parser.add_argument(
        "--backend", choices=("sim", "live"), default="sim",
        help="run in the deterministic simulator (default) or on real "
        "loopback sockets with wall-clock fault scheduling",
    )
    parser.add_argument(
        "--seed", "--seeds", dest="seeds", default="1",
        help="seed, comma list, or inclusive range: 7 | 1,2,5 | 1-20",
    )
    parser.add_argument(
        "--plan", default="",
        help='fault plan, e.g. "relay_crash@2:for=8;link_down@12:site=A,for=0.4"',
    )
    parser.add_argument(
        "--no-retries", action="store_true",
        help="disable the retry/backoff layer (expect failures under faults)",
    )
    parser.add_argument(
        "--sessions", action="store_true",
        help="wrap data channels in survivable sessions "
        "(mid-stream faults are recovered by reconnect + replay)",
    )
    parser.add_argument(
        "--until", type=float, default=900.0, help="simulated-seconds budget"
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="export obs trace JSONL (single-seed runs only)",
    )
    parser.add_argument(
        "--export-dir", metavar="DIR",
        help="write per-node JSONL exports (+ run.jsonl) for "
        "`python -m repro.obs.assemble` (single-seed runs only)",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="write the run's streaming-telemetry capture as JSONL "
        "(scenarios with the telemetry plane enabled; tail it with "
        "`python -m repro.obs.watch`) (single-seed runs only)",
    )
    parser.add_argument(
        "--bundle", metavar="DIR",
        help="on invariant failure, dump a postmortem bundle "
        "(plan, report, per-node flight recorders, assembled trace) here",
    )
    parser.add_argument("--json", action="store_true", help="print full reports")
    args = parser.parse_args(argv)

    seeds = _parse_seeds(args.seeds)
    trace_path = args.trace if len(seeds) == 1 else None
    export_dir = args.export_dir if len(seeds) == 1 else None
    telemetry_path = args.telemetry if len(seeds) == 1 else None
    failures = 0
    for seed in seeds:
        report = run_chaos(
            scenario=args.scenario,
            seed=seed,
            plan=args.plan,
            retries=not args.no_retries,
            sessions=args.sessions,
            until=args.until,
            fidelity=args.fidelity,
            backend=args.backend,
            trace_path=trace_path,
            export_dir=export_dir,
            bundle_dir=args.bundle,
            telemetry_path=telemetry_path,
        )
        print(report.summary())
        if args.json:
            print(report.to_json())
        if not report.ok:
            failures += 1
            print(f"  replay: {report.triple()!r}", file=sys.stderr)
    print(f"{len(seeds) - failures}/{len(seeds)} chaos runs passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
