"""Chaos scenario registry: ``@scenario(...)`` self-registration.

Scenarios used to live in an ad-hoc name→function dict at the bottom of
``runner.py``; anything new (and anything living in another module, like
the fleet-scale scenarios) had to edit that dict by hand.  Builders now
self-register::

    from repro.chaos.registry import scenario

    @scenario("fleet_fanin", fidelities=("flow",))
    def _build_fleet_fanin(seed, retries, sessions, fidelity="flow"):
        ...
        return workload

A :class:`ScenarioDef` records which fidelity tiers the workload can run
on (default: packet only) and whether the builder wants the ``fidelity``
keyword; :func:`get_scenario` is the lookup the runner and CLI use.

``SCENARIOS`` remains importable as a read-only mapping view for one
release; it warns on use — iterate :func:`scenario_names` and call
:func:`get_scenario` instead.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Callable, Iterator, Mapping, Sequence

__all__ = [
    "ScenarioDef",
    "scenario",
    "live_scenario",
    "get_scenario",
    "scenario_names",
    "SCENARIOS",
]

_REGISTRY: dict[str, "ScenarioDef"] = {}


class ScenarioDef:
    """One registered chaos scenario: builder(s) + the tiers it runs on.

    ``builder`` constructs the simulated workload (``None`` for a
    live-only scenario); ``live_builder`` is an *async* builder the live
    chaos runner awaits inside its event loop — a scenario carrying both
    runs unmodified on either backend.
    """

    __slots__ = (
        "name",
        "builder",
        "fidelities",
        "description",
        "_takes_fidelity",
        "live_builder",
    )

    def __init__(
        self,
        name: str,
        builder: Callable,
        fidelities: Sequence[str],
        description: str = "",
    ):
        self.name = name
        self.builder = builder
        self.fidelities = tuple(fidelities)
        self.description = description
        self.live_builder = None
        if builder is None:
            self._takes_fidelity = False
        else:
            params = inspect.signature(builder).parameters
            self._takes_fidelity = "fidelity" in params

    @property
    def default_fidelity(self) -> str:
        return self.fidelities[0]

    @property
    def backends(self) -> tuple:
        out = []
        if self.builder is not None:
            out.append("sim")
        if self.live_builder is not None:
            out.append("live")
        return tuple(out)

    def build(self, seed: int, retries: bool, sessions: bool, fidelity: str):
        """Build the workload at ``fidelity`` (must be a supported tier)."""
        if self.builder is None:
            raise ValueError(
                f"scenario {self.name!r} is live-only; run it with "
                "backend='live'"
            )
        if fidelity not in self.fidelities:
            raise ValueError(
                f"scenario {self.name!r} does not support fidelity "
                f"{fidelity!r}; supported: {self.fidelities}"
            )
        if self._takes_fidelity:
            return self.builder(seed, retries, sessions, fidelity=fidelity)
        return self.builder(seed, retries, sessions)

    def build_live(self, seed: int, retries: bool, sessions: bool):
        """Await-able live workload construction (coroutine, not a value)."""
        if self.live_builder is None:
            raise ValueError(
                f"scenario {self.name!r} has no live builder; supported "
                f"backends: {self.backends}"
            )
        return self.live_builder(seed, retries, sessions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ScenarioDef {self.name} fidelities={self.fidelities} "
            f"backends={self.backends}>"
        )


def scenario(
    name: str,
    *,
    fidelities: Sequence[str] = ("packet",),
) -> Callable:
    """Decorator: register a workload builder under ``name``.

    The builder is called ``builder(seed, retries, sessions)`` — plus a
    ``fidelity=`` keyword if its signature declares one — and must
    return a :class:`~repro.chaos.runner.Workload`.  ``fidelities``
    lists the simulation tiers the workload is valid on, default-first.
    """
    from ..simnet.backend import FIDELITIES

    for tier in fidelities:
        if tier not in FIDELITIES:
            raise ValueError(f"unknown fidelity {tier!r}; have {FIDELITIES}")
    if not fidelities:
        raise ValueError("a scenario needs at least one fidelity tier")

    def register(builder: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"chaos scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioDef(
            name, builder, fidelities, description=(builder.__doc__ or "").strip()
        )
        return builder

    return register


def live_scenario(name: str) -> Callable:
    """Decorator: attach an *async* live-backend builder under ``name``.

    The builder is an ``async def builder(seed, retries, sessions)``
    returning a :class:`~repro.chaos.runner.Workload` whose scenario is a
    live one (real sockets, a :class:`~repro.livenet.proxy.ChaosTcpProxy`
    gateway).  If a sim scenario of the same name exists the two share
    the registry entry — ``run_chaos(name, backend=...)`` picks the
    builder; otherwise the scenario is live-only.
    """

    def register(builder: Callable) -> Callable:
        sdef = _REGISTRY.get(name)
        if sdef is None:
            sdef = ScenarioDef(
                name, None, (), description=(builder.__doc__ or "").strip()
            )
            _REGISTRY[name] = sdef
        if sdef.live_builder is not None:
            raise ValueError(
                f"chaos scenario {name!r} already has a live builder"
            )
        sdef.live_builder = builder
        return builder

    return register


def get_scenario(name: str) -> ScenarioDef:
    """Look up a registered scenario (importing known scenario modules)."""
    _load_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; have {sorted(_REGISTRY)}"
        ) from None


def scenario_names() -> list:
    """Every registered scenario name, sorted."""
    _load_builtin()
    return sorted(_REGISTRY)


def _load_builtin() -> None:
    """Import the modules whose ``@scenario`` decorators populate us."""
    from . import (  # noqa: F401 - imported for registration
        fleet,
        live,
        rollout,
        runner,
        tune,
    )


class _ScenariosView(Mapping):
    """Deprecated read-only ``name -> builder`` view of the registry.

    Kept for one release so existing ``SCENARIOS[name]`` /
    ``sorted(SCENARIOS)`` call sites keep working; every access warns.
    """

    def _warn(self) -> None:
        warnings.warn(
            "SCENARIOS is deprecated; use repro.chaos.get_scenario(name) "
            "and repro.chaos.scenario_names() instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, name: str) -> Callable:
        self._warn()
        _load_builtin()
        return _REGISTRY[name].builder

    def __iter__(self) -> Iterator[str]:
        self._warn()
        _load_builtin()
        return iter(sorted(_REGISTRY))

    def __len__(self) -> int:
        _load_builtin()
        return len(_REGISTRY)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        _load_builtin()
        return f"<SCENARIOS (deprecated view) {sorted(_REGISTRY)}>"


SCENARIOS = _ScenariosView()
