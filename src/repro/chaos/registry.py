"""Chaos scenario registry: ``@scenario(...)`` self-registration.

Scenarios used to live in an ad-hoc name→function dict at the bottom of
``runner.py``; anything new (and anything living in another module, like
the fleet-scale scenarios) had to edit that dict by hand.  Builders now
self-register::

    from repro.chaos.registry import scenario

    @scenario("fleet_fanin", fidelities=("flow",))
    def _build_fleet_fanin(seed, retries, sessions, fidelity="flow"):
        ...
        return workload

A :class:`ScenarioDef` records which fidelity tiers the workload can run
on (default: packet only) and whether the builder wants the ``fidelity``
keyword; :func:`get_scenario` is the lookup the runner and CLI use.

``SCENARIOS`` remains importable as a read-only mapping view for one
release; it warns on use — iterate :func:`scenario_names` and call
:func:`get_scenario` instead.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Callable, Iterator, Mapping, Sequence

__all__ = [
    "ScenarioDef",
    "scenario",
    "get_scenario",
    "scenario_names",
    "SCENARIOS",
]

_REGISTRY: dict[str, "ScenarioDef"] = {}


class ScenarioDef:
    """One registered chaos scenario: builder + the tiers it runs on."""

    __slots__ = ("name", "builder", "fidelities", "description", "_takes_fidelity")

    def __init__(
        self,
        name: str,
        builder: Callable,
        fidelities: Sequence[str],
        description: str = "",
    ):
        self.name = name
        self.builder = builder
        self.fidelities = tuple(fidelities)
        self.description = description
        params = inspect.signature(builder).parameters
        self._takes_fidelity = "fidelity" in params

    @property
    def default_fidelity(self) -> str:
        return self.fidelities[0]

    def build(self, seed: int, retries: bool, sessions: bool, fidelity: str):
        """Build the workload at ``fidelity`` (must be a supported tier)."""
        if fidelity not in self.fidelities:
            raise ValueError(
                f"scenario {self.name!r} does not support fidelity "
                f"{fidelity!r}; supported: {self.fidelities}"
            )
        if self._takes_fidelity:
            return self.builder(seed, retries, sessions, fidelity=fidelity)
        return self.builder(seed, retries, sessions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ScenarioDef {self.name} fidelities={self.fidelities}>"


def scenario(
    name: str,
    *,
    fidelities: Sequence[str] = ("packet",),
) -> Callable:
    """Decorator: register a workload builder under ``name``.

    The builder is called ``builder(seed, retries, sessions)`` — plus a
    ``fidelity=`` keyword if its signature declares one — and must
    return a :class:`~repro.chaos.runner.Workload`.  ``fidelities``
    lists the simulation tiers the workload is valid on, default-first.
    """
    from ..simnet.backend import FIDELITIES

    for tier in fidelities:
        if tier not in FIDELITIES:
            raise ValueError(f"unknown fidelity {tier!r}; have {FIDELITIES}")
    if not fidelities:
        raise ValueError("a scenario needs at least one fidelity tier")

    def register(builder: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"chaos scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioDef(
            name, builder, fidelities, description=(builder.__doc__ or "").strip()
        )
        return builder

    return register


def get_scenario(name: str) -> ScenarioDef:
    """Look up a registered scenario (importing known scenario modules)."""
    _load_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; have {sorted(_REGISTRY)}"
        ) from None


def scenario_names() -> list:
    """Every registered scenario name, sorted."""
    _load_builtin()
    return sorted(_REGISTRY)


def _load_builtin() -> None:
    """Import the modules whose ``@scenario`` decorators populate us."""
    from . import fleet, runner  # noqa: F401 - imported for registration


class _ScenariosView(Mapping):
    """Deprecated read-only ``name -> builder`` view of the registry.

    Kept for one release so existing ``SCENARIOS[name]`` /
    ``sorted(SCENARIOS)`` call sites keep working; every access warns.
    """

    def _warn(self) -> None:
        warnings.warn(
            "SCENARIOS is deprecated; use repro.chaos.get_scenario(name) "
            "and repro.chaos.scenario_names() instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, name: str) -> Callable:
        self._warn()
        _load_builtin()
        return _REGISTRY[name].builder

    def __iter__(self) -> Iterator[str]:
        self._warn()
        _load_builtin()
        return iter(sorted(_REGISTRY))

    def __len__(self) -> int:
        _load_builtin()
        return len(_REGISTRY)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        _load_builtin()
        return f"<SCENARIOS (deprecated view) {sorted(_REGISTRY)}>"


SCENARIOS = _ScenariosView()
