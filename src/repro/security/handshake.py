"""TLS-like handshake: ephemeral DH + certificate authentication (§4.4).

The paper plans an SSL filtering driver for NetIbis; we implement the full
protocol so the security dimension of the integrated solution is real.  The
design follows TLS 1.3 in miniature:

1. ``ClientHello``  — client random, ephemeral DH public value.
2. ``ServerHello``  — server random, ephemeral DH public value, certificate
   chain, a Schnorr signature over the transcript (proves possession of the
   certified key), and a Finished MAC under the derived keys.
3. ``ClientFinished`` — optional client certificate chain + transcript
   signature (mutual authentication), and the client Finished MAC.

Keys: ``HKDF(salt = client_random || server_random, ikm = DH shared)``
expanded into per-direction encryption/MAC keys and Finished keys.  The
handshake is sans-IO: callers move opaque message blobs; both the simnet
TLS driver and the livenet backend reuse it unchanged.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, Optional, Sequence

from ..util.framing import ByteReader, ByteWriter, FrameError
from .certs import Certificate, CertificateError, verify_chain
from .dh import DHPrivateKey
from .hkdf import hkdf_expand, hkdf_extract
from .record import RecordCipher, SecureSession
from .schnorr import SignatureError, SigningKey

__all__ = ["HandshakeError", "ClientHandshake", "ServerHandshake", "Identity"]

MSG_CLIENT_HELLO = 1
MSG_SERVER_HELLO = 2
MSG_CLIENT_FINISHED = 3

_SERVER_SIG_LABEL = b"repro-tls server-auth v1"
_CLIENT_SIG_LABEL = b"repro-tls client-auth v1"
_SERVER_FIN_LABEL = b"repro-tls server-fin v1"
_CLIENT_FIN_LABEL = b"repro-tls client-fin v1"


class HandshakeError(Exception):
    """Protocol violation, authentication failure, or tampering."""


class Identity:
    """A key plus its certificate chain (leaf first)."""

    def __init__(self, key: SigningKey, chain: Sequence[Certificate]):
        if not chain:
            raise ValueError("identity requires at least a leaf certificate")
        if chain[0].public_key != key.verify_key:
            raise ValueError("leaf certificate does not match the key")
        self.key = key
        self.chain = list(chain)

    @property
    def subject(self) -> str:
        return self.chain[0].subject


def _derive_keys(
    client_random: bytes, server_random: bytes, shared: bytes
) -> dict[str, bytes]:
    prk = hkdf_extract(client_random + server_random, shared)
    okm = hkdf_expand(prk, b"repro-tls key schedule v1", 32 * 6)
    names = ["c2s_key", "s2c_key", "c2s_mac", "s2c_mac", "c_fin", "s_fin"]
    return {name: okm[i * 32 : (i + 1) * 32] for i, name in enumerate(names)}


def _fin_mac(key: bytes, label: bytes, transcript: bytes) -> bytes:
    return hmac.new(key, label + hashlib.sha256(transcript).digest(), hashlib.sha256).digest()


def _encode_chain(writer: ByteWriter, chain: Sequence[Certificate]) -> None:
    writer.u16(len(chain))
    for cert in chain:
        writer.lp_bytes(cert.encode())


def _decode_chain(reader: ByteReader) -> list[Certificate]:
    count = reader.u16()
    if count > 16:
        raise HandshakeError("certificate chain too long")
    return [Certificate.decode(reader.lp_bytes()) for _ in range(count)]


def _random_from(seed: Optional[bytes], label: bytes) -> bytes:
    if seed is None:
        import secrets

        return secrets.token_bytes(32)
    return hashlib.sha256(label + seed).digest()


class ClientHandshake:
    """Client side of the handshake (sans-IO).

    Call :meth:`hello` to get the first message; feed the server's reply to
    :meth:`finish`, which returns ``(client_finished_msg, session)``.
    """

    def __init__(
        self,
        trust_anchors: Iterable[Certificate],
        identity: Optional[Identity] = None,
        expected_server: Optional[str] = None,
        now: float = 0.0,
        seed: Optional[bytes] = None,
        dh_exponent: Optional[int] = None,
    ):
        self.trust_anchors = list(trust_anchors)
        self.identity = identity
        self.expected_server = expected_server
        self.now = now
        self._random = _random_from(seed, b"client-random")
        self._dh = DHPrivateKey(dh_exponent)
        self._hello: Optional[bytes] = None
        self.peer_subject: Optional[str] = None

    def hello(self) -> bytes:
        msg = (
            ByteWriter()
            .u8(MSG_CLIENT_HELLO)
            .raw(self._random)
            .mpint(self._dh.public)
            .u8(1 if self.identity is not None else 0)
            .getvalue()
        )
        self._hello = msg
        return msg

    def finish(self, server_hello: bytes) -> tuple[bytes, SecureSession]:
        if self._hello is None:
            raise HandshakeError("hello() not sent yet")
        try:
            reader = ByteReader(server_hello)
            if reader.u8() != MSG_SERVER_HELLO:
                raise HandshakeError("expected ServerHello")
            server_random = reader.raw(32)
            server_pub = reader.mpint()
            chain = _decode_chain(reader)
            core_len = len(server_hello) - reader.remaining
            sig_e = reader.mpint()
            sig_s = reader.mpint()
            server_fin = reader.lp_bytes()
            reader.expect_end()
        except FrameError as exc:
            raise HandshakeError(f"malformed ServerHello: {exc}") from exc

        # Authenticate the server.
        try:
            leaf = verify_chain(
                chain, self.trust_anchors, self.now, self.expected_server
            )
        except CertificateError as exc:
            raise HandshakeError(f"server certificate rejected: {exc}") from exc
        sh_core = server_hello[:core_len]
        signed = _SERVER_SIG_LABEL + self._hello + sh_core
        if not leaf.public_key.is_valid(signed, (sig_e, sig_s)):
            raise HandshakeError("server transcript signature invalid")
        self.peer_subject = leaf.subject

        # Key schedule.
        try:
            shared = self._dh.shared(server_pub)
        except ValueError as exc:
            raise HandshakeError(f"bad server DH value: {exc}") from exc
        keys = _derive_keys(self._random, server_random, shared)

        sig_enc = ByteWriter().mpint(sig_e).mpint(sig_s).getvalue()
        expected_fin = _fin_mac(
            keys["s_fin"], _SERVER_FIN_LABEL, self._hello + sh_core + sig_enc
        )
        if not hmac.compare_digest(server_fin, expected_fin):
            raise HandshakeError("server Finished MAC invalid")

        # Build ClientFinished.
        writer = ByteWriter().u8(MSG_CLIENT_FINISHED)
        if self.identity is not None:
            writer.u8(1)
            _encode_chain(writer, self.identity.chain)
            client_signed = (
                _CLIENT_SIG_LABEL + self._hello + server_hello
            )
            ce, cs = self.identity.key.sign(client_signed)
            writer.mpint(ce).mpint(cs)
        else:
            writer.u8(0)
        body_so_far = writer.getvalue()
        client_fin = _fin_mac(
            keys["c_fin"], _CLIENT_FIN_LABEL, self._hello + server_hello + body_so_far
        )
        writer.lp_bytes(client_fin)
        finished_msg = writer.getvalue()

        session = SecureSession(
            send_cipher=RecordCipher(keys["c2s_key"], keys["c2s_mac"]),
            recv_cipher=RecordCipher(keys["s2c_key"], keys["s2c_mac"]),
            peer_subject=self.peer_subject,
            role="client",
        )
        return finished_msg, session


class ServerHandshake:
    """Server side of the handshake (sans-IO).

    Feed the ClientHello to :meth:`respond` (returns the ServerHello), then
    the ClientFinished to :meth:`finish` (returns the session).
    """

    def __init__(
        self,
        identity: Identity,
        trust_anchors: Optional[Iterable[Certificate]] = None,
        require_client_auth: bool = False,
        now: float = 0.0,
        seed: Optional[bytes] = None,
        dh_exponent: Optional[int] = None,
    ):
        self.identity = identity
        self.trust_anchors = list(trust_anchors or ())
        self.require_client_auth = require_client_auth
        if require_client_auth and not self.trust_anchors:
            raise ValueError("client auth requires trust anchors")
        self.now = now
        self._random = _random_from(seed, b"server-random")
        self._dh = DHPrivateKey(dh_exponent)
        self._hello: Optional[bytes] = None
        self._server_hello: Optional[bytes] = None
        self._keys: Optional[dict[str, bytes]] = None
        self.peer_subject: Optional[str] = None

    def respond(self, client_hello: bytes) -> bytes:
        try:
            reader = ByteReader(client_hello)
            if reader.u8() != MSG_CLIENT_HELLO:
                raise HandshakeError("expected ClientHello")
            client_random = reader.raw(32)
            client_pub = reader.mpint()
            _client_has_cert = reader.u8()
            reader.expect_end()
        except FrameError as exc:
            raise HandshakeError(f"malformed ClientHello: {exc}") from exc
        self._hello = client_hello

        writer = ByteWriter().u8(MSG_SERVER_HELLO).raw(self._random)
        writer.mpint(self._dh.public)
        _encode_chain(writer, self.identity.chain)
        sh_core = writer.getvalue()

        sig = self.identity.key.sign(_SERVER_SIG_LABEL + client_hello + sh_core)
        sig_enc = ByteWriter().mpint(sig[0]).mpint(sig[1]).getvalue()

        try:
            shared = self._dh.shared(client_pub)
        except ValueError as exc:
            raise HandshakeError(f"bad client DH value: {exc}") from exc
        self._keys = _derive_keys(client_random, self._random, shared)

        fin = _fin_mac(
            self._keys["s_fin"], _SERVER_FIN_LABEL, client_hello + sh_core + sig_enc
        )
        message = sh_core + sig_enc + ByteWriter().lp_bytes(fin).getvalue()
        self._server_hello = message
        return message

    def finish(self, client_finished: bytes) -> SecureSession:
        if self._keys is None or self._server_hello is None or self._hello is None:
            raise HandshakeError("respond() not called yet")
        try:
            reader = ByteReader(client_finished)
            if reader.u8() != MSG_CLIENT_FINISHED:
                raise HandshakeError("expected ClientFinished")
            has_cert = reader.u8()
            if has_cert:
                chain = _decode_chain(reader)
                ce = reader.mpint()
                cs = reader.mpint()
            body_len = len(client_finished) - reader.remaining
            fin = reader.lp_bytes()
            reader.expect_end()
        except FrameError as exc:
            raise HandshakeError(f"malformed ClientFinished: {exc}") from exc

        if has_cert:
            try:
                leaf = verify_chain(chain, self.trust_anchors, self.now)
            except CertificateError as exc:
                raise HandshakeError(f"client certificate rejected: {exc}") from exc
            signed = _CLIENT_SIG_LABEL + self._hello + self._server_hello
            if not leaf.public_key.is_valid(signed, (ce, cs)):
                raise HandshakeError("client transcript signature invalid")
            self.peer_subject = leaf.subject
        elif self.require_client_auth:
            raise HandshakeError("client authentication required but not offered")

        body = client_finished[:body_len]
        expected = _fin_mac(
            self._keys["c_fin"],
            _CLIENT_FIN_LABEL,
            self._hello + self._server_hello + body,
        )
        if not hmac.compare_digest(fin, expected):
            raise HandshakeError("client Finished MAC invalid")

        return SecureSession(
            send_cipher=RecordCipher(self._keys["s2c_key"], self._keys["s2c_mac"]),
            recv_cipher=RecordCipher(self._keys["c2s_key"], self._keys["c2s_mac"]),
            peer_subject=self.peer_subject,
            role="server",
        )
