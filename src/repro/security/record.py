"""Record layer: encrypt-then-MAC with sequence-number replay protection.

Each direction has an independent ChaCha20 key and HMAC-SHA256 key derived
by the handshake key schedule.  Records are sealed as::

    ciphertext || mac16

where ``mac16 = HMAC-SHA256(mac_key, seq8 || ciphertext)[:16]`` and the
64-bit sequence number increments per record on each side.  The transport
(TCP) preserves order, so a mismatched or replayed record fails the MAC.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

from .chacha20 import ChaCha20

__all__ = ["RecordError", "RecordCipher", "SecureSession", "MAC_LEN"]

MAC_LEN = 16


class RecordError(Exception):
    """MAC failure, replay, or malformed record."""


class RecordCipher:
    """One direction of a secure channel."""

    def __init__(self, enc_key: bytes, mac_key: bytes):
        if len(enc_key) != 32 or len(mac_key) != 32:
            raise ValueError("keys must be 32 bytes")
        self._cipher = ChaCha20(enc_key)
        self._mac_key = mac_key
        self.seq = 0

    def _mac(self, seq: int, ciphertext: bytes) -> bytes:
        return hmac.new(
            self._mac_key, struct.pack("!Q", seq) + ciphertext, hashlib.sha256
        ).digest()[:MAC_LEN]

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt and authenticate one record."""
        seq = self.seq
        self.seq += 1
        ciphertext = self._cipher.process(seq, plaintext)
        return ciphertext + self._mac(seq, ciphertext)

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one record; raises :class:`RecordError`."""
        if len(record) < MAC_LEN:
            raise RecordError("record shorter than its MAC")
        ciphertext, mac = record[:-MAC_LEN], record[-MAC_LEN:]
        seq = self.seq
        expected = self._mac(seq, ciphertext)
        if not hmac.compare_digest(mac, expected):
            raise RecordError(f"MAC failure on record {seq}")
        self.seq += 1
        return self._cipher.process(seq, ciphertext)


class SecureSession:
    """A full-duplex secure channel produced by a completed handshake."""

    def __init__(
        self,
        send_cipher: RecordCipher,
        recv_cipher: RecordCipher,
        peer_subject: str | None,
        role: str,
    ):
        self._send = send_cipher
        self._recv = recv_cipher
        #: authenticated identity of the peer (None if anonymous)
        self.peer_subject = peer_subject
        self.role = role

    def seal(self, plaintext: bytes) -> bytes:
        return self._send.seal(plaintext)

    def open(self, record: bytes) -> bytes:
        return self._recv.open(record)

    @property
    def overhead(self) -> int:
        """Per-record byte overhead."""
        return MAC_LEN
