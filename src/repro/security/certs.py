"""Grid certificates: a minimal PKI for peer authentication (paper §1, §4.4).

Grid deployments of the era used GSI-style X.509 certificates; we implement
the same trust structure with a compact binary certificate format signed by
Schnorr keys: a certificate binds a subject name to a public key, signed by
an issuer, with validity bounds and a CA flag.  Chains verify up to a set
of trust anchors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..util.framing import ByteReader, ByteWriter, FrameError
from .schnorr import SignatureError, SigningKey, VerifyKey

__all__ = ["Certificate", "CertificateError", "CertificateAuthority", "verify_chain"]


class CertificateError(Exception):
    """Certificate parsing, validity or chain verification failure."""


@dataclass(frozen=True)
class Certificate:
    subject: str
    public_key: VerifyKey
    issuer: str
    serial: int
    valid_from: float
    valid_to: float
    is_ca: bool
    signature: tuple[int, int]

    # -- encoding ------------------------------------------------------------
    def _tbs(self) -> bytes:
        """The to-be-signed portion (everything but the signature)."""
        return (
            ByteWriter()
            .lp_str(self.subject)
            .lp_bytes(self.public_key.encode())
            .lp_str(self.issuer)
            .u64(self.serial)
            .f64(self.valid_from)
            .f64(self.valid_to)
            .u8(1 if self.is_ca else 0)
            .getvalue()
        )

    def encode(self) -> bytes:
        e, s = self.signature
        return ByteWriter().lp_bytes(self._tbs()).mpint(e).mpint(s).getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        try:
            outer = ByteReader(data)
            tbs = outer.lp_bytes()
            e = outer.mpint()
            s = outer.mpint()
            outer.expect_end()
            r = ByteReader(tbs)
            cert = cls(
                subject=r.lp_str(),
                public_key=VerifyKey.decode(r.lp_bytes()),
                issuer=r.lp_str(),
                serial=r.u64(),
                valid_from=r.f64(),
                valid_to=r.f64(),
                is_ca=bool(r.u8()),
                signature=(e, s),
            )
            r.expect_end()
            return cert
        except (FrameError, ValueError) as exc:
            raise CertificateError(f"malformed certificate: {exc}") from exc

    # -- checks ---------------------------------------------------------------
    def check_validity(self, now: float) -> None:
        if not self.valid_from <= now <= self.valid_to:
            raise CertificateError(
                f"certificate for {self.subject!r} not valid at t={now} "
                f"(window [{self.valid_from}, {self.valid_to}])"
            )

    def check_signed_by(self, issuer_key: VerifyKey) -> None:
        try:
            issuer_key.verify(self._tbs(), self.signature)
        except SignatureError as exc:
            raise CertificateError(
                f"certificate for {self.subject!r}: bad issuer signature"
            ) from exc


class CertificateAuthority:
    """Issues certificates; the root of a trust chain."""

    def __init__(self, name: str, key: Optional[SigningKey] = None):
        self.name = name
        self.key = key or SigningKey.from_seed(name.encode())
        self._serial = 0
        self.certificate = self._self_signed()

    def _self_signed(self) -> Certificate:
        return self._issue(
            subject=self.name,
            public_key=self.key.verify_key,
            is_ca=True,
            valid_from=0.0,
            valid_to=float("inf"),
        )

    def _issue(self, subject, public_key, is_ca, valid_from, valid_to) -> Certificate:
        self._serial += 1
        unsigned = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=self._serial,
            valid_from=valid_from,
            valid_to=valid_to,
            is_ca=is_ca,
            signature=(0, 0),
        )
        sig = self.key.sign(unsigned._tbs())
        return Certificate(**{**unsigned.__dict__, "signature": sig})

    def issue(
        self,
        subject: str,
        public_key: VerifyKey,
        valid_from: float = 0.0,
        valid_to: float = float("inf"),
        is_ca: bool = False,
    ) -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``."""
        return self._issue(subject, public_key, is_ca, valid_from, valid_to)

    def issue_identity(
        self, subject: str, seed: Optional[bytes] = None
    ) -> tuple[SigningKey, Certificate]:
        """Convenience: generate a keypair and certify it."""
        key = SigningKey.from_seed(seed if seed is not None else subject.encode())
        return key, self.issue(subject, key.verify_key)


def verify_chain(
    chain: Sequence[Certificate],
    trust_anchors: Iterable[Certificate],
    now: float,
    expected_subject: Optional[str] = None,
) -> Certificate:
    """Verify ``chain`` (leaf first) against ``trust_anchors``.

    Returns the leaf certificate.  Every link must be signed by the next
    certificate's key; the last link must be signed by a trust anchor (or
    be one).  Intermediates must carry the CA flag.
    """
    if not chain:
        raise CertificateError("empty certificate chain")
    anchors = {cert.subject: cert for cert in trust_anchors}
    leaf = chain[0]
    if expected_subject is not None and leaf.subject != expected_subject:
        raise CertificateError(
            f"subject mismatch: expected {expected_subject!r}, got {leaf.subject!r}"
        )
    for i, cert in enumerate(chain):
        cert.check_validity(now)
        if i > 0 and not cert.is_ca:
            raise CertificateError(
                f"intermediate {cert.subject!r} lacks the CA flag"
            )
        anchor = anchors.get(cert.issuer)
        if anchor is not None:
            cert.check_signed_by(anchor.public_key)
            return leaf
        if i + 1 < len(chain):
            issuer = chain[i + 1]
            if issuer.subject != cert.issuer:
                raise CertificateError(
                    f"broken chain: {cert.subject!r} issued by {cert.issuer!r}, "
                    f"next cert is {issuer.subject!r}"
                )
            cert.check_signed_by(issuer.public_key)
        else:
            raise CertificateError(
                f"chain ends at {cert.subject!r} without reaching a trust anchor"
            )
    raise CertificateError("unreachable")  # pragma: no cover
