"""Finite-field Diffie-Hellman over RFC 3526 MODP group 14 (2048-bit).

Used for the ephemeral key agreement in the TLS-like handshake.  The group
prime is a safe prime (p = 2q + 1 with q prime), so it doubles as the
Schnorr-signature group in :mod:`repro.security.schnorr`.
"""

from __future__ import annotations

import secrets

__all__ = ["GROUP14_P", "GROUP14_G", "GROUP14_Q", "DHPrivateKey", "shared_secret"]

# RFC 3526, 2048-bit MODP Group (id 14).
GROUP14_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
GROUP14_G = 2
#: order of the prime-order subgroup (p is a safe prime)
GROUP14_Q = (GROUP14_P - 1) // 2


class DHPrivateKey:
    """An ephemeral DH keypair.

    ``exponent_bits`` trades security margin for speed; 256 random bits is
    ample for a 2048-bit group (standard short-exponent practice).
    """

    def __init__(self, exponent: int | None = None, exponent_bits: int = 256):
        if exponent is None:
            exponent = secrets.randbits(exponent_bits) | (1 << (exponent_bits - 1))
        if not 1 < exponent < GROUP14_Q:
            raise ValueError("exponent out of range")
        self.x = exponent
        self.public = pow(GROUP14_G, self.x, GROUP14_P)

    def shared(self, peer_public: int) -> bytes:
        """The shared secret with a peer's public value, as bytes."""
        return shared_secret(self.x, peer_public)


def _validate_public(value: int) -> None:
    if not 1 < value < GROUP14_P - 1:
        raise ValueError("invalid DH public value")
    # Subgroup check: reject small-subgroup confinement attacks.
    if pow(value, GROUP14_Q, GROUP14_P) != 1:
        raise ValueError("DH public value not in the prime-order subgroup")


def shared_secret(private_exponent: int, peer_public: int) -> bytes:
    """g^(xy) mod p, serialized big-endian (constant 256-byte length)."""
    _validate_public(peer_public)
    z = pow(peer_public, private_exponent, GROUP14_P)
    return z.to_bytes(256, "big")
