"""HKDF-SHA256 (RFC 5869), used for the handshake key schedule."""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf"]

_HASH_LEN = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """Extract a pseudorandom key from input keying material."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac.new(salt, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand ``prk`` into ``length`` bytes of output keying material."""
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            prk, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(salt: bytes, ikm: bytes, info: bytes, length: int) -> bytes:
    """Extract-then-expand in one call."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
