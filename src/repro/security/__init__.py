"""From-scratch security substrate: the TLS-like layer the paper plans.

Everything here is implemented on the Python standard library only:

* :mod:`~repro.security.chacha20` — ChaCha20 stream cipher (RFC 7539).
* :mod:`~repro.security.hkdf` — HKDF-SHA256 (RFC 5869).
* :mod:`~repro.security.dh` — finite-field DH, RFC 3526 group 14.
* :mod:`~repro.security.schnorr` — Schnorr signatures over the same group.
* :mod:`~repro.security.certs` — grid certificates and chain verification.
* :mod:`~repro.security.record` — encrypt-then-MAC record layer.
* :mod:`~repro.security.handshake` — sans-IO TLS-like handshake.
"""

from .certs import Certificate, CertificateAuthority, CertificateError, verify_chain
from .chacha20 import ChaCha20, chacha20_block, chacha20_xor
from .dh import DHPrivateKey, GROUP14_G, GROUP14_P, GROUP14_Q, shared_secret
from .handshake import ClientHandshake, HandshakeError, Identity, ServerHandshake
from .hkdf import hkdf, hkdf_expand, hkdf_extract
from .record import MAC_LEN, RecordCipher, RecordError, SecureSession
from .schnorr import SignatureError, SigningKey, VerifyKey, sign, verify

__all__ = [
    "ChaCha20",
    "chacha20_block",
    "chacha20_xor",
    "hkdf",
    "hkdf_extract",
    "hkdf_expand",
    "DHPrivateKey",
    "shared_secret",
    "GROUP14_P",
    "GROUP14_G",
    "GROUP14_Q",
    "SigningKey",
    "VerifyKey",
    "sign",
    "verify",
    "SignatureError",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "verify_chain",
    "RecordCipher",
    "RecordError",
    "SecureSession",
    "MAC_LEN",
    "ClientHandshake",
    "ServerHandshake",
    "Identity",
    "HandshakeError",
]
