"""ChaCha20 stream cipher (RFC 7539), from scratch.

Pure-Python implementation used by the TLS-like record layer
(:mod:`repro.security.record`).  Verified against the RFC 7539 test
vectors in the test suite.
"""

from __future__ import annotations

import struct

__all__ = ["chacha20_block", "chacha20_xor", "ChaCha20"]

_MASK = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _rotl(v: int, n: int) -> int:
    return ((v << n) & _MASK) | (v >> (32 - n))


def _quarter(state: list, a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte keystream block (RFC 7539 §2.3)."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    if not 0 <= counter <= _MASK:
        raise ValueError("counter out of range")
    init = list(_CONSTANTS)
    init.extend(struct.unpack("<8I", key))
    init.append(counter)
    init.extend(struct.unpack("<3I", nonce))

    state = init.copy()
    for _ in range(10):
        _quarter(state, 0, 4, 8, 12)
        _quarter(state, 1, 5, 9, 13)
        _quarter(state, 2, 6, 10, 14)
        _quarter(state, 3, 7, 11, 15)
        _quarter(state, 0, 5, 10, 15)
        _quarter(state, 1, 6, 11, 12)
        _quarter(state, 2, 7, 8, 13)
        _quarter(state, 3, 4, 9, 14)
    return struct.pack("<16I", *((s + i) & _MASK for s, i in zip(state, init)))


def chacha20_xor(key: bytes, counter: int, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt ``data`` (XOR with the keystream, RFC 7539 §2.4)."""
    out = bytearray(len(data))
    for block_index in range((len(data) + 63) // 64):
        keystream = chacha20_block(key, counter + block_index, nonce)
        start = block_index * 64
        chunk = data[start : start + 64]
        out[start : start + len(chunk)] = bytes(
            a ^ b for a, b in zip(chunk, keystream)
        )
    return bytes(out)


class ChaCha20:
    """Stateful encryptor: a fresh nonce per message from a 64-bit sequence.

    The 12-byte nonce is ``prefix(4) || seq(8)``; sequence numbers must not
    repeat under the same key (the record layer guarantees this).
    """

    def __init__(self, key: bytes, prefix: bytes = b"\x00" * 4):
        if len(prefix) != 4:
            raise ValueError("nonce prefix must be 4 bytes")
        if len(key) != 32:
            raise ValueError("key must be 32 bytes")
        self.key = key
        self.prefix = prefix

    def process(self, seq: int, data: bytes) -> bytes:
        nonce = self.prefix + struct.pack("!Q", seq)
        return chacha20_xor(self.key, 1, nonce, data)
