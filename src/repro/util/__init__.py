"""Shared low-level utilities: framing, buffers, encoding."""

from .bytesbuf import AggregationBuffer
from .framing import ByteReader, ByteWriter, FrameError

__all__ = ["ByteReader", "ByteWriter", "FrameError", "AggregationBuffer"]
