"""Binary encoding helpers: length-prefixed fields, frames.

Used by the security handshake, the relay protocol, SOCKS-adjacent wire
formats and the IPL serialization layer.  Everything is explicit
big-endian, no pickling at the wire level.
"""

from __future__ import annotations

import struct

__all__ = ["FrameError", "ByteWriter", "ByteReader", "frame", "FRAME_HEADER"]

FRAME_HEADER = 4


class FrameError(Exception):
    """Malformed or truncated wire data."""


def frame(payload: bytes) -> bytes:
    """A u32-length-prefixed frame."""
    if len(payload) > 0xFFFFFFFF:
        raise FrameError("frame too large")
    return struct.pack("!I", len(payload)) + payload


class ByteWriter:
    """Composable binary writer."""

    def __init__(self):
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "ByteWriter":
        self._parts.append(struct.pack("!B", value))
        return self

    def u16(self, value: int) -> "ByteWriter":
        self._parts.append(struct.pack("!H", value))
        return self

    def u32(self, value: int) -> "ByteWriter":
        self._parts.append(struct.pack("!I", value))
        return self

    def u64(self, value: int) -> "ByteWriter":
        self._parts.append(struct.pack("!Q", value))
        return self

    def f64(self, value: float) -> "ByteWriter":
        self._parts.append(struct.pack("!d", value))
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        self._parts.append(bytes(data))
        return self

    def lp_bytes(self, data: bytes) -> "ByteWriter":
        """Length-prefixed (u32) byte string."""
        self.u32(len(data))
        self._parts.append(bytes(data))
        return self

    def lp_str(self, text: str) -> "ByteWriter":
        return self.lp_bytes(text.encode("utf-8"))

    def mpint(self, value: int) -> "ByteWriter":
        """Length-prefixed big integer (for DH/Schnorr values)."""
        if value < 0:
            raise FrameError("mpint must be non-negative")
        data = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        return self.lp_bytes(data)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class ByteReader:
    """Composable binary reader with strict bounds checking."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise FrameError(
                f"truncated data: wanted {n} bytes at {self._pos}, "
                f"have {len(self._data)}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("!I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("!Q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("!d", self._take(8))[0]

    def raw(self, n: int) -> bytes:
        return self._take(n)

    def lp_bytes(self) -> bytes:
        return self._take(self.u32())

    def lp_str(self) -> str:
        return self.lp_bytes().decode("utf-8")

    def mpint(self) -> int:
        data = self.lp_bytes()
        return int.from_bytes(data, "big")

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def expect_end(self) -> None:
        if self.remaining:
            raise FrameError(f"{self.remaining} trailing bytes")
