"""User-space aggregation buffer (paper §4.1).

Small sends are aggregated and flushed as one block, which is the
``TCP_Block`` strategy: "buffering in user space in combination with an
explicit flush allows disabling TCP_DELAY, and ensures a high bandwidth
... in combination with a minimal latency."
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["AggregationBuffer"]


class AggregationBuffer:
    """Aggregates writes; emits blocks on overflow or explicit flush.

    ``on_block`` is called with each completed block.  Overflow emission
    keeps blocks at most ``capacity`` bytes.
    """

    def __init__(self, capacity: int, on_block: Optional[Callable[[bytes], None]] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.on_block = on_block
        self._buf = bytearray()
        self.blocks_emitted = 0
        self.bytes_in = 0

    def write(self, data: bytes) -> list[bytes]:
        """Append ``data``; returns any blocks emitted due to overflow."""
        self.bytes_in += len(data)
        emitted = []
        offset = 0
        while offset < len(data):
            room = self.capacity - len(self._buf)
            take = data[offset : offset + room]
            self._buf.extend(take)
            offset += len(take)
            if len(self._buf) >= self.capacity:
                emitted.append(self._emit())
        return emitted

    def flush(self) -> Optional[bytes]:
        """Emit the current partial block, if any."""
        if not self._buf:
            return None
        return self._emit()

    def _emit(self) -> bytes:
        block = bytes(self._buf)
        self._buf.clear()
        self.blocks_emitted += 1
        if self.on_block is not None:
            self.on_block(block)
        return block

    @property
    def pending(self) -> int:
        return len(self._buf)
