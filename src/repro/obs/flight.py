"""Always-on flight recorder: a bounded ring of recent lifecycle events.

The opt-in :class:`~repro.obs.trace.TraceRecorder` is a scalpel — it
records everything, costs memory proportional to the run, and is off by
default.  The flight recorder is the black box: every node keeps a
small ``deque(maxlen=...)`` of its most recent *lifecycle* notes (link
opened, route established, session resumed, attempt failed, ...) at
negligible cost, whether or not tracing is enabled.  When a chaos
invariant fails, the runner dumps each node's ring into the postmortem
bundle so the last moments before the failure are reconstructable even
though nobody asked for a trace up front.

Notes deliberately exclude per-message/per-packet events; the ring is
for the dozens-per-run control-plane transitions, which is what keeps
the overhead under the benchmarked noise floor.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .context import TraceContext, current

__all__ = ["FlightRecorder", "DEFAULT_CAPACITY"]

DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring buffer of recent events for one node."""

    __slots__ = ("node", "clock", "_ring", "dropped")

    def __init__(self, node: str, capacity: int = DEFAULT_CAPACITY, clock=None):
        self.node = node
        self.clock = clock  # callable -> float; None = record ts 0.0
        self._ring: deque = deque(maxlen=capacity)
        self.dropped = 0

    def note(self, name: str, ctx: Optional[TraceContext] = None, **attrs) -> None:
        """Append one lifecycle note (evicting the oldest when full)."""
        if ctx is None:
            ctx = current()
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        ts = self.clock() if self.clock is not None else 0.0
        self._ring.append((ts, name, ctx, attrs))

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    def records(self) -> list:
        """The ring as schema-v2 ``flight`` records, oldest first."""
        out = []
        for ts, name, ctx, attrs in self._ring:
            rec = {
                "type": "flight",
                "name": name,
                "ts": ts,
                "node": self.node,
            }
            if ctx is not None:
                rec.update(ctx.ids())
            if attrs:
                rec["attrs"] = dict(attrs)
            out.append(rec)
        return out
