"""Streaming telemetry: periodic delta snapshots, sliding-window SLIs,
declarative SLO monitors.

The export layer (:mod:`repro.obs.export`) is *export-at-end*: nothing
can observe a run while it is happening, which blocks both closed-loop
autotuning and staged rollout (the paper's §8 "combine with grid
monitoring" future work).  This module is the live substrate:

* a :class:`TelemetryPublisher` periodically snapshots a
  :class:`~repro.obs.metrics.MetricsRegistry` and emits **delta
  records** — monotonic counter deltas, gauge samples, histogram bucket
  deltas — on a configurable interval, driven by the sim clock on the
  simulated backend (:meth:`TelemetryPublisher.run_sim`) and by an
  asyncio task on livenet (:meth:`TelemetryPublisher.start_async`);
* a :class:`TelemetryAggregator` merges any number of per-source
  streams into sliding windows, computes **SLIs** over them (throughput,
  establishment latency, resume counts, mux credit stalls, mesh
  convergence lag, proxy byte-conservation drift — see the ``sli_*``
  factories) and evaluates declarative :class:`SLO` monitors that emit
  ``slo.breach`` / ``slo.clear`` events into the trace;
* :func:`replay_deltas` folds a delta stream back into the final
  registry snapshot (exactly — the property the test suite pins), and
  :func:`telemetry_violations` is the chaos-invariant check that a
  captured stream is internally consistent.

Record shape (shares the JSONL schema with the other obs record types;
``python -m repro.obs.watch`` tails these)::

    {"type": "telemetry", "source": "alice", "seq": 3, "ts": 12.5,
     "interval": 0.5,
     "counters":   [[name, labels, delta], ...],
     "gauges":     [[name, labels, value, updated_at], ...],
     "histograms": [[name, labels, count_delta, count, sum,
                     [per-bucket deltas...], [bounds...]], ...]}

Counters and histogram bucket counts are **deltas** (ints, exact);
histogram ``count``/``sum`` and gauges are **absolute** (floating-point
sums do not delta exactly, so the absolute value rides along and replay
is reconstruction, not accumulation).  Zero-delta instruments are
omitted, so a steady-state record is a cheap heartbeat.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from . import event as obs_event
from .metrics import MetricsRegistry

__all__ = [
    "TelemetryPublisher",
    "TelemetryLog",
    "TelemetryAggregator",
    "SLO",
    "replay_deltas",
    "telemetry_violations",
    "write_telemetry_jsonl",
    "read_telemetry_jsonl",
    "sli_counter_rate",
    "sli_counter_increase",
    "sli_gauge",
    "sli_histogram_mean",
    "sli_proxy_drift",
]

#: default publish interval (seconds, in the publisher's clock domain)
DEFAULT_INTERVAL = 0.5

#: default aggregator sliding-window span (seconds)
DEFAULT_WINDOW = 10.0


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


# ---------------------------------------------------------------------------
# publisher
# ---------------------------------------------------------------------------


class TelemetryPublisher:
    """Periodic delta snapshots of one registry, tagged with a source.

    ``select`` optionally narrows the stream to the instruments one
    *source* (a node, a relay, a proxy) owns: a callable
    ``select(name, labels) -> bool``.  Two publishers with disjoint
    selections stream disjoint instruments, which is what lets every
    node of a scenario publish "its" metrics out of the one process-wide
    registry.

    The publisher is backend-agnostic: :meth:`publish` computes and
    emits one record; :meth:`run_sim` is the simulated-time driver (a
    generator process ticking on ``sim.timeout``), and
    :meth:`start_async` the wall-clock driver (an asyncio task).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        source: str,
        interval: float = DEFAULT_INTERVAL,
        clock: Optional[Callable[[], float]] = None,
        select: Optional[Callable[[str, dict], bool]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"telemetry interval must be positive: {interval}")
        self.registry = registry
        self.source = source
        self.interval = interval
        self._clock = clock or registry.now
        self._select = select
        self._sinks: list[Callable[[dict], None]] = []
        self._prev: dict[tuple, dict] = {}
        self.seq = 0
        self._running = False
        self._task: Optional[asyncio.Task] = None

    def add_sink(self, sink: Callable[[dict], None]) -> "TelemetryPublisher":
        """Register a record consumer (aggregator ingest, log append)."""
        self._sinks.append(sink)
        return self

    # -- one tick ----------------------------------------------------------
    def publish(self) -> dict:
        """Snapshot, compute the delta record, emit it to every sink."""
        self.seq += 1
        record = {
            "type": "telemetry",
            "source": self.source,
            "seq": self.seq,
            "ts": self._clock(),
            "interval": self.interval,
            "counters": [],
            "gauges": [],
            "histograms": [],
        }
        for snap in self.registry.snapshot():
            name, labels = snap["name"], snap["labels"]
            if self._select is not None and not self._select(name, labels):
                continue
            key = (name, _label_key(labels))
            prev = self._prev.get(key)
            if snap["kind"] == "counter":
                last = prev["value"] if prev else 0
                delta = snap["value"] - last
                if delta < 0:
                    # the registry was reset under us: re-baseline
                    delta = snap["value"]
                    record["rebased"] = True
                if delta:
                    record["counters"].append([name, labels, delta])
            elif snap["kind"] == "gauge":
                changed = prev is None or (
                    prev["value"] != snap["value"]
                    or prev["updated_at"] != snap["updated_at"]
                )
                if changed and snap["updated_at"] is not None:
                    record["gauges"].append(
                        [name, labels, snap["value"], snap["updated_at"]]
                    )
            else:  # histogram
                counts = [c for _b, c in snap["buckets"]]
                last = [c for _b, c in prev["buckets"]] if prev else [0] * len(counts)
                deltas = [c - p for c, p in zip(counts, last)]
                count_delta = snap["count"] - (prev["count"] if prev else 0)
                if count_delta < 0 or any(d < 0 for d in deltas):
                    deltas = counts
                    count_delta = snap["count"]
                    record["rebased"] = True
                if count_delta:
                    bounds = [b for b, _c in snap["buckets"][:-1]]
                    record["histograms"].append(
                        [
                            name,
                            labels,
                            count_delta,
                            snap["count"],
                            snap["sum"],
                            deltas,
                            bounds,
                        ]
                    )
            self._prev[key] = snap
        for sink in self._sinks:
            sink(record)
        return record

    # -- drivers -----------------------------------------------------------
    def run_sim(self, sim):
        """Simulated-time driver: ``sim.process(pub.run_sim(sim))``.

        Ticks every ``interval`` simulated seconds until :meth:`stop`;
        the final pending timeout fires during the scenario's drain
        window, so the process exits cleanly and leaks nothing.
        """
        self._running = True
        while True:
            yield sim.timeout(self.interval)
            if not self._running:
                return
            self.publish()

    def start_async(self) -> asyncio.Task:
        """Wall-clock driver: a cancellable asyncio publishing task."""

        async def loop() -> None:
            while self._running:
                await asyncio.sleep(self.interval)
                if self._running:
                    self.publish()

        self._running = True
        self._task = asyncio.ensure_future(loop())
        return self._task

    def stop(self, flush: bool = True) -> None:
        """Stop the driver; ``flush`` emits one final delta record."""
        was_running = self._running
        self._running = False
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if flush and was_running:
            self.publish()


class TelemetryLog:
    """A retaining sink: every record, in arrival order, exportable."""

    def __init__(self):
        self.records: list[dict] = []

    def __call__(self, record: dict) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def for_source(self, source: str) -> list[dict]:
        return [r for r in self.records if r["source"] == source]

    def sources(self) -> list[str]:
        return sorted({r["source"] for r in self.records})

    def write_jsonl(self, path: str) -> int:
        return write_telemetry_jsonl(path, self.records)


def write_telemetry_jsonl(path: str, records: Iterable[dict]) -> int:
    """Write a telemetry stream as JSON lines (meta header first)."""
    from .export import SCHEMA_VERSION

    n = 1
    with open(path, "w", encoding="utf-8") as out:
        out.write(
            json.dumps(
                {"type": "meta", "schema": SCHEMA_VERSION, "stream": "telemetry"},
                sort_keys=True,
            )
            + "\n"
        )
        for record in records:
            out.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
    return n


def read_telemetry_jsonl(path: str) -> list[dict]:
    """Parse a JSONL file, keeping only the telemetry records."""
    from .export import iter_jsonl

    return [r for r in iter_jsonl(path) if r.get("type") == "telemetry"]


# ---------------------------------------------------------------------------
# replay + consistency checks
# ---------------------------------------------------------------------------


def replay_deltas(records: Iterable[dict], source: Optional[str] = None) -> list:
    """Fold one source's delta stream back into registry-snapshot records.

    Returns the same shape as :meth:`MetricsRegistry.snapshot` (sorted
    ``metric`` records), so a captured stream and the registry it came
    from can be compared for exact equality.  ``source`` filters a
    multi-source stream; replaying *overlapping* sources (two publishers
    selecting the same instrument) would double-count — stream per
    source, or select disjointly.
    """
    counters: dict[tuple, int] = {}
    gauges: dict[tuple, tuple] = {}
    hists: dict[tuple, dict] = {}
    label_of: dict[tuple, dict] = {}
    for record in records:
        if record.get("type") != "telemetry":
            continue
        if source is not None and record["source"] != source:
            continue
        for name, labels, delta in record["counters"]:
            key = (name, _label_key(labels))
            label_of[key] = labels
            counters[key] = counters.get(key, 0) + delta
        for name, labels, value, updated_at in record["gauges"]:
            key = (name, _label_key(labels))
            label_of[key] = labels
            gauges[key] = (value, updated_at)
        for name, labels, count_delta, count, total, deltas, bounds in record[
            "histograms"
        ]:
            key = (name, _label_key(labels))
            label_of[key] = labels
            h = hists.setdefault(
                key, {"counts": [0] * len(deltas), "bounds": bounds}
            )
            h["counts"] = [c + d for c, d in zip(h["counts"], deltas)]
            h["count"] = count
            h["sum"] = total
    out = []
    for key, value in counters.items():
        name, _ = key
        out.append(
            {
                "type": "metric",
                "kind": "counter",
                "name": name,
                "labels": label_of[key],
                "value": value,
            }
        )
    for key, (value, updated_at) in gauges.items():
        name, _ = key
        out.append(
            {
                "type": "metric",
                "kind": "gauge",
                "name": name,
                "labels": label_of[key],
                "value": value,
                "updated_at": updated_at,
            }
        )
    for key, h in hists.items():
        name, _ = key
        bounds = list(h["bounds"]) + ["inf"]
        out.append(
            {
                "type": "metric",
                "kind": "histogram",
                "name": name,
                "labels": label_of[key],
                "count": h["count"],
                "sum": h["sum"],
                "buckets": [[b, c] for b, c in zip(bounds, h["counts"])],
            }
        )
    out.sort(key=lambda r: (r["name"], _label_key(r["labels"])))
    return out


def telemetry_violations(records: Iterable[dict]) -> list[str]:
    """Consistency checks over a captured stream (chaos invariant).

    * per-source ``seq`` is strictly increasing and gap-free;
    * counter deltas are never negative (counters never regress);
    * histogram bucket deltas sum to the count delta, and the absolute
      ``count`` matches the accumulated bucket counts.
    """
    out: list[str] = []
    seq_seen: dict[str, int] = {}
    hist_counts: dict[tuple, int] = {}
    for record in records:
        if record.get("type") != "telemetry":
            continue
        source = record["source"]
        last = seq_seen.get(source, 0)
        if record["seq"] != last + 1:
            out.append(
                f"telemetry[{source}]: seq {record['seq']} follows {last} "
                "(gap or regression)"
            )
        seq_seen[source] = record["seq"]
        for name, labels, delta in record["counters"]:
            if delta < 0:
                out.append(
                    f"telemetry[{source}]: counter {name}{labels} "
                    f"regressed by {-delta}"
                )
        for name, labels, count_delta, count, _sum, deltas, _bounds in record[
            "histograms"
        ]:
            if sum(deltas) != count_delta:
                out.append(
                    f"telemetry[{source}]: histogram {name}{labels} bucket "
                    f"deltas sum to {sum(deltas)}, count delta is {count_delta}"
                )
            key = (source, name, _label_key(labels))
            hist_counts[key] = hist_counts.get(key, 0) + count_delta
            if hist_counts[key] != count:
                out.append(
                    f"telemetry[{source}]: histogram {name}{labels} absolute "
                    f"count {count} != accumulated deltas {hist_counts[key]}"
                )
    return out


# ---------------------------------------------------------------------------
# SLIs
# ---------------------------------------------------------------------------


def _window_span(records: list[dict]) -> float:
    """Seconds of activity a window of records covers."""
    if not records:
        return 0.0
    return records[-1]["ts"] - records[0]["ts"] + records[0]["interval"]


def _match(labels: dict, want: dict) -> bool:
    return all(labels.get(k) == v for k, v in want.items())


def sli_counter_rate(name: str, **labels) -> Callable[[list], Optional[float]]:
    """Per-second rate of a counter over the window (e.g. throughput).

    Returns ``None`` (no signal) until the counter has appeared in the
    window at least once: zero-delta instruments are omitted from the
    records, so an empty window cannot distinguish "idle by design"
    from "not yet reporting" — judging it as a zero rate would breach
    every throughput SLO during startup.  A *slowed* source still emits
    entries and is judged; a fully silent one is a staleness problem
    (``seq``/``last_ts``), not a rate of zero.
    """

    def sli(records: list[dict]) -> Optional[float]:
        span = _window_span(records)
        if span <= 0:
            return None
        total = 0
        matched = False
        for record in records:
            for cname, clabels, delta in record["counters"]:
                if cname == name and _match(clabels, labels):
                    total += delta
                    matched = True
        return total / span if matched else None

    return sli


def sli_counter_increase(name: str, **labels) -> Callable[[list], Optional[float]]:
    """Total increase of a counter over the window (e.g. session resumes)."""

    def sli(records: list[dict]) -> Optional[float]:
        if not records:
            return None
        total = 0
        for record in records:
            for cname, clabels, delta in record["counters"]:
                if cname == name and _match(clabels, labels):
                    total += delta
        return float(total)

    return sli


def sli_gauge(name: str, **labels) -> Callable[[list], Optional[float]]:
    """Latest sampled value of a gauge (e.g. mesh convergence lag)."""

    def sli(records: list[dict]) -> Optional[float]:
        latest: Optional[tuple] = None
        for record in records:
            for gname, glabels, value, updated_at in record["gauges"]:
                if gname == name and _match(glabels, labels):
                    if latest is None or updated_at >= latest[0]:
                        latest = (updated_at, value)
        return latest[1] if latest is not None else None

    return sli


def sli_histogram_mean(name: str, **labels) -> Callable[[list], Optional[float]]:
    """Mean of a histogram's observations within the window.

    Histogram records carry absolute ``count``/``sum``, so the window
    mean is the difference between the last and first matching records.
    The first record's own observations count only when it is the
    stream's opening record (``count == count_delta``, base exactly
    zero); otherwise the base is that record's absolutes and its delta
    falls off the left edge — exact either way, never smeared.
    """

    def sli(records: list[dict]) -> Optional[float]:
        base: Optional[tuple] = None
        last: Optional[tuple] = None
        for record in records:
            for entry in record["histograms"]:
                hname, hlabels, count_delta, count, total = entry[:5]
                if hname == name and _match(hlabels, labels):
                    if base is None:
                        if count == count_delta:
                            base = (0, 0.0)
                        else:
                            base = (count, total)
                    last = (count, total)
        if base is None or last is None:
            return None
        n = last[0] - base[0]
        if n <= 0:
            return None
        return (last[1] - base[1]) / n

    return sli


def sli_proxy_drift(site: Optional[str] = None) -> Callable[[list], Optional[float]]:
    """Proxy byte-conservation drift over the window.

    ``bytes_in - (forwarded + dropped + lost)`` accumulated across the
    window's deltas: persistent positive drift means the proxy is eating
    bytes it never accounts for (in-flight bytes make small transients
    normal — threshold with slack).
    """
    labels = {"proxy": site} if site is not None else {}
    rate_in = sli_counter_increase("proxy.bytes_in_total", **labels)
    outs = [
        sli_counter_increase("proxy.bytes_forwarded_total", **labels),
        sli_counter_increase("proxy.bytes_dropped_total", **labels),
        sli_counter_increase("proxy.bytes_lost_total", **labels),
    ]

    def sli(records: list[dict]) -> Optional[float]:
        came_in = rate_in(records)
        if came_in is None:
            return None
        gone = sum(f(records) or 0.0 for f in outs)
        return came_in - gone

    return sli


# ---------------------------------------------------------------------------
# SLOs + aggregator
# ---------------------------------------------------------------------------

_OPS = {
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass
class SLO:
    """A declarative objective: an SLI must satisfy ``op threshold``.

    ``for_seconds`` is the sustain requirement: the SLI must sit on the
    wrong side of the threshold for at least that long (of telemetry
    time) before a breach fires — a single bad window sample is noise,
    not an incident.
    """

    name: str
    sli: Callable[[list], Optional[float]]
    threshold: float
    op: str = ">="
    for_seconds: float = 0.0

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO op {self.op!r} (>=|<=)")

    def healthy(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


@dataclass
class Breach:
    """One sustained SLO violation on one source."""

    source: str
    slo: str
    started: float
    detected: float
    value: float
    threshold: float
    cleared: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "source": self.source,
            "slo": self.slo,
            "started": self.started,
            "detected": self.detected,
            "value": self.value,
            "threshold": self.threshold,
            "cleared": self.cleared,
        }


@dataclass
class _SourceState:
    records: list = field(default_factory=list)
    pending: dict = field(default_factory=dict)   # slo name -> first bad ts
    active: dict = field(default_factory=dict)    # slo name -> Breach


class TelemetryAggregator:
    """Merges per-source telemetry streams into sliding-window health.

    Feed it as a publisher sink (``publisher.add_sink(agg.ingest)``) or
    replay a captured JSONL through :meth:`ingest`.  Each ingest evicts
    records older than ``window`` seconds for that source and evaluates
    every registered :class:`SLO` against the refreshed window; sustained
    violations become :class:`Breach` entries and ``slo.breach`` trace
    events (``slo.clear`` when the SLI recovers).

    :meth:`retire` marks a source as *expected to go quiet* (its stream
    ended cleanly) so end-of-stream decay does not read as an outage.
    """

    def __init__(self, window: float = DEFAULT_WINDOW):
        if window <= 0:
            raise ValueError(f"telemetry window must be positive: {window}")
        self.window = window
        self.slos: list[SLO] = []
        self.breaches: list[Breach] = []
        self._sources: dict[str, _SourceState] = {}
        self._retired: set[str] = set()

    # -- configuration -----------------------------------------------------
    def add_slo(self, slo: SLO) -> "TelemetryAggregator":
        self.slos.append(slo)
        return self

    def retire(self, source: str) -> None:
        """Stop SLO evaluation for a source that finished cleanly."""
        self._retired.add(source)
        state = self._sources.get(source)
        if state is not None:
            state.pending.clear()

    # -- ingest ------------------------------------------------------------
    def ingest(self, record: dict) -> None:
        if record.get("type") != "telemetry":
            raise ValueError(f"not a telemetry record: {record.get('type')!r}")
        source = record["source"]
        state = self._sources.setdefault(source, _SourceState())
        state.records.append(record)
        horizon = record["ts"] - self.window
        while state.records and state.records[0]["ts"] < horizon:
            state.records.pop(0)
        if source not in self._retired:
            self._evaluate(source, state, record["ts"])

    def _evaluate(self, source: str, state: _SourceState, now: float) -> None:
        for slo in self.slos:
            value = slo.sli(state.records)
            if value is None:
                state.pending.pop(slo.name, None)
                continue
            if slo.healthy(value):
                state.pending.pop(slo.name, None)
                breach = state.active.pop(slo.name, None)
                if breach is not None:
                    breach.cleared = now
                    obs_event(
                        "slo.clear", source=source, slo=slo.name,
                        value=value, threshold=slo.threshold,
                    )
                continue
            if slo.name in state.active:
                continue
            started = state.pending.setdefault(slo.name, now)
            if now - started >= slo.for_seconds:
                breach = Breach(
                    source=source, slo=slo.name, started=started,
                    detected=now, value=value, threshold=slo.threshold,
                )
                state.active[slo.name] = breach
                self.breaches.append(breach)
                obs_event(
                    "slo.breach", source=source, slo=slo.name,
                    value=value, threshold=slo.threshold,
                )

    # -- inspection --------------------------------------------------------
    def sources(self) -> list[str]:
        return sorted(self._sources)

    def window_records(self, source: str) -> list[dict]:
        state = self._sources.get(source)
        return list(state.records) if state is not None else []

    def sli(self, source: str, sli: Callable[[list], Optional[float]]):
        """Evaluate an SLI function against a source's current window."""
        return sli(self.window_records(source))

    def active_breaches(self, source: Optional[str] = None) -> list[Breach]:
        out = []
        for name, state in sorted(self._sources.items()):
            if source is not None and name != source:
                continue
            out.extend(state.active.values())
        return out

    def breaches_since(
        self, ts: float, sources: Optional[Iterable[str]] = None
    ) -> list[Breach]:
        """Breaches whose bad stretch *started* at or after ``ts``."""
        wanted = set(sources) if sources is not None else None
        return [
            b
            for b in self.breaches
            if b.started >= ts and (wanted is None or b.source in wanted)
        ]

    def health(self, source: str) -> dict:
        """One source's rolling health (the watch CLI's row material)."""
        records = self.window_records(source)
        state = self._sources.get(source)
        last = records[-1] if records else None
        rates: dict[str, float] = {}
        span = _window_span(records)
        if span > 0:
            totals: dict[str, int] = {}
            for record in records:
                for name, _labels, delta in record["counters"]:
                    totals[name] = totals.get(name, 0) + delta
            rates = {name: total / span for name, total in totals.items()}
        return {
            "source": source,
            "seq": last["seq"] if last else 0,
            "last_ts": last["ts"] if last else None,
            "records": len(records),
            "rates": rates,
            "retired": source in self._retired,
            "breaches": [
                b.as_dict() for b in (state.active.values() if state else ())
            ],
        }
