"""Unified observability: metrics + structured tracing for every backend.

The paper's §8 future work combines the communication mechanisms with
grid monitoring so method selection and parameter adaptation can be
automated; this package is the substrate that makes the stack *visible*
enough for that.  One process-wide :class:`MetricsRegistry` accumulates
counters, gauges and fixed-bucket histograms from the simulated drivers,
the brokering layer, the relay, the IPL ports and the asyncio live
backend alike; an optional :class:`TraceRecorder` captures structured
spans and events (establishment attempts, decision-tree fallbacks,
driver-stack assembly, relay hops, per-message send/receive).

Typical use::

    from repro import obs

    obs.enable_tracing()                  # wall clock; scenarios rebind
    ...run a scenario or a live transfer...
    obs.export_jsonl("run.jsonl")         # metrics + trace, one file
    # then: python -m repro.obs.report run.jsonl

Everything is always-on but cheap: metric updates are O(1) attribute
arithmetic, and :func:`span`/:func:`event` collapse to no-ops while
tracing is disabled.  See ``docs/OBSERVABILITY.md`` for the metric
naming scheme and the trace-event schema.
"""

from __future__ import annotations

from typing import Callable, Optional

from .context import (
    TraceContext,
    current,
    fmt_id,
    next_id,
    seed_ids,
    set_current,
    use,
)
from .export import (
    SCHEMA_VERSION,
    SchemaError,
    export_jsonl,
    iter_jsonl,
    read_jsonl,
    validate_jsonl,
    validate_record,
)
from .flight import FlightRecorder
from .meters import SeriesRecorder, TransferMeter, mb_per_s
from .metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from .trace import (
    Span,
    TraceRecorder,
    disable_tracing,
    enable_tracing,
    event,
    record_span,
    set_tracer,
    span,
    tracer,
)
from .telemetry import (  # noqa: E402  (needs .trace imported first)
    SLO,
    TelemetryAggregator,
    TelemetryLog,
    TelemetryPublisher,
    read_telemetry_jsonl,
    replay_deltas,
    sli_counter_increase,
    sli_counter_rate,
    sli_gauge,
    sli_histogram_mean,
    sli_proxy_drift,
    telemetry_violations,
    write_telemetry_jsonl,
)

__all__ = [
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
    "get_registry",
    "set_registry",
    "metrics",
    # tracing
    "TraceRecorder",
    "Span",
    "enable_tracing",
    "disable_tracing",
    "set_tracer",
    "tracer",
    "span",
    "event",
    "record_span",
    # causal context
    "TraceContext",
    "current",
    "use",
    "set_current",
    "seed_ids",
    "next_id",
    "fmt_id",
    # flight recorder
    "FlightRecorder",
    # clocks
    "use_sim_clock",
    # export / report
    "export_jsonl",
    "read_jsonl",
    "iter_jsonl",
    "validate_record",
    "validate_jsonl",
    "SchemaError",
    "SCHEMA_VERSION",
    # measurement helpers
    "TransferMeter",
    "SeriesRecorder",
    "mb_per_s",
    # streaming telemetry
    "TelemetryPublisher",
    "TelemetryLog",
    "TelemetryAggregator",
    "SLO",
    "replay_deltas",
    "telemetry_violations",
    "write_telemetry_jsonl",
    "read_telemetry_jsonl",
    "sli_counter_rate",
    "sli_counter_increase",
    "sli_gauge",
    "sli_histogram_mean",
    "sli_proxy_drift",
]

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry all instrumentation reports to."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install a fresh registry (tests); returns the previous one."""
    global _registry
    previous, _registry = _registry, registry
    return previous


def metrics() -> MetricsRegistry:
    """Alias for :func:`get_registry` (reads better at call sites)."""
    return _registry


def use_sim_clock(sim) -> None:
    """Bind the registry (and active recorder) to ``sim.now``.

    :class:`~repro.core.scenarios.GridScenario` calls this on
    construction, so metrics and traces from simulated runs carry
    simulated timestamps without any per-site wiring.  Live (asyncio)
    runs never call it and stay on the wall clock.
    """
    clock: Callable[[], float] = lambda: sim.now
    _registry.set_clock(clock)
    recorder: Optional[TraceRecorder] = tracer()
    if recorder is not None:
        recorder.set_clock(clock)
