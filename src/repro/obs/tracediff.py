"""Structural trace signatures + diffs: the golden-trace gate's core.

A live run never reproduces byte-identical timings, ids or byte counts,
but the *shape* of its assembled causal trace is an invariant of the
flow: which spans exist, how they nest, which node recorded them, the
polarity of their events (a ``channel.message`` tx must have its rx, a
``session.resume`` must carry ``outcome=ok``), and how many records
failed to attach anywhere.  :func:`signature` boils an
:func:`repro.obs.assemble.assemble` result down to exactly that —
dropping ids, timestamps, durations and volumetric attrs — and
:func:`diff` compares two signatures into human-readable divergence
lines, empty when the structures agree.

The signature is deliberately insensitive to concurrency: sibling spans,
events within a span and whole traces are sorted by their canonical JSON
form, so two runs that interleaved differently (but did the same things)
produce identical signatures.
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = ["signature", "diff", "SIGNATURE_VERSION"]

SIGNATURE_VERSION = 1

#: span attrs that are structural (everything else — byte counts,
#: attempt numbers, timings — varies run to run and is dropped)
_SPAN_ATTRS = ("outcome", "direction", "stage", "role", "backend", "kind")

#: event attrs that define polarity
_EVENT_ATTRS = ("direction", "outcome", "role", "backend", "kind")


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _event_sig(event: dict) -> dict:
    attrs = event.get("attrs") or {}
    return {
        "name": event.get("name"),
        "node": event.get("node"),
        "polarity": {k: attrs[k] for k in _EVENT_ATTRS if k in attrs},
    }


def _span_sig(span: dict) -> dict:
    attrs = span.get("attrs") or {}
    return {
        "name": span.get("name"),
        "node": span.get("node"),
        "attrs": {k: attrs[k] for k in _SPAN_ATTRS if k in attrs},
        "events": sorted(
            (_event_sig(e) for e in span.get("events") or []), key=_canon
        ),
        "children": sorted(
            (_span_sig(c) for c in span.get("children") or []), key=_canon
        ),
    }


def signature(assembled: dict) -> dict:
    """The structural signature of an assembled trace forest."""
    traces = []
    for trace in assembled.get("traces", []):
        traces.append(
            {
                "nodes": sorted(trace.get("nodes") or []),
                "orphans": trace.get("orphans", 0),
                "unattached": trace.get("unattached", 0),
                "roots": sorted(
                    (_span_sig(r) for r in trace.get("roots") or []),
                    key=_canon,
                ),
            }
        )
    traces.sort(key=_canon)
    return {
        "version": SIGNATURE_VERSION,
        "untraced": assembled.get("untraced", 0),
        "traces": traces,
    }


def _short(value) -> str:
    if isinstance(value, dict) and "name" in value:
        return f"<{value['name']}>"
    text = _canon(value)
    return text if len(text) <= 80 else text[:77] + "..."


def _label(path: str, index: int, item) -> str:
    if isinstance(item, dict) and "name" in item:
        return f"{path}[{index}:{item['name']}]"
    return f"{path}[{index}]"


def _diff(path: str, golden, observed, out: list, limit: int) -> None:
    if len(out) >= limit:
        return
    if type(golden) is not type(observed):
        out.append(
            f"{path}: golden {_short(golden)} != observed {_short(observed)}"
        )
        return
    if isinstance(golden, dict):
        for key in sorted(set(golden) | set(observed)):
            if len(out) >= limit:
                return
            if key not in golden:
                out.append(
                    f"{path}.{key}: unexpected in observed: "
                    f"{_short(observed[key])}"
                )
            elif key not in observed:
                out.append(
                    f"{path}.{key}: missing from observed "
                    f"(golden: {_short(golden[key])})"
                )
            else:
                _diff(f"{path}.{key}", golden[key], observed[key], out, limit)
    elif isinstance(golden, list):
        if len(golden) != len(observed):
            out.append(
                f"{path}: golden has {len(golden)} entries, "
                f"observed has {len(observed)}"
            )
        for i, (g, o) in enumerate(zip(golden, observed)):
            if len(out) >= limit:
                return
            _diff(_label(path, i, g), g, o, out, limit)
        longer, tag = (
            (golden, "missing from observed")
            if len(golden) > len(observed)
            else (observed, "unexpected in observed")
        )
        for i in range(min(len(golden), len(observed)), len(longer)):
            if len(out) >= limit:
                return
            out.append(f"{_label(path, i, longer[i])}: {tag}: {_short(longer[i])}")
    elif golden != observed:
        out.append(
            f"{path}: golden {_short(golden)} != observed {_short(observed)}"
        )


def diff(golden: dict, observed: dict, limit: int = 40) -> list:
    """Divergence lines between two signatures; empty means they agree."""
    out: list = []
    _diff("trace", golden, observed, out, limit)
    return out
