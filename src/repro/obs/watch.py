"""Rolling-health view over a streaming-telemetry capture.

Usage::

    python -m repro.obs.watch telemetry.jsonl
    python -m repro.obs.watch telemetry.jsonl --follow   # tail a live file
    python -m repro.obs.watch telemetry.jsonl --at 8.0   # health as of t=8

Replays a telemetry JSONL (written by ``TelemetryLog.write_jsonl`` or
``python -m repro.chaos --telemetry``) through a
:class:`~repro.obs.telemetry.TelemetryAggregator` and renders one health
row per source: sequence position, window freshness, per-counter rates
and stale-stream flags.  ``--follow`` keeps the file open and re-renders
as records are appended — the "top(1) for the telemetry plane" loop; a
one-shot run renders the final health and exits (CI-friendly).

The renderer is deliberately SLO-free: objectives live in scenario /
deployment code, not in the viewer.  What the viewer *does* flag is
staleness — a source whose stream stopped advancing while others kept
going — because that is the one failure mode rate SLIs cannot see
(zero-delta records are omitted, so silence has no rate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, TextIO

from .telemetry import DEFAULT_WINDOW, TelemetryAggregator

__all__ = ["ingest_lines", "render_health", "main"]

#: a source is flagged stale when its last record lags the newest
#: timestamp in the whole capture by more than this many of its own
#: publish intervals
STALE_INTERVALS = 3.0


def ingest_lines(
    lines, aggregator: TelemetryAggregator, clip: Optional[float] = None
) -> int:
    """Feed JSONL lines into ``aggregator``; returns records ingested.

    Non-telemetry records (the meta header, interleaved trace exports)
    are skipped, so the watch view works on combined captures too.
    ``clip`` stops at the first record stamped after that time — the
    ``--at`` time-travel knob.
    """
    n = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("type") != "telemetry":
            continue
        if clip is not None and record["ts"] > clip:
            break
        aggregator.ingest(record)
        n += 1
    return n


def render_health(aggregator: TelemetryAggregator, top: int = 3) -> str:
    """One table of rolling health, one row per source."""
    sources = aggregator.sources()
    if not sources:
        return "telemetry: no records yet"
    healths = [aggregator.health(source) for source in sources]
    now = max(h["last_ts"] for h in healths if h["last_ts"] is not None)
    lines = [
        f"telemetry @ t={now:.3f}  window={aggregator.window:.3g}s  "
        f"sources={len(sources)}  breaches={len(aggregator.breaches)}",
        f"  {'source':20s} {'seq':>6s} {'age':>8s} {'recs':>5s}  rates",
    ]
    for health in healths:
        age = now - health["last_ts"] if health["last_ts"] is not None else None
        window = aggregator.window_records(health["source"])
        interval = window[-1]["interval"] if window else None
        flags = ""
        if health["retired"]:
            flags = " [retired]"
        elif (
            age is not None
            and interval is not None
            and age > STALE_INTERVALS * interval
        ):
            flags = " [STALE]"
        if health["breaches"]:
            flags += f" [BREACH x{len(health['breaches'])}]"
        rates = sorted(
            health["rates"].items(), key=lambda kv: -abs(kv[1])
        )[:top]
        rendered = "  ".join(f"{name}={rate:,.1f}/s" for name, rate in rates)
        age_s = f"{age:8.3f}" if age is not None else f"{'-':>8s}"
        lines.append(
            f"  {health['source']:20s} {health['seq']:6d} {age_s} "
            f"{health['records']:5d}  {rendered}{flags}"
        )
    return "\n".join(lines)


def _follow(path: str, aggregator: TelemetryAggregator, every: float,
            out: TextIO) -> int:  # pragma: no cover - interactive loop
    """Tail ``path`` forever, re-rendering after each batch of records."""
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            added = ingest_lines(handle, aggregator)
            if added:
                print(render_health(aggregator), file=out)
                print("", file=out)
            time.sleep(every)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.watch",
        description="Rolling health over a streaming-telemetry JSONL.",
    )
    parser.add_argument("path", help="telemetry JSONL capture to watch")
    parser.add_argument(
        "--window", type=float, default=DEFAULT_WINDOW,
        help=f"sliding-window span in telemetry seconds (default {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--at", type=float, default=None, metavar="T",
        help="render health as of telemetry time T instead of end-of-file",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="keep the file open and re-render as records are appended",
    )
    parser.add_argument(
        "--every", type=float, default=1.0,
        help="--follow poll interval in wall seconds (default 1.0)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the per-source health dicts as JSON instead of the table",
    )
    args = parser.parse_args(argv)
    aggregator = TelemetryAggregator(window=args.window)
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            ingest_lines(handle, aggregator, clip=args.at)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    if args.json:
        health = {
            source: aggregator.health(source)
            for source in aggregator.sources()
        }
        print(json.dumps(health, sort_keys=True, indent=2))
    else:
        print(render_health(aggregator))
    if args.follow:  # pragma: no cover - interactive loop
        _follow(args.path, aggregator, args.every, sys.stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
